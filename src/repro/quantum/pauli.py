"""Ising (Pauli-Z) Hamiltonians and their diagonal representation.

The MaxCut problem Hamiltonian (paper Eq. 1) is

    H_C = ½ Σ_{(i,j) ∈ E} w_ij (1 − Z_i Z_j),

whose diagonal in the computational basis is exactly the cut value of every
bitstring, which is why the fast QAOA simulator and the brute-force exact
solver share :func:`repro.graphs.maxcut.cut_diagonal`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import cut_diagonal
from repro.quantum.statevector import expectation_diagonal, probabilities


@dataclass
class IsingHamiltonian:
    """H = const + Σ h_i Z_i + Σ J_ij Z_i Z_j (all terms diagonal).

    Attributes
    ----------
    n_qubits:
        Number of qubits/spins.
    constant:
        Identity coefficient.
    linear:
        ``{i: h_i}`` single-Z coefficients.
    quadratic:
        ``{(i, j): J_ij}`` with canonical ``i < j`` ordering.
    """

    n_qubits: int
    constant: float = 0.0
    linear: Dict[int, float] = field(default_factory=dict)
    quadratic: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        canon: Dict[Tuple[int, int], float] = {}
        for (i, j), coeff in self.quadratic.items():
            if i == j:
                raise ValueError("Z_i Z_i term is a constant; fold it in")
            key = (min(i, j), max(i, j))
            canon[key] = canon.get(key, 0.0) + coeff
        self.quadratic = canon
        for idx in list(self.linear) + [q for key in canon for q in key]:
            if not 0 <= idx < self.n_qubits:
                raise ValueError(f"qubit index {idx} out of range")

    # ------------------------------------------------------------------
    @staticmethod
    def from_maxcut(graph: Graph) -> "IsingHamiltonian":
        """Paper Eq. 1: H_C = ½ Σ w (1 − Z_i Z_j)."""
        quadratic = {
            (int(a), int(b)): -0.5 * float(weight)
            for a, b, weight in zip(graph.u, graph.v, graph.w)
        }
        return IsingHamiltonian(
            n_qubits=graph.n_nodes,
            constant=0.5 * graph.total_weight,
            quadratic=quadratic,
        )

    # ------------------------------------------------------------------
    def diagonal(self) -> np.ndarray:
        """Eigenvalue of every computational basis state (length 2^n).

        Basis state ``x`` has Z_i eigenvalue ``(-1)^{x_i}`` with ``x_i`` the
        i-th (little-endian) bit.
        """
        n = self.n_qubits
        if n > 28:
            raise ValueError(f"diagonal infeasible for n={n}")
        size = 1 << n
        idx = np.arange(size, dtype=np.uint64)
        diag = np.full(size, self.constant, dtype=np.float64)
        for i, h in self.linear.items():
            z_i = 1.0 - 2.0 * ((idx >> np.uint64(i)) & np.uint64(1)).astype(np.float64)
            diag += h * z_i
        for (i, j), coeff in self.quadratic.items():
            parity = ((idx >> np.uint64(i)) ^ (idx >> np.uint64(j))) & np.uint64(1)
            diag += coeff * (1.0 - 2.0 * parity.astype(np.float64))
        return diag

    def value(self, bits: np.ndarray) -> float:
        """Energy of a single 0/1 assignment (vectorised over terms)."""
        bits = np.asarray(bits)
        z = 1.0 - 2.0 * bits.astype(np.float64)
        total = self.constant
        for i, h in self.linear.items():
            total += h * z[i]
        for (i, j), coeff in self.quadratic.items():
            total += coeff * z[i] * z[j]
        return float(total)

    # ------------------------------------------------------------------
    def expectation(self, state: np.ndarray) -> float:
        """⟨ψ| H |ψ⟩ via the diagonal representation."""
        return expectation_diagonal(state, self.diagonal())

    def expectation_from_counts(self, counts: Mapping[int, int]) -> float:
        """Shot-based estimate of ⟨H⟩ from measurement counts."""
        total_shots = sum(counts.values())
        if total_shots == 0:
            raise ValueError("empty counts")
        acc = 0.0
        n = self.n_qubits
        for basis_index, c in counts.items():
            bits = (basis_index >> np.arange(n, dtype=np.uint64)) & 1
            acc += c * self.value(bits)
        return acc / total_shots

    # ------------------------------------------------------------------
    def __add__(self, other: "IsingHamiltonian") -> "IsingHamiltonian":
        if other.n_qubits != self.n_qubits:
            raise ValueError("qubit count mismatch")
        linear = dict(self.linear)
        for i, h in other.linear.items():
            linear[i] = linear.get(i, 0.0) + h
        quadratic = dict(self.quadratic)
        for key, coeff in other.quadratic.items():
            quadratic[key] = quadratic.get(key, 0.0) + coeff
        return IsingHamiltonian(
            self.n_qubits, self.constant + other.constant, linear, quadratic
        )

    def __mul__(self, factor: float) -> "IsingHamiltonian":
        return IsingHamiltonian(
            self.n_qubits,
            self.constant * factor,
            {i: h * factor for i, h in self.linear.items()},
            {k: c * factor for k, c in self.quadratic.items()},
        )

    __rmul__ = __mul__

    def n_terms(self) -> int:
        return len(self.linear) + len(self.quadratic)


def maxcut_diagonal(graph: Graph) -> np.ndarray:
    """Shared fast path: the H_C diagonal *is* the cut diagonal."""
    return cut_diagonal(graph)


def zz_correlations(state: np.ndarray, pairs) -> np.ndarray:
    """⟨Z_i Z_j⟩ for each (i, j) pair — used by recursive QAOA.

    Vectorised: one pass over |ψ|² per pair.
    """
    probs = probabilities(state)
    n = int(np.log2(len(state)))
    idx = np.arange(len(state), dtype=np.uint64)
    out = np.empty(len(pairs))
    for k, (i, j) in enumerate(pairs):
        parity = ((idx >> np.uint64(i)) ^ (idx >> np.uint64(j))) & np.uint64(1)
        zz = 1.0 - 2.0 * parity.astype(np.float64)
        out[k] = float(np.dot(probs, zz))
    return out


__all__ = ["IsingHamiltonian", "maxcut_diagonal", "zz_correlations"]
