"""Ising (Pauli-Z) Hamiltonians and their diagonal representation.

The MaxCut problem Hamiltonian (paper Eq. 1) is

    H_C = ½ Σ_{(i,j) ∈ E} w_ij (1 − Z_i Z_j),

whose diagonal in the computational basis is exactly the cut value of every
bitstring, which is why the fast QAOA simulator and the brute-force exact
solver share :func:`repro.graphs.maxcut.cut_diagonal`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import cut_diagonal
from repro.quantum.statevector import (
    expectation_diagonal,
    n_qubits_for_dim,
    probabilities,
)


@dataclass
class IsingHamiltonian:
    """H = const + Σ h_i Z_i + Σ J_ij Z_i Z_j (all terms diagonal).

    Attributes
    ----------
    n_qubits:
        Number of qubits/spins.
    constant:
        Identity coefficient.
    linear:
        ``{i: h_i}`` single-Z coefficients.
    quadratic:
        ``{(i, j): J_ij}`` with canonical ``i < j`` ordering.
    """

    n_qubits: int
    constant: float = 0.0
    linear: Dict[int, float] = field(default_factory=dict)
    quadratic: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        canon: Dict[Tuple[int, int], float] = {}
        for (i, j), coeff in self.quadratic.items():
            if i == j:
                raise ValueError("Z_i Z_i term is a constant; fold it in")
            key = (min(i, j), max(i, j))
            canon[key] = canon.get(key, 0.0) + coeff
        self.quadratic = canon
        for idx in list(self.linear) + [q for key in canon for q in key]:
            if not 0 <= idx < self.n_qubits:
                raise ValueError(f"qubit index {idx} out of range")

    # ------------------------------------------------------------------
    @staticmethod
    def from_maxcut(graph: Graph) -> "IsingHamiltonian":
        """Paper Eq. 1: H_C = ½ Σ w (1 − Z_i Z_j)."""
        quadratic = {
            (int(a), int(b)): -0.5 * float(weight)
            for a, b, weight in zip(graph.u, graph.v, graph.w, strict=True)
        }
        return IsingHamiltonian(
            n_qubits=graph.n_nodes,
            constant=0.5 * graph.total_weight,
            quadratic=quadratic,
        )

    # ------------------------------------------------------------------
    def diagonal(self) -> np.ndarray:
        """Eigenvalue of every computational basis state (length 2^n).

        Basis state ``x`` has Z_i eigenvalue ``(-1)^{x_i}`` with ``x_i`` the
        i-th (little-endian) bit.
        """
        n = self.n_qubits
        if n > 28:
            raise ValueError(f"diagonal infeasible for n={n}")
        size = 1 << n
        idx = np.arange(size, dtype=np.uint64)
        diag = np.full(size, self.constant, dtype=np.float64)
        for i, h in self.linear.items():
            z_i = 1.0 - 2.0 * ((idx >> np.uint64(i)) & np.uint64(1)).astype(np.float64)
            diag += h * z_i
        for (i, j), coeff in self.quadratic.items():
            parity = ((idx >> np.uint64(i)) ^ (idx >> np.uint64(j))) & np.uint64(1)
            diag += coeff * (1.0 - 2.0 * parity.astype(np.float64))
        return diag

    def value(self, bits: np.ndarray) -> float:
        """Energy of a single 0/1 assignment (vectorised over terms)."""
        bits = np.asarray(bits)
        z = 1.0 - 2.0 * bits.astype(np.float64)
        total = self.constant
        for i, h in self.linear.items():
            total += h * z[i]
        for (i, j), coeff in self.quadratic.items():
            total += coeff * z[i] * z[j]
        return float(total)

    # ------------------------------------------------------------------
    def expectation(self, state: np.ndarray) -> float:
        """⟨ψ| H |ψ⟩ via the diagonal representation."""
        return expectation_diagonal(state, self.diagonal())

    def expectation_from_counts(self, counts: Mapping[int, int]) -> float:
        """Shot-based estimate of ⟨H⟩ from measurement counts."""
        total_shots = sum(counts.values())
        if total_shots == 0:
            raise ValueError("empty counts")
        acc = 0.0
        n = self.n_qubits
        for basis_index, c in counts.items():
            bits = (basis_index >> np.arange(n, dtype=np.uint64)) & 1
            acc += c * self.value(bits)
        return acc / total_shots

    # ------------------------------------------------------------------
    def __add__(self, other: "IsingHamiltonian") -> "IsingHamiltonian":
        if other.n_qubits != self.n_qubits:
            raise ValueError("qubit count mismatch")
        linear = dict(self.linear)
        for i, h in other.linear.items():
            linear[i] = linear.get(i, 0.0) + h
        quadratic = dict(self.quadratic)
        for key, coeff in other.quadratic.items():
            quadratic[key] = quadratic.get(key, 0.0) + coeff
        return IsingHamiltonian(
            self.n_qubits, self.constant + other.constant, linear, quadratic
        )

    def __mul__(self, factor: float) -> "IsingHamiltonian":
        return IsingHamiltonian(
            self.n_qubits,
            self.constant * factor,
            {i: h * factor for i, h in self.linear.items()},
            {k: c * factor for k, c in self.quadratic.items()},
        )

    __rmul__ = __mul__

    def n_terms(self) -> int:
        return len(self.linear) + len(self.quadratic)


def maxcut_diagonal(graph: Graph) -> np.ndarray:
    """Shared fast path: the H_C diagonal *is* the cut diagonal."""
    return cut_diagonal(graph)


# Cap on the (n_used_qubits, chunk) ±1 eigenvalue table built by the
# batched correlation kernel (float64 entries).
_ZZ_TABLE_BUDGET = 1 << 22


def zz_correlations_batch(states: np.ndarray, pairs) -> np.ndarray:
    """⟨Z_i Z_j⟩ for every (i, j) pair over a batch of statevectors.

    ``states`` may be a single ``(2**n,)`` vector or a ``(B, 2**n)`` batch;
    the result is ``(n_pairs,)`` or ``(B, n_pairs)`` respectively.  All
    pairs are evaluated in one pass over |ψ|²: with ``Z`` the ``(q, dim)``
    table of single-qubit eigenvalue rows ``z_q = (-1)^{x_q}`` (built only
    for qubits that appear in ``pairs``),

        ⟨Z_i Z_j⟩_b = Σ_x p_b(x) z_i(x) z_j(x) = [(Z · diag(p_b)) Zᵀ]_{ij}

    — one rank-``dim`` GEMM per state yields the full correlation matrix of
    the used qubits, from which the requested pairs are gathered.  When the
    pair list is sparse (fewer pairs than used qubits — rings, trees), the
    full Gram matrix would be mostly waste, so the per-pair products
    ``z_i·z_j`` are formed directly and contracted against the probability
    rows instead.  The basis axis is chunked so the eigenvalue tables stay
    bounded regardless of qubit count.  This replaces the per-pair Python
    loop (one parity mask rebuilt per edge) as the per-elimination
    correlation sweep of recursive QAOA
    (:func:`repro.qaoa.rqaoa.rqaoa_solve`).
    """
    states = np.asarray(states)
    single = states.ndim == 1
    if single:
        states = states[None, :]
    if states.ndim != 2:
        raise ValueError(f"states must be 1-D or 2-D, got ndim={states.ndim}")
    n = n_qubits_for_dim(states.shape[-1])
    pair_arr = np.asarray(list(pairs), dtype=np.int64).reshape(-1, 2)
    n_pairs = pair_arr.shape[0]
    if n_pairs and not (0 <= int(pair_arr.min()) and int(pair_arr.max()) < n):
        raise ValueError(f"pair indices {pair_arr.min()}..{pair_arr.max()} out of range for n={n}")
    if n_pairs == 0:
        return np.zeros(0) if single else np.zeros((states.shape[0], 0))
    probs = probabilities(states)
    dim = states.shape[-1]
    used = np.unique(pair_arr)  # sorted qubits appearing in any pair
    slot = np.full(n, -1, dtype=np.int64)
    slot[used] = np.arange(len(used))
    n_used = len(used)
    sparse = n_pairs < n_used  # Gram would be mostly unrequested entries
    gram = None if sparse else np.zeros(
        (states.shape[0], n_used, n_used), dtype=np.float64
    )
    out = np.zeros((states.shape[0], n_pairs), dtype=np.float64)
    chunk = max(1, min(dim, _ZZ_TABLE_BUDGET // max(1, n_used + n_pairs)))
    z = np.empty((n_used, chunk), dtype=np.float64)
    for start in range(0, dim, chunk):
        stop = min(start + chunk, dim)
        idx = np.arange(start, stop, dtype=np.uint64)
        table = z[:, : stop - start]
        for row, q in enumerate(used):
            table[row] = ((idx >> np.uint64(q)) & np.uint64(1)).astype(np.float64)
        table *= -2.0
        table += 1.0
        if sparse:
            prod = table[slot[pair_arr[:, 0]]] * table[slot[pair_arr[:, 1]]]
            out += probs[:, start:stop] @ prod.T
        else:
            for b in range(states.shape[0]):
                gram[b] += (table * probs[b, start:stop]) @ table.T
    if not sparse:
        out = gram[:, slot[pair_arr[:, 0]], slot[pair_arr[:, 1]]]
    return out[0] if single else out


def zz_correlations(state: np.ndarray, pairs) -> np.ndarray:
    """⟨Z_i Z_j⟩ for each (i, j) pair — used by recursive QAOA.

    Scalar fallback of :func:`zz_correlations_batch`: one vectorised pass
    over |ψ|² covering all pairs at once.
    """
    return zz_correlations_batch(np.asarray(state), pairs)


__all__ = [
    "IsingHamiltonian",
    "maxcut_diagonal",
    "zz_correlations",
    "zz_correlations_batch",
]
