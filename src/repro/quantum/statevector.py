"""Vectorised statevector kernels.

This is the numerical core of the Aer-simulator substitute: dense
``complex128`` statevectors over ``n`` qubits with little-endian qubit
indexing (qubit ``q`` = bit ``q`` of the index).  Gate application uses the
reshape/moveaxis tensor kernel; diagonal operators get a fast elementwise
path — the QAOA cost layer is one diagonal multiply, which is what makes
the grid searches of the paper tractable on a laptop.

Batch layout: kernels that sweep many parameter vectors over the same
graph operate on ``(B, 2**n)`` arrays — batch index leading, basis index
trailing — so every per-qubit pass stays one contiguous vectorised
operation across the whole batch (see :mod:`repro.qaoa.engine`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.rng import RngLike, ensure_rng


def n_qubits_for_dim(dim: int) -> int:
    """Qubit count for a statevector length, validating it is a power of 2.

    Every kernel below infers ``n`` from the array length; a silent
    ``int(log2(...))`` truncation on a malformed state corrupts the result,
    so reject non-power-of-2 lengths up front.
    """
    if dim < 1 or (dim & (dim - 1)) != 0:
        raise ValueError(f"statevector length {dim} is not a power of 2")
    return dim.bit_length() - 1


def zero_state(n_qubits: int) -> np.ndarray:
    """|0...0> statevector."""
    state = np.zeros(1 << n_qubits, dtype=np.complex128)
    state[0] = 1.0
    return state


def plus_state(n_qubits: int) -> np.ndarray:
    """|+>^n — the QAOA initial state (Eq. 2)."""
    dim = 1 << n_qubits
    return np.full(dim, 1.0 / np.sqrt(dim), dtype=np.complex128)


def basis_state(n_qubits: int, index: int) -> np.ndarray:
    """Computational basis state |index>."""
    state = np.zeros(1 << n_qubits, dtype=np.complex128)
    state[index] = 1.0
    return state


def plus_state_batch(
    n_qubits: int, batch: int, *, out: np.ndarray | None = None
) -> np.ndarray:
    """``batch`` copies of |+>^n as a ``(batch, 2**n)`` array.

    ``out`` lets callers (the sweep engine) reuse an already-allocated
    buffer; it must have the exact shape and ``complex128`` dtype.
    """
    if batch < 1:
        raise ValueError("batch must be positive")
    dim = 1 << n_qubits
    amplitude = 1.0 / np.sqrt(dim)
    if out is None:
        return np.full((batch, dim), amplitude, dtype=np.complex128)
    if out.shape != (batch, dim) or out.dtype != np.complex128:
        raise ValueError(
            f"out buffer shape {out.shape}/{out.dtype} != ({batch}, {dim})/complex128"
        )
    out[...] = amplitude
    return out


def apply_gate(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Apply a k-qubit unitary to ``qubits`` of ``state`` (returns new array).

    Gate-matrix convention: ``qubits[0]`` is the most significant bit of the
    gate's own 2^k index (see :mod:`repro.quantum.gates`).
    """
    n = n_qubits_for_dim(len(state))
    k = len(qubits)
    if matrix.shape != (1 << k, 1 << k):
        raise ValueError(f"matrix shape {matrix.shape} mismatch for {k} qubit(s)")
    if len(set(qubits)) != k:
        raise ValueError("duplicate qubits")
    for q in qubits:
        if not 0 <= q < n:
            raise ValueError(f"qubit {q} out of range")
    # Tensor axes: axis a of the reshaped state corresponds to qubit n-1-a.
    psi = state.reshape((2,) * n)
    axes = [n - 1 - q for q in qubits]
    psi = np.moveaxis(psi, axes, range(k))
    tail_shape = psi.shape[k:]
    psi = psi.reshape(1 << k, -1)
    psi = matrix @ psi
    psi = psi.reshape((2,) * k + tail_shape)
    psi = np.moveaxis(psi, range(k), axes)
    return np.ascontiguousarray(psi).reshape(-1)


def apply_one_qubit(state: np.ndarray, matrix: np.ndarray, q: int) -> np.ndarray:
    """Single-qubit fast path: reshape to (high, 2, low) and contract.

    Used in the QAOA mixer loop; avoids the general moveaxis machinery.
    """
    n = n_qubits_for_dim(len(state))
    if not 0 <= q < n:
        raise ValueError(f"qubit {q} out of range")
    view = state.reshape(1 << (n - 1 - q), 2, 1 << q)
    out = np.empty_like(view)
    a, b = view[:, 0, :], view[:, 1, :]
    out[:, 0, :] = matrix[0, 0] * a + matrix[0, 1] * b
    out[:, 1, :] = matrix[1, 0] * a + matrix[1, 1] * b
    return out.reshape(-1)


def apply_diagonal(state: np.ndarray, diagonal: np.ndarray) -> np.ndarray:
    """Multiply by a full 2^n diagonal (e.g. ``exp(-iγ·cut_diagonal)``).

    ``state`` may be a single ``(2**n,)`` vector or a ``(B, 2**n)`` batch;
    the diagonal broadcasts over the leading batch axis.
    """
    if diagonal.shape != state.shape[-1:]:
        raise ValueError("diagonal length mismatch")
    return state * diagonal


def apply_phases_batch(
    states: np.ndarray,
    diagonal: np.ndarray,
    gammas: np.ndarray,
    *,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """In place: ``states[b] *= exp(-1j * gammas[b] * diagonal)``.

    The batched QAOA cost layer — one row per parameter vector, each with
    its own γ.  ``scratch`` is an optional ``(B, 2**n)`` complex buffer for
    the phase table so sweep loops avoid a fresh allocation per layer.
    """
    gammas = np.asarray(gammas, dtype=np.float64)
    if states.ndim != 2 or gammas.shape != (states.shape[0],):
        raise ValueError(
            f"expected states (B, dim) and gammas (B,), got "
            f"{states.shape} / {gammas.shape}"
        )
    if diagonal.shape != states.shape[-1:]:
        raise ValueError("diagonal length mismatch")
    if scratch is None:
        scratch = np.empty_like(states)
    elif scratch.shape != states.shape or scratch.dtype != states.dtype:
        raise ValueError("scratch buffer shape/dtype mismatch")
    np.multiply.outer(-1j * gammas, diagonal, out=scratch)
    np.exp(scratch, out=scratch)
    states *= scratch
    return states


def apply_rx_layer(
    state: np.ndarray, beta, *, scratch: np.ndarray | None = None
) -> np.ndarray:
    """Apply ``RX(2β)`` on every qubit — the QAOA mixer ``exp(-iβ Σ X_i)``.

    Works in place via the axis kernel per qubit; cost is n passes over the
    state, each fully vectorised.  ``state`` may be a single ``(2**n,)``
    vector with scalar ``beta``, or a ``(B, 2**n)`` batch where ``beta`` is
    a scalar or a ``(B,)`` vector of per-row mixer angles.  The batched
    path runs three full-array ufunc passes per qubit against ``scratch``
    (allocated on demand) instead of copying strided halves.
    """
    n = n_qubits_for_dim(state.shape[-1])
    beta_arr = np.asarray(beta, dtype=np.float64)
    c = np.cos(beta_arr)
    s = -1j * np.sin(beta_arr)
    if state.ndim == 1:
        if beta_arr.ndim != 0:
            raise ValueError("per-row betas require a batched (B, dim) state")
        out = state
        for q in range(n):
            view = out.reshape(1 << (n - 1 - q), 2, 1 << q)
            a = view[:, 0, :].copy()
            b = view[:, 1, :]
            view[:, 0, :] = c * a + s * b
            view[:, 1, :] = s * a + c * b
            out = view.reshape(-1)
        return out
    if state.ndim != 2:
        raise ValueError(f"state must be 1-D or 2-D, got ndim={state.ndim}")
    batch = state.shape[0]
    if beta_arr.ndim == 1:
        if beta_arr.shape != (batch,):
            raise ValueError(
                f"betas shape {beta_arr.shape} != batch ({batch},)"
            )
        # Broadcast per-row coefficients over the (B, high, 2, low) view.
        c = c[:, None, None, None]
        s = s[:, None, None, None]
    if scratch is None:
        scratch = np.empty_like(state)
    elif scratch.shape != state.shape or scratch.dtype != state.dtype:
        raise ValueError("scratch buffer shape/dtype mismatch")
    for q in range(n):
        view = state.reshape(batch, 1 << (n - 1 - q), 2, 1 << q)
        tview = scratch.reshape(view.shape)
        # a' = c·a + s·b, b' = s·a + c·b via one reversed-axis read:
        # tmp = s·swap(view); view = c·view + tmp.
        np.multiply(view[:, :, ::-1, :], s, out=tview)
        np.multiply(view, c, out=view)
        view += tview
    return state


def walsh_hadamard_batch(
    states: np.ndarray, *, scratch: np.ndarray | None = None
) -> np.ndarray:
    """Unnormalised Walsh–Hadamard transform along the last axis, in place.

    ``n`` radix-2 butterfly passes; the result carries a factor of
    ``2**(n/2)`` relative to ``H^{⊗n}|ψ⟩`` — callers fold the normalisation
    into downstream constants (one multiply beats ``n`` scaled passes).
    ``states`` must be C-contiguous (the butterflies run on reshaped views;
    a strided input would silently operate on a copy).  ``scratch`` is an
    optional same-shape ping-pong buffer.  Used by the sweep engine's
    mixer-eigenbasis path: ``exp(-iβ ΣX) = H^{⊗n} exp(-iβ ΣZ) H^{⊗n}``.
    """
    n = n_qubits_for_dim(states.shape[-1])
    if not states.flags.c_contiguous:
        raise ValueError("states must be C-contiguous for in-place butterflies")
    if scratch is None:
        scratch = np.empty_like(states)
    elif scratch.shape != states.shape or scratch.dtype != states.dtype:
        raise ValueError("scratch buffer shape/dtype mismatch")
    src, dst = states, scratch
    for q in range(n):
        view = src.reshape(-1, 2, 1 << q)
        out = dst.reshape(view.shape)
        np.add(view[:, 0, :], view[:, 1, :], out=out[:, 0, :])
        np.subtract(view[:, 0, :], view[:, 1, :], out=out[:, 1, :])
        src, dst = dst, src
    if src is not states:
        states[...] = src
    return states


def probabilities(state: np.ndarray) -> np.ndarray:
    """|ψ_i|² for every basis state."""
    return np.abs(state) ** 2


def sample_counts(
    state: np.ndarray, shots: int, rng: RngLike = None
) -> dict[int, int]:
    """Sample measurement outcomes; returns {basis index: count}.

    Matches Aer's ``qasm`` sampling semantics (multinomial over |ψ|²).
    """
    if shots <= 0:
        raise ValueError("shots must be positive")
    gen = ensure_rng(rng)
    probs = probabilities(state)
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=1e-8):
        probs = probs / total
    samples = gen.choice(len(state), size=shots, p=probs)
    values, counts = np.unique(samples, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts, strict=True)}


def top_amplitudes(state: np.ndarray, k: int = 1) -> np.ndarray:
    """Indices of the ``k`` largest-|amplitude| basis states, descending.

    The paper selects the single highest amplitude as the QAOA solution
    (§3.2) and suggests considering several — both use this helper.
    """
    probs = probabilities(state)
    k = min(k, len(probs))
    idx = np.argpartition(probs, len(probs) - k)[-k:]
    return idx[np.argsort(-probs[idx], kind="stable")]


def expectation_diagonal(state: np.ndarray, diagonal: np.ndarray) -> float:
    """⟨ψ| D |ψ⟩ for a real diagonal observable D (e.g. H_C)."""
    return float(np.real(np.vdot(state, diagonal * state)))


def expectation_diagonal_batch(
    states: np.ndarray, diagonal: np.ndarray
) -> np.ndarray:
    """⟨ψ_b| D |ψ_b⟩ for every row of a ``(B, 2**n)`` batch (real D)."""
    if states.ndim != 2:
        raise ValueError(f"expected (B, dim) batch, got ndim={states.ndim}")
    if diagonal.shape != states.shape[-1:]:
        raise ValueError("diagonal length mismatch")
    return (np.abs(states) ** 2) @ np.real(diagonal)


def fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """|⟨a|b⟩|² between two pure states."""
    return float(np.abs(np.vdot(a, b)) ** 2)


def norm(state: np.ndarray) -> float:
    return float(np.linalg.norm(state))


__all__ = [
    "n_qubits_for_dim",
    "zero_state",
    "plus_state",
    "plus_state_batch",
    "basis_state",
    "apply_gate",
    "apply_one_qubit",
    "apply_diagonal",
    "apply_phases_batch",
    "apply_rx_layer",
    "walsh_hadamard_batch",
    "probabilities",
    "sample_counts",
    "top_amplitudes",
    "expectation_diagonal",
    "expectation_diagonal_batch",
    "fidelity",
    "norm",
]
