"""Vectorised statevector kernels.

This is the numerical core of the Aer-simulator substitute: dense
``complex128`` statevectors over ``n`` qubits with little-endian qubit
indexing (qubit ``q`` = bit ``q`` of the index).  Gate application uses the
reshape/moveaxis tensor kernel; diagonal operators get a fast elementwise
path — the QAOA cost layer is one diagonal multiply, which is what makes
the grid searches of the paper tractable on a laptop.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.util.rng import RngLike, ensure_rng


def zero_state(n_qubits: int) -> np.ndarray:
    """|0...0> statevector."""
    state = np.zeros(1 << n_qubits, dtype=np.complex128)
    state[0] = 1.0
    return state


def plus_state(n_qubits: int) -> np.ndarray:
    """|+>^n — the QAOA initial state (Eq. 2)."""
    dim = 1 << n_qubits
    return np.full(dim, 1.0 / np.sqrt(dim), dtype=np.complex128)


def basis_state(n_qubits: int, index: int) -> np.ndarray:
    """Computational basis state |index>."""
    state = np.zeros(1 << n_qubits, dtype=np.complex128)
    state[index] = 1.0
    return state


def apply_gate(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Apply a k-qubit unitary to ``qubits`` of ``state`` (returns new array).

    Gate-matrix convention: ``qubits[0]`` is the most significant bit of the
    gate's own 2^k index (see :mod:`repro.quantum.gates`).
    """
    n = int(np.log2(len(state)))
    k = len(qubits)
    if matrix.shape != (1 << k, 1 << k):
        raise ValueError(f"matrix shape {matrix.shape} mismatch for {k} qubit(s)")
    if len(set(qubits)) != k:
        raise ValueError("duplicate qubits")
    for q in qubits:
        if not 0 <= q < n:
            raise ValueError(f"qubit {q} out of range")
    # Tensor axes: axis a of the reshaped state corresponds to qubit n-1-a.
    psi = state.reshape((2,) * n)
    axes = [n - 1 - q for q in qubits]
    psi = np.moveaxis(psi, axes, range(k))
    tail_shape = psi.shape[k:]
    psi = psi.reshape(1 << k, -1)
    psi = matrix @ psi
    psi = psi.reshape((2,) * k + tail_shape)
    psi = np.moveaxis(psi, range(k), axes)
    return np.ascontiguousarray(psi).reshape(-1)


def apply_one_qubit(state: np.ndarray, matrix: np.ndarray, q: int) -> np.ndarray:
    """Single-qubit fast path: reshape to (high, 2, low) and contract.

    Used in the QAOA mixer loop; avoids the general moveaxis machinery.
    """
    n = int(np.log2(len(state)))
    if not 0 <= q < n:
        raise ValueError(f"qubit {q} out of range")
    view = state.reshape(1 << (n - 1 - q), 2, 1 << q)
    out = np.empty_like(view)
    a, b = view[:, 0, :], view[:, 1, :]
    out[:, 0, :] = matrix[0, 0] * a + matrix[0, 1] * b
    out[:, 1, :] = matrix[1, 0] * a + matrix[1, 1] * b
    return out.reshape(-1)


def apply_diagonal(state: np.ndarray, diagonal: np.ndarray) -> np.ndarray:
    """Multiply by a full 2^n diagonal (e.g. ``exp(-iγ·cut_diagonal)``)."""
    if diagonal.shape != state.shape:
        raise ValueError("diagonal length mismatch")
    return state * diagonal


def apply_rx_layer(state: np.ndarray, beta: float) -> np.ndarray:
    """Apply ``RX(2β)`` on every qubit — the QAOA mixer ``exp(-iβ Σ X_i)``.

    Works in place over a fresh copy via the axis kernel per qubit; cost is
    n passes over the state, each fully vectorised.
    """
    n = int(np.log2(len(state)))
    c = np.cos(beta)
    s = -1j * np.sin(beta)
    out = state
    for q in range(n):
        view = out.reshape(1 << (n - 1 - q), 2, 1 << q)
        a = view[:, 0, :].copy()
        b = view[:, 1, :]
        view[:, 0, :] = c * a + s * b
        view[:, 1, :] = s * a + c * b
        out = view.reshape(-1)
    return out


def probabilities(state: np.ndarray) -> np.ndarray:
    """|ψ_i|² for every basis state."""
    return np.abs(state) ** 2


def sample_counts(
    state: np.ndarray, shots: int, rng: RngLike = None
) -> dict[int, int]:
    """Sample measurement outcomes; returns {basis index: count}.

    Matches Aer's ``qasm`` sampling semantics (multinomial over |ψ|²).
    """
    if shots <= 0:
        raise ValueError("shots must be positive")
    gen = ensure_rng(rng)
    probs = probabilities(state)
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=1e-8):
        probs = probs / total
    samples = gen.choice(len(state), size=shots, p=probs)
    values, counts = np.unique(samples, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def top_amplitudes(state: np.ndarray, k: int = 1) -> np.ndarray:
    """Indices of the ``k`` largest-|amplitude| basis states, descending.

    The paper selects the single highest amplitude as the QAOA solution
    (§3.2) and suggests considering several — both use this helper.
    """
    probs = probabilities(state)
    k = min(k, len(probs))
    idx = np.argpartition(probs, len(probs) - k)[-k:]
    return idx[np.argsort(-probs[idx], kind="stable")]


def expectation_diagonal(state: np.ndarray, diagonal: np.ndarray) -> float:
    """⟨ψ| D |ψ⟩ for a real diagonal observable D (e.g. H_C)."""
    return float(np.real(np.vdot(state, diagonal * state)))


def fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """|⟨a|b⟩|² between two pure states."""
    return float(np.abs(np.vdot(a, b)) ** 2)


def norm(state: np.ndarray) -> float:
    return float(np.linalg.norm(state))


__all__ = [
    "zero_state",
    "plus_state",
    "basis_state",
    "apply_gate",
    "apply_one_qubit",
    "apply_diagonal",
    "apply_rx_layer",
    "probabilities",
    "sample_counts",
    "top_amplitudes",
    "expectation_diagonal",
    "fidelity",
    "norm",
]
