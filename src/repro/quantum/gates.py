"""Gate matrix definitions for the statevector simulator.

Conventions
-----------
* Qubit ``q`` corresponds to bit ``q`` of the basis-state index
  (little-endian, matching Qiskit).
* For multi-qubit gate matrices, the *first listed qubit is the most
  significant bit* of the gate's own 2^k index, i.e. ``CX(control, target)``
  uses the textbook matrix with the control as MSB.
* Rotation angles follow the standard convention ``RZ(θ) = exp(-i θ Z / 2)``
  etc., so the QAOA cost layer ``exp(-i γ H_C)`` maps to ``RZZ`` angles as
  derived in :mod:`repro.synth.synthesis`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

SQ2 = 1.0 / np.sqrt(2.0)

# ---------------------------------------------------------------------------
# Fixed gates
# ---------------------------------------------------------------------------
I2 = np.eye(2, dtype=np.complex128)
X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
H = np.array([[SQ2, SQ2], [SQ2, -SQ2]], dtype=np.complex128)
S = np.array([[1, 0], [0, 1j]], dtype=np.complex128)
SDG = S.conj().T
T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=np.complex128)
TDG = T.conj().T

CX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=np.complex128
)
CZ = np.diag([1, 1, 1, -1]).astype(np.complex128)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=np.complex128
)


# ---------------------------------------------------------------------------
# Parameterised gates
# ---------------------------------------------------------------------------
def rx(theta: float) -> np.ndarray:
    """RX(θ) = exp(-i θ X / 2)."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def ry(theta: float) -> np.ndarray:
    """RY(θ) = exp(-i θ Y / 2)."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def rz(theta: float) -> np.ndarray:
    """RZ(θ) = exp(-i θ Z / 2) (diagonal)."""
    phase = np.exp(-0.5j * theta)
    return np.array([[phase, 0], [0, np.conj(phase)]], dtype=np.complex128)


def p(lam: float) -> np.ndarray:
    """Phase gate diag(1, e^{iλ})."""
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=np.complex128)


def rzz(theta: float) -> np.ndarray:
    """RZZ(θ) = exp(-i θ Z⊗Z / 2) (diagonal two-qubit gate)."""
    a = np.exp(-0.5j * theta)
    b = np.exp(0.5j * theta)
    return np.diag([a, b, b, a]).astype(np.complex128)


def rxx(theta: float) -> np.ndarray:
    """RXX(θ) = exp(-i θ X⊗X / 2)."""
    c, s = np.cos(theta / 2.0), -1j * np.sin(theta / 2.0)
    m = np.zeros((4, 4), dtype=np.complex128)
    m[0, 0] = m[1, 1] = m[2, 2] = m[3, 3] = c
    m[0, 3] = m[3, 0] = m[1, 2] = m[2, 1] = s
    return m


def crz(theta: float) -> np.ndarray:
    """Controlled-RZ (control is the first/MSB qubit)."""
    m = np.eye(4, dtype=np.complex128)
    m[2, 2] = np.exp(-0.5j * theta)
    m[3, 3] = np.exp(0.5j * theta)
    return m


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit rotation U3(θ, φ, λ)."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=np.complex128,
    )


# name -> (matrix factory, n_qubits, n_params).  Factories for fixed gates
# take no arguments; parameterised factories take their angle(s).
GATE_SET: Dict[str, Tuple[Callable[..., np.ndarray], int, int]] = {
    "i": (lambda: I2, 1, 0),
    "x": (lambda: X, 1, 0),
    "y": (lambda: Y, 1, 0),
    "z": (lambda: Z, 1, 0),
    "h": (lambda: H, 1, 0),
    "s": (lambda: S, 1, 0),
    "sdg": (lambda: SDG, 1, 0),
    "t": (lambda: T, 1, 0),
    "tdg": (lambda: TDG, 1, 0),
    "rx": (rx, 1, 1),
    "ry": (ry, 1, 1),
    "rz": (rz, 1, 1),
    "p": (p, 1, 1),
    "u3": (u3, 1, 3),
    "cx": (lambda: CX, 2, 0),
    "cz": (lambda: CZ, 2, 0),
    "swap": (lambda: SWAP, 2, 0),
    "rzz": (rzz, 2, 1),
    "rxx": (rxx, 2, 1),
    "crz": (crz, 2, 1),
}

DIAGONAL_GATES = frozenset({"i", "z", "s", "sdg", "t", "tdg", "rz", "p", "cz", "rzz"})


def gate_matrix(name: str, params: Tuple[float, ...] = ()) -> np.ndarray:
    """Resolve a gate name + params to its unitary matrix."""
    try:
        factory, _, n_params = GATE_SET[name]
    except KeyError:
        raise ValueError(f"unknown gate {name!r}") from None
    if len(params) != n_params:
        raise ValueError(
            f"gate {name!r} expects {n_params} parameter(s), got {len(params)}"
        )
    return factory(*params)


def is_unitary(m: np.ndarray, atol: float = 1e-10) -> bool:
    """Check unitarity (used by property tests)."""
    return bool(np.allclose(m @ m.conj().T, np.eye(m.shape[0]), atol=atol))


__all__ = [
    "I2", "X", "Y", "Z", "H", "S", "SDG", "T", "TDG", "CX", "CZ", "SWAP",
    "rx", "ry", "rz", "p", "rzz", "rxx", "crz", "u3",
    "GATE_SET", "DIAGONAL_GATES", "gate_matrix", "is_unitary",
]
