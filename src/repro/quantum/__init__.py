"""Quantum substrate: gates, circuit IR, statevector simulation (local and
distributed cache-blocked), Ising Hamiltonians."""

from repro.quantum.circuit import Circuit, Instruction, ParamRef
from repro.quantum.distributed import CommStats, DistributedStatevector, MachineModel
from repro.quantum.gates import GATE_SET, gate_matrix, is_unitary
from repro.quantum.noise import (
    DephasingChannel,
    DepolarizingChannel,
    NoiseModel,
    ReadoutError,
    mitigate_readout,
    noisy_expectation,
    noisy_qaoa_statevector,
)
from repro.quantum.pauli import IsingHamiltonian, maxcut_diagonal, zz_correlations
from repro.quantum.simulator import (
    DEFAULT_SHOTS,
    SimulationResult,
    StatevectorSimulator,
    run_qaoa_reference,
)
from repro.quantum.statevector import (
    apply_diagonal,
    apply_gate,
    apply_one_qubit,
    apply_phases_batch,
    apply_rx_layer,
    basis_state,
    expectation_diagonal,
    expectation_diagonal_batch,
    fidelity,
    n_qubits_for_dim,
    plus_state,
    plus_state_batch,
    probabilities,
    sample_counts,
    top_amplitudes,
    zero_state,
)

__all__ = [
    "Circuit",
    "Instruction",
    "ParamRef",
    "GATE_SET",
    "gate_matrix",
    "is_unitary",
    "IsingHamiltonian",
    "maxcut_diagonal",
    "zz_correlations",
    "DEFAULT_SHOTS",
    "SimulationResult",
    "StatevectorSimulator",
    "run_qaoa_reference",
    "CommStats",
    "DistributedStatevector",
    "MachineModel",
    "n_qubits_for_dim",
    "zero_state",
    "plus_state",
    "plus_state_batch",
    "basis_state",
    "apply_gate",
    "apply_one_qubit",
    "apply_diagonal",
    "apply_phases_batch",
    "apply_rx_layer",
    "probabilities",
    "sample_counts",
    "top_amplitudes",
    "expectation_diagonal",
    "expectation_diagonal_batch",
    "fidelity",
    "DepolarizingChannel",
    "DephasingChannel",
    "NoiseModel",
    "ReadoutError",
    "noisy_qaoa_statevector",
    "noisy_expectation",
    "mitigate_readout",
]
