"""Circuit-level statevector simulator (the Aer substitute's front end).

Executes :class:`repro.quantum.circuit.Circuit` objects gate by gate on the
vectorised kernels, with measurement sampling compatible with the paper's
4096-shot methodology.  The QAOA optimiser loop does *not* go through this
path (it uses the diagonal fast path in :mod:`repro.qaoa.energy`); this
simulator exists to validate the fast path, execute synthesized circuits and
support arbitrary-circuit experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.gates import DIAGONAL_GATES, gate_matrix
from repro.quantum.pauli import IsingHamiltonian
from repro.quantum.statevector import (
    apply_gate,
    apply_one_qubit,
    plus_state,
    probabilities,
    sample_counts,
    top_amplitudes,
    zero_state,
)
from repro.util.rng import RngLike, ensure_rng

DEFAULT_SHOTS = 4096  # paper §3.2: "number of shots ... is 4096"


@dataclass
class SimulationResult:
    """Output of a simulator run: final state plus optional samples."""

    state: np.ndarray
    counts: Optional[Dict[int, int]] = None
    shots: int = 0

    @property
    def n_qubits(self) -> int:
        return int(np.log2(len(self.state)))

    def probabilities(self) -> np.ndarray:
        return probabilities(self.state)

    def top_bitstrings(self, k: int = 1) -> np.ndarray:
        return top_amplitudes(self.state, k)

    def counts_bitstrings(self) -> Dict[str, int]:
        """Counts keyed by binary strings (qubit 0 rightmost, Qiskit-style)."""
        if self.counts is None:
            return {}
        n = self.n_qubits
        return {format(k, f"0{n}b"): v for k, v in self.counts.items()}


class StatevectorSimulator:
    """Dense statevector executor with Aer-like sampling semantics.

    Parameters
    ----------
    max_qubits:
        Safety cap (2^n complex128 amplitudes = 16·2^n bytes); the default
        26 corresponds to a 1 GiB state.  The paper's 33-qubit runs are
        reached via :mod:`repro.quantum.distributed`'s rank-scaling model.
    """

    def __init__(self, *, max_qubits: int = 26) -> None:
        self.max_qubits = int(max_qubits)

    def run(
        self,
        circuit: Circuit,
        *,
        initial_state: Optional[np.ndarray] = None,
        shots: int = 0,
        rng: RngLike = None,
    ) -> SimulationResult:
        """Execute ``circuit``; optionally sample ``shots`` measurements."""
        if circuit.is_parametric:
            raise ValueError("bind() the circuit before simulation")
        n = circuit.n_qubits
        if n > self.max_qubits:
            raise ValueError(
                f"{n} qubits exceeds max_qubits={self.max_qubits}; "
                "use the distributed engine for larger states"
            )
        if initial_state is not None:
            if len(initial_state) != (1 << n):
                raise ValueError("initial state dimension mismatch")
            state = np.array(initial_state, dtype=np.complex128)
        else:
            state = zero_state(n)
        for ins in circuit.instructions:
            matrix = gate_matrix(ins.name, tuple(float(p) for p in ins.params))
            if len(ins.qubits) == 1:
                if ins.name in DIAGONAL_GATES:
                    # Single-qubit diagonal: scale the two half-planes.
                    q = ins.qubits[0]
                    view = state.reshape(1 << (n - 1 - q), 2, 1 << q)
                    view[:, 0, :] *= matrix[0, 0]
                    view[:, 1, :] *= matrix[1, 1]
                else:
                    state = apply_one_qubit(state, matrix, ins.qubits[0])
            else:
                state = apply_gate(state, matrix, ins.qubits)
        counts = None
        if shots:
            counts = sample_counts(state, shots, rng=ensure_rng(rng))
        return SimulationResult(state, counts, shots)

    def expectation(
        self,
        circuit: Circuit,
        hamiltonian: IsingHamiltonian,
        *,
        shots: int = 0,
        rng: RngLike = None,
    ) -> float:
        """⟨H⟩ after the circuit — exact (shots=0) or shot-estimated."""
        result = self.run(circuit, shots=shots, rng=rng)
        if shots:
            return hamiltonian.expectation_from_counts(result.counts)
        return hamiltonian.expectation(result.state)

    def statevector(self, circuit: Circuit) -> np.ndarray:
        return self.run(circuit).state


def run_qaoa_reference(
    graph_diagonal: np.ndarray,
    gammas: np.ndarray,
    betas: np.ndarray,
    *,
    backend: object = "numpy",
) -> np.ndarray:
    """Reference QAOA state built with explicit diagonal/mixer layers.

    |ψ_p(β,γ)⟩ = Π_l exp(-iβ_l H_M) exp(-iγ_l H_C) |+⟩^n  (paper Eq. 2),
    with H_C supplied as its diagonal, evolved layer by layer through a
    :mod:`repro.quantum.backend` backend (the bit-identical ``numpy``
    reference unless told otherwise).  Exists so tests can cross-validate
    the circuit path, the fast path and this explicit construction — and,
    with ``backend=``, any registered evolution backend against all three.
    """
    from repro.quantum.backend import resolve_backend

    n = int(np.log2(len(graph_diagonal)))
    # batch=1: a single-state layer walk — the auto policy keeps it off
    # row-parallel backends.
    evolve = resolve_backend(backend, n_qubits=n, batch=1, layers=len(gammas))
    state = plus_state(n)
    for gamma, beta in zip(gammas, betas, strict=True):
        state = evolve.apply_cost_layer(state, graph_diagonal, gamma)
        state = evolve.apply_mixer_layer(state, beta)
    return state


__all__ = [
    "DEFAULT_SHOTS",
    "SimulationResult",
    "StatevectorSimulator",
    "run_qaoa_reference",
]
