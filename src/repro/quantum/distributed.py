"""Cache-blocked distributed statevector simulation.

Reproduces the structure of Doi & Horii's cache-blocking technique
(paper ref. [34]) that Qiskit Aer uses for multi-node statevector
simulation: the 2^n-amplitude state is split into ``R = 2^k`` equal blocks,
one per (simulated) MPI rank.  Gates on the ``n-k`` low "local" qubits touch
only data inside a block; gates on the ``k`` high "global" qubits require
exchanging half-blocks between rank pairs.

Two execution strategies are provided:

* ``direct`` — every global-qubit gate performs a pairwise half-block
  exchange (naive distribution).
* ``remap``  — a global qubit is first *swapped* with an idle local qubit
  (one exchange), after which arbitrarily many gates on it are local; this
  is the cache-blocking trick and is measurably cheaper for QAOA layers,
  which touch every qubit repeatedly.

All communication is accounted (messages, bytes) and validated bit-exact
against the single-block simulator, and an analytic :class:`MachineModel`
turns the counters into runtime estimates — this is how the repo
reproduces the paper's "33 qubits ≈ 10 minutes on 512 nodes" observation
(E8 in DESIGN.md) without 512 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np



@dataclass
class CommStats:
    """Simulated-communication accounting."""

    messages: int = 0
    bytes_moved: int = 0
    exchanges: int = 0  # pairwise half-block exchange events

    def merge(self, other: "CommStats") -> None:
        self.messages += other.messages
        self.bytes_moved += other.bytes_moved
        self.exchanges += other.exchanges


class DistributedStatevector:
    """Statevector over ``n_qubits`` distributed across ``n_ranks`` blocks.

    Parameters
    ----------
    n_qubits:
        Total qubit count.
    n_ranks:
        Power-of-two number of simulated ranks; each holds
        ``2**(n_qubits - log2(n_ranks))`` amplitudes.
    strategy:
        ``"remap"`` (cache blocking, default) or ``"direct"``.
    """

    def __init__(
        self, n_qubits: int, n_ranks: int, *, strategy: str = "remap"
    ) -> None:
        if n_ranks < 1 or (n_ranks & (n_ranks - 1)) != 0:
            raise ValueError("n_ranks must be a positive power of two")
        k = int(np.log2(n_ranks))
        if k > n_qubits:
            raise ValueError("more ranks than amplitudes")
        if strategy not in ("remap", "direct"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.n_qubits = int(n_qubits)
        self.n_ranks = int(n_ranks)
        self.k_global = k
        self.n_local = n_qubits - k
        self.strategy = strategy
        self.stats = CommStats()
        # physical[logical] = current physical position of a logical qubit.
        # Physical positions 0..n_local-1 are local, n_local..n-1 are global.
        self.physical = list(range(n_qubits))
        block_dim = 1 << self.n_local
        self.blocks: List[np.ndarray] = [
            np.zeros(block_dim, dtype=np.complex128) for _ in range(n_ranks)
        ]
        self.blocks[0][0] = 1.0  # |0...0>

    # ------------------------------------------------------------------
    # State initialisation
    # ------------------------------------------------------------------
    def set_plus_state(self) -> None:
        """|+>^n across all blocks."""
        amp = 1.0 / np.sqrt(1 << self.n_qubits)
        for block in self.blocks:
            block[:] = amp

    def set_zero_state(self) -> None:
        for block in self.blocks:
            block[:] = 0.0
        self.blocks[0][0] = 1.0
        # zero/plus states are symmetric under qubit permutation: reset map
        self.physical = list(range(self.n_qubits))

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------
    def apply_one_qubit(self, matrix: np.ndarray, q: int) -> None:
        """Apply a single-qubit unitary to logical qubit ``q``."""
        pos = self.physical[q]
        if pos < self.n_local:
            self._apply_local(matrix, pos)
        elif self.strategy == "remap":
            scratch = self._pick_local_scratch(q)
            self._swap_physical(scratch, pos)
            self._apply_local(matrix, self.physical[q])
        else:
            self._apply_global_direct(matrix, pos)

    def apply_two_qubit(self, matrix: np.ndarray, q_a: int, q_b: int) -> None:
        """Apply a two-qubit unitary to logical qubits (q_a, q_b).

        Gate-matrix convention matches :func:`repro.quantum.statevector.apply_gate`:
        the first listed qubit is the MSB of the gate's own 4-dim index.
        Both qubits are remapped into local positions first (cache
        blocking), after which the update is block-local; in ``direct``
        mode the same remap is used (a faithful direct all-pairs exchange
        for two-qubit gates degenerates to the same data movement).
        """
        if matrix.shape != (4, 4):
            raise ValueError("two-qubit gate must be 4x4")
        if q_a == q_b:
            raise ValueError("duplicate qubits")
        for q in (q_a, q_b):
            if not 0 <= q < self.n_qubits:
                raise ValueError(f"qubit {q} out of range")
        if self.n_local < 2:
            raise ValueError("need at least two local qubits per block")
        # Bring both qubits local (at most two swaps).
        for q in (q_a, q_b):
            if self.physical[q] >= self.n_local:
                scratch = self._pick_local_scratch_multi((q_a, q_b))
                self._swap_physical(scratch, self.physical[q])
        pa, pb = self.physical[q_a], self.physical[q_b]
        from repro.quantum.statevector import apply_gate

        for rank in range(self.n_ranks):
            self.blocks[rank] = apply_gate(self.blocks[rank], matrix, (pa, pb))

    def _pick_local_scratch_multi(self, avoid_logical) -> int:
        for pos in range(self.n_local):
            if self._logical_at(pos) not in avoid_logical:
                return pos
        raise RuntimeError("no local scratch position available")

    def apply_diagonal_fn(
        self, phase_fn: Callable[[np.ndarray], np.ndarray]
    ) -> None:
        """Multiply amplitudes by ``phase_fn(global_index)`` — no comms.

        ``phase_fn`` receives *logical* basis indices and must return the
        complex diagonal entries; the QAOA cost layer passes
        ``lambda idx: exp(-iγ · cut(idx))`` evaluated blockwise.
        """
        block_dim = 1 << self.n_local
        local_idx = np.arange(block_dim, dtype=np.uint64)
        for rank, block in enumerate(self.blocks):
            phys = (np.uint64(rank) << np.uint64(self.n_local)) | local_idx
            block *= phase_fn(self._physical_to_logical_index(phys))

    def apply_rx_layer(self, beta: float) -> None:
        """RX(2β) on every qubit — the QAOA mixer."""
        c = np.cos(beta)
        s = -1j * np.sin(beta)
        matrix = np.array([[c, s], [s, c]], dtype=np.complex128)
        for q in range(self.n_qubits):
            self.apply_one_qubit(matrix, q)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_local(self, matrix: np.ndarray, pos: int) -> None:
        lo = 1 << pos
        hi = 1 << (self.n_local - 1 - pos)
        for block in self.blocks:
            view = block.reshape(hi, 2, lo)
            a = view[:, 0, :].copy()
            b = view[:, 1, :]
            view[:, 0, :] = matrix[0, 0] * a + matrix[0, 1] * b
            view[:, 1, :] = matrix[1, 0] * a + matrix[1, 1] * b

    def _apply_global_direct(self, matrix: np.ndarray, pos: int) -> None:
        """Pairwise exchange: ranks differing in the gate's rank bit."""
        bit = pos - self.n_local
        mask = 1 << bit
        nbytes = self.blocks[0].nbytes
        for rank in range(self.n_ranks):
            if rank & mask:
                continue
            partner = rank | mask
            b0, b1 = self.blocks[rank], self.blocks[partner]
            new0 = matrix[0, 0] * b0 + matrix[0, 1] * b1
            new1 = matrix[1, 0] * b0 + matrix[1, 1] * b1
            self.blocks[rank] = new0
            self.blocks[partner] = new1
            self.stats.messages += 2
            self.stats.bytes_moved += 2 * nbytes
            self.stats.exchanges += 1

    def _swap_physical(self, pos_local: int, pos_global: int) -> None:
        """Exchange the qubit at local position with the one at global position.

        This is the cache-blocking data remap: rank pairs swap the half of
        their block selected by the local qubit bit.
        """
        bit = pos_global - self.n_local
        mask = 1 << bit
        lo = 1 << pos_local
        hi = 1 << (self.n_local - 1 - pos_local)
        half_nbytes = self.blocks[0].nbytes // 2
        for rank in range(self.n_ranks):
            if rank & mask:
                continue
            partner = rank | mask
            v0 = self.blocks[rank].reshape(hi, 2, lo)
            v1 = self.blocks[partner].reshape(hi, 2, lo)
            # global bit 0 & local bit 1  <->  global bit 1 & local bit 0
            tmp = v0[:, 1, :].copy()
            v0[:, 1, :] = v1[:, 0, :]
            v1[:, 0, :] = tmp
            self.stats.messages += 2
            self.stats.bytes_moved += 2 * half_nbytes
            self.stats.exchanges += 1
        # Update the logical->physical map.
        la = self._logical_at(pos_local)
        lb = self._logical_at(pos_global)
        self.physical[la], self.physical[lb] = pos_global, pos_local

    def _logical_at(self, pos: int) -> int:
        return self.physical.index(pos)

    def _pick_local_scratch(self, avoid_logical: int) -> int:
        """Local physical position whose logical qubit is least recently used.

        Simple heuristic: the lowest local position not holding
        ``avoid_logical`` (position 0 is cheapest to swap: smallest strides).
        """
        for pos in range(self.n_local):
            if self._logical_at(pos) != avoid_logical:
                return pos
        raise RuntimeError("no local scratch position available")

    def _physical_to_logical_index(self, phys_idx: np.ndarray) -> np.ndarray:
        """Map physical basis indices to logical ones under the current map."""
        if self.physical == list(range(self.n_qubits)):
            return phys_idx
        logical = np.zeros_like(phys_idx)
        for q in range(self.n_qubits):
            pos = self.physical[q]
            bit = (phys_idx >> np.uint64(pos)) & np.uint64(1)
            logical |= bit << np.uint64(q)
        return logical

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def gather(self) -> np.ndarray:
        """Assemble the full logical-order statevector (root-gather analogue)."""
        phys = np.concatenate(self.blocks)
        if self.physical == list(range(self.n_qubits)):
            return phys
        n = self.n_qubits
        idx = np.arange(1 << n, dtype=np.uint64)
        # amplitude of logical index i lives at physical index perm(i)
        phys_idx = np.zeros_like(idx)
        for q in range(n):
            bit = (idx >> np.uint64(q)) & np.uint64(1)
            phys_idx |= bit << np.uint64(self.physical[q])
        return phys[phys_idx]

    def local_probability_mass(self) -> np.ndarray:
        """Probability mass per rank (load-balance diagnostic)."""
        return np.array([float(np.vdot(b, b).real) for b in self.blocks])


# ---------------------------------------------------------------------------
# Analytic machine model (E8: the 33-qubit / 512-node extrapolation)
# ---------------------------------------------------------------------------
@dataclass
class MachineModel:
    """First-order runtime model for the distributed simulator.

    Defaults approximate one HPE-Cray EX node (2× AMD EPYC 7763) running a
    statevector simulator: ``flop_rate`` is the *effective* per-rank update
    throughput — memory-bound complex updates plus simulator bookkeeping,
    calibrated so that the paper's published data point (33 qubits, p=8,
    ~100 COBYLA iterations on 512 nodes ≈ 10 minutes, §4) is reproduced —
    and ``bandwidth`` is Slingshot-class per-pair throughput.
    """

    flops_per_amp_gate: float = 8.0  # complex MAC ≈ 8 flops per amplitude
    flop_rate: float = 1.0e10  # effective flops/s per rank (see docstring)
    bandwidth: float = 2.0e10  # bytes/s per rank pair (bidirectional)
    latency: float = 2.0e-6  # per message

    def gate_time_local(self, n_qubits: int, n_ranks: int) -> float:
        amps = (1 << n_qubits) / n_ranks
        return amps * self.flops_per_amp_gate / self.flop_rate

    def exchange_time(self, n_qubits: int, n_ranks: int, half: bool = True) -> float:
        amps = (1 << n_qubits) / n_ranks
        volume = amps * 16 * (0.5 if half else 1.0)
        return self.latency + volume / self.bandwidth

    def qaoa_layer_time(
        self, n_qubits: int, n_ranks: int, *, strategy: str = "remap"
    ) -> float:
        """Estimated wall time of one QAOA layer (cost diagonal + mixer)."""
        k = int(np.log2(n_ranks))
        local = n_qubits - k
        t = self.gate_time_local(n_qubits, n_ranks)  # diagonal cost layer
        t += n_qubits * self.gate_time_local(n_qubits, n_ranks)  # n RX gates
        if strategy == "remap":
            # each global qubit swapped in and out once per layer
            t += 2 * k * self.exchange_time(n_qubits, n_ranks, half=True)
        else:
            t += k * self.exchange_time(n_qubits, n_ranks, half=False)
        return t

    def qaoa_run_time(
        self,
        n_qubits: int,
        n_ranks: int,
        *,
        p_layers: int,
        iterations: int,
        strategy: str = "remap",
    ) -> float:
        """Full optimisation-loop estimate (iterations × p layers + prep)."""
        prep = self.gate_time_local(n_qubits, n_ranks)  # H layer
        per_eval = prep + p_layers * self.qaoa_layer_time(
            n_qubits, n_ranks, strategy=strategy
        )
        return iterations * per_eval


__all__ = ["CommStats", "DistributedStatevector", "MachineModel"]
