"""NISQ noise channels and readout-error simulation.

The paper targets the NISQ regime ("current NISQ devices feature a modest
number of qubits and useful compute time is limited due to decoherence")
and frames its workflow as "preparation of real quantum devices".  This
module provides the standard noise abstractions needed to rehearse that
step without density matrices: stochastic Pauli channels applied as
trajectory noise on the statevector, plus a classical readout-error model
with matrix-inversion mitigation.

Trajectory semantics: each ``apply_*`` call samples one Kraus branch, so
expectation values converge to the channel average over repeated
trajectories — exactly how shot-based simulators model noise cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.quantum.gates import X, Y, Z
from repro.quantum.statevector import apply_one_qubit
from repro.util.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class DepolarizingChannel:
    """Single-qubit depolarizing noise: with probability p apply a uniform
    random Pauli (X, Y or Z)."""

    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def apply(self, state: np.ndarray, qubit: int, rng: RngLike = None) -> np.ndarray:
        gen = ensure_rng(rng)
        if gen.random() >= self.probability:
            return state
        pauli = (X, Y, Z)[int(gen.integers(3))]
        return apply_one_qubit(state, pauli, qubit)


@dataclass(frozen=True)
class DephasingChannel:
    """Phase-flip channel: with probability p apply Z."""

    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def apply(self, state: np.ndarray, qubit: int, rng: RngLike = None) -> np.ndarray:
        gen = ensure_rng(rng)
        if gen.random() >= self.probability:
            return state
        return apply_one_qubit(state, Z, qubit)


@dataclass
class NoiseModel:
    """Gate-attached trajectory noise for the QAOA fast path.

    ``one_qubit`` noise follows every mixer rotation; ``two_qubit`` noise
    follows every cost-layer edge term (applied to both endpoints, the
    usual two-qubit depolarizing approximation).
    """

    one_qubit: Optional[DepolarizingChannel] = None
    two_qubit: Optional[DepolarizingChannel] = None

    def is_trivial(self) -> bool:
        return (self.one_qubit is None or self.one_qubit.probability == 0.0) and (
            self.two_qubit is None or self.two_qubit.probability == 0.0
        )


def noisy_qaoa_statevector(
    energy,  # repro.qaoa.energy.MaxCutEnergy
    params: np.ndarray,
    noise: NoiseModel,
    rng: RngLike = None,
) -> np.ndarray:
    """One noise trajectory of the QAOA circuit (paper Eq. 2 + noise).

    The cost layer stays an exact diagonal (it is diagonal noise-free), with
    two-qubit channel noise sampled per edge; the mixer applies per-qubit
    channel noise after each RX.  The noiseless layer unitaries run through
    the evaluator's statevector backend (:mod:`repro.quantum.backend`), so
    trajectories and the exact path use the same kernels.
    """
    from repro.quantum.statevector import plus_state

    gen = ensure_rng(rng)
    graph = energy.graph
    backend = energy.backend
    gammas, betas = energy.split_params(params)
    state = plus_state(energy.n_qubits)
    for gamma, beta in zip(gammas, betas, strict=True):
        state = backend.apply_cost_layer(state, energy.diagonal, gamma)
        if noise.two_qubit is not None and noise.two_qubit.probability > 0:
            for a, b in zip(graph.u.tolist(), graph.v.tolist(), strict=True):
                state = noise.two_qubit.apply(state, a, rng=gen)
                state = noise.two_qubit.apply(state, b, rng=gen)
        state = backend.apply_mixer_layer(state, beta)
        if noise.one_qubit is not None and noise.one_qubit.probability > 0:
            for q in range(energy.n_qubits):
                state = noise.one_qubit.apply(state, q, rng=gen)
    return state


def noisy_expectation(
    energy,
    params: np.ndarray,
    noise: NoiseModel,
    *,
    trajectories: int = 16,
    rng: RngLike = None,
) -> float:
    """Channel-averaged ⟨H_C⟩ estimated over noise trajectories."""
    from repro.quantum.statevector import probabilities

    gen = ensure_rng(rng)
    if noise.is_trivial():
        return energy.expectation(params)
    total = 0.0
    for _ in range(max(1, trajectories)):
        state = noisy_qaoa_statevector(energy, params, noise, rng=gen)
        total += float(np.dot(probabilities(state), energy.diagonal))
    return total / max(1, trajectories)


# ---------------------------------------------------------------------------
# Readout error + mitigation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ReadoutError:
    """Independent per-qubit assignment errors.

    ``p01`` = P(read 1 | prepared 0), ``p10`` = P(read 0 | prepared 1).
    """

    p01: float
    p10: float

    def __post_init__(self) -> None:
        for p in (self.p01, self.p10):
            if not 0.0 <= p <= 0.5:
                raise ValueError("readout flip probabilities must be in [0, 0.5]")

    def apply_to_counts(
        self, counts: Mapping[int, int], n_qubits: int, rng: RngLike = None
    ) -> Dict[int, int]:
        """Corrupt measured counts by flipping bits independently."""
        gen = ensure_rng(rng)
        out: Dict[int, int] = {}
        for basis, count in counts.items():
            bits = (int(basis) >> np.arange(n_qubits, dtype=np.uint64)) & 1
            for _ in range(count):
                flips = np.where(
                    bits == 0, gen.random(n_qubits) < self.p01,
                    gen.random(n_qubits) < self.p10,
                )
                noisy = bits ^ flips
                key = int((noisy.astype(np.uint64) << np.arange(n_qubits, dtype=np.uint64)).sum())
                out[key] = out.get(key, 0) + 1
        return out

    def single_qubit_matrix(self) -> np.ndarray:
        """Column-stochastic confusion matrix for one qubit."""
        return np.array(
            [[1 - self.p01, self.p10], [self.p01, 1 - self.p10]], dtype=np.float64
        )


def mitigate_readout(
    counts: Mapping[int, int], n_qubits: int, error: ReadoutError
) -> Dict[int, float]:
    """Matrix-inversion readout mitigation (tensor-product model).

    Inverts the per-qubit confusion matrix and applies it tensor-wise to
    the empirical distribution; feasible for the small sub-graph sizes
    QAOA² produces.  Returns a quasi-probability distribution over basis
    states (may contain small negatives, as standard for this method).
    """
    if n_qubits > 16:
        raise ValueError("tensor-product mitigation limited to <= 16 qubits")
    dim = 1 << n_qubits
    shots = sum(counts.values())
    if shots == 0:
        raise ValueError("empty counts")
    probs = np.zeros(dim)
    for basis, count in counts.items():
        probs[int(basis)] = count / shots
    inv1 = np.linalg.inv(error.single_qubit_matrix())
    # Apply the inverse per qubit axis (tensor structure, O(n 2^n)).
    tensor = probs.reshape((2,) * n_qubits)
    for axis in range(n_qubits):
        tensor = np.tensordot(inv1, tensor, axes=([1], [axis]))
        tensor = np.moveaxis(tensor, 0, axis)
    mitigated = tensor.reshape(dim)
    return {i: float(v) for i, v in enumerate(mitigated) if abs(v) > 1e-12}


__all__ = [
    "DepolarizingChannel",
    "DephasingChannel",
    "NoiseModel",
    "noisy_qaoa_statevector",
    "noisy_expectation",
    "ReadoutError",
    "mitigate_readout",
]
