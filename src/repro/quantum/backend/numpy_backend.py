"""The reference backend: a thin wrapper over the seed NumPy kernels.

``NumpyBackend`` delegates the evolution operations 1:1 to
:mod:`repro.quantum.statevector` — same ufunc sequence, same scratch
discipline, same reduction order — so evolved statevectors are
**bit-identical** to the pre-backend-layer code paths (pinned by the
golden-path tests in ``tests/test_backends.py``).  It is both the
default for small problems and the parity oracle every other backend is
tested against.

The one deliberate deviation is :meth:`NumpyBackend.expectations_batch`:
the seed kernel's BLAS GEMV partitions its accumulation by the *row
count*, so the same statevector row reduced inside different batch
widths drifts at ~1e-14 — which would make sweep results depend on the
engine's chunk policy.  The backend reduces each row independently
instead (pairwise over the state dimension only), so energies are
identical no matter how a sweep is chunked
(``tests/test_backends.py::TestChunkPolicy``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.quantum.backend.base import StatevectorBackend
from repro.quantum.statevector import (
    apply_phases_batch,
    apply_rx_layer,
    plus_state_batch,
    walsh_hadamard_batch,
)


class NumpyBackend(StatevectorBackend):
    """Dense NumPy statevector evolution (the bit-identical reference)."""

    name = "numpy"

    def plus_state_batch(
        self, n_qubits: int, batch: int, *, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return plus_state_batch(n_qubits, batch, out=out)

    def apply_cost_layer(
        self,
        states: np.ndarray,
        diagonal: np.ndarray,
        gammas,
        *,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if states.ndim == 1:
            gamma = np.asarray(gammas, dtype=np.float64)
            if gamma.ndim != 0:
                raise ValueError("per-row gammas require a batched (B, dim) state")
            if diagonal.shape != states.shape:
                raise ValueError("diagonal length mismatch")
            # Exactly the seed expression (MaxCutEnergy.statevector).
            states *= np.exp(-1j * gamma * diagonal)
            return states
        return apply_phases_batch(states, diagonal, gammas, scratch=scratch)

    def apply_mixer_layer(
        self,
        states: np.ndarray,
        betas,
        *,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if states.ndim == 1:
            return apply_rx_layer(states, betas)
        return apply_rx_layer(states, betas, scratch=scratch)

    def walsh_transform(
        self, states: np.ndarray, *, scratch: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return walsh_hadamard_batch(states, scratch=scratch)

    def expectations_batch(
        self, states: np.ndarray, diagonal: np.ndarray
    ) -> np.ndarray:
        # Row-independent reduction (not the seed GEMV) so each row's
        # energy is a pure function of that row alone — see the module
        # docstring for why chunk-width invariance requires this.
        probs = np.abs(states) ** 2
        probs *= np.real(diagonal)
        return probs.sum(axis=-1)


__all__ = ["NumpyBackend"]
