"""The reference backend: a thin wrapper over the seed NumPy kernels.

``NumpyBackend`` delegates every operation 1:1 to
:mod:`repro.quantum.statevector` — same ufunc sequence, same scratch
discipline, same reduction order — so its results are **bit-identical**
to the pre-backend-layer code paths (pinned by the golden angle-grid
regression in ``tests/test_sweep_engine.py``).  It is both the default
for small problems and the parity oracle every other backend is tested
against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.quantum.backend.base import StatevectorBackend
from repro.quantum.statevector import (
    apply_phases_batch,
    apply_rx_layer,
    expectation_diagonal_batch,
    plus_state_batch,
    walsh_hadamard_batch,
)


class NumpyBackend(StatevectorBackend):
    """Dense NumPy statevector evolution (the bit-identical reference)."""

    name = "numpy"

    def plus_state_batch(
        self, n_qubits: int, batch: int, *, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return plus_state_batch(n_qubits, batch, out=out)

    def apply_cost_layer(
        self,
        states: np.ndarray,
        diagonal: np.ndarray,
        gammas,
        *,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if states.ndim == 1:
            gamma = np.asarray(gammas, dtype=np.float64)
            if gamma.ndim != 0:
                raise ValueError("per-row gammas require a batched (B, dim) state")
            if diagonal.shape != states.shape:
                raise ValueError("diagonal length mismatch")
            # Exactly the seed expression (MaxCutEnergy.statevector).
            states *= np.exp(-1j * gamma * diagonal)
            return states
        return apply_phases_batch(states, diagonal, gammas, scratch=scratch)

    def apply_mixer_layer(
        self,
        states: np.ndarray,
        betas,
        *,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if states.ndim == 1:
            return apply_rx_layer(states, betas)
        return apply_rx_layer(states, betas, scratch=scratch)

    def walsh_transform(
        self, states: np.ndarray, *, scratch: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return walsh_hadamard_batch(states, scratch=scratch)

    def expectations_batch(
        self, states: np.ndarray, diagonal: np.ndarray
    ) -> np.ndarray:
        return expectation_diagonal_batch(states, diagonal)


__all__ = ["NumpyBackend"]
