"""Reusable statevector work buffers with an LRU byte budget.

Every batched evolution needs two ``(chunk, 2**n)`` complex buffers
(states + elementwise scratch).  The pool hands back the same allocation
for the same ``(tag, shape)`` key so repeated solves over equal-sized
graphs (the QAOA² partition loop, the service's shape-grouped batches)
never reallocate.

Storage is thread-local: the ``hpc.executor`` thread backend runs
sub-graph jobs concurrently, and each worker thread must not scribble
over another's in-flight states.  Reuse therefore happens per worker,
which is exactly the repeated-solve case; ``n_buffers``/``nbytes`` report
the calling thread's view.

Byte budget
-----------
Buffers are retained in least-recently-*taken* order up to ``max_bytes``
per thread.  A service streaming sub-graphs of many different sizes used
to accumulate one dead ``(chunk, 2**n)`` pair per shape forever; now the
coldest shapes are evicted once the budget is exceeded.  Eviction only
drops the pool's reference — a caller still holding the array keeps it
alive (it just stops being reused) — and the buffer being handed out is
never the one evicted, so a single over-budget shape still works.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Tuple

import numpy as np

# Default per-thread retention budget.  Generous enough that single-shape
# workloads (one graph size, the common case) never evict; small enough
# that a long-lived mixed-shape service stays bounded.
DEFAULT_POOL_BUDGET_BYTES = 256 * 1024 * 1024


class ScratchPool:
    """Complex128 work buffers keyed by ``(tag, shape)``, LRU-bounded."""

    def __init__(self, *, max_bytes: int = DEFAULT_POOL_BUDGET_BYTES) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._local = threading.local()

    def _buffers(self) -> "OrderedDict[Tuple[str, Tuple[int, ...]], np.ndarray]":
        buffers = getattr(self._local, "buffers", None)
        if buffers is None:
            buffers = OrderedDict()
            self._local.buffers = buffers
            self._local.nbytes = 0
            self._local.evictions = 0
        return buffers

    def take(self, tag: str, shape: Tuple[int, ...]) -> np.ndarray:
        """A pooled ``complex128`` array of ``shape`` (contents undefined).

        The returned buffer is valid until the caller's next ``take`` of
        the same key on the same thread; taking marks the key
        most-recently-used and may evict the coldest other keys to stay
        within ``max_bytes``.
        """
        buffers = self._buffers()
        key = (tag, tuple(shape))
        buf = buffers.pop(key, None)
        if buf is None:
            buf = np.empty(shape, dtype=np.complex128)
            self._local.nbytes += buf.nbytes
        buffers[key] = buf  # (re-)insert at the most-recent end
        self._evict(buffers, keep=key)
        return buf

    def _evict(self, buffers, keep) -> None:
        while self._local.nbytes > self.max_bytes and len(buffers) > 1:
            victim = next(iter(buffers))  # least recently taken
            if victim == keep:
                break  # only the just-taken buffer remains over budget
            dropped = buffers.pop(victim)
            self._local.nbytes -= dropped.nbytes
            self._local.evictions += 1

    def clear(self) -> None:
        buffers = self._buffers()
        buffers.clear()
        self._local.nbytes = 0

    @property
    def n_buffers(self) -> int:
        return len(self._buffers())

    def nbytes(self) -> int:
        self._buffers()  # ensure thread-local init
        return int(self._local.nbytes)

    @property
    def evictions(self) -> int:
        """Buffers dropped for the byte budget (this thread's count)."""
        self._buffers()
        return int(self._local.evictions)


_SHARED_POOL = ScratchPool()


def shared_pool() -> ScratchPool:
    """The process-wide buffer pool used by engines unless told otherwise."""
    return _SHARED_POOL


__all__ = ["DEFAULT_POOL_BUDGET_BYTES", "ScratchPool", "shared_pool"]
