"""Fused-mixer backend: the uniform-β mixer via Walsh–Hadamard diagonalisation.

The QAOA mixer ``exp(-iβ Σ_q X_q)`` is diagonal in the Walsh–Hadamard
basis: ``H X H = Z``, so

    exp(-iβ ΣX) = H^{⊗n} · D_β · H^{⊗n},
    D_β|x⟩ = exp(-iβ·(n − 2·popcount(x)))|x⟩,

and — crucially — both ``H^{⊗n}`` and ``D_β`` are tensor products over
qubits, so the diagonalisation *factors*: for any split
``n = s₁ + s₂ + …``,

    exp(-iβ ΣX) = ⊗_j ( H^{⊗s_j} · D_β^{(s_j)} · H^{⊗s_j} / 2^{s_j} ).

The reference backend walks qubit by qubit (``s_j ≡ 1``): 3n full-array
complex ufunc passes per layer, the NumPy pass-count floor the ROADMAP
calls out.  This backend instead applies the diagonalisation in two or
three *blocked stages* (~5 qubits each): every stage is one pass over the
state — a BLAS matmul against the stage's fused
``H·diag(eigenphases)·H`` matrix, built from eigenphase tables indexed by
a cached per-stage popcount vector — so a whole layer costs ~2–3 blocked
passes plus a few middle-qubit rotations instead of 3n elementwise ones.
Low qubits (where per-qubit passes stride badly) go through a realified
GEMM on the interleaved re/im view; high qubits through a batched matmul
on the leading basis axis; any middle qubits keep the reference per-qubit
rotation, whose strides are benign there.

Elementwise fusion: the ``1/2^s`` transform normalisations, the caller's
optional ``scale`` factor (used by :meth:`evolve_batch` to absorb the
|+⟩^n amplitude adjacent to the first cost diagonal), all fold into the
tiny stage matrices — none costs a pass over the state.  Hadamard,
popcount and ΣZ-eigenvalue tables are cached per stage size on the
backend instance (a registry singleton, so process-wide); full-size
scratch comes from the shared
:class:`~repro.quantum.backend.scratch.ScratchPool`.

Parity: ≤1e-12 against :class:`NumpyBackend` for every shape
(property-tested in ``tests/test_backends.py``); ≥1.3× on batched p≥2
evolution at n=16 (gated in ``benchmarks/bench_backends.py``).
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Tuple

import numpy as np

from repro.quantum.backend.numpy_backend import NumpyBackend
from repro.quantum.backend.scratch import ScratchPool, shared_pool
from repro.quantum.statevector import n_qubits_for_dim
from repro.util.tracing import current_trace

# Stage widths: ~32×32 stage matrices are big enough that one blocked
# pass replaces five strided per-qubit passes, small enough that building
# them per call is negligible.  Tuned on the n∈{12..16} bench.
LOW_STAGE_QUBITS = 5
HIGH_STAGE_QUBITS = 5
# Cost diagonals with at most this many distinct values (and at most a
# quarter of the state dimension) get the quantised-phase gather path:
# exp() over the unique values only, then an index gather.  MaxCut
# diagonals on unweighted graphs have ≤ E+1 distinct values, so this
# turns the dominant full-size complex exponential of every cost layer
# into a table lookup.
COST_GATHER_MAX_VALUES = 4096


class FusedBackend(NumpyBackend):
    """Blocked Walsh–Hadamard-diagonalised mixer with cached eigenphase
    tables."""

    name = "fused"

    def __init__(self) -> None:
        # Per stage size s: Hadamard matrix H_s, popcount index (intp,
        # gather-ready) and ΣZ eigenvalues s − 2k.
        self._hadamards: Dict[int, np.ndarray] = {}
        self._popcounts: Dict[int, np.ndarray] = {}
        self._eigenvalues: Dict[int, np.ndarray] = {}
        # Per cost diagonal (keyed by object identity, guarded by a weak
        # reference): its unique-value decomposition, or None when the
        # diagonal is too rich for the gather path.
        self._cost_cache: Dict[int, Tuple[object, Optional[np.ndarray], Optional[np.ndarray]]] = {}

    # -- cached stage tables --------------------------------------------
    def _stage_tables(self, s: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        H = self._hadamards.get(s)
        if H is None:
            H = np.ones((1, 1), dtype=np.float64)
            for _ in range(s):
                H = np.kron(H, np.array([[1.0, 1.0], [1.0, -1.0]]))
            idx = np.arange(1 << s, dtype=np.uint64)
            pc = np.zeros(1 << s, dtype=np.intp)
            for q in range(s):
                pc += ((idx >> np.uint64(q)) & np.uint64(1)).astype(np.intp)
            eig = s - 2.0 * np.arange(s + 1, dtype=np.float64)
            # Publish the dependents first; the Hadamard last (its
            # presence is the "built" flag read above).
            self._eigenvalues[s] = eig
            self._popcounts[s] = pc
            self._hadamards[s] = H
        return self._hadamards[s], self._popcounts[s], self._eigenvalues[s]

    def _stage_matrix(self, s: int, beta_arr: np.ndarray, scale: float) -> np.ndarray:
        """``scale · RX(2β)^{⊗s}`` as ``H_s · D_β · H_s / 2^s``.

        ``beta_arr`` is 0-d (one ``(2^s, 2^s)`` matrix) or ``(B,)``
        (a ``(B, 2^s, 2^s)`` stack, one per batch row).
        """
        H, pc, eig = self._stage_tables(s)
        # exp(-iβ·(s − 2·popcount)) gathered from the (s+1)-entry table.
        phases = np.exp(np.multiply.outer(-1j * beta_arr, eig))[..., pc]
        return (H * phases[..., None, :]) @ H * (scale / (1 << s))

    @staticmethod
    def _realify(matrices: np.ndarray) -> np.ndarray:
        """Real action of a complex matrix on interleaved re/im *row*
        vectors: ``v_real @ R == realify(M v_complex)``."""
        mt = np.swapaxes(matrices, -1, -2)
        shape = (*matrices.shape[:-2], 2 * matrices.shape[-2], 2 * matrices.shape[-1])
        out = np.empty(shape, dtype=np.float64)
        out[..., 0::2, 0::2] = mt.real
        out[..., 0::2, 1::2] = mt.imag
        out[..., 1::2, 0::2] = -mt.imag
        out[..., 1::2, 1::2] = mt.real
        return out

    # -- quantised cost layer --------------------------------------------
    def _cost_table(
        self, diagonal: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(values, inverse)`` of the diagonal's unique decomposition,
        or ``None`` when the diagonal has too many distinct values.

        Cached per diagonal array (engines hold one stable diagonal per
        graph); a dead weak reference means the id was recycled and the
        entry is rebuilt.  ``values[inverse]`` reproduces the diagonal
        *exactly*, so the gathered phases are bit-identical to the dense
        exponential.
        """
        key = id(diagonal)
        rec = self._cost_cache.get(key)
        if rec is not None and rec[0]() is diagonal:
            return None if rec[1] is None else (rec[1], rec[2])
        try:
            ref = weakref.ref(diagonal, lambda _, k=key: self._cost_cache.pop(k, None))
        except TypeError:  # non-weakref-able duck array
            return None
        values, inverse = np.unique(diagonal, return_inverse=True)
        if len(values) > min(COST_GATHER_MAX_VALUES, diagonal.size // 4):
            self._cost_cache[key] = (ref, None, None)
            return None
        inverse = np.ascontiguousarray(inverse.reshape(-1), dtype=np.intp)
        self._cost_cache[key] = (ref, values, inverse)
        return values, inverse

    def apply_cost_layer(
        self,
        states: np.ndarray,
        diagonal: np.ndarray,
        gammas,
        *,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        table = self._cost_table(diagonal)
        if table is None:
            return super().apply_cost_layer(states, diagonal, gammas, scratch=scratch)
        values, inverse = table
        gam = np.asarray(gammas, dtype=np.float64)
        if states.ndim == 1:
            if gam.ndim != 0:
                raise ValueError("per-row gammas require a batched (B, dim) state")
            if diagonal.shape != states.shape:
                raise ValueError("diagonal length mismatch")
            states *= np.take(np.exp(-1j * gam * values), inverse)
            return states
        if states.ndim != 2 or gam.shape != (states.shape[0],):
            raise ValueError(
                f"expected states (B, dim) and gammas (B,), got "
                f"{states.shape} / {gam.shape}"
            )
        if diagonal.shape != states.shape[-1:]:
            raise ValueError("diagonal length mismatch")
        phase = np.exp(np.multiply.outer(-1j * gam, values))
        if (
            scratch is not None
            and scratch.shape == states.shape
            and scratch.dtype == states.dtype
        ):
            np.take(phase, inverse, axis=1, out=scratch)
            states *= scratch
        else:
            states *= np.take(phase, inverse, axis=1)
        return states

    # -- the fused mixer -------------------------------------------------
    def apply_mixer_layer(
        self,
        states: np.ndarray,
        betas,
        *,
        scratch: Optional[np.ndarray] = None,
        scale: Optional[float] = None,
    ) -> np.ndarray:
        """Blocked-stage mixer; ``scale`` folds an extra scalar into the
        first stage matrix (no dedicated pass — see :meth:`evolve_batch`)."""
        n = n_qubits_for_dim(states.shape[-1])
        beta_arr = np.asarray(betas, dtype=np.float64)
        if states.ndim == 1:
            if beta_arr.ndim != 0:
                raise ValueError("per-row betas require a batched (B, dim) state")
        elif states.ndim == 2:
            if beta_arr.ndim == 1 and beta_arr.shape != (states.shape[0],):
                raise ValueError(
                    f"betas shape {beta_arr.shape} != batch ({states.shape[0]},)"
                )
            if beta_arr.ndim > 1:
                raise ValueError("betas must be scalar or a (B,) vector")
        else:
            raise ValueError(f"state must be 1-D or 2-D, got ndim={states.ndim}")
        if not states.flags.c_contiguous:
            raise ValueError("states must be C-contiguous for blocked stages")
        work = states if states.ndim == 2 else states.reshape(1, -1)
        if scratch is None or scratch.shape != states.shape or scratch.dtype != states.dtype:
            scratch = np.empty_like(states)
        swap = scratch.reshape(work.shape)

        batch = work.shape[0]
        k = min(n, LOW_STAGE_QUBITS)
        h = min(n - k, HIGH_STAGE_QUBITS)
        factor = 1.0 if scale is None else float(scale)

        # Low-k stage: realified GEMM on the interleaved re/im row view
        # (the qubits whose per-qubit passes stride worst).
        low = self._realify(self._stage_matrix(k, beta_arr, factor))
        rv = work.view(np.float64).reshape(batch, -1, (1 << k) * 2)
        sv = swap.view(np.float64).reshape(rv.shape)
        np.matmul(rv, low, out=sv)
        src, dst = swap, work

        # Middle qubits: the reference per-qubit rotation (benign strides
        # here: inner blocks are ≥ 2^k, outer blocks ≥ 2^h).
        if n > k + h:
            c = np.cos(beta_arr)
            s_ = -1j * np.sin(beta_arr)
            if beta_arr.ndim == 1:
                c = c[:, None, None, None]
                s_ = s_[:, None, None, None]
            for q in range(k, n - h):
                view = src.reshape(batch, 1 << (n - 1 - q), 2, 1 << q)
                tview = dst.reshape(view.shape)
                np.multiply(view[:, :, ::-1, :], s_, out=tview)
                np.multiply(view, c, out=view)
                view += tview

        # High-h stage: batched matmul over the leading basis axis.
        if h:
            high = self._stage_matrix(h, beta_arr, 1.0)
            if high.ndim == 2:
                high = np.ascontiguousarray(high)
            xv = src.reshape(batch, 1 << h, -1)
            ov = dst.reshape(xv.shape)
            np.matmul(high, xv, out=ov)
            src, dst = dst, src

        if src is not work:
            work[...] = src
        return states

    # -- layer-fused batched evolution ------------------------------------
    def evolve_batch(
        self,
        diagonal: np.ndarray,
        params_matrix: np.ndarray,
        *,
        pool: Optional[ScratchPool] = None,
    ) -> np.ndarray:
        """Batched evolution with the adjacent state-prep/cost fusion.

        |+⟩^n is uniform, so ``ψ_0 = exp(-iγ_1 D)|+⟩`` is the first cost
        exponential written straight into the state buffer — no fill
        pass — with the ``1/√dim`` amplitude folded into the first
        mixer's low stage matrix via ``scale`` (no normalisation pass
        either).  Later layers run the cost-phase multiply plus the
        blocked mixer, sharing one pooled scratch.
        """
        mat = self._params_matrix(params_matrix)
        n = n_qubits_for_dim(len(diagonal))
        m, p = mat.shape[0], mat.shape[1] // 2
        dim = 1 << n
        pool = pool if pool is not None else shared_pool()
        with current_trace().span(
            "backend-evolve", backend=self.name, rows=m, layers=p
        ):
            states = pool.take("states", (m, dim))
            scratch = pool.take("phases", (m, dim))
            table = self._cost_table(diagonal)
            if table is None:
                np.multiply.outer(-1j * mat[:, 0], diagonal, out=states)
                np.exp(states, out=states)
            else:
                values, inverse = table
                phase = np.exp(np.multiply.outer(-1j * mat[:, 0], values))
                np.take(phase, inverse, axis=1, out=states)
            self.apply_mixer_layer(
                states, mat[:, p], scratch=scratch, scale=1.0 / np.sqrt(dim)
            )
            for layer in range(1, p):
                self.apply_cost_layer(states, diagonal, mat[:, layer], scratch=scratch)
                self.apply_mixer_layer(states, mat[:, p + layer], scratch=scratch)
            return states


__all__ = ["FusedBackend", "HIGH_STAGE_QUBITS", "LOW_STAGE_QUBITS"]
