"""Fused-mixer backend: the uniform-β mixer via Walsh–Hadamard diagonalisation.

The QAOA mixer ``exp(-iβ Σ_q X_q)`` is diagonal in the Walsh–Hadamard
basis: ``H X H = Z``, so

    exp(-iβ ΣX) = H^{⊗n} · D_β · H^{⊗n},
    D_β|x⟩ = exp(-iβ·(n − 2·popcount(x)))|x⟩,

and — crucially — both ``H^{⊗n}`` and ``D_β`` are tensor products over
qubits, so the diagonalisation *factors*: for any split
``n = s₁ + s₂ + …``,

    exp(-iβ ΣX) = ⊗_j ( H^{⊗s_j} · D_β^{(s_j)} · H^{⊗s_j} / 2^{s_j} ).

The reference backend walks qubit by qubit (``s_j ≡ 1``): 3n full-array
complex ufunc passes per layer, the NumPy pass-count floor the ROADMAP
calls out.  This backend instead applies the diagonalisation in two or
three *blocked stages* (~5 qubits each): every stage is one pass over the
state — a BLAS matmul against the stage's fused
``H·diag(eigenphases)·H`` matrix, built from eigenphase tables indexed by
a cached per-stage popcount vector — so a whole layer costs ~2–3 blocked
passes plus a few middle-qubit rotations instead of 3n elementwise ones.
Low qubits (where per-qubit passes stride badly) go through a realified
GEMM on the interleaved re/im view; high qubits through a batched matmul
on the leading basis axis; any middle qubits keep the reference per-qubit
rotation, whose strides are benign there.

Elementwise fusion: the ``1/2^s`` transform normalisations, the caller's
optional ``scale`` factor (used by :meth:`evolve_batch` to absorb the
|+⟩^n amplitude adjacent to the first cost diagonal), all fold into the
tiny stage matrices — none costs a pass over the state.  Hadamard,
popcount and ΣZ-eigenvalue tables are cached per stage size on the
backend instance (a registry singleton, so process-wide); full-size
scratch comes from the shared
:class:`~repro.quantum.backend.scratch.ScratchPool`.

Parity: ≤1e-12 against :class:`NumpyBackend` for every shape
(property-tested in ``tests/test_backends.py``); ≥1.3× on batched p≥2
evolution at n=16 (gated in ``benchmarks/bench_backends.py``).
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Tuple

import numpy as np

from repro.quantum.backend.base import DEFAULT_CHUNK_SIZE
from repro.quantum.backend.numpy_backend import NumpyBackend
from repro.quantum.backend.scratch import ScratchPool, shared_pool
from repro.quantum.statevector import n_qubits_for_dim
from repro.util.tracing import current_trace

# Stage widths: ~32×32 stage matrices are big enough that one blocked
# pass replaces five strided per-qubit passes, small enough that building
# them per call is negligible.  Tuned on the n∈{12..16} bench.
LOW_STAGE_QUBITS = 5
HIGH_STAGE_QUBITS = 5
# Cost diagonals with at most this many distinct values (and at most a
# quarter of the state dimension) get the quantised-phase gather path:
# exp() over the unique values only, then an index gather.  MaxCut
# diagonals on unweighted graphs have ≤ E+1 distinct values, so this
# turns the dominant full-size complex exponential of every cost layer
# into a table lookup.
COST_GATHER_MAX_VALUES = 4096
# Weighted diagonals (value-rich: more distinct values than the exact
# gather tolerates) are *bucketed* onto ≤COST_GATHER_MAX_VALUES uniform
# levels instead: the coarse phase is a gather, and the small residual
# d − level is corrected by exp(-iγr)'s Taylor polynomial — evaluated as
# one complex GEMM, (B, K) γ-coefficients against a cached (K, dim)
# residual-power table, so the whole correction is a single output-bound
# matmul pass instead of ~10 elementwise passes (which measure *slower*
# than the dense exp once the float temporaries fall out of cache).
# Only applied where it pays:
COST_BUCKET_MIN_DIM = 1024  # below this the dense exp is already cheap
# Taylor order: exp(-ix) through x⁷, remainder |x|⁸/8! ≤ 2.5e-13 at the
# validity bound below — inside the ≤1e-12 cross-backend parity budget.
COST_RESIDUAL_ORDER = 7
# Validity bound on |x| = |γ·residual|; calls with max|γ|·rmax beyond it
# fall back to the dense exponential (bit-identical to NumpyBackend).
COST_RESIDUAL_X_MAX = 0.1
# The fused mixer's BLAS stages *want* batch width (a wider GEMM amortises
# the stage-matrix build and keeps the kernel in its blocked regime), so
# its chunk advice budgets the two (chunk, 2**n) work buffers far above
# the elementwise cache-resident default.  16 MiB ≈ 8 rows at n=16 — the
# measured sweet spot on the n=16 batched p=2 bench (wider chunks start
# spilling the shared cache and the weighted-gather win shrinks).
FUSED_CHUNK_BUDGET_BYTES = 16 * 1024 * 1024


class FusedBackend(NumpyBackend):
    """Blocked Walsh–Hadamard-diagonalised mixer with cached eigenphase
    tables."""

    name = "fused"

    def __init__(self) -> None:
        # Per stage size s: Hadamard matrix H_s, popcount index (intp,
        # gather-ready) and ΣZ eigenvalues s − 2k.
        self._hadamards: Dict[int, np.ndarray] = {}
        self._popcounts: Dict[int, np.ndarray] = {}
        self._eigenvalues: Dict[int, np.ndarray] = {}
        # Per cost diagonal (keyed by object identity, guarded by a weak
        # reference): ("exact", values, inverse) for few-valued diagonals,
        # ("bucket", reps, idx, residual, rmax) for value-rich (weighted)
        # ones, or None when only the dense exponential applies.
        self._cost_cache: Dict[int, Tuple] = {}

    # -- cached stage tables --------------------------------------------
    def _stage_tables(self, s: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        H = self._hadamards.get(s)
        if H is None:
            H = np.ones((1, 1), dtype=np.float64)
            for _ in range(s):
                H = np.kron(H, np.array([[1.0, 1.0], [1.0, -1.0]]))
            idx = np.arange(1 << s, dtype=np.uint64)
            pc = np.zeros(1 << s, dtype=np.intp)
            for q in range(s):
                pc += ((idx >> np.uint64(q)) & np.uint64(1)).astype(np.intp)
            eig = s - 2.0 * np.arange(s + 1, dtype=np.float64)
            # Publish the dependents first; the Hadamard last (its
            # presence is the "built" flag read above).
            self._eigenvalues[s] = eig
            self._popcounts[s] = pc
            self._hadamards[s] = H
        return self._hadamards[s], self._popcounts[s], self._eigenvalues[s]

    def _stage_matrix(self, s: int, beta_arr: np.ndarray, scale: float) -> np.ndarray:
        """``scale · RX(2β)^{⊗s}`` as ``H_s · D_β · H_s / 2^s``.

        ``beta_arr`` is 0-d (one ``(2^s, 2^s)`` matrix) or ``(B,)``
        (a ``(B, 2^s, 2^s)`` stack, one per batch row).
        """
        H, pc, eig = self._stage_tables(s)
        # exp(-iβ·(s − 2·popcount)) gathered from the (s+1)-entry table.
        phases = np.exp(np.multiply.outer(-1j * beta_arr, eig))[..., pc]
        return (H * phases[..., None, :]) @ H * (scale / (1 << s))

    @staticmethod
    def _realify(matrices: np.ndarray) -> np.ndarray:
        """Real action of a complex matrix on interleaved re/im *row*
        vectors: ``v_real @ R == realify(M v_complex)``."""
        mt = np.swapaxes(matrices, -1, -2)
        shape = (*matrices.shape[:-2], 2 * matrices.shape[-2], 2 * matrices.shape[-1])
        out = np.empty(shape, dtype=np.float64)
        out[..., 0::2, 0::2] = mt.real
        out[..., 0::2, 1::2] = mt.imag
        out[..., 1::2, 0::2] = -mt.imag
        out[..., 1::2, 1::2] = mt.real
        return out

    # -- quantised cost layer --------------------------------------------
    def _cost_table(self, diagonal: np.ndarray) -> Optional[Tuple]:
        """The diagonal's gather decomposition, cached per array identity.

        ``("exact", values, inverse)`` — few distinct values (unweighted
        graphs): ``values[inverse]`` reproduces the diagonal *exactly*,
        so gathered phases are bit-identical to the dense exponential.

        ``("bucket", reps, idx, rpow, rmax)`` — value-rich (weighted)
        diagonals bucketed onto ≤``COST_GATHER_MAX_VALUES`` uniform
        levels: ``reps[idx] + r`` reproduces the diagonal to one ulp with
        ``|r| ≤ rmax`` (about half the level step), small enough that the
        phase correction is a short Taylor polynomial in ``γ·r`` — whose
        residual-power table ``rpow[k] = r**k`` (complex, GEMM-ready) is
        precomputed here.  Built only where the correction pass pays
        (``COST_BUCKET_MIN_DIM``, levels ≪ dim).

        ``None`` — dense exponential only.  A dead weak reference means
        the id was recycled and the entry is rebuilt.
        """
        key = id(diagonal)
        rec = self._cost_cache.get(key)
        if rec is not None and rec[0]() is diagonal:
            return rec[1]
        try:
            ref = weakref.ref(diagonal, lambda _, k=key: self._cost_cache.pop(k, None))
        except TypeError:  # non-weakref-able duck array
            return None
        dim = diagonal.size
        values, inverse = np.unique(diagonal, return_inverse=True)
        inverse = np.ascontiguousarray(inverse.reshape(-1), dtype=np.intp)
        if len(values) <= min(COST_GATHER_MAX_VALUES, dim // 4):
            desc: Optional[Tuple] = ("exact", values, inverse)
        else:
            desc = self._bucket_table(values, inverse, dim)
        self._cost_cache[key] = (ref, desc)
        return desc

    @staticmethod
    def _bucket_table(
        values: np.ndarray, inverse: np.ndarray, dim: int
    ) -> Optional[Tuple]:
        """Uniform-level bucketing of a value-rich diagonal, or ``None``
        when the residual pass would not pay (small state, degenerate
        range, or too many levels relative to the dimension)."""
        levels = min(COST_GATHER_MAX_VALUES, dim // 4)
        lo, hi = float(values[0]), float(values[-1])
        if (
            dim < COST_BUCKET_MIN_DIM
            or levels < 2
            or not np.isfinite(hi - lo)
            or hi <= lo
        ):
            return None
        step = (hi - lo) / (levels - 1)
        reps = lo + step * np.arange(levels)
        which = np.clip(np.rint((values - lo) / step), 0, levels - 1).astype(np.intp)
        resid_per_value = values - reps[which]
        idx = np.ascontiguousarray(which[inverse])
        residual = resid_per_value[inverse]
        rmax = float(np.abs(resid_per_value).max())
        # Residual-power table for the Taylor GEMM: rpow[k] = residual**k,
        # stored complex so the per-call matmul is a plain zgemm with no
        # upcast copy.  (ORDER+1)·dim·16 bytes — 8 MiB at n=16, cached for
        # the diagonal's lifetime via the weak reference above.
        powers = np.empty((COST_RESIDUAL_ORDER + 1, dim), dtype=np.float64)
        powers[0] = 1.0
        for k in range(1, COST_RESIDUAL_ORDER + 1):
            np.multiply(powers[k - 1], residual, out=powers[k])
        rpow = powers.astype(np.complex128)
        return ("bucket", reps, idx, rpow, rmax)

    @staticmethod
    def _residual_coeffs(gam: np.ndarray) -> np.ndarray:
        """Per-row Taylor coefficients of ``exp(-iγ·r)``:
        ``P[b, k] = (-iγ_b)**k / k!`` — the ``(B, K)`` left factor of the
        correction GEMM against the cached residual-power table."""
        coeffs = np.empty((gam.size, COST_RESIDUAL_ORDER + 1), dtype=np.complex128)
        coeffs[:, 0] = 1.0
        base = -1j * gam
        for k in range(1, COST_RESIDUAL_ORDER + 1):
            np.multiply(coeffs[:, k - 1], base, out=coeffs[:, k])
            coeffs[:, k] /= k
        return coeffs

    def _residual_rotation(
        self, gam: np.ndarray, rpow: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """``exp(-iγ_b·r)`` per row via the Taylor GEMM, written to ``out``.

        A one-row matmul dispatches to BLAS's vector kernel, whose
        accumulation over the Taylor axis differs from the batched GEMM's
        at ~1e-15 — enough to break the chunk-width invariance the engine
        pins (``TestChunkPolicy``).  Single rows are therefore evaluated
        as a duplicated two-row GEMM, keeping every batch width on the
        same kernel.
        """
        coeffs = self._residual_coeffs(gam)
        if gam.size == 1:
            out[...] = np.matmul(coeffs[[0, 0]], rpow)[:1]
            return out
        return np.matmul(coeffs, rpow, out=out)

    def apply_cost_layer(
        self,
        states: np.ndarray,
        diagonal: np.ndarray,
        gammas,
        *,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        table = self._cost_table(diagonal)
        if table is None:
            return super().apply_cost_layer(states, diagonal, gammas, scratch=scratch)
        gam = np.asarray(gammas, dtype=np.float64)
        if states.ndim == 1:
            if gam.ndim != 0:
                raise ValueError("per-row gammas require a batched (B, dim) state")
            if diagonal.shape != states.shape:
                raise ValueError("diagonal length mismatch")
        elif states.ndim != 2 or gam.shape != (states.shape[0],):
            raise ValueError(
                f"expected states (B, dim) and gammas (B,), got "
                f"{states.shape} / {gam.shape}"
            )
        elif diagonal.shape != states.shape[-1:]:
            raise ValueError("diagonal length mismatch")
        if table[0] == "bucket":
            _, reps, idx, rpow, rmax = table
            xmax = float(np.abs(gam).max()) * rmax if gam.size else 0.0
            if xmax > COST_RESIDUAL_X_MAX:
                # γ too large for the polynomial budget: dense exponential
                # (same expression as NumpyBackend, bit-identical to it).
                return super().apply_cost_layer(
                    states, diagonal, gammas, scratch=scratch
                )
            batched = states if states.ndim == 2 else states.reshape(1, -1)
            if (
                scratch is not None
                and scratch.shape == states.shape
                and scratch.dtype == states.dtype
            ):
                buf = scratch.reshape(batched.shape)
            else:
                buf = np.empty_like(batched)
            gam1 = gam.reshape(-1)
            # Residual rotation first (GEMM into the scratch), then the
            # coarse gathered phase reusing the same buffer.
            self._residual_rotation(gam1, rpow, buf)
            batched *= buf
            coarse = np.exp(np.multiply.outer(-1j * gam1, reps))
            np.take(coarse, idx, axis=1, out=buf)
            batched *= buf
            return states
        _, values, inverse = table
        if states.ndim == 1:
            states *= np.take(np.exp(-1j * gam * values), inverse)
            return states
        phase = np.exp(np.multiply.outer(-1j * gam, values))
        if (
            scratch is not None
            and scratch.shape == states.shape
            and scratch.dtype == states.dtype
        ):
            np.take(phase, inverse, axis=1, out=scratch)
            states *= scratch
        else:
            states *= np.take(phase, inverse, axis=1)
        return states

    # -- chunk advice -----------------------------------------------------
    def preferred_chunk_size(
        self,
        n_qubits: int,
        *,
        batch: Optional[int] = None,
        layers: Optional[int] = None,
    ) -> int:
        """Wide chunks: the blocked GEMM stages amortise their stage-matrix
        builds over the batch, so starve them of width (the elementwise
        cache budget yields 1-row chunks at n=16) and the fused win
        evaporates.  Budgeted by ``FUSED_CHUNK_BUDGET_BYTES`` over the two
        (chunk, 2**n) work buffers, capped at ``DEFAULT_CHUNK_SIZE`` rows
        and the sweep batch when known."""
        row_bytes = 2 * (1 << n_qubits) * 16
        advised = max(1, min(DEFAULT_CHUNK_SIZE, FUSED_CHUNK_BUDGET_BYTES // row_bytes))
        if batch is not None:
            advised = max(1, min(advised, batch))
        return advised

    # -- the fused mixer -------------------------------------------------
    def apply_mixer_layer(
        self,
        states: np.ndarray,
        betas,
        *,
        scratch: Optional[np.ndarray] = None,
        scale: Optional[float] = None,
    ) -> np.ndarray:
        """Blocked-stage mixer; ``scale`` folds an extra scalar into the
        first stage matrix (no dedicated pass — see :meth:`evolve_batch`)."""
        n = n_qubits_for_dim(states.shape[-1])
        beta_arr = np.asarray(betas, dtype=np.float64)
        if states.ndim == 1:
            if beta_arr.ndim != 0:
                raise ValueError("per-row betas require a batched (B, dim) state")
        elif states.ndim == 2:
            if beta_arr.ndim == 1 and beta_arr.shape != (states.shape[0],):
                raise ValueError(
                    f"betas shape {beta_arr.shape} != batch ({states.shape[0]},)"
                )
            if beta_arr.ndim > 1:
                raise ValueError("betas must be scalar or a (B,) vector")
        else:
            raise ValueError(f"state must be 1-D or 2-D, got ndim={states.ndim}")
        if not states.flags.c_contiguous:
            raise ValueError("states must be C-contiguous for blocked stages")
        work = states if states.ndim == 2 else states.reshape(1, -1)
        if scratch is None or scratch.shape != states.shape or scratch.dtype != states.dtype:
            scratch = np.empty_like(states)
        swap = scratch.reshape(work.shape)

        batch = work.shape[0]
        k = min(n, LOW_STAGE_QUBITS)
        h = min(n - k, HIGH_STAGE_QUBITS)
        factor = 1.0 if scale is None else float(scale)

        # Low-k stage: realified GEMM on the interleaved re/im row view
        # (the qubits whose per-qubit passes stride worst).
        low = self._realify(self._stage_matrix(k, beta_arr, factor))
        rv = work.view(np.float64).reshape(batch, -1, (1 << k) * 2)
        sv = swap.view(np.float64).reshape(rv.shape)
        np.matmul(rv, low, out=sv)
        src, dst = swap, work

        # Middle qubits: the reference per-qubit rotation (benign strides
        # here: inner blocks are ≥ 2^k, outer blocks ≥ 2^h).
        if n > k + h:
            c = np.cos(beta_arr)
            s_ = -1j * np.sin(beta_arr)
            if beta_arr.ndim == 1:
                c = c[:, None, None, None]
                s_ = s_[:, None, None, None]
            for q in range(k, n - h):
                view = src.reshape(batch, 1 << (n - 1 - q), 2, 1 << q)
                tview = dst.reshape(view.shape)
                np.multiply(view[:, :, ::-1, :], s_, out=tview)
                np.multiply(view, c, out=view)
                view += tview

        # High-h stage: batched matmul over the leading basis axis.
        if h:
            high = self._stage_matrix(h, beta_arr, 1.0)
            if high.ndim == 2:
                high = np.ascontiguousarray(high)
            xv = src.reshape(batch, 1 << h, -1)
            ov = dst.reshape(xv.shape)
            np.matmul(high, xv, out=ov)
            src, dst = dst, src

        if src is not work:
            work[...] = src
        return states

    # -- layer-fused batched evolution ------------------------------------
    def evolve_batch(
        self,
        diagonal: np.ndarray,
        params_matrix: np.ndarray,
        *,
        pool: Optional[ScratchPool] = None,
    ) -> np.ndarray:
        """Batched evolution with the adjacent state-prep/cost fusion.

        |+⟩^n is uniform, so ``ψ_0 = exp(-iγ_1 D)|+⟩`` is the first cost
        exponential written straight into the state buffer — no fill
        pass — with the ``1/√dim`` amplitude folded into the first
        mixer's low stage matrix via ``scale`` (no normalisation pass
        either).  Later layers run the cost-phase multiply plus the
        blocked mixer, sharing one pooled scratch.
        """
        mat = self._params_matrix(params_matrix)
        n = n_qubits_for_dim(len(diagonal))
        m, p = mat.shape[0], mat.shape[1] // 2
        dim = 1 << n
        pool = pool if pool is not None else shared_pool()
        with current_trace().span(
            "backend-evolve", backend=self.name, rows=m, layers=p
        ):
            states = pool.take("states", (m, dim))
            scratch = pool.take("phases", (m, dim))
            table = self._cost_table(diagonal)
            gam0 = mat[:, 0]
            if table is not None and table[0] == "bucket":
                _, reps, idx, rpow, rmax = table
                xmax = float(np.abs(gam0).max()) * rmax if gam0.size else 0.0
                if xmax > COST_RESIDUAL_X_MAX:
                    table = None  # dense exponential for this γ range
                else:
                    coarse = np.exp(np.multiply.outer(-1j * gam0, reps))
                    np.take(coarse, idx, axis=1, out=states)
                    self._residual_rotation(gam0, rpow, scratch)
                    states *= scratch
            if table is None:
                np.multiply.outer(-1j * gam0, diagonal, out=states)
                np.exp(states, out=states)
            elif table[0] == "exact":
                _, values, inverse = table
                phase = np.exp(np.multiply.outer(-1j * gam0, values))
                np.take(phase, inverse, axis=1, out=states)
            self.apply_mixer_layer(
                states, mat[:, p], scratch=scratch, scale=1.0 / np.sqrt(dim)
            )
            for layer in range(1, p):
                self.apply_cost_layer(states, diagonal, mat[:, layer], scratch=scratch)
                self.apply_mixer_layer(states, mat[:, p + layer], scratch=scratch)
            return states


__all__ = [
    "COST_BUCKET_MIN_DIM",
    "COST_GATHER_MAX_VALUES",
    "COST_RESIDUAL_ORDER",
    "COST_RESIDUAL_X_MAX",
    "FUSED_CHUNK_BUDGET_BYTES",
    "FusedBackend",
    "HIGH_STAGE_QUBITS",
    "LOW_STAGE_QUBITS",
]
