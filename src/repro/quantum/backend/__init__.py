"""Pluggable statevector-evolution backends (see src/repro/quantum/README.md).

This package is the single seam between QAOA consumers (the sweep
engine, solvers, RQAOA, QAOA² leaves, the service scheduler, the
reference simulator/noise loops) and the numerical kernels that evolve
statevectors.  Consumers speak :class:`StatevectorBackend`; kernel
implementations live behind it (``numpy`` — the bit-identical reference;
``fused`` — FWHT-diagonalised mixer; ``compiled`` — numba-JIT'd parallel
kernels, available only where numba is installed and raising
:class:`BackendUnavailable` otherwise), and new ones (GPU, distributed)
plug in via :func:`register_backend` without touching any caller.

The raw layer kernels are intentionally re-exported here: this package
is their sanctioned import surface — nothing outside it (besides the
``repro.quantum`` facade) should import them from
``repro.quantum.statevector`` directly.
"""

from repro.quantum.backend.base import (
    CHUNK_BUDGET_BYTES,
    DEFAULT_CHUNK_SIZE,
    BackendUnavailable,
    StatevectorBackend,
    cache_resident_chunk_size,
)
from repro.quantum.backend.compiled import CompiledBackend, numba_available
from repro.quantum.backend.fused import FusedBackend
from repro.quantum.backend.numpy_backend import NumpyBackend
from repro.quantum.backend.registry import (
    COMPILED_MIN_QUBITS,
    COMPILED_MIN_WORK_ROWS,
    FUSED_MIN_QUBITS,
    auto_backend_name,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.quantum.backend.scratch import (
    DEFAULT_POOL_BUDGET_BYTES,
    ScratchPool,
    shared_pool,
)
from repro.quantum.statevector import (  # noqa: F401 — sanctioned re-exports
    apply_phases_batch,
    apply_rx_layer,
    walsh_hadamard_batch,
)

__all__ = [
    "CHUNK_BUDGET_BYTES",
    "COMPILED_MIN_QUBITS",
    "COMPILED_MIN_WORK_ROWS",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_POOL_BUDGET_BYTES",
    "FUSED_MIN_QUBITS",
    "BackendUnavailable",
    "CompiledBackend",
    "FusedBackend",
    "NumpyBackend",
    "ScratchPool",
    "StatevectorBackend",
    "apply_phases_batch",
    "apply_rx_layer",
    "auto_backend_name",
    "available_backends",
    "cache_resident_chunk_size",
    "get_backend",
    "numba_available",
    "register_backend",
    "resolve_backend",
    "shared_pool",
    "walsh_hadamard_batch",
]
