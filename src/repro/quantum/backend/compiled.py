"""Compiled (Numba) statevector backend: JIT'd cache-resident evolve loops.

The NumPy backends are pass-structured: every layer costs several full
``(B, 2**n)`` ufunc or BLAS sweeps, so a p-layer evolution streams the
whole working set through memory ``O(p)`` times.  This backend instead
compiles the *entire* evolution into one kernel: each parameter row's
statevector is built and evolved in a single loop nest, so a row stays
resident in the core's cache from state prep through the last mixer —
the same locality argument Aer-style simulators use for their fused
``statevector`` method, here as three Numba ``@njit(parallel=True,
cache=True)`` routines (cost-phase, RX-mixer butterfly, FWHT butterfly)
plus a fused whole-evolution kernel, parallelised over batch rows.

Numerics are deliberately conservative: ``complex128`` throughout and
**fastmath off**, so trigonometric contraction/reassociation cannot push
results outside the repo's ≤1e-12 cross-backend parity budget (the
kernels are not bit-identical to NumPy — reduction orders differ — but
parity is property-tested in ``tests/test_backends.py`` and
``tests/test_compiled_backend.py``).

Availability
------------
numba is an *optional* dependency and is imported lazily inside
:func:`numba_available`/``_jit_kernels`` (function-level only — the
``compiled-seam`` analyzer rule pins this), so importing this module, the
registry, or anything else in the repo works on a numba-less install.
Resolving ``"compiled"`` without numba raises
:class:`~repro.quantum.backend.base.BackendUnavailable` with an
actionable message, and the auto policy simply never picks it.

The kernel bodies are plain nopython-style Python (module-level ``prange``
is rebound to ``numba.prange`` at JIT time; interpreted, it is ``range``),
so ``CompiledBackend(mode="python")`` runs the *same* algorithms through
the interpreter — far too slow for real sweeps, but exactly what the
numba-less CI needs to property-test kernel correctness on small graphs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from repro.quantum.backend.base import BackendUnavailable, StatevectorBackend
from repro.quantum.backend.scratch import ScratchPool, shared_pool
from repro.quantum.statevector import n_qubits_for_dim, plus_state_batch
from repro.util.tracing import current_trace

# Per-chunk state-buffer budget for the compiled evolve kernel.  The
# kernel walks one row at a time (per-row working set is a single 2**n
# vector, cache-resident by construction), so chunks can be as wide as
# the batch; this cap only bounds the pooled (chunk, 2**n) allocation.
COMPILED_CHUNK_BUDGET_BYTES = 256 * 1024 * 1024

# Rebound to numba.prange when the kernels are JIT-compiled; as plain
# Python this is range, so the same bodies run interpreted (mode="python").
prange = range

_NUMBA_AVAILABLE: Optional[bool] = None
_JITTED: Optional[Dict[str, Callable]] = None


def numba_available() -> bool:
    """Whether the optional numba dependency can be imported (cached)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401 — lazy availability probe

            _NUMBA_AVAILABLE = True
        except ImportError:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


# ----------------------------------------------------------------------
# Kernel bodies (nopython-style; JIT'd lazily, or run interpreted)
# ----------------------------------------------------------------------
def _kernel_cost_layer(states, diagonal, gammas):
    """states[b] *= exp(-i·gammas[b]·diagonal), row-parallel."""
    rows, dim = states.shape
    for b in prange(rows):
        g = gammas[b]
        for i in range(dim):
            ph = g * diagonal[i]
            states[b, i] = states[b, i] * complex(math.cos(ph), -math.sin(ph))


def _kernel_mixer_layer(states, betas, n_qubits):
    """In-place RX(2β) on every qubit: the per-qubit butterfly, one row
    at a time so the row stays cache-resident across all n passes."""
    rows, dim = states.shape
    for b in prange(rows):
        c = math.cos(betas[b])
        s = complex(0.0, -math.sin(betas[b]))
        for q in range(n_qubits):
            half = 1 << q
            step = half << 1
            for base in range(0, dim, step):
                for i in range(base, base + half):
                    a0 = states[b, i]
                    a1 = states[b, i + half]
                    states[b, i] = c * a0 + s * a1
                    states[b, i + half] = s * a0 + c * a1


def _kernel_walsh(states):
    """Unnormalised in-place FWHT along the last axis, row-parallel."""
    rows, dim = states.shape
    for b in prange(rows):
        h = 1
        while h < dim:
            step = h << 1
            for base in range(0, dim, step):
                for i in range(base, base + h):
                    x = states[b, i]
                    y = states[b, i + h]
                    states[b, i] = x + y
                    states[b, i + h] = x - y
            h = step


def _kernel_expectations(states, diagonal, out):
    """out[b] = Σ_i |states[b,i]|² · diagonal[i], row-parallel."""
    rows, dim = states.shape
    for b in prange(rows):
        acc = 0.0
        for i in range(dim):
            v = states[b, i]
            acc += (v.real * v.real + v.imag * v.imag) * diagonal[i]
        out[b] = acc


def _kernel_evolve(states, diagonal, gammas, betas, n_qubits):
    """The fused p-layer evolution: |+⟩ prep folded into the first cost
    phase, then alternating cost/mixer layers — one row per iteration, so
    the whole evolution of a row runs out of cache."""
    rows, dim = states.shape
    layers = gammas.shape[1]
    amp = 1.0 / math.sqrt(dim)
    for b in prange(rows):
        g0 = gammas[b, 0]
        for i in range(dim):
            ph = g0 * diagonal[i]
            states[b, i] = complex(amp * math.cos(ph), -amp * math.sin(ph))
        for layer in range(layers):
            if layer > 0:
                g = gammas[b, layer]
                for i in range(dim):
                    ph = g * diagonal[i]
                    states[b, i] = states[b, i] * complex(
                        math.cos(ph), -math.sin(ph)
                    )
            c = math.cos(betas[b, layer])
            s = complex(0.0, -math.sin(betas[b, layer]))
            for q in range(n_qubits):
                half = 1 << q
                step = half << 1
                for base in range(0, dim, step):
                    for i in range(base, base + half):
                        a0 = states[b, i]
                        a1 = states[b, i + half]
                        states[b, i] = c * a0 + s * a1
                        states[b, i + half] = s * a0 + c * a1


_PY_KERNELS: Dict[str, Callable] = {
    "cost": _kernel_cost_layer,
    "mixer": _kernel_mixer_layer,
    "walsh": _kernel_walsh,
    "expect": _kernel_expectations,
    "evolve": _kernel_evolve,
}


def _jit_kernels() -> Dict[str, Callable]:
    """Compile the kernel set once per process (lazy numba import)."""
    global _JITTED, prange
    if _JITTED is None:
        import numba  # function-level: the compiled-seam invariant

        prange = numba.prange
        jit = numba.njit(parallel=True, cache=True, fastmath=False, nogil=True)
        _JITTED = {name: jit(fn) for name, fn in _PY_KERNELS.items()}
    return _JITTED


class CompiledBackend(StatevectorBackend):
    """Numba-JIT'd statevector evolution (``"compiled"`` in the registry).

    ``mode="jit"`` (the registry default) requires numba and raises
    :class:`BackendUnavailable` without it; ``mode="python"`` runs the
    identical kernel bodies interpreted — a correctness harness for
    numba-less environments, never a performance path.
    """

    name = "compiled"

    def __init__(self, mode: str = "jit") -> None:
        if mode not in ("jit", "python"):
            raise ValueError(f"mode must be 'jit' or 'python', got {mode!r}")
        if mode == "jit" and not numba_available():
            raise BackendUnavailable(
                "the 'compiled' statevector backend needs numba, which is "
                "not installed; pick backend='fused'/'numpy'/'auto' or "
                "install numba (listed in requirements-dev.txt)"
            )
        self.mode = mode
        self._kernels = _jit_kernels() if mode == "jit" else _PY_KERNELS

    # -- shape plumbing ---------------------------------------------------
    @staticmethod
    def _as_batch(states: np.ndarray) -> np.ndarray:
        if states.ndim == 1:
            return states.reshape(1, -1)
        if states.ndim == 2:
            return states
        raise ValueError(f"state must be 1-D or 2-D, got ndim={states.ndim}")

    @staticmethod
    def _row_params(values, rows: int, batched: bool, what: str) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim == 0:
            return np.full(rows, float(arr))
        if not batched:
            raise ValueError(f"per-row {what} require a batched (B, dim) state")
        if arr.shape != (rows,):
            raise ValueError(f"{what} shape {arr.shape} != batch ({rows},)")
        return np.ascontiguousarray(arr)

    @staticmethod
    def _require_contiguous(work: np.ndarray) -> None:
        if not work.flags.c_contiguous:
            raise ValueError("states must be C-contiguous for compiled kernels")

    # -- protocol ---------------------------------------------------------
    def plus_state_batch(
        self, n_qubits: int, batch: int, *, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return plus_state_batch(n_qubits, batch, out=out)

    def apply_cost_layer(
        self,
        states: np.ndarray,
        diagonal: np.ndarray,
        gammas,
        *,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        work = self._as_batch(states)
        self._require_contiguous(work)
        if diagonal.shape != work.shape[-1:]:
            raise ValueError("diagonal length mismatch")
        gam = self._row_params(gammas, work.shape[0], states.ndim == 2, "gammas")
        diag = np.ascontiguousarray(diagonal, dtype=np.float64)
        self._kernels["cost"](work, diag, gam)
        return states

    def apply_mixer_layer(
        self,
        states: np.ndarray,
        betas,
        *,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        work = self._as_batch(states)
        self._require_contiguous(work)
        bet = self._row_params(betas, work.shape[0], states.ndim == 2, "betas")
        self._kernels["mixer"](work, bet, n_qubits_for_dim(work.shape[-1]))
        return states

    def walsh_transform(
        self, states: np.ndarray, *, scratch: Optional[np.ndarray] = None
    ) -> np.ndarray:
        work = self._as_batch(states)
        self._require_contiguous(work)
        self._kernels["walsh"](work)
        return states

    def expectations_batch(
        self, states: np.ndarray, diagonal: np.ndarray
    ) -> np.ndarray:
        if states.ndim != 2:
            raise ValueError(f"expected a (B, dim) batch, got ndim={states.ndim}")
        if diagonal.shape != states.shape[-1:]:
            raise ValueError("diagonal length mismatch")
        self._require_contiguous(states)
        out = np.empty(states.shape[0], dtype=np.float64)
        self._kernels["expect"](
            states, np.ascontiguousarray(diagonal, dtype=np.float64), out
        )
        return out

    # -- fused evolution --------------------------------------------------
    def evolve_batch(
        self,
        diagonal: np.ndarray,
        params_matrix: np.ndarray,
        *,
        pool: Optional[ScratchPool] = None,
    ) -> np.ndarray:
        mat = self._params_matrix(params_matrix)
        n = n_qubits_for_dim(len(diagonal))
        m, p = mat.shape[0], mat.shape[1] // 2
        dim = 1 << n
        pool = pool if pool is not None else shared_pool()
        with current_trace().span(
            "backend-evolve", backend=self.name, rows=m, layers=p
        ):
            states = pool.take("states", (m, dim))
            gammas = np.ascontiguousarray(mat[:, :p])
            betas = np.ascontiguousarray(mat[:, p:])
            self._kernels["evolve"](
                states, np.ascontiguousarray(diagonal, dtype=np.float64),
                gammas, betas, n,
            )
            return states

    # -- chunk advice -----------------------------------------------------
    def preferred_chunk_size(
        self,
        n_qubits: int,
        *,
        batch: Optional[int] = None,
        layers: Optional[int] = None,
    ) -> int:
        """As wide as the batch: the evolve kernel's working set is one
        row regardless of chunk width, and row-parallelism wants all the
        rows it can get.  Only the pooled state buffer bounds the width."""
        row_bytes = (1 << n_qubits) * 16
        cap = max(1, COMPILED_CHUNK_BUDGET_BYTES // row_bytes)
        return cap if batch is None else max(1, min(cap, batch))


__all__ = [
    "COMPILED_CHUNK_BUDGET_BYTES",
    "CompiledBackend",
    "numba_available",
]
