"""Backend registry and auto-selection policy.

Backends register under a short name; :func:`resolve_backend` turns a
user-facing spec — ``"auto"``, a registered name, or an already-built
:class:`~repro.quantum.backend.base.StatevectorBackend` instance — into
a process-wide singleton instance.  Singletons matter: backends cache
per-``n`` tables (popcount/eigenvalue vectors) that should be built once
per process, not once per solve.

Auto policy
-----------
``resolve_backend("auto", n_qubits=..., layers=..., batch=...)`` picks,
in measured-preference order (``benchmarks/bench_backends.py``):

* ``compiled`` at ``n_qubits >= COMPILED_MIN_QUBITS`` (16) when numba is
  importable **and** the sweep shape is worth a JIT'd parallel kernel:
  ``batch`` unknown, or ``batch · layers >= COMPILED_MIN_WORK_ROWS`` —
  pointwise objectives (``batch=1``, the hint ``MaxCutEnergy`` passes)
  stay on the NumPy-family backends,
* ``fused`` at ``n_qubits >= FUSED_MIN_QUBITS`` (14) — the regime where
  the mixer's per-qubit pass count dominates evolution and the FWHT
  diagonalisation wins,
* ``numpy`` below that, and whenever ``n_qubits`` is unknown — the
  bit-identical reference is always the safe floor.

The policy is a **pure function** of ``(n_qubits, layers, batch)`` (plus
the process-constant numba availability): a given problem shape always
resolves to the same backend, regression-pinned by
``tests/test_backends.py::TestRegistry::test_auto_policy_is_pure``.

Registering a new backend
-------------------------
See ``src/repro/quantum/README.md``.  In short::

    from repro.quantum.backend import StatevectorBackend, register_backend

    class MyBackend(StatevectorBackend):
        name = "mine"
        ...

    register_backend("mine", MyBackend)

after which ``--backend mine`` / ``SweepEngine(graph, backend="mine")``
work everywhere without touching any caller.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from repro.quantum.backend.base import BackendUnavailable, StatevectorBackend
from repro.quantum.backend.compiled import CompiledBackend, numba_available
from repro.quantum.backend.fused import FusedBackend
from repro.quantum.backend.numpy_backend import NumpyBackend

# Qubit count from which the fused FWHT mixer out-runs the per-qubit RX
# passes (ROADMAP: "at 14+ qubits the evolve kernels are at the NumPy
# pass-count floor").
FUSED_MIN_QUBITS = 14
# Crossover for the JIT'd kernels: below this the NumPy-family passes are
# already cache-resident and the compiled kernels' dispatch overhead is
# not worth paying (measured on bench_backends' n ∈ {12, 16} cases).
COMPILED_MIN_QUBITS = 16
# Minimum batch·layers work for the compiled pick: row-parallel kernels
# need rows to parallelise over; pointwise solves stay NumPy-family.
COMPILED_MIN_WORK_ROWS = 4

BackendSpec = Union[str, StatevectorBackend, None]

_FACTORIES: Dict[str, Callable[[], StatevectorBackend]] = {}
_INSTANCES: Dict[str, StatevectorBackend] = {}


def register_backend(
    name: str,
    factory: Callable[[], StatevectorBackend],
    *,
    replace: bool = False,
) -> None:
    """Register ``factory`` (a class or zero-arg callable) under ``name``."""
    if not name or name == "auto":
        raise ValueError(f"invalid backend name {name!r}")
    if name in _FACTORIES and not replace:
        raise ValueError(
            f"backend {name!r} is already registered (pass replace=True)"
        )
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def get_backend(name: str) -> StatevectorBackend:
    """The singleton instance for a registered backend name."""
    instance = _INSTANCES.get(name)
    if instance is None:
        factory = _FACTORIES.get(name)
        if factory is None:
            raise ValueError(
                f"unknown statevector backend {name!r}; "
                f"available: {', '.join(available_backends())}"
            )
        instance = factory()
        if instance.name != name:
            raise ValueError(
                f"backend factory for {name!r} built an instance named "
                f"{instance.name!r}"
            )
        _INSTANCES[name] = instance
    return instance


def auto_backend_name(
    n_qubits: Optional[int] = None,
    layers: Optional[int] = None,
    batch: Optional[int] = None,
) -> str:
    """The built-in auto policy (see module docstring).

    A pure function of its inputs: ``layers``/``batch`` are honoured as
    sweep-shape hints (they gate the ``compiled`` pick), and repeated
    calls with the same ``(n_qubits, layers, batch)`` always return the
    same name.
    """
    if n_qubits is None:
        return "numpy"
    if n_qubits >= COMPILED_MIN_QUBITS and numba_available():
        work_rows = (1 if batch is None else batch) * (
            1 if layers is None else max(1, layers)
        )
        if batch is None or work_rows >= COMPILED_MIN_WORK_ROWS:
            return "compiled"
    if n_qubits >= FUSED_MIN_QUBITS:
        return "fused"
    return "numpy"


def resolve_backend(
    spec: BackendSpec = "auto",
    *,
    n_qubits: Optional[int] = None,
    layers: Optional[int] = None,
    batch: Optional[int] = None,
) -> StatevectorBackend:
    """Resolve a backend spec to an instance.

    ``spec`` may be ``None``/``"auto"`` (policy pick for the given
    problem shape), a registered name, or an instance (returned as-is).
    """
    if isinstance(spec, StatevectorBackend):
        return spec
    if spec is None or spec == "auto":
        return get_backend(auto_backend_name(n_qubits, layers, batch))
    if not isinstance(spec, str):
        raise TypeError(
            f"backend spec must be a name, 'auto', or a StatevectorBackend "
            f"instance, got {type(spec).__name__}"
        )
    return get_backend(spec)


register_backend(NumpyBackend.name, NumpyBackend)
register_backend(FusedBackend.name, FusedBackend)
# Registered unconditionally so the name is discoverable (CLI choices,
# available_backends()); instantiation raises BackendUnavailable on a
# numba-less install, and the auto policy checks numba_available() first.
register_backend(CompiledBackend.name, CompiledBackend)


__all__ = [
    "COMPILED_MIN_QUBITS",
    "COMPILED_MIN_WORK_ROWS",
    "FUSED_MIN_QUBITS",
    "BackendUnavailable",
    "auto_backend_name",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
