"""The statevector-backend contract: the full QAOA evolve vocabulary.

Every QAOA evolution in the repo — the sweep engine's chunked batches,
the solver's pointwise objective, RQAOA's per-round evolve, the QAOA²
leaf solves, the service scheduler's lock-step SPSA batches, and the
reference loops in ``quantum/simulator.py`` / ``quantum/noise.py`` — is
expressed in six operations:

* :meth:`StatevectorBackend.plus_state_batch` — the |+⟩^n initial state,
* :meth:`StatevectorBackend.apply_cost_layer` — ``exp(-iγ H_C)`` as an
  elementwise diagonal phase multiply,
* :meth:`StatevectorBackend.apply_mixer_layer` — ``exp(-iβ ΣX)``,
* :meth:`StatevectorBackend.evolve_batch` / :meth:`evolve_state` — the
  composed p-layer circuit, batched and pointwise,
* :meth:`StatevectorBackend.expectations_batch` — ⟨ψ|H_C|ψ⟩ per row,

plus :meth:`walsh_transform` (the unnormalised Walsh–Hadamard transform
used by the spectral angle-grid tier and by fused-mixer backends),
advisory chunk sizing via :meth:`preferred_chunk_size` (the sweep engine
asks the backend how wide its evaluation chunks should be), and scratch
management via :class:`repro.quantum.backend.scratch.ScratchPool`.
Implementations differ only in *how* they realise the operations (NumPy
passes, fused FWHT kernels, future numba/GPU/distributed backends); all
must agree numerically to ≤1e-12 with :class:`NumpyBackend`, which is the
bit-identical wrapper over the seed kernels.

State layout is the repo-wide convention: dense ``complex128``, qubit
``q`` = bit ``q`` of the little-endian basis index; batches are
``(B, 2**n)`` with the batch index leading.  Parameter rows are packed
``[γ_1..γ_p, β_1..β_p]``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.quantum.backend.scratch import ScratchPool, shared_pool
from repro.quantum.statevector import n_qubits_for_dim, plus_state
from repro.util.tracing import current_trace

# Default sweep-chunk sizing (the cache-resident policy the engine has
# always used): as many rows as keep the two (chunk, 2**n) complex work
# buffers inside CHUNK_BUDGET_BYTES, capped at DEFAULT_CHUNK_SIZE rows.
# Backends that tolerate (or want) wider chunks override
# :meth:`StatevectorBackend.preferred_chunk_size`.
DEFAULT_CHUNK_SIZE = 64
CHUNK_BUDGET_BYTES = 512 * 1024


def cache_resident_chunk_size(n_qubits: int) -> int:
    """Chunk rows for which states + scratch fit ``CHUNK_BUDGET_BYTES``
    (clamped to [1, DEFAULT_CHUNK_SIZE]).  Measured on the batched NumPy
    QAOA kernels: past the cache budget, wider chunks *lose* to narrow
    ones, so this is the advisory default for elementwise backends."""
    row_bytes = 2 * (1 << n_qubits) * 16  # states + scratch rows
    return max(1, min(DEFAULT_CHUNK_SIZE, CHUNK_BUDGET_BYTES // row_bytes))


class BackendUnavailable(RuntimeError):
    """A registered backend cannot run in this environment (e.g. the
    ``compiled`` backend when numba is not installed).

    Raised at resolve/instantiation time so callers fail with a clear
    message instead of an ImportError mid-sweep; the auto policy never
    selects an unavailable backend."""


class StatevectorBackend(ABC):
    """Abstract statevector-evolution backend.

    Subclasses set ``name`` (the registry key) and implement the three
    layer primitives; the composed :meth:`evolve_batch`/:meth:`evolve_state`
    loops are provided here so a backend that only accelerates a primitive
    inherits correct composition, while backends that can fuse across
    layers (see :class:`repro.quantum.backend.fused.FusedBackend`)
    override them.
    """

    name: str = "abstract"

    # -- layer primitives ------------------------------------------------
    @abstractmethod
    def plus_state_batch(
        self, n_qubits: int, batch: int, *, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``batch`` copies of |+⟩^n as a ``(batch, 2**n)`` array."""

    @abstractmethod
    def apply_cost_layer(
        self,
        states: np.ndarray,
        diagonal: np.ndarray,
        gammas,
        *,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """In place: multiply by ``exp(-iγ · diagonal)``.

        ``states`` is a single ``(2**n,)`` vector with scalar ``gammas``,
        or a ``(B, 2**n)`` batch with a ``(B,)`` per-row γ vector.
        ``scratch`` is an optional same-shape phase-table buffer.
        """

    @abstractmethod
    def apply_mixer_layer(
        self,
        states: np.ndarray,
        betas,
        *,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """In place: apply ``exp(-iβ Σ_q X_q)`` (RX(2β) on every qubit).

        Same single/batched shape contract as :meth:`apply_cost_layer`;
        batched states additionally accept a scalar β shared by all rows.
        """

    @abstractmethod
    def walsh_transform(
        self, states: np.ndarray, *, scratch: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Unnormalised Walsh–Hadamard transform along the last axis,
        in place (carries a ``2**(n/2)`` factor relative to H^{⊗n})."""

    @abstractmethod
    def expectations_batch(
        self, states: np.ndarray, diagonal: np.ndarray
    ) -> np.ndarray:
        """⟨ψ_b| D |ψ_b⟩ for every row of a ``(B, 2**n)`` batch (real D)."""

    # -- chunk advice -----------------------------------------------------
    def preferred_chunk_size(
        self,
        n_qubits: int,
        *,
        batch: Optional[int] = None,
        layers: Optional[int] = None,
    ) -> int:
        """Advisory sweep-chunk width for this backend (rows per chunk).

        :class:`~repro.qaoa.engine.SweepEngine` consults this instead of
        hard-wiring the cache-budget heuristic, so backends whose kernels
        *want* wide batches (fused BLAS stages, compiled parallel loops)
        can ask for them while elementwise backends keep the
        cache-resident default.  Strictly advisory: results must be
        **bit-identical** for any chunking (pinned by
        ``tests/test_backends.py::TestChunkPolicy``), and the returned
        value must be a pure function of the arguments.  ``batch``/
        ``layers`` describe the sweep about to run when known; the engine
        clamps the advice to ``[1, batch]``.
        """
        return cache_resident_chunk_size(n_qubits)

    # -- composed evolution ---------------------------------------------
    def evolve_batch(
        self,
        diagonal: np.ndarray,
        params_matrix: np.ndarray,
        *,
        pool: Optional[ScratchPool] = None,
    ) -> np.ndarray:
        """Evolve |+⟩^n under p QAOA layers for every parameter row.

        ``params_matrix`` is ``(B, 2p)``; returns the pooled ``(B, 2**n)``
        state buffer, valid until the next backend call on the same pool
        (callers that need to retain states must copy).
        """
        mat = self._params_matrix(params_matrix)
        n = n_qubits_for_dim(len(diagonal))
        m, p = mat.shape[0], mat.shape[1] // 2
        dim = 1 << n
        pool = pool if pool is not None else shared_pool()
        with current_trace().span(
            "backend-evolve", backend=self.name, rows=m, layers=p
        ):
            states = self.plus_state_batch(n, m, out=pool.take("states", (m, dim)))
            scratch = pool.take("phases", (m, dim))
            for layer in range(p):
                self.apply_cost_layer(states, diagonal, mat[:, layer], scratch=scratch)
                # The phase scratch doubles as the mixer's ping-pong buffer.
                self.apply_mixer_layer(states, mat[:, p + layer], scratch=scratch)
            return states

    def evolve_state(self, diagonal: np.ndarray, params: np.ndarray) -> np.ndarray:
        """|ψ_p(γ, β)⟩ for one packed parameter vector (fresh array)."""
        params = np.asarray(params, dtype=np.float64)
        if params.ndim != 1 or len(params) % 2 != 0:
            raise ValueError("parameter vector must have even length (γs then βs)")
        n = n_qubits_for_dim(len(diagonal))
        p = len(params) // 2
        state = plus_state(n)
        for layer in range(p):
            state = self.apply_cost_layer(state, diagonal, params[layer])
            state = self.apply_mixer_layer(state, params[p + layer])
        return state

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _params_matrix(params_matrix: np.ndarray) -> np.ndarray:
        mat = np.asarray(params_matrix, dtype=np.float64)
        if mat.ndim == 1:
            mat = mat[None, :]
        if mat.ndim != 2:
            raise ValueError(f"expected (B, 2p) matrix, got ndim={mat.ndim}")
        if mat.shape[1] == 0 or mat.shape[1] % 2 != 0:
            raise ValueError(
                "parameter rows must have even positive length (γs then βs)"
            )
        return mat

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<{type(self).__name__} name={self.name!r}>"


__all__ = [
    "CHUNK_BUDGET_BYTES",
    "DEFAULT_CHUNK_SIZE",
    "BackendUnavailable",
    "StatevectorBackend",
    "cache_resident_chunk_size",
]
