"""Quantum circuit intermediate representation.

The circuit IR is deliberately small: a list of instructions over named
gates from :mod:`repro.quantum.gates`, with optional symbolic parameters
(:class:`ParamRef`) so a single ansatz structure can be rebound cheaply
inside the optimiser loop.  The synthesis layer (:mod:`repro.synth`) emits
and transforms these circuits; the simulator executes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.quantum.gates import DIAGONAL_GATES, GATE_SET


@dataclass(frozen=True)
class ParamRef:
    """Symbolic parameter: value = ``coeff * params[index]``.

    The QAOA ansatz uses this to tie every cost-layer RZZ angle to the layer's
    single γ (scaled by the edge weight) and every mixer RX to the layer's β.
    """

    index: int
    coeff: float = 1.0

    def resolve(self, params: Sequence[float]) -> float:
        return self.coeff * float(params[self.index])

    def __mul__(self, factor: float) -> "ParamRef":
        return ParamRef(self.index, self.coeff * float(factor))

    __rmul__ = __mul__


ParamLike = Union[float, ParamRef]


@dataclass(frozen=True)
class Instruction:
    """One gate application: name, target qubits, parameters."""

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[ParamLike, ...] = ()

    @property
    def is_parametric(self) -> bool:
        return any(isinstance(p, ParamRef) for p in self.params)

    def bind(self, values: Sequence[float]) -> "Instruction":
        if not self.is_parametric:
            return self
        resolved = tuple(
            p.resolve(values) if isinstance(p, ParamRef) else p for p in self.params
        )
        return Instruction(self.name, self.qubits, resolved)


class Circuit:
    """Mutable gate list over ``n_qubits`` qubits with builder methods.

    Example
    -------
    >>> qc = Circuit(2)
    >>> qc.h(0).cx(0, 1)                      # doctest: +ELLIPSIS
    <repro.quantum.circuit.Circuit object at ...>
    >>> qc.depth()
    2
    """

    def __init__(
        self,
        n_qubits: int,
        instructions: Optional[Iterable[Instruction]] = None,
        *,
        n_params: int = 0,
        metadata: Optional[dict] = None,
    ) -> None:
        if n_qubits < 0:
            raise ValueError("n_qubits must be non-negative")
        self.n_qubits = int(n_qubits)
        self.instructions: List[Instruction] = list(instructions or [])
        self.n_params = int(n_params)
        self.metadata: dict = dict(metadata or {})

    # ------------------------------------------------------------------
    # Builder API
    # ------------------------------------------------------------------
    def append(
        self, name: str, qubits: Sequence[int], params: Sequence[ParamLike] = ()
    ) -> "Circuit":
        if name not in GATE_SET:
            raise ValueError(f"unknown gate {name!r}")
        _, n_q, n_p = GATE_SET[name]
        qubits = tuple(int(q) for q in qubits)
        if len(qubits) != n_q:
            raise ValueError(f"gate {name!r} acts on {n_q} qubit(s), got {qubits}")
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubits in {name!r}: {qubits}")
        for q in qubits:
            if not 0 <= q < self.n_qubits:
                raise ValueError(f"qubit {q} out of range [0, {self.n_qubits})")
        params = tuple(params)
        if len(params) != n_p:
            raise ValueError(f"gate {name!r} expects {n_p} parameter(s)")
        for p in params:
            if isinstance(p, ParamRef):
                self.n_params = max(self.n_params, p.index + 1)
        self.instructions.append(Instruction(name, qubits, params))
        return self

    # Convenience single/two-qubit builders (chainable).
    def h(self, q: int) -> "Circuit":
        return self.append("h", (q,))

    def x(self, q: int) -> "Circuit":
        return self.append("x", (q,))

    def y(self, q: int) -> "Circuit":
        return self.append("y", (q,))

    def z(self, q: int) -> "Circuit":
        return self.append("z", (q,))

    def s(self, q: int) -> "Circuit":
        return self.append("s", (q,))

    def t(self, q: int) -> "Circuit":
        return self.append("t", (q,))

    def rx(self, theta: ParamLike, q: int) -> "Circuit":
        return self.append("rx", (q,), (theta,))

    def ry(self, theta: ParamLike, q: int) -> "Circuit":
        return self.append("ry", (q,), (theta,))

    def rz(self, theta: ParamLike, q: int) -> "Circuit":
        return self.append("rz", (q,), (theta,))

    def cx(self, control: int, target: int) -> "Circuit":
        return self.append("cx", (control, target))

    def cz(self, a: int, b: int) -> "Circuit":
        return self.append("cz", (a, b))

    def swap(self, a: int, b: int) -> "Circuit":
        return self.append("swap", (a, b))

    def rzz(self, theta: ParamLike, a: int, b: int) -> "Circuit":
        return self.append("rzz", (a, b), (theta,))

    # ------------------------------------------------------------------
    # Parameter binding
    # ------------------------------------------------------------------
    @property
    def is_parametric(self) -> bool:
        return any(ins.is_parametric for ins in self.instructions)

    def bind(self, values: Sequence[float]) -> "Circuit":
        """Return a concrete circuit with all :class:`ParamRef` resolved."""
        values = np.asarray(values, dtype=np.float64)
        if len(values) < self.n_params:
            raise ValueError(
                f"need {self.n_params} parameter values, got {len(values)}"
            )
        bound = Circuit(self.n_qubits, n_params=0, metadata=dict(self.metadata))
        bound.instructions = [ins.bind(values) for ins in self.instructions]
        return bound

    # ------------------------------------------------------------------
    # Metrics (the synthesis layer optimises these)
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Circuit depth under the all-to-all connectivity ASAP schedule."""
        level = [0] * self.n_qubits
        depth = 0
        for ins in self.instructions:
            start = max(level[q] for q in ins.qubits) + 1
            for q in ins.qubits:
                level[q] = start
            depth = max(depth, start)
        return depth

    def gate_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for ins in self.instructions:
            counts[ins.name] = counts.get(ins.name, 0) + 1
        return counts

    def two_qubit_count(self) -> int:
        return sum(1 for ins in self.instructions if len(ins.qubits) == 2)

    def size(self) -> int:
        return len(self.instructions)

    def is_diagonal(self) -> bool:
        """True when every gate is diagonal in the computational basis."""
        return all(ins.name in DIAGONAL_GATES for ins in self.instructions)

    # ------------------------------------------------------------------
    # Composition / misc
    # ------------------------------------------------------------------
    def compose(self, other: "Circuit") -> "Circuit":
        """Concatenate ``other`` after ``self`` (same qubit count required)."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("qubit count mismatch in compose")
        out = Circuit(
            self.n_qubits,
            self.instructions + other.instructions,
            n_params=max(self.n_params, other.n_params),
            metadata={**self.metadata, **other.metadata},
        )
        return out

    def copy(self) -> "Circuit":
        return Circuit(
            self.n_qubits,
            list(self.instructions),
            n_params=self.n_params,
            metadata=dict(self.metadata),
        )

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit(n_qubits={self.n_qubits}, size={self.size()}, "
            f"depth={self.depth()}, params={self.n_params})"
        )


__all__ = ["ParamRef", "ParamLike", "Instruction", "Circuit"]
