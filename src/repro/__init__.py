"""repro — reproduction of "Hybrid Classical-Quantum Simulation of MaxCut
using QAOA-in-QAOA" (Esposito & Danzig, IPPS 2024, arXiv:2406.17383).

The package implements the paper's full stack from scratch on NumPy/SciPy:

* :mod:`repro.graphs`   — weighted graphs, generators, MaxCut utilities,
  greedy-modularity partitioning (the QAOA² divide step).
* :mod:`repro.quantum`  — statevector simulator (local + cache-blocked
  distributed), circuit IR, Ising Hamiltonians.
* :mod:`repro.synth`    — Classiq-style model-to-optimized-circuit synthesis.
* :mod:`repro.optim`    — COBYLA (the paper's optimizer), SPSA, Nelder-Mead.
* :mod:`repro.qaoa`     — the QAOA MaxCut solver and recursive-QAOA extension.
* :mod:`repro.classical`— Goemans-Williamson with from-scratch SDP solvers,
  simulated annealing, exact solvers.
* :mod:`repro.qaoa2`    — QAOA-in-QAOA divide-and-conquer (the contribution).
* :mod:`repro.hpc`      — MPI-like communicator, executors, SLURM-like
  workload-manager simulator, coordinator/worker scheme.
* :mod:`repro.ml`       — QAOA-vs-GW method selection (features, classifier,
  knowledge base).
* :mod:`repro.experiments` — drivers regenerating every figure and table.

Quickstart
----------
>>> from repro import erdos_renyi, QAOASolver, goemans_williamson, QAOA2Solver
>>> graph = erdos_renyi(12, 0.3, rng=7)
>>> qaoa_cut = QAOASolver(layers=3, rng=0).solve(graph).cut
>>> gw_cut = goemans_williamson(graph, rng=0).best_cut
"""

from repro.classical import (
    GWResult,
    goemans_williamson,
    simulated_annealing,
    solve_maxcut_gw,
)
from repro.graphs import (
    CutResult,
    Graph,
    cut_value,
    erdos_renyi,
    exact_maxcut,
    partition_with_cap,
    random_cut,
)
from repro.qaoa import MaxCutEnergy, QAOAResult, QAOASolver, rqaoa_solve
from repro.qaoa2 import (
    DensityPolicy,
    QAOA2Result,
    QAOA2Solver,
)
from repro.quantum import (
    Circuit,
    DistributedStatevector,
    IsingHamiltonian,
    StatevectorSimulator,
)
from repro.synth import CombinatorialModel, Preferences, synthesize

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Graph",
    "erdos_renyi",
    "cut_value",
    "random_cut",
    "exact_maxcut",
    "partition_with_cap",
    "CutResult",
    "QAOASolver",
    "QAOAResult",
    "MaxCutEnergy",
    "rqaoa_solve",
    "goemans_williamson",
    "solve_maxcut_gw",
    "GWResult",
    "simulated_annealing",
    "QAOA2Solver",
    "QAOA2Result",
    "DensityPolicy",
    "Circuit",
    "StatevectorSimulator",
    "DistributedStatevector",
    "IsingHamiltonian",
    "CombinatorialModel",
    "Preferences",
    "synthesize",
]
