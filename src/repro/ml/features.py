"""Graph feature extraction for the QAOA-vs-GW method selector.

Moussa et al. (paper ref. [35]) train a classifier on graph features to
predict whether QAOA or GW will perform better on an instance; the paper
positions this repo's workflow as "a testbed to train and test such
selection mechanisms".  The feature set below captures the signals the
Fig. 3 grid search shows to matter (size, density/edge probability,
weighting) plus standard structure statistics.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.graphs.graph import Graph

FEATURE_NAMES: List[str] = [
    "n_nodes",
    "n_edges",
    "density",
    "mean_degree",
    "std_degree",
    "max_degree",
    "weighted",
    "weight_mean",
    "weight_std",
    "clustering",
    "spectral_radius_norm",
    "algebraic_connectivity_norm",
]


def _triangle_clustering(graph: Graph) -> float:
    """Global clustering coefficient = 3·triangles / connected triples.

    Dense-matrix trace computation — fine for the sub-graph sizes (≤ ~50
    nodes) this selector sees.
    """
    n = graph.n_nodes
    if n < 3 or graph.n_edges == 0:
        return 0.0
    a = (graph.adjacency() != 0).astype(np.float64)
    deg = a.sum(axis=1)
    triples = float(np.sum(deg * (deg - 1)) / 2.0)
    if triples == 0:
        return 0.0
    triangles = float(np.trace(a @ a @ a) / 6.0)
    return 3.0 * triangles / triples


def extract_features(graph: Graph) -> np.ndarray:
    """Feature vector in the order of :data:`FEATURE_NAMES`."""
    n = max(1, graph.n_nodes)
    deg = graph.degrees()
    if graph.n_edges:
        w_mean = float(graph.w.mean())
        w_std = float(graph.w.std())
    else:
        w_mean = w_std = 0.0
    if graph.n_nodes >= 2 and graph.n_edges:
        a = graph.adjacency()
        eig_a = np.linalg.eigvalsh(a)
        spectral_radius = float(np.max(np.abs(eig_a))) / n
        lap = graph.laplacian()
        eig_l = np.linalg.eigvalsh(lap)
        algebraic = float(np.sort(eig_l)[1]) / n
    else:
        spectral_radius = 0.0
        algebraic = 0.0
    return np.array(
        [
            float(graph.n_nodes),
            float(graph.n_edges),
            graph.density,
            float(deg.mean()) if len(deg) else 0.0,
            float(deg.std()) if len(deg) else 0.0,
            float(deg.max()) if len(deg) else 0.0,
            1.0 if graph.is_weighted else 0.0,
            w_mean,
            w_std,
            _triangle_clustering(graph),
            spectral_radius,
            algebraic,
        ]
    )


def feature_dict(graph: Graph) -> Dict[str, float]:
    """Named view of :func:`extract_features` (reports, debugging)."""
    return dict(zip(FEATURE_NAMES, extract_features(graph), strict=True))


__all__ = ["FEATURE_NAMES", "extract_features", "feature_dict"]
