"""Neural parameter prediction for QAOA warm starts (paper ref. [37]).

Amosy et al. (the paper's co-author's prior work, "Iterative-free quantum
approximate optimization algorithm using neural networks") train a network
to predict good initial (γ, β) from instance descriptions, and the paper
suggests the same for this workflow: "with a large dataset of QAOA
results, a neural network can be trained to predict initial parameters for
subsequent QAOA simulations".

This module provides that component from scratch: a small NumPy MLP
regressor mapping graph features to optimal angle vectors, trained on
grid-search/knowledge-base outcomes, plus the end-to-end
``predict_initial_parameters`` warm-start hook for
:class:`repro.qaoa.solver.QAOASolver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.ml.classifier import StandardScaler
from repro.ml.features import extract_features
from repro.qaoa.params import transfer_parameters
from repro.util.rng import RngLike, ensure_rng


@dataclass
class MLPRegressor:
    """Two-layer perceptron (tanh hidden layer) trained with Adam on MSE.

    Deliberately small: the training sets are grid-search outputs with at
    most a few thousand rows; a single hidden layer captures the smooth
    density/size -> angle mapping well.
    """

    hidden: int = 32
    learning_rate: float = 1e-2
    n_epochs: int = 400
    batch_size: int = 32
    l2: float = 1e-4
    w1: Optional[np.ndarray] = None
    b1: Optional[np.ndarray] = None
    w2: Optional[np.ndarray] = None
    b2: Optional[np.ndarray] = None
    loss_history_: List[float] = field(default_factory=list)

    def fit(self, x: np.ndarray, y: np.ndarray, rng: RngLike = None) -> "MLPRegressor":
        gen = ensure_rng(rng)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        n, d_in = x.shape
        d_out = y.shape[1]
        self.w1 = gen.standard_normal((d_in, self.hidden)) / np.sqrt(d_in)
        self.b1 = np.zeros(self.hidden)
        self.w2 = gen.standard_normal((self.hidden, d_out)) / np.sqrt(self.hidden)
        self.b2 = np.zeros(d_out)
        # Adam state
        params = [self.w1, self.b1, self.w2, self.b2]
        m = [np.zeros_like(p) for p in params]
        v = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        for _epoch in range(self.n_epochs):
            order = gen.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, yb = x[idx], y[idx]
                hidden_pre = xb @ self.w1 + self.b1
                hidden = np.tanh(hidden_pre)
                pred = hidden @ self.w2 + self.b2
                err = pred - yb
                epoch_loss += float(np.sum(err**2))
                grad_pred = 2.0 * err / len(xb)
                grad_w2 = hidden.T @ grad_pred + self.l2 * self.w2
                grad_b2 = grad_pred.sum(axis=0)
                grad_hidden = (grad_pred @ self.w2.T) * (1.0 - hidden**2)
                grad_w1 = xb.T @ grad_hidden + self.l2 * self.w1
                grad_b1 = grad_hidden.sum(axis=0)
                grads = [grad_w1, grad_b1, grad_w2, grad_b2]
                step += 1
                for k, (p, g) in enumerate(zip(params, grads, strict=True)):
                    m[k] = beta1 * m[k] + (1 - beta1) * g
                    v[k] = beta2 * v[k] + (1 - beta2) * g * g
                    m_hat = m[k] / (1 - beta1**step)
                    v_hat = v[k] / (1 - beta2**step)
                    p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
            self.loss_history_.append(epoch_loss / n)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.w1 is None:
            raise RuntimeError("model not fitted")
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        out = np.tanh(x @ self.w1 + self.b1) @ self.w2 + self.b2
        return out[0] if single else out


@dataclass
class ParameterPredictor:
    """Graph -> initial QAOA angles, the iterative-free warm start.

    Trains on (graph features, optimal parameter vector) pairs — e.g. the
    ``qaoa_params`` stored by the grid search — at a fixed layer count
    ``p_train``; predictions re-interpolate to any requested p.
    """

    p_train: int
    model: MLPRegressor = field(default_factory=MLPRegressor)
    scaler: StandardScaler = field(default_factory=StandardScaler)

    def fit(
        self,
        graphs: Sequence[Graph],
        parameter_vectors: Sequence[np.ndarray],
        rng: RngLike = None,
    ) -> "ParameterPredictor":
        x = np.array([extract_features(g) for g in graphs])
        y = np.array(
            [transfer_parameters(np.asarray(p, float), self.p_train) for p in parameter_vectors]
        )
        self.scaler.fit(x)
        self.model.fit(self.scaler.transform(x), y, rng=rng)
        return self

    def predict_initial_parameters(self, graph: Graph, p: Optional[int] = None) -> np.ndarray:
        """Angles for ``graph``, interpolated to ``p`` layers if given."""
        x = self.scaler.transform(extract_features(graph)[None, :])[0]
        params = self.model.predict(x)
        if p is not None and p != self.p_train:
            params = transfer_parameters(params, p)
        return params

    @staticmethod
    def from_knowledge_base(kb, p_train: int, rng: RngLike = None) -> "ParameterPredictor":
        """Train from a :class:`repro.ml.knowledge.KnowledgeBase`'s stored
        ``qaoa_params`` records (regenerating each record's graph)."""
        from repro.graphs.generators import erdos_renyi

        gen = ensure_rng(rng)
        graphs, vectors = [], []
        for rec in kb.records:
            if rec.qaoa_params is None:
                continue
            graphs.append(
                erdos_renyi(
                    rec.n_nodes, rec.edge_probability, weighted=rec.weighted,
                    rng=int(gen.integers(2**31)),
                )
            )
            vectors.append(np.asarray(rec.qaoa_params, dtype=np.float64))
        if not graphs:
            raise ValueError("knowledge base holds no parameter records")
        return ParameterPredictor(p_train).fit(graphs, vectors, rng=gen)


__all__ = ["MLPRegressor", "ParameterPredictor"]
