"""Logistic-regression QAOA-vs-GW selector (from-scratch NumPy).

A compact analogue of the Moussa-et-al. classifier [35]: standardised graph
features -> L2-regularised logistic regression trained by full-batch
gradient descent with a fixed-step schedule.  Small on purpose — the
training sets here are grid-search outputs with a few hundred rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.ml.features import extract_features
from repro.util.rng import RngLike, ensure_rng


@dataclass
class StandardScaler:
    """Column-wise standardisation fitted on the training matrix."""

    mean_: Optional[np.ndarray] = None
    scale_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        self.mean_ = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale < 1e-12] = 1.0
        self.scale_ = scale
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler not fitted")
        return (x - self.mean_) / self.scale_


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


@dataclass
class LogisticRegression:
    """L2-regularised logistic regression, full-batch gradient descent."""

    learning_rate: float = 0.1
    n_epochs: int = 500
    l2: float = 1e-3
    weights_: Optional[np.ndarray] = None
    bias_: float = 0.0
    loss_history_: list = field(default_factory=list)

    def fit(
        self, x: np.ndarray, y: np.ndarray, rng: RngLike = None
    ) -> "LogisticRegression":
        gen = ensure_rng(rng)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n, d = x.shape
        w = gen.standard_normal(d) * 0.01
        b = 0.0
        for _ in range(self.n_epochs):
            p = _sigmoid(x @ w + b)
            error = p - y
            grad_w = x.T @ error / n + self.l2 * w
            grad_b = float(error.mean())
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
            eps = 1e-12
            loss = float(
                -np.mean(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))
                + 0.5 * self.l2 * np.dot(w, w)
            )
            self.loss_history_.append(loss)
        self.weights_ = w
        self.bias_ = b
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("model not fitted")
        return _sigmoid(np.asarray(x, dtype=np.float64) @ self.weights_ + self.bias_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(np.int64)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == np.asarray(y)))


@dataclass
class MethodClassifier:
    """End-to-end selector: graph -> features -> scaled -> P(QAOA wins).

    Label convention: ``1`` = QAOA strictly better than the GW comparison
    value, ``0`` = GW at least as good.
    """

    model: LogisticRegression = field(default_factory=LogisticRegression)
    scaler: StandardScaler = field(default_factory=StandardScaler)
    threshold: float = 0.5

    def fit(
        self,
        graphs: Sequence[Graph],
        qaoa_wins: Sequence[int],
        rng: RngLike = None,
    ) -> "MethodClassifier":
        x = np.array([extract_features(g) for g in graphs])
        y = np.asarray(qaoa_wins, dtype=np.int64)
        self.scaler.fit(x)
        self.model.fit(self.scaler.transform(x), y, rng=rng)
        return self

    def fit_features(
        self, x: np.ndarray, y: np.ndarray, rng: RngLike = None
    ) -> "MethodClassifier":
        x = np.asarray(x, dtype=np.float64)
        self.scaler.fit(x)
        self.model.fit(self.scaler.transform(x), np.asarray(y), rng=rng)
        return self

    def predict_proba(self, graph: Graph) -> float:
        x = extract_features(graph)[None, :]
        return float(self.model.predict_proba(self.scaler.transform(x))[0])

    def predict_method(self, graph: Graph) -> str:
        return "qaoa" if self.predict_proba(graph) >= self.threshold else "gw"

    def accuracy(self, graphs: Sequence[Graph], qaoa_wins: Sequence[int]) -> float:
        x = np.array([extract_features(g) for g in graphs])
        return self.model.accuracy(self.scaler.transform(x), np.asarray(qaoa_wins))


def train_test_split(
    x: np.ndarray, y: np.ndarray, *, test_fraction: float = 0.25, rng: RngLike = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split; returns (x_train, y_train, x_test, y_test)."""
    gen = ensure_rng(rng)
    n = len(x)
    order = gen.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]


__all__ = [
    "StandardScaler",
    "LogisticRegression",
    "MethodClassifier",
    "train_test_split",
]
