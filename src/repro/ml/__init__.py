"""ML method-selection testbed: graph features, a from-scratch logistic
classifier (Moussa et al. analogue) and the grid-search knowledge base."""

from repro.ml.classifier import (
    LogisticRegression,
    MethodClassifier,
    StandardScaler,
    train_test_split,
)
from repro.ml.features import FEATURE_NAMES, extract_features, feature_dict
from repro.ml.knowledge import GridRecord, KnowledgeBase
from repro.ml.regressor import MLPRegressor, ParameterPredictor

__all__ = [
    "FEATURE_NAMES",
    "extract_features",
    "feature_dict",
    "StandardScaler",
    "LogisticRegression",
    "MethodClassifier",
    "train_test_split",
    "GridRecord",
    "KnowledgeBase",
    "MLPRegressor",
    "ParameterPredictor",
]
