"""Knowledge base of grid-search outcomes (the Fig. 3 "knowledge base").

The paper: "This creates a simple, yet instructive, knowledge base about
which type of parameterization of QAOA is more suitable for a type of graph
or whether a classical solution is better overall.  This knowledge can in
turn be used to optimally process a set of sub-graphs resulting from a step
in QAOA²."

Records are keyed by graph class (node count, edge probability/density,
weighted flag) and parameterisation (layers p, rhobeg).  Queries answer:

* ``recommend_method`` — should this sub-graph go to QAOA or GW?
* ``best_parameters`` — which (p, rhobeg) wins most for this graph class?
* ``warm_start_params`` — stored optimal angles for transfer (ref. [37]).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class GridRecord:
    """One grid-search observation."""

    n_nodes: int
    edge_probability: float
    weighted: bool
    layers: int
    rhobeg: float
    qaoa_cut: float
    gw_cut: float  # the paper's comparison value: 30-slice average
    qaoa_params: Optional[List[float]] = None

    @property
    def qaoa_win(self) -> bool:
        return self.qaoa_cut > self.gw_cut

    @property
    def ratio(self) -> float:
        if self.gw_cut == 0:
            return 1.0 if self.qaoa_cut == 0 else np.inf
        return self.qaoa_cut / self.gw_cut


def _density_bucket(p: float, width: float = 0.1) -> float:
    """Snap a density/edge probability to the paper's 0.1-wide grid."""
    return round(max(width, round(p / width) * width), 3)


@dataclass
class KnowledgeBase:
    """In-memory store with JSON (de)serialisation."""

    records: List[GridRecord] = field(default_factory=list)
    node_tolerance: int = 3
    density_width: float = 0.1

    def add(self, record: GridRecord) -> None:
        self.records.append(record)

    def extend(self, records: Sequence[GridRecord]) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    def _matching(
        self, n_nodes: int, density: float, weighted: Optional[bool]
    ) -> List[GridRecord]:
        bucket = _density_bucket(density, self.density_width)
        out = []
        for rec in self.records:
            if abs(rec.n_nodes - n_nodes) > self.node_tolerance:
                continue
            if abs(_density_bucket(rec.edge_probability, self.density_width) - bucket) > 1e-9:
                continue
            if weighted is not None and rec.weighted != weighted:
                continue
            out.append(rec)
        return out

    def win_rate(
        self, n_nodes: int, density: float, weighted: Optional[bool] = None
    ) -> Optional[float]:
        """Fraction of observations where QAOA strictly beat GW."""
        matches = self._matching(n_nodes, density, weighted)
        if not matches:
            return None
        return float(np.mean([rec.qaoa_win for rec in matches]))

    def recommend_method(
        self,
        n_nodes: int,
        density: float,
        weighted: Optional[bool] = None,
        *,
        win_threshold: float = 0.5,
    ) -> Optional[str]:
        """``qaoa`` if its historical win rate clears the threshold."""
        rate = self.win_rate(n_nodes, density, weighted)
        if rate is None:
            return None
        return "qaoa" if rate >= win_threshold else "gw"

    def best_parameters(
        self, n_nodes: int, density: float, weighted: Optional[bool] = None
    ) -> Optional[Tuple[int, float]]:
        """(layers, rhobeg) with the highest mean QAOA/GW ratio for the class.

        This is the Fig. 3(c) readout — the paper identifies
        (rhobeg=0.5, p=6) as the most successful combination.
        """
        matches = self._matching(n_nodes, density, weighted)
        if not matches:
            return None
        by_combo: Dict[Tuple[int, float], List[float]] = {}
        for rec in matches:
            by_combo.setdefault((rec.layers, rec.rhobeg), []).append(rec.ratio)
        best = max(by_combo.items(), key=lambda kv: np.mean(kv[1]))
        return best[0]

    def warm_start_params(
        self, n_nodes: int, density: float, weighted: Optional[bool] = None
    ) -> Optional[np.ndarray]:
        """Stored angles of the best observed run (parameter transfer)."""
        matches = [
            rec
            for rec in self._matching(n_nodes, density, weighted)
            if rec.qaoa_params is not None
        ]
        if not matches:
            return None
        best = max(matches, key=lambda rec: rec.ratio)
        return np.asarray(best.qaoa_params, dtype=np.float64)

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        payload = {
            "node_tolerance": self.node_tolerance,
            "density_width": self.density_width,
            "records": [asdict(rec) for rec in self.records],
        }
        Path(path).write_text(json.dumps(payload))

    @staticmethod
    def load(path: str | Path) -> "KnowledgeBase":
        payload = json.loads(Path(path).read_text())
        kb = KnowledgeBase(
            node_tolerance=payload.get("node_tolerance", 3),
            density_width=payload.get("density_width", 0.1),
        )
        kb.records = [GridRecord(**rec) for rec in payload["records"]]
        return kb


__all__ = ["GridRecord", "KnowledgeBase"]
