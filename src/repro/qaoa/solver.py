"""QAOA MaxCut solver (paper §3.2).

Pipeline per solve:

1. Build the fast diagonal evaluator for the graph.
2. Maximise F_p(β, γ) (Eq. 3) with the configured classical optimizer
   (COBYLA with the paper's ``rhobeg`` knob by default), exact-statevector
   or 4096-shot sampled objective.
3. Select the solution bitstring from the final state:
   ``top1`` — the highest-amplitude bitstring (the paper's choice),
   ``topk`` — best cut among the k highest amplitudes (the improvement the
   paper suggests in §3.2/§5), or
   ``sampled`` — best cut among ``shots`` sampled bitstrings (hardware-like).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import CutResult, bitstring_to_assignment
from repro.hpc.executor import map_jobs
from repro.optim import minimize, multi_start_spsa, spsa_perturbation_from_rhobeg
from repro.qaoa.energy import MaxCutEnergy
from repro.qaoa.params import default_iterations, initial_parameters
from repro.quantum.simulator import DEFAULT_SHOTS
from repro.quantum.statevector import plus_state, probabilities, top_amplitudes
from repro.util.rng import RngLike, ensure_rng


@dataclass
class QAOAResult:
    """Full QAOA outcome: solution plus optimisation trace."""

    assignment: np.ndarray
    cut: float
    energy: float  # F_p at the returned parameters
    params: np.ndarray
    layers: int
    nfev: int
    history: List[float] = field(default_factory=list)
    selection: str = "top1"
    extra: dict = field(default_factory=dict)

    def as_cut_result(self) -> CutResult:
        return CutResult(self.assignment, self.cut, "qaoa", dict(self.extra))


@dataclass
class QAOASolver:
    """Configurable QAOA MaxCut solver.

    Parameters mirror the paper's experimental knobs:

    layers:
        Ansatz depth p (paper sweeps 3–8).
    optimizer / rhobeg / maxiter:
        Classical optimisation loop; ``maxiter=None`` applies the paper's
        p-linear budget (30–100).  ``rhobeg`` is the swept COBYLA parameter.
    shots:
        Shots for the sampled objective and/or sampled selection (4096).
    objective:
        ``statevector`` (exact F_p) or ``sampled`` (shot-noise F_p).
    selection / top_k:
        Bitstring extraction rule (see module docstring).
    init:
        Initial-parameter strategy (``ramp`` | ``fixed`` | ``random`` |
        ``warm`` with ``warm_start``).
    n_starts:
        Independent optimizer starts; the best-seen iterate across all
        starts wins.  Start 0 uses the ``init`` strategy (so ``n_starts=1``
        is exactly the single-start solver); extra starts draw random
        angles from a spawned child generator, leaving the main RNG stream
        untouched.  With SPSA the starts advance in lock-step and every
        iteration evaluates all ± pairs as one ``(2*n_starts, 2p)`` engine
        batch (:func:`repro.optim.multi_start.multi_start_spsa`); the
        sequential optimizers fall back to one restart per start (see
        ``starts_executor`` to fan those restarts out in parallel).
    batched:
        When True (default) exact-statevector objectives hand the optimizer
        a vectorised ``(B, 2p) -> (B,)`` batch objective backed by the
        sweep engine.  Set False to force point-by-point evaluation — the
        parity/benchmark reference path.
    analytic:
        ``"auto"`` (default): with ``layers=1``, an exact-statevector
        objective is evaluated through the closed-form p=1 fast path
        (:mod:`repro.qaoa.analytic`) — O(E·n) per evaluation, no 2**n
        statevector — for both the point and batched objectives, so
        ``batched=True/False`` parity is preserved.  ``False`` forces the
        statevector objective at every depth (the cross-validation
        reference); ``True`` requires ``layers=1`` and an exact objective.
        Sampled, noisy, and p≥2 objectives always use statevectors, as
        does the final solution-selection state.
    keep_state:
        Store the final statevector in ``result.extra["final_state"]`` so
        downstream consumers (RQAOA's correlation sweep) reuse it instead
        of re-evolving the circuit.  Off by default: a 2**n complex array
        per result is too heavy to retain for bulk QAOA² sweeps.
    noise / noise_trajectories:
        Optional :class:`repro.quantum.noise.NoiseModel`; when set, the
        objective becomes the trajectory-averaged noisy ⟨H_C⟩ (NISQ
        rehearsal mode).  Solution selection still reads the noiseless
        final state, modelling error-free readout of the trained angles.
    engine:
        Optional pre-built :class:`repro.qaoa.engine.SweepEngine` for the
        graph being solved.  Shares its cached cut diagonal (skipping the
        dominant per-solve setup cost for repeated solves on one graph,
        e.g. a QAOA² sub-graph option grid) and backs the batched
        statevector objective.  Ignored if built for a different graph.
    backend:
        Statevector-evolution backend for every evolve in the solve —
        pointwise and batched objectives and the final selection state
        (``"auto"`` | a registered name | an instance; see
        :mod:`repro.quantum.backend`).  ``auto`` (default) picks the
        fused mixer kernel from 14 qubits and the bit-identical ``numpy``
        reference below.  When ``engine`` is supplied its backend wins,
        keeping the objective and the attached engine consistent.  The
        resolved name is recorded in ``result.extra["backend"]``.
    starts_executor:
        Optional :class:`repro.hpc.executor.ExecutorConfig` (or backend
        name string) for the sequential-optimizer multi-start fallback:
        COBYLA / Nelder–Mead restarts fan out through
        :func:`repro.hpc.executor.map_jobs` instead of running one after
        another.  Restarts are independent by construction — every start's
        initial point is drawn up front and each restart gets its own
        pre-spawned child generator — and results are reduced in
        submission order, so parallel runs are bit-identical to serial
        ones.  Only the ``thread`` backend is supported for parallelism
        (the objective closes over the engine's pooled buffers, which
        cannot pickle to a process pool); NumPy kernels release the GIL,
        so statevector-heavy restarts scale.  Objectives that consume RNG
        state per evaluation (``sampled`` / noisy) stay sequential to
        preserve their stream order.  Ignored for SPSA multi-start, which
        is already one lock-step batch.
    """

    layers: int = 3
    optimizer: str = "cobyla"
    rhobeg: float = 0.5
    maxiter: Optional[int] = None
    shots: int = DEFAULT_SHOTS
    objective: str = "statevector"
    selection: str = "top1"
    top_k: int = 16
    init: str = "ramp"
    n_starts: int = 1
    batched: bool = True
    analytic: object = "auto"  # "auto" | True | False
    keep_state: bool = False
    warm_start: Optional[np.ndarray] = None
    noise: Optional[object] = None  # repro.quantum.noise.NoiseModel
    noise_trajectories: int = 8
    engine: Optional[object] = None  # repro.qaoa.engine.SweepEngine
    backend: object = "auto"  # statevector backend spec (repro.quantum.backend)
    starts_executor: Optional[object] = None  # executor config | backend name
    rng: RngLike = None
    max_qubits: int = 26

    def solve(self, graph: Graph) -> QAOAResult:
        if graph.n_nodes > self.max_qubits:
            raise ValueError(
                f"graph has {graph.n_nodes} nodes > max_qubits={self.max_qubits}; "
                "partition it first (QAOA²) or raise the cap"
            )
        gen = ensure_rng(self.rng)
        if self.engine is not None and self.engine.graph is graph:
            # The engine's backend wins so the pointwise objective, the
            # batched objective and the final evolve all agree.
            energy = MaxCutEnergy(
                graph, diagonal=self.engine.diagonal, backend=self.engine.backend
            )
            energy.attach_engine(self.engine)
        else:
            energy = MaxCutEnergy(graph, backend=self.backend)
        backend_name = energy.backend.name
        if graph.n_edges == 0:
            assignment = np.zeros(graph.n_nodes, dtype=np.uint8)
            extra = {"backend": backend_name}
            if self.keep_state:
                extra["final_state"] = plus_state(graph.n_nodes)
            return QAOAResult(
                assignment, 0.0, 0.0, np.zeros(2 * self.layers), self.layers, 0,
                extra=extra,
            )
        maxiter = (
            self.maxiter if self.maxiter is not None else default_iterations(self.layers)
        )
        x0 = initial_parameters(
            self.layers, self.init, rng=gen, warm_start=self.warm_start
        )

        neg_fp_batch = None
        use_analytic = self._use_analytic()  # validates the knob up front
        if self.noise is not None and not self.noise.is_trivial():
            from repro.quantum.noise import noisy_expectation

            def neg_fp(params: np.ndarray) -> float:
                return -noisy_expectation(
                    energy, params, self.noise,
                    trajectories=self.noise_trajectories, rng=gen,
                )
        elif self.objective == "statevector":
            if use_analytic:
                # p=1 closed form: exact energies with no statevector at
                # all.  Both the point and batch objectives go through it,
                # so the batched=False parity path stays bit-identical.
                analytic = energy.analytic

                def neg_fp(params: np.ndarray) -> float:
                    return -analytic.energy(params)

                if self.batched:
                    def neg_fp_batch(params_matrix: np.ndarray) -> np.ndarray:
                        return -analytic.energies(params_matrix)
            else:
                def neg_fp(params: np.ndarray) -> float:
                    return -energy.expectation(params)

                # Exact objectives can be evaluated in batch (SPSA's ±
                # pairs, one row per start); shot-sampled and noisy
                # objectives stay per-point because each evaluation
                # consumes generator state.
                if self.batched:
                    def neg_fp_batch(params_matrix: np.ndarray) -> np.ndarray:
                        return -energy.energies_batch(params_matrix)
        elif self.objective == "sampled":
            def neg_fp(params: np.ndarray) -> float:
                return -energy.sampled_expectation(params, self.shots, rng=gen)
        else:
            raise ValueError(f"unknown objective {self.objective!r}")

        opt = self._optimize(neg_fp, neg_fp_batch, x0, maxiter, gen)
        if self.engine is not None and self.engine.graph is graph:
            # Bitwise-identical to the per-point evolve (pinned in tests),
            # but through the pooled batch kernels.
            state = self.engine.statevectors(np.asarray(opt.x))[0]
        else:
            state = energy.statevector(opt.x)
        assignment, cut, selection_info = self._select(graph, energy, state, gen)
        selection_info = dict(selection_info)
        selection_info["backend"] = backend_name
        if self.keep_state:
            selection_info["final_state"] = state
        return QAOAResult(
            assignment=assignment,
            cut=cut,
            energy=-opt.fun,
            params=opt.x,
            layers=self.layers,
            nfev=opt.nfev,
            history=[-h for h in opt.history],
            selection=self.selection,
            extra=selection_info,
        )

    # ------------------------------------------------------------------
    def _use_analytic(self) -> bool:
        """Whether the exact objective routes through the p=1 closed form."""
        if self.analytic is False:
            return False
        if self.analytic is True:
            if self.layers != 1:
                raise ValueError(
                    f"analytic=True requires layers=1, got layers={self.layers}"
                )
            if self.objective != "statevector":
                raise ValueError(
                    "analytic=True requires the exact 'statevector' objective"
                )
            if self.noise is not None and not self.noise.is_trivial():
                raise ValueError(
                    "analytic=True is incompatible with a noise model (the "
                    "closed form is noiseless)"
                )
            return True
        if self.analytic != "auto":
            raise ValueError(f"unknown analytic mode {self.analytic!r}")
        return self.layers == 1

    # ------------------------------------------------------------------
    def _optimize(self, neg_fp, neg_fp_batch, x0, maxiter, gen):
        """Run the configured optimizer over ``n_starts`` initial points."""
        if self.n_starts < 1:
            raise ValueError(f"n_starts must be >= 1, got {self.n_starts}")
        if self.n_starts == 1:
            return minimize(
                neg_fp,
                x0,
                method=self.optimizer,
                rhobeg=self.rhobeg,
                maxiter=maxiter,
                rng=gen,
                batch_fun=neg_fp_batch,
            )
        # Extra starts draw from a spawned child generator so the main
        # stream — and with it SPSA's shared perturbation sequence — is
        # exactly the n_starts=1 stream: adding starts can only improve
        # the best-seen iterate.
        child = gen.spawn(1)[0]
        x0s = np.stack(
            [
                x0,
                *(
                    initial_parameters(self.layers, "random", rng=child)
                    for _ in range(self.n_starts - 1)
                ),
            ]
        )
        if self.optimizer == "spsa":
            return multi_start_spsa(
                neg_fp,
                x0s,
                maxiter=maxiter,
                c=spsa_perturbation_from_rhobeg(self.rhobeg),
                rng=gen,
                batch_fun=neg_fp_batch,
            )
        # Sequential optimizers (COBYLA / Nelder-Mead): one restart per
        # start, best-seen result wins, nfev accumulated fleet-wide.
        # Restarts are independent — initial points were all drawn above
        # and each restart gets its own pre-spawned generator — so they
        # fan out through map_jobs when a starts_executor is configured,
        # and the submission-order reduction keeps parallel runs
        # bit-identical to serial ones.
        start_rngs = child.spawn(len(x0s))

        def run_restart(job) -> object:
            row, start_rng = job
            return minimize(
                neg_fp,
                row,
                method=self.optimizer,
                rhobeg=self.rhobeg,
                maxiter=maxiter,
                rng=start_rng,
                batch_fun=neg_fp_batch,
            )

        results = map_jobs(
            run_restart,
            list(zip(x0s, start_rngs, strict=True)),
            config=self._starts_executor_config(),
        )
        best = None
        nfev = 0
        for result in results:
            nfev += result.nfev
            if best is None or result.fun < best.fun:
                best = result
        best.nfev = nfev
        return best

    def _starts_executor_config(self):
        """Executor for the sequential multi-start fallback (validated)."""
        from repro.hpc.executor import ExecutorConfig

        config = self.starts_executor
        if config is None:
            return ExecutorConfig()  # serial
        if isinstance(config, str):
            config = ExecutorConfig(backend=config)
        if config.backend == "process":
            raise ValueError(
                "starts_executor cannot use the 'process' backend: the "
                "objective closes over unpicklable engine buffers; use "
                "'thread' (NumPy kernels release the GIL)"
            )
        if (
            config.backend != "serial"
            and (self.objective != "statevector"
                 or (self.noise is not None and not self.noise.is_trivial()))
        ):
            # Shot-sampled / noisy objectives consume generator state per
            # evaluation; keep their stream order serial.
            return ExecutorConfig()
        return config

    # ------------------------------------------------------------------
    def _select(
        self,
        graph: Graph,
        energy: MaxCutEnergy,
        state: np.ndarray,
        gen: np.random.Generator,
    ):
        n = graph.n_nodes
        if self.selection == "top1":
            idx = int(top_amplitudes(state, 1)[0])
            assignment = bitstring_to_assignment(idx, n)
            return assignment, float(energy.diagonal[idx]), {"bitstring": idx}
        if self.selection == "topk":
            candidates = top_amplitudes(state, self.top_k)
            cuts = energy.diagonal[candidates]
            best = int(candidates[int(np.argmax(cuts))])
            return (
                bitstring_to_assignment(best, n),
                float(energy.diagonal[best]),
                {"bitstring": best, "k": int(len(candidates))},
            )
        if self.selection == "sampled":
            probs = probabilities(state)
            probs /= probs.sum()
            samples = gen.choice(len(probs), size=self.shots, p=probs)
            unique = np.unique(samples)
            cuts = energy.diagonal[unique]
            best = int(unique[int(np.argmax(cuts))])
            return (
                bitstring_to_assignment(best, n),
                float(energy.diagonal[best]),
                {"bitstring": best, "distinct_sampled": int(len(unique))},
            )
        raise ValueError(f"unknown selection {self.selection!r}")


def solve_maxcut_qaoa(graph: Graph, **kwargs) -> QAOAResult:
    """One-call convenience wrapper: ``QAOASolver(**kwargs).solve(graph)``."""
    return QAOASolver(**kwargs).solve(graph)


__all__ = ["QAOAResult", "QAOASolver", "solve_maxcut_qaoa"]
