"""Batched QAOA evaluation engine for parameter sweeps.

Every experiment in the paper — the Fig. 3 grid search, the Table 1 runs,
the QAOA² sub-graph solves of §3.3 — evaluates the QAOA energy at *many*
parameter vectors over the *same* graph.  The per-vector path
(:class:`repro.qaoa.energy.MaxCutEnergy`) pays full Python dispatch per
evaluation; this module amortises it by evolving a whole batch of
statevectors at once.

Batching layout
---------------
A batch of ``B`` parameter vectors (rows of a ``(B, 2p)`` matrix, packed
``[γ_1..γ_p, β_1..β_p]`` like everywhere else in the repo) is simulated as
a single ``(B, 2**n)`` complex128 array: batch index leading, basis index
trailing.  The evolution itself is delegated to a pluggable
:class:`repro.quantum.backend.StatevectorBackend` (``backend=`` knob:
``"auto"`` | a registered name | an instance): ``numpy`` is the
bit-identical reference over the seed kernels (one batched diagonal phase
multiply plus one batched mixer pass per layer), ``fused`` applies the
mixer through its blocked Walsh–Hadamard diagonalisation — the default
``auto`` policy picks it from 14 qubits, where the per-qubit NumPy pass
count is the bottleneck.  Either way the Python interpreter runs
``O(p · n)`` ops per *batch* instead of per *vector*.

Memory model
------------
Peak working set is two ``(chunk, 2**n)`` complex buffers (states +
phase scratch) ≈ ``32 · chunk · 2**n`` bytes, regardless of how many
parameter vectors are requested: ``energies()`` walks the batch in
chunk-row slices.  By default the chunk width is **backend-advised**:
each sweep asks ``backend.preferred_chunk_size(n, batch=..., layers=...)``,
so the elementwise ``numpy`` backend keeps the cache-resident sizing
(at 14+ qubits an over-wide chunk spills the CPU cache and runs *slower*
than the per-point loop it replaces) while the ``fused``/``compiled``
backends — whose GEMM stages and parallel kernels *want* batch width —
get the wide chunks they tolerate.  Chunking is strictly an execution
detail: results are bit-identical for any chunk width (pinned in
``tests/test_backends.py``), and an explicit ``chunk_size=`` pins it.
Buffers live in a process-wide pool keyed by shape, so repeated engines
over equal-sized graphs (the QAOA² partition loop) reuse the same
allocations.

Evaluation tiers
----------------
Three tiers, cheapest first, picked automatically where exact energies
suffice:

1. **analytic** (p=1): the closed-form ⟨C⟩(γ, β) of
   :mod:`repro.qaoa.analytic` — O(E·n) per point, *no statevector*, so
   large-graph p=1 angle grids have no 2**n memory wall at all.
2. **spectral** (p=1 grids): mixer-eigenbasis statevector evaluation
   (:meth:`SweepEngine._angle_grid_spectral`), kept as the exact
   statevector cross-check of tier 1.
3. **generic**: chunked ``(B, 2**n)`` statevector batches — any depth,
   and the only tier that can hand back states (``statevectors``).

Consumers
---------
Every QAOA evaluator in the repo now routes through this engine: the
Fig. 3 grid search and angle-grid sweeps, the QAOA² sub-graph option grid
(one engine per sub-graph, pooled buffers shared across equal-sized
partitions — which is also what the Fig. 4 scaling study
``experiments/scaling.py`` rides on), RQAOA's per-elimination rounds
(``qaoa/rqaoa.py``: engine-backed statevector reuse plus one batched
correlation sweep per round), and the multi-start variational loop
(``repro.optim.multi_start.multi_start_spsa`` submits all ± perturbation
pairs of all starts as one ``(2S, 2p)`` batch per iteration via
``QAOASolver(n_starts=...)``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import cut_diagonal
from repro.qaoa.analytic import AnalyticP1Energy
from repro.quantum.backend import (
    ScratchPool,
    StatevectorBackend,
    resolve_backend,
    shared_pool,
)
from repro.quantum.backend.base import (
    CHUNK_BUDGET_BYTES,
    DEFAULT_CHUNK_SIZE,
    cache_resident_chunk_size,
)
from repro.util.tracing import current_trace

# Cap on the spectral angle-grid path's per-chunk working set (two
# (rows, 2**n) complex buffers: transformed states + WHT scratch).
SPECTRAL_BUDGET_BYTES = 256 * 1024 * 1024


def auto_chunk_size(n_qubits: int) -> int:
    """The cache-resident chunk sizing (delegates to
    :func:`repro.quantum.backend.base.cache_resident_chunk_size`).

    Kept as the historical ``repro.qaoa`` entry point; the engine itself
    now asks the backend (:meth:`StatevectorBackend.preferred_chunk_size`)
    rather than calling this directly — elementwise backends return
    exactly this value."""
    return cache_resident_chunk_size(n_qubits)


def spectral_row_bytes(n_qubits: int) -> int:
    """Spectral-path working set per γ row: a 2**n complex statevector,
    counted twice (transformed state + ping-pong scratch)."""
    return 2 * (1 << n_qubits) * 16


# ScratchPool and shared_pool now live in repro.quantum.backend.scratch
# (with an LRU byte budget); re-imported above and re-exported below for
# the historical repro.qaoa import path.


class SweepEngine:
    """Evaluates QAOA energies/states for batches of parameter vectors.

    Caches the graph's cut diagonal once (the dominant setup cost for
    repeated solves) and bounds peak memory with ``chunk_size`` — see the
    module docstring for the layout and memory model.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        diagonal: Optional[np.ndarray] = None,
        chunk_size: Optional[int] = None,
        pool: Optional[ScratchPool] = None,
        backend: object = "auto",
    ) -> None:
        if graph.n_nodes < 1:
            raise ValueError("graph must have at least one node")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.graph = graph
        self.n_qubits = graph.n_nodes
        if diagonal is not None and diagonal.shape != (1 << self.n_qubits,):
            raise ValueError("diagonal length does not match the graph")
        # Built lazily: the analytic tier never touches the 2**n diagonal,
        # so a p=1 angle grid on a graph far past the statevector wall must
        # not allocate it as a construction side effect.
        self._diagonal = diagonal
        # None → backend-advised per sweep (see chunk_rows); an explicit
        # value pins the chunk width for every call.
        self.chunk_size = chunk_size
        self.pool = pool if pool is not None else shared_pool()
        # Resolved eagerly (the policy is a pure function of n), so a bad
        # backend name fails at construction, not mid-sweep.
        self.backend: StatevectorBackend = resolve_backend(
            backend, n_qubits=self.n_qubits
        )
        self._analytic: Optional[AnalyticP1Energy] = None

    @property
    def backend_name(self) -> str:
        """The resolved statevector backend's registry name."""
        return self.backend.name

    @property
    def diagonal(self) -> np.ndarray:
        """The graph's 2**n cut diagonal (cached; built on first use by a
        statevector tier — caller-provided diagonals are validated and
        shared eagerly)."""
        if self._diagonal is None:
            # Span hook: the diagonal build is the dominant setup cost of
            # a cold solve (O(E · 2**n)) and worth seeing in a trace.
            with current_trace().span("cut_diagonal", n_qubits=self.n_qubits):
                self._diagonal = cut_diagonal(self.graph)
        return self._diagonal

    @property
    def analytic(self) -> AnalyticP1Energy:
        """The closed-form p=1 evaluator for this graph (built lazily).

        The engine's third evaluation tier: exact F_1 in O(E·n) per point
        with no 2**n statevector at all — see :mod:`repro.qaoa.analytic`.
        """
        if self._analytic is None:
            self._analytic = AnalyticP1Energy(self.graph)
        return self._analytic

    def energies_analytic(self, params_matrix: np.ndarray) -> np.ndarray:
        """Closed-form F_1 for every ``[γ, β]`` row of a ``(B, 2)`` matrix.

        Statevector-free; raises for p ≥ 2 rows (those go through
        :meth:`energies`).  Agrees with :meth:`energies` to ~1e-13.
        """
        return self.analytic.energies(params_matrix)

    # ------------------------------------------------------------------
    def chunk_rows(
        self, batch: int, layers: Optional[int] = None
    ) -> int:
        """The chunk width for a sweep of ``batch`` parameter rows.

        An explicit ``chunk_size=`` pins it; otherwise the backend's
        :meth:`~repro.quantum.backend.StatevectorBackend.preferred_chunk_size`
        advice is used.  Either way the result is clamped to
        ``[1, batch]`` (``batch=0`` sweeps still get a width of 1 so the
        chunk walk is well-formed).  Chunking never changes results —
        only working-set size and kernel batch width.
        """
        if self.chunk_size is not None:
            advised = self.chunk_size
        else:
            advised = self.backend.preferred_chunk_size(
                self.n_qubits, batch=batch, layers=layers
            )
        if batch > 0:
            advised = min(advised, batch)
        return max(1, int(advised))

    # ------------------------------------------------------------------
    @staticmethod
    def _params_matrix(params_matrix: np.ndarray) -> np.ndarray:
        """Canonicalise to ``(B, 2p)`` — one shared implementation with
        the backend layer, so both raise identical errors."""
        return StatevectorBackend._params_matrix(params_matrix)

    def _evolve_chunk(self, mat: np.ndarray) -> np.ndarray:
        """Evolve one chunk of parameter rows; returns the pooled state
        buffer (valid until the next engine call on the same pool)."""
        # The engine-chunk span: with tracing disabled (the default) the
        # contextvar holds NO_TRACE and this costs one no-op call.
        with current_trace().span(
            "evolve_chunk", rows=mat.shape[0], backend=self.backend.name
        ):
            return self.backend.evolve_batch(self.diagonal, mat, pool=self.pool)

    # ------------------------------------------------------------------
    def energies(self, params_matrix: np.ndarray) -> np.ndarray:
        """F_p(β, γ) for every row of ``params_matrix``; returns ``(B,)``.

        The batch is processed in ``chunk_size`` slices so memory stays
        bounded for arbitrarily large sweeps.
        """
        mat = self._params_matrix(params_matrix)
        chunk = self.chunk_rows(mat.shape[0], mat.shape[1] // 2)
        current_trace().annotate(
            chunk_count=-(-mat.shape[0] // chunk),
            chunk_size=chunk,
        )
        out = np.empty(mat.shape[0], dtype=np.float64)
        for start in range(0, mat.shape[0], chunk):
            stop = min(start + chunk, mat.shape[0])
            states = self._evolve_chunk(mat[start:stop])
            out[start:stop] = self.backend.expectations_batch(states, self.diagonal)
        return out

    def energy(self, params: np.ndarray) -> float:
        """Single-vector convenience wrapper over :meth:`energies`."""
        return float(self.energies(np.asarray(params))[0])

    def statevectors(self, params_matrix: np.ndarray) -> np.ndarray:
        """|ψ_p⟩ for every row, as a freshly-allocated ``(B, 2**n)`` array.

        Unlike :meth:`energies` this materialises the full batch of states
        (it copies each chunk out of the pooled buffer), so it is meant for
        validation and small batches, not huge sweeps.
        """
        mat = self._params_matrix(params_matrix)
        chunk = self.chunk_rows(mat.shape[0], mat.shape[1] // 2)
        out = np.empty((mat.shape[0], 1 << self.n_qubits), dtype=np.complex128)
        for start in range(0, mat.shape[0], chunk):
            stop = min(start + chunk, mat.shape[0])
            out[start:stop] = self._evolve_chunk(mat[start:stop])
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _angle_grid_axes(
        gammas: np.ndarray, betas: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Validate/canonicalise angle-grid axes to 2-D ``(G, p)``/``(B, p)``.

        1-D axes mean p=1; 2-D axes carry one angle per layer per row.  The
        two axes must agree on p — mixing a 1-D axis with a p≥2 axis (or
        passing higher-rank arrays) raises instead of being silently
        misread as p=1 input, which is what the old code did.
        """
        gammas = np.asarray(gammas, dtype=np.float64)
        betas = np.asarray(betas, dtype=np.float64)
        if gammas.ndim not in (1, 2) or betas.ndim not in (1, 2):
            raise ValueError(
                f"angle axes must be 1-D (p=1) or (rows, p) 2-D arrays, "
                f"got gammas ndim={gammas.ndim}, betas ndim={betas.ndim}"
            )
        if gammas.ndim == 1:
            gammas = gammas[:, None]
        if betas.ndim == 1:
            betas = betas[:, None]
        if gammas.shape[1] != betas.shape[1]:
            raise ValueError(
                f"gammas carry p={gammas.shape[1]} layer(s) per row but "
                f"betas carry p={betas.shape[1]} — both axes must use the "
                f"same ansatz depth"
            )
        if gammas.shape[1] == 0:
            raise ValueError("angle axes must have at least one layer")
        return gammas, betas, gammas.shape[1]

    def angle_grid(
        self,
        gammas: np.ndarray,
        betas: np.ndarray,
        *,
        method: str = "auto",
    ) -> np.ndarray:
        """Energy landscape ``out[i, j] = F_p(γ=gammas[i], β=betas[j])``.

        This is the (γ, β) product grid of the paper's landscape-style
        sweeps, now at any depth: 1-D axes are the classic p=1 landscape;
        ``(G, p)``/``(B, p)`` axes pair row ``i`` of per-layer γs with row
        ``j`` of per-layer βs.

        Evaluation tiers (``method="auto"``):

        * ``analytic`` — p=1 only: the closed form of
          :mod:`repro.qaoa.analytic`, O(E·n) per γ with the β axis an
          outer product.  No statevector, no 2**n memory wall.
        * ``spectral`` — p=1 only: the mixer-eigenbasis statevector path
          (:meth:`_angle_grid_spectral`), kept as the exact-statevector
          cross-check of the analytic tier.
        * ``batched`` — any p: the product grid flattened into one chunked
          generic :meth:`energies` batch.

        ``auto`` picks ``analytic`` for p=1 and ``batched`` otherwise; all
        tiers agree to ~1e-13 (pinned in tests).
        """
        gammas, betas, p = self._angle_grid_axes(gammas, betas)
        n_g, n_b = gammas.shape[0], betas.shape[0]
        if method == "auto":
            method = "analytic" if p == 1 else "batched"
        if method in ("analytic", "spectral") and p != 1:
            raise ValueError(
                f"the {method!r} tier supports p=1 only, got p={p}; use "
                f"method='batched' (or 'auto') for deeper grids"
            )
        if n_g == 0 or n_b == 0:
            return np.zeros((n_g, n_b), dtype=np.float64)
        if method == "analytic":
            return self.analytic.grid(gammas[:, 0], betas[:, 0])
        if method == "spectral":
            return self._angle_grid_spectral(gammas[:, 0], betas[:, 0])
        if method == "batched":
            mat = np.empty((n_g * n_b, 2 * p), dtype=np.float64)
            mat[:, :p] = np.repeat(gammas, n_b, axis=0)
            mat[:, p:] = np.tile(betas, (n_g, 1))
            return self.energies(mat).reshape(n_g, n_b)
        raise ValueError(f"unknown angle-grid method {method!r}")

    def _angle_grid_spectral(
        self, gammas: np.ndarray, betas: np.ndarray
    ) -> np.ndarray:
        """Mixer-eigenbasis grid evaluation.

        With ``|ψ(γ,β)⟩ = U_B(β) |φ_γ⟩`` and
        ``U_B = H^{⊗n} e^{-iβ ΣZ} H^{⊗n}``, each edge observable conjugates
        to ``H Z_a Z_b H = X_a X_b`` — a two-axis bit flip on the
        transformed state ``u_γ = H^{⊗n} φ_γ``.  Splitting the matrix
        element by the flipped bits, the β dependence collapses to a single
        harmonic:

            F(γ, β) = W/2 − Q(γ)/2 − Re[P(γ) · e^{4iβ}]

        where, over edges (a, b, w) with flip bijections between the
        bit-sectors of (x_a, x_b),

            P(γ) = Σ_e w_e Σ_{x_a=x_b=0} ū(x) u(x ⊕ m_e)
            Q(γ) = Σ_e w_e · 2 Re Σ_{x_a=0, x_b=1} ū(x) u(x ⊕ m_e).

        Cost per γ chunk: one WHT plus O(E) masked dot products; every β
        column is then O(1) per grid point.  (This is the same collapse
        that gives the classical p=1 MaxCut formula its cos(4β) harmonic.)
        """
        n = self.n_qubits
        dim = 1 << n
        total_weight = float(np.sum(self.graph.w)) if self.graph.n_edges else 0.0
        e4 = np.exp(4j * betas)
        out = np.empty((len(gammas), len(betas)), dtype=np.float64)
        rows = max(
            1,
            min(
                self.chunk_rows(len(gammas), 1),
                SPECTRAL_BUDGET_BYTES // spectral_row_bytes(n),
            ),
        )
        for start in range(0, len(gammas), rows):
            stop = min(start + rows, len(gammas))
            m = stop - start
            backend = self.backend
            states = backend.plus_state_batch(
                n, m, out=self.pool.take("states", (m, dim))
            )
            scratch = self.pool.take("phases", (m, dim))
            backend.apply_cost_layer(
                states, self.diagonal, gammas[start:stop], scratch=scratch
            )
            with current_trace().span(
                "walsh_stage", rows=m, backend=backend.name
            ):
                backend.walsh_transform(states, scratch=scratch)
            # Axis layout: axis 1 + (n-1-q) of the (m, 2, ..., 2) view is
            # qubit q (little-endian index convention).
            view = states.reshape((m, *((2,) * n)))
            harmonic = np.zeros(m, dtype=np.complex128)  # P
            constant = np.zeros(m, dtype=np.float64)  # Q
            for a, b, weight in zip(self.graph.u, self.graph.v, self.graph.w, strict=True):
                ax_a = 1 + (n - 1 - int(a))
                ax_b = 1 + (n - 1 - int(b))

                def sector(bit_a: int, bit_b: int) -> np.ndarray:
                    idx = [slice(None)] * (n + 1)
                    idx[ax_a] = bit_a
                    idx[ax_b] = bit_b
                    return view[tuple(idx)]

                both_zero = (
                    (np.conj(sector(0, 0)) * sector(1, 1))
                    .reshape(m, -1)
                    .sum(axis=1)
                )
                mixed = (
                    (np.conj(sector(0, 1)) * sector(1, 0))
                    .reshape(m, -1)
                    .sum(axis=1)
                )
                harmonic += weight * both_zero
                constant += weight * 2.0 * np.real(mixed)
            # u is the unnormalised WHT (factor √dim per appearance; it
            # appears twice in each sector product).
            harmonic /= dim
            constant /= dim
            out[start:stop] = (
                total_weight / 2.0
                - constant[:, None] / 2.0
                - np.real(np.multiply.outer(harmonic, e4))
            )
        return out


__all__ = [
    "CHUNK_BUDGET_BYTES",
    "DEFAULT_CHUNK_SIZE",
    "ScratchPool",
    "SweepEngine",
    "auto_chunk_size",
    "shared_pool",
]
