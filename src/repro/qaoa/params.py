"""Initial-parameter strategies for QAOA.

The paper sweeps COBYLA's ``rhobeg`` and notes that higher layer counts
"would be expected to reach better results using more iterations or better
initial parameters", citing the neural-initialisation work [37].  This
module provides the initialisation strategies used across the repo,
including the knowledge-base warm start (a lightweight [37] analogue fed by
the Fig. 3 grid search).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.util.rng import RngLike, ensure_rng


def fixed_init(p: int, gamma0: float = 0.1, beta0: float = 0.1) -> np.ndarray:
    """Constant small angles — a neutral, reproducible default."""
    return np.concatenate([np.full(p, gamma0), np.full(p, beta0)])


def linear_ramp_init(p: int, delta: float = 0.75) -> np.ndarray:
    """Trotterised-annealing ramp: γ grows, β shrinks across layers.

    This is the standard QAOA warm start derived from the adiabatic limit
    (γ_l = (l+½)/p · Δ, β_l = (1 − (l+½)/p) · Δ).
    """
    steps = (np.arange(p) + 0.5) / p
    return np.concatenate([steps * delta, (1.0 - steps) * delta])


def random_init(p: int, rng: RngLike = None, scale: float = np.pi / 4) -> np.ndarray:
    """Uniform random angles in ``[-scale, scale]``."""
    gen = ensure_rng(rng)
    return gen.uniform(-scale, scale, size=2 * p)


def initial_parameters(
    p: int,
    strategy: str = "ramp",
    *,
    rng: RngLike = None,
    warm_start: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Dispatch on strategy name: ``fixed`` | ``ramp`` | ``random`` | ``warm``.

    ``warm`` requires ``warm_start`` (e.g. from
    :class:`repro.ml.knowledge.KnowledgeBase`); if the stored vector has a
    different layer count it is linearly re-interpolated, which is the
    standard parameter-transfer trick.
    """
    if strategy == "fixed":
        return fixed_init(p)
    if strategy == "ramp":
        return linear_ramp_init(p)
    if strategy == "random":
        return random_init(p, rng=rng)
    if strategy == "warm":
        if warm_start is None:
            raise ValueError("warm strategy requires warm_start parameters")
        return transfer_parameters(np.asarray(warm_start, dtype=np.float64), p)
    raise ValueError(f"unknown parameter strategy {strategy!r}")


def transfer_parameters(params: np.ndarray, p_new: int) -> np.ndarray:
    """Re-interpolate a (γ, β) schedule onto a different layer count.

    Standard linear interpolation of the per-layer schedules, preserving the
    annealing-path shape (used when the knowledge base stores parameters at a
    different p than requested).
    """
    if len(params) % 2 != 0:
        raise ValueError("parameter vector must have even length")
    p_old = len(params) // 2
    if p_old == p_new:
        return params.copy()
    old_grid = np.linspace(0.0, 1.0, p_old) if p_old > 1 else np.array([0.5])
    new_grid = np.linspace(0.0, 1.0, p_new) if p_new > 1 else np.array([0.5])
    gammas = np.interp(new_grid, old_grid, params[:p_old])
    betas = np.interp(new_grid, old_grid, params[p_old:])
    return np.concatenate([gammas, betas])


def default_iterations(p: int, lo: int = 30, hi: int = 100) -> int:
    """The paper's iteration budget: "linearly dependent on p, ranging from
    30 to 100 steps" for p ∈ {3..8}."""
    p_min, p_max = 3, 8
    if p <= p_min:
        return lo
    if p >= p_max:
        return hi
    frac = (p - p_min) / (p_max - p_min)
    return int(round(lo + frac * (hi - lo)))


__all__ = [
    "fixed_init",
    "linear_ramp_init",
    "random_init",
    "initial_parameters",
    "transfer_parameters",
    "default_iterations",
]
