"""Fast QAOA energy evaluation for MaxCut.

The QAOA cost unitary ``exp(-iγ H_C)`` is *diagonal* in the computational
basis and the MaxCut H_C diagonal is the cut-value vector, so one QAOA
objective evaluation is: one elementwise complex exponential multiply per
layer plus ``n`` vectorised RX passes for the mixer.  This is the hot loop
of every experiment in the paper; no circuit objects are built inside it.
The circuit-level simulator path (via :mod:`repro.synth`) computes the same
state and is cross-validated in the tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import cut_diagonal
from repro.quantum.backend import resolve_backend
from repro.quantum.statevector import probabilities
from repro.util.rng import RngLike, ensure_rng


class MaxCutEnergy:
    """Caches the cut diagonal of a graph and evaluates QAOA states/energies.

    Parameters are packed ``[γ_1..γ_p, β_1..β_p]`` (gammas first), matching
    :func:`repro.synth.synthesis.qaoa_ansatz`.

    ``backend`` selects the statevector-evolution backend for both the
    pointwise path and the lazily built sweep engine (``"auto"``, a
    registered name, or an instance — see :mod:`repro.quantum.backend`).
    ``None`` (the default) pins the bit-identical ``numpy`` reference, so
    a bare ``MaxCutEnergy(graph)`` reproduces the seed implementation
    exactly at any size.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        diagonal: Optional[np.ndarray] = None,
        backend: Optional[object] = None,
    ) -> None:
        if graph.n_nodes < 1:
            raise ValueError("graph must have at least one node")
        self.graph = graph
        self.n_qubits = graph.n_nodes
        # ``diagonal`` lets a caller that already built the cut diagonal
        # (e.g. a SweepEngine solving the same graph repeatedly) share it —
        # constructing it is the dominant per-solve setup cost.
        self.diagonal = diagonal if diagonal is not None else cut_diagonal(graph)
        if self.diagonal.shape != (1 << self.n_qubits,):
            raise ValueError("diagonal length does not match the graph")
        self._backend_spec = backend
        # batch=1: the pointwise objective has no sweep width, so the auto
        # policy keeps it on the NumPy-family backends (a row-parallel
        # compiled kernel has nothing to parallelise over here).
        self.backend = resolve_backend(
            "numpy" if backend is None else backend,
            n_qubits=self.n_qubits,
            batch=1,
        )
        self._engine = None  # lazy SweepEngine for the batch path
        self._analytic = None  # lazy AnalyticP1Energy for the p=1 fast path

    # ------------------------------------------------------------------
    def split_params(self, params: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        params = np.asarray(params, dtype=np.float64)
        if len(params) % 2 != 0:
            raise ValueError("parameter vector must have even length (γs then βs)")
        p = len(params) // 2
        return params[:p], params[p:]

    def statevector(self, params: np.ndarray) -> np.ndarray:
        """|ψ_p(β, γ)⟩ via the configured backend (paper Eq. 2)."""
        self.split_params(params)  # shape validation, same errors as ever
        return self.backend.evolve_state(self.diagonal, np.asarray(params, float))

    def expectation(self, params: np.ndarray) -> float:
        """Exact F_p(β, γ) = ⟨ψ|H_C|ψ⟩ (paper Eq. 3)."""
        state = self.statevector(params)
        return float(np.dot(probabilities(state), self.diagonal))

    def sampled_expectation(
        self, params: np.ndarray, shots: int, rng: RngLike = None
    ) -> float:
        """Shot-noise estimate of F_p using ``shots`` samples (paper: 4096)."""
        gen = ensure_rng(rng)
        state = self.statevector(params)
        probs = probabilities(state)
        probs /= probs.sum()
        idx = gen.choice(len(probs), size=shots, p=probs)
        return float(self.diagonal[idx].mean())

    def expectation_from_state(self, state: np.ndarray) -> float:
        return float(np.dot(probabilities(state), self.diagonal))

    # ------------------------------------------------------------------
    def attach_engine(self, engine) -> None:
        """Back the batch path with a caller-provided SweepEngine (so its
        chunk_size/pool configuration is honoured, not just its diagonal)."""
        if engine.graph is not self.graph:
            raise ValueError("engine was built for a different graph")
        self._engine = engine

    def engine(self, **engine_kwargs) -> "SweepEngine":
        """The batched evaluator for this graph (built lazily, shares the
        cached diagonal and the backend spec).  See
        :class:`repro.qaoa.engine.SweepEngine`."""
        from repro.qaoa.engine import SweepEngine

        if self._engine is None or engine_kwargs:
            transient = bool(engine_kwargs)
            # The default spec (None) pins numpy for the engine too, so a
            # bare MaxCutEnergy keeps its seed-identical contract on both
            # the pointwise and batched paths; auto/fused arrive only via
            # an explicit backend= (as QAOASolver passes).
            engine_kwargs.setdefault(
                "backend",
                "numpy" if self._backend_spec is None else self._backend_spec,
            )
            engine = SweepEngine(self.graph, diagonal=self.diagonal, **engine_kwargs)
            if transient:
                return engine
            self._engine = engine
        return self._engine

    def energies_batch(self, params_matrix: np.ndarray) -> np.ndarray:
        """F_p for every row of a ``(B, 2p)`` parameter matrix at once.

        Delegates to the chunked :class:`~repro.qaoa.engine.SweepEngine`;
        agrees elementwise with :meth:`expectation` per row (property-tested
        in ``tests/test_batched_statevector.py``).
        """
        return self.engine().energies(params_matrix)

    def statevectors_batch(self, params_matrix: np.ndarray) -> np.ndarray:
        """|ψ_p⟩ for every row of a ``(B, 2p)`` parameter matrix."""
        return self.engine().statevectors(params_matrix)

    # ------------------------------------------------------------------
    @property
    def analytic(self):
        """Closed-form p=1 evaluator for this graph (lazy; shares the
        attached engine's instance when one is present).  See
        :class:`repro.qaoa.analytic.AnalyticP1Energy`."""
        if self._engine is not None:
            return self._engine.analytic
        if self._analytic is None:
            from repro.qaoa.analytic import AnalyticP1Energy

            self._analytic = AnalyticP1Energy(self.graph)
        return self._analytic

    def analytic_expectation(self, params: np.ndarray) -> float:
        """Exact F_1(γ, β) via the closed form — O(E·n), no statevector.

        p=1 only; agrees with :meth:`expectation` to ~1e-13 (pinned in
        ``tests/test_analytic_p1.py``).
        """
        return self.analytic.energy(params)

    def analytic_energies(self, params_matrix: np.ndarray) -> np.ndarray:
        """Closed-form F_1 for every ``[γ, β]`` row of a ``(B, 2)`` matrix."""
        return self.analytic.energies(params_matrix)

    # ------------------------------------------------------------------
    def max_cut_upper_bound(self) -> float:
        """max over the diagonal — the exact optimum (used in tests)."""
        return float(self.diagonal.max())


__all__ = ["MaxCutEnergy"]
