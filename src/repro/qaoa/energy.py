"""Fast QAOA energy evaluation for MaxCut.

The QAOA cost unitary ``exp(-iγ H_C)`` is *diagonal* in the computational
basis and the MaxCut H_C diagonal is the cut-value vector, so one QAOA
objective evaluation is: one elementwise complex exponential multiply per
layer plus ``n`` vectorised RX passes for the mixer.  This is the hot loop
of every experiment in the paper; no circuit objects are built inside it.
The circuit-level simulator path (via :mod:`repro.synth`) computes the same
state and is cross-validated in the tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import cut_diagonal
from repro.quantum.statevector import (
    apply_rx_layer,
    plus_state,
    probabilities,
)
from repro.util.rng import RngLike, ensure_rng


class MaxCutEnergy:
    """Caches the cut diagonal of a graph and evaluates QAOA states/energies.

    Parameters are packed ``[γ_1..γ_p, β_1..β_p]`` (gammas first), matching
    :func:`repro.synth.synthesis.qaoa_ansatz`.
    """

    def __init__(self, graph: Graph) -> None:
        if graph.n_nodes < 1:
            raise ValueError("graph must have at least one node")
        self.graph = graph
        self.n_qubits = graph.n_nodes
        self.diagonal = cut_diagonal(graph)

    # ------------------------------------------------------------------
    def split_params(self, params: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        params = np.asarray(params, dtype=np.float64)
        if len(params) % 2 != 0:
            raise ValueError("parameter vector must have even length (γs then βs)")
        p = len(params) // 2
        return params[:p], params[p:]

    def statevector(self, params: np.ndarray) -> np.ndarray:
        """|ψ_p(β, γ)⟩ via the diagonal fast path (paper Eq. 2)."""
        gammas, betas = self.split_params(params)
        state = plus_state(self.n_qubits)
        for gamma, beta in zip(gammas, betas):
            state *= np.exp(-1j * gamma * self.diagonal)
            state = apply_rx_layer(state, beta)
        return state

    def expectation(self, params: np.ndarray) -> float:
        """Exact F_p(β, γ) = ⟨ψ|H_C|ψ⟩ (paper Eq. 3)."""
        state = self.statevector(params)
        return float(np.dot(probabilities(state), self.diagonal))

    def sampled_expectation(
        self, params: np.ndarray, shots: int, rng: RngLike = None
    ) -> float:
        """Shot-noise estimate of F_p using ``shots`` samples (paper: 4096)."""
        gen = ensure_rng(rng)
        state = self.statevector(params)
        probs = probabilities(state)
        probs /= probs.sum()
        idx = gen.choice(len(probs), size=shots, p=probs)
        return float(self.diagonal[idx].mean())

    def expectation_from_state(self, state: np.ndarray) -> float:
        return float(np.dot(probabilities(state), self.diagonal))

    # ------------------------------------------------------------------
    def max_cut_upper_bound(self) -> float:
        """max over the diagonal — the exact optimum (used in tests)."""
        return float(self.diagonal.max())


__all__ = ["MaxCutEnergy"]
