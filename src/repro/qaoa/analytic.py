"""Closed-form p=1 QAOA MaxCut energies — no statevector required.

For depth p=1 the QAOA expectation ⟨C⟩(γ, β) is known in closed form
(Wang et al., PRA 97, 022304; Ozaeta et al. for the weighted case).  With
the repo's conventions — cost layer ``exp(-iγ·C)`` over the cut diagonal,
mixer ``exp(-iβ ΣX)`` — and weighted adjacency ``A`` the per-edge pieces
collapse to two β harmonics:

    F(γ, β) = W/2 + sin(4β) · S(γ) + sin²(2β) · T(γ)

    S(γ) = ¼ Σ_e w_e sin(γ w_e) · (Π_u + Π_v)
    T(γ) = ¼ Σ_e w_e · (Π⁺ − Π⁻)

    Π_u  = Π_{k ≠ v} cos(γ A[u, k])        (and symmetrically Π_v)
    Π^± = Π_{k ∉ {u, v}} cos(γ (A[u, k] ± A[v, k]))

Non-edges contribute ``cos(0) = 1``, so the products can be evaluated two
ways, selected by the ``mode`` knob:

* **dense** — stream every product over a dense adjacency row, masking
  only the endpoint columns: O(E·n) per γ, best when most node pairs are
  edges anyway;
* **csr** — gather only the *actual* neighbour entries: per edge, the
  Π products run over CSR neighbour segments (``Π_u`` over N(u)∖{v};
  ``Π±`` over the entries of the row-sum/row-difference sparse matrices
  ``A[u,:] ± A[v,:]`` with the endpoint columns zeroed — absent
  neighbours are implicit ``cos(0) = 1``), reduced with one
  ``multiply.reduceat`` per segment block.  Cost: O(E·deg) per γ, the
  true sparse complexity, which is what large sparse graphs (≳10⁴ nodes
  at low density) need.

``mode="auto"`` picks ``csr`` at or below ``CSR_DENSITY_THRESHOLD`` and
``dense`` above it; both paths agree to ~1e-12 (pinned in tests).  One
energy costs O(E·deg..E·n) — *independent of 2^n* — which removes the
statevector memory wall from large sub-graph p=1 sweeps entirely.  The β
axis separates from the γ axis, so a full (γ, β) angle grid costs one S/T
pass over the γ axis plus an outer product.

:class:`AnalyticP1Energy` is the third :class:`repro.qaoa.engine.SweepEngine`
evaluation tier (analytic p=1 → spectral grid → chunked generic batches) and
backs the p=1 objectives of :class:`repro.qaoa.solver.QAOASolver`, the QAOA²
sub-graph option grid, and RQAOA's round-0 angle seeding.  Agreement with
the statevector paths is pinned to ≤1e-9 in ``tests/test_analytic_p1.py``
and measured by ``benchmarks/bench_analytic_p1.py``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.graph import Graph

# Target size of the (γ-chunk, edge-chunk, n) cosine scratch block.  The
# terms pass streams four such products per chunk; past a few MiB wider
# chunks stop helping (same ufunc traffic, colder cache).
TERMS_BUDGET_BYTES = 8 * 1024 * 1024
# mode="auto" switches from the dense-row path to the CSR neighbour-gather
# path at or below this edge density: the gather's O(E·deg) work wins once
# neighbour lists are meaningfully shorter than dense rows, while above it
# the dense path's simpler memory traffic is faster.
CSR_DENSITY_THRESHOLD = 0.25


def angle_axes(resolution: int = 24) -> Tuple[np.ndarray, np.ndarray]:
    """Standard p=1 landscape axes: γ ∈ [0, π), β ∈ [0, π/2).

    Both unitaries are periodic over these open ranges for integer-weight
    graphs, so the grid covers the landscape without duplicating the
    endpoint row/column.  (:func:`repro.experiments.gridsearch.default_angle_axes`
    delegates here.)
    """
    if resolution < 1:
        raise ValueError("resolution must be positive")
    gammas = np.linspace(0.0, np.pi, resolution, endpoint=False)
    betas = np.linspace(0.0, np.pi / 2, resolution, endpoint=False)
    return gammas, betas


class AnalyticP1Energy:
    """Vectorised closed-form p=1 evaluator for one graph.

    Caches either the dense endpoint adjacency rows (``mode="dense"``) or
    CSR neighbour-gather segments (``mode="csr"``) once — lazily, on the
    first evaluation — and every call is then pure ufunc work, chunked
    over (γ, edges) so the scratch block stays within
    ``TERMS_BUDGET_BYTES`` regardless of grid size.  ``mode="auto"``
    (default) picks the CSR path for graphs at or below
    ``CSR_DENSITY_THRESHOLD`` edge density.
    """

    def __init__(self, graph: Graph, *, mode: str = "auto") -> None:
        if graph.n_nodes < 1:
            raise ValueError("graph must have at least one node")
        if mode not in ("auto", "dense", "csr"):
            raise ValueError(
                f"unknown analytic mode {mode!r}; expected 'auto', 'dense' or 'csr'"
            )
        self.graph = graph
        self.mode = mode
        self.n_nodes = graph.n_nodes
        self.total_weight = float(graph.w.sum()) if graph.n_edges else 0.0
        self._u = graph.u
        self._v = graph.v
        self._w = graph.w
        self._dense_rows = None  # built lazily by _ensure_dense
        self._csr_terms = None  # built lazily by _ensure_csr

    @property
    def resolved_mode(self) -> str:
        """The evaluation path ``mode="auto"`` resolves to for this graph."""
        if self.mode != "auto":
            return self.mode
        return "csr" if self.graph.density <= CSR_DENSITY_THRESHOLD else "dense"

    # ------------------------------------------------------------------
    def _ensure_dense(self):
        """(E, n) dense rows for both endpoints of every edge; sums and
        differences feed the Π± products."""
        if self._dense_rows is None:
            adjacency = self.graph.adjacency()
            rows_u = adjacency[self._u]
            rows_v = adjacency[self._v]
            self._dense_rows = (rows_u, rows_v, rows_u + rows_v, rows_u - rows_v)
        return self._dense_rows

    def _ensure_csr(self):
        """Neighbour-gather segments: per-edge CSR slices for the four Π
        products, endpoint entries zeroed in place (``cos(γ·0) = 1`` is
        the closed form's mask identity, so zeroing a weight excludes the
        column without changing segment shapes)."""
        if self._csr_terms is None:
            adjacency = self.graph.adjacency_sparse().tocsr()
            rows_u = adjacency[self._u]
            rows_v = adjacency[self._v]

            def masked(matrix, *cols):
                matrix = matrix.copy()
                matrix.sort_indices()
                row_of = np.repeat(
                    np.arange(matrix.shape[0]), np.diff(matrix.indptr)
                )
                drop = np.zeros(len(matrix.data), dtype=bool)
                for col in cols:
                    drop |= matrix.indices == col[row_of]
                matrix.data[drop] = 0.0
                return matrix.data, matrix.indptr.astype(np.int64)

            self._csr_terms = (
                masked(rows_u, self._v),  # Π_u over N(u) \ {v}
                masked(rows_v, self._u),  # Π_v over N(v) \ {u}
                masked(rows_u + rows_v, self._u, self._v),  # Π⁺
                masked(rows_u - rows_v, self._u, self._v),  # Π⁻
            )
        return self._csr_terms

    # ------------------------------------------------------------------
    def terms(self, gammas: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """The β-independent harmonics ``(S(γ), T(γ))`` for a 1-D γ axis.

        ``F(γ, β) = W/2 + sin(4β)·S(γ) + sin²(2β)·T(γ)`` — callers close
        the β axis themselves (outer product for grids, elementwise for
        per-row batches).
        """
        gammas = np.asarray(gammas, dtype=np.float64)
        if gammas.ndim != 1:
            raise ValueError(f"gammas must be 1-D, got ndim={gammas.ndim}")
        n_edges = self.graph.n_edges
        s_term = np.zeros(len(gammas), dtype=np.float64)
        t_term = np.zeros(len(gammas), dtype=np.float64)
        if n_edges == 0 or len(gammas) == 0:
            return s_term, t_term
        if self.resolved_mode == "csr":
            self._terms_csr(gammas, s_term, t_term)
        else:
            self._terms_dense(gammas, s_term, t_term)
        return s_term, t_term

    def _terms_dense(
        self, gammas: np.ndarray, s_term: np.ndarray, t_term: np.ndarray
    ) -> None:
        n = self.n_nodes
        n_edges = self.graph.n_edges
        self._ensure_dense()
        edge_rows = max(1, TERMS_BUDGET_BYTES // (8 * n * max(1, len(gammas))))
        gamma_rows = len(gammas)
        if edge_rows < 4 and n_edges >= 4:
            # Very wide γ axes: chunk γ instead so at least a few edges
            # vectorise per pass.
            edge_rows = 4
            gamma_rows = max(1, TERMS_BUDGET_BYTES // (8 * n * edge_rows))
        for g0 in range(0, len(gammas), gamma_rows):
            g1 = min(g0 + gamma_rows, len(gammas))
            gamma_chunk = gammas[g0:g1]
            for e0 in range(0, n_edges, edge_rows):
                e1 = min(e0 + edge_rows, n_edges)
                s_part, t_part = self._terms_block(gamma_chunk, e0, e1)
                s_term[g0:g1] += s_part
                t_term[g0:g1] += t_part

    # ------------------------------------------------------------------
    def _terms_csr(
        self, gammas: np.ndarray, s_term: np.ndarray, t_term: np.ndarray
    ) -> None:
        """Neighbour-gather evaluation: O(E·deg) work per γ.

        Work per (γ-chunk, edge-block): four cosine passes over the
        blocks' gathered neighbour entries and one ``multiply.reduceat``
        segment reduction each — no dense (E, n) scratch at all.
        """
        structures = self._ensure_csr()
        n_edges = self.graph.n_edges
        nnz_per_edge = sum(np.diff(ptr) for _, ptr in structures)
        cum_nnz = np.concatenate(([0], np.cumsum(nnz_per_edge)))
        budget_entries = max(1, TERMS_BUDGET_BYTES // 8)
        max_edge_nnz = int(nnz_per_edge.max())
        gamma_rows = len(gammas)
        if gamma_rows * max_edge_nnz > budget_entries:
            gamma_rows = max(1, budget_entries // max(1, max_edge_nnz))
        block_entries = max(budget_entries // gamma_rows, max_edge_nnz)
        e0 = 0
        while e0 < n_edges:
            e1 = int(
                np.searchsorted(cum_nnz, cum_nnz[e0] + block_entries, side="right")
            ) - 1
            e1 = min(max(e1, e0 + 1), n_edges)
            weights = self._w[e0:e1]
            for g0 in range(0, len(gammas), gamma_rows):
                g1 = min(g0 + gamma_rows, len(gammas))
                gamma_chunk = gammas[g0:g1]
                pi_u = self._segment_products(gamma_chunk, structures[0], e0, e1)
                pi_v = self._segment_products(gamma_chunk, structures[1], e0, e1)
                sin_gw = np.sin(np.multiply.outer(gamma_chunk, weights))
                s_term[g0:g1] += 0.25 * (
                    (weights * sin_gw) * (pi_u + pi_v)
                ).sum(axis=1)
                pi_plus = self._segment_products(gamma_chunk, structures[2], e0, e1)
                pi_minus = self._segment_products(gamma_chunk, structures[3], e0, e1)
                t_term[g0:g1] += 0.25 * (weights * (pi_plus - pi_minus)).sum(axis=1)
            e0 = e1

    @staticmethod
    def _segment_products(
        gammas: np.ndarray, structure, e0: int, e1: int
    ) -> np.ndarray:
        """``out[g, e] = Π_k cos(γ_g · data[k])`` over edge ``e``'s segment.

        A sentinel 1.0 column keeps ``reduceat`` well-defined for trailing
        or empty segments (empty ⇒ product over nothing ⇒ 1).
        """
        data, indptr = structure
        lo, hi = indptr[e0], indptr[e1]
        seg = data[lo:hi]
        starts = (indptr[e0:e1] - lo).astype(np.intp)
        scratch = np.empty((len(gammas), len(seg) + 1))
        np.multiply.outer(gammas, seg, out=scratch[:, :-1])
        np.cos(scratch[:, :-1], out=scratch[:, :-1])
        scratch[:, -1] = 1.0
        out = np.multiply.reduceat(scratch, starts, axis=1)
        empty = indptr[e0 + 1 : e1 + 1] == indptr[e0:e1]
        if empty.any():
            out[:, empty] = 1.0
        return out

    def _terms_block(
        self, gammas: np.ndarray, e0: int, e1: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """S/T contributions of edges ``[e0, e1)`` for one γ chunk
        (dense-row path)."""
        rows_u, rows_v, rows_sum, rows_diff = self._dense_rows
        edge_idx = np.arange(e1 - e0)
        u_cols = self._u[e0:e1]
        v_cols = self._v[e0:e1]
        weights = self._w[e0:e1]
        scratch = np.empty((len(gammas), e1 - e0, self.n_nodes))

        def masked_product(rows: np.ndarray, *cols: np.ndarray) -> np.ndarray:
            # Π_k cos(γ · rows[e, k]) with the given endpoint columns
            # forced to 1 (the closed form excludes them; non-edges are
            # already cos(0) = 1).
            np.multiply.outer(gammas, rows, out=scratch)
            np.cos(scratch, out=scratch)
            for col in cols:
                scratch[:, edge_idx, col] = 1.0
            return scratch.prod(axis=2)

        pi_u = masked_product(rows_u[e0:e1], v_cols)
        pi_v = masked_product(rows_v[e0:e1], u_cols)
        sin_gw = np.sin(np.multiply.outer(gammas, weights))
        s_part = 0.25 * ((weights * sin_gw) * (pi_u + pi_v)).sum(axis=1)
        pi_plus = masked_product(rows_sum[e0:e1], u_cols, v_cols)
        pi_minus = masked_product(rows_diff[e0:e1], u_cols, v_cols)
        t_part = 0.25 * (weights * (pi_plus - pi_minus)).sum(axis=1)
        return s_part, t_part

    # ------------------------------------------------------------------
    def grid(self, gammas: np.ndarray, betas: np.ndarray) -> np.ndarray:
        """Full landscape: ``out[i, j] = F_1(γ=gammas[i], β=betas[j])``."""
        gammas = np.asarray(gammas, dtype=np.float64)
        betas = np.asarray(betas, dtype=np.float64)
        if gammas.ndim != 1 or betas.ndim != 1:
            raise ValueError("gammas and betas must be 1-D angle axes")
        s_term, t_term = self.terms(gammas)
        return (
            self.total_weight / 2.0
            + np.multiply.outer(s_term, np.sin(4.0 * betas))
            + np.multiply.outer(t_term, np.sin(2.0 * betas) ** 2)
        )

    def energies(self, params_matrix: np.ndarray) -> np.ndarray:
        """F_1 for every ``[γ, β]`` row of a ``(B, 2)`` matrix."""
        mat = np.asarray(params_matrix, dtype=np.float64)
        if mat.ndim == 1:
            mat = mat[None, :]
        if mat.ndim != 2 or mat.shape[1] != 2:
            raise ValueError(
                f"analytic path is p=1 only: expected (B, 2) parameter "
                f"rows, got shape {mat.shape}"
            )
        s_term, t_term = self.terms(mat[:, 0])
        betas = mat[:, 1]
        return (
            self.total_weight / 2.0
            + np.sin(4.0 * betas) * s_term
            + np.sin(2.0 * betas) ** 2 * t_term
        )

    def energy(self, params: np.ndarray) -> float:
        """Single ``[γ, β]`` convenience wrapper over :meth:`energies`."""
        return float(self.energies(np.asarray(params))[0])

    # ------------------------------------------------------------------
    def best_seed(self, resolution: int = 16) -> Tuple[np.ndarray, float]:
        """Best ``[γ, β]`` over the standard axes, plus its energy.

        The statevector-free warm start used by RQAOA's round-0 angle
        seeding; flat argmax (first occurrence) so the seed is
        deterministic for degenerate landscapes.
        """
        gammas, betas = angle_axes(resolution)
        grid = self.grid(gammas, betas)
        flat = int(np.argmax(grid))
        i, j = flat // len(betas), flat % len(betas)
        seed = np.array([gammas[i], betas[j]], dtype=np.float64)
        return seed, float(grid[i, j])


__all__ = [
    "AnalyticP1Energy",
    "CSR_DENSITY_THRESHOLD",
    "TERMS_BUDGET_BYTES",
    "angle_axes",
]
