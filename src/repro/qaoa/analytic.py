"""Closed-form p=1 QAOA MaxCut energies — no statevector required.

For depth p=1 the QAOA expectation ⟨C⟩(γ, β) is known in closed form
(Wang et al., PRA 97, 022304; Ozaeta et al. for the weighted case).  With
the repo's conventions — cost layer ``exp(-iγ·C)`` over the cut diagonal,
mixer ``exp(-iβ ΣX)`` — and weighted adjacency ``A`` the per-edge pieces
collapse to two β harmonics:

    F(γ, β) = W/2 + sin(4β) · S(γ) + sin²(2β) · T(γ)

    S(γ) = ¼ Σ_e w_e sin(γ w_e) · (Π_u + Π_v)
    T(γ) = ¼ Σ_e w_e · (Π⁺ − Π⁻)

    Π_u  = Π_{k ≠ v} cos(γ A[u, k])        (and symmetrically Π_v)
    Π^± = Π_{k ∉ {u, v}} cos(γ (A[u, k] ± A[v, k]))

Non-edges contribute ``cos(0) = 1``, so every product runs over a dense
adjacency row and only the endpoint columns need masking.  One energy costs
O(E·n) — *independent of 2^n* — which removes the statevector memory wall
from large sub-graph p=1 sweeps entirely.  The β axis separates from the γ
axis, so a full (γ, β) angle grid costs one S/T pass over the γ axis plus
an outer product: O(G·E·n + G·B).

:class:`AnalyticP1Energy` is the third :class:`repro.qaoa.engine.SweepEngine`
evaluation tier (analytic p=1 → spectral grid → chunked generic batches) and
backs the p=1 objectives of :class:`repro.qaoa.solver.QAOASolver`, the QAOA²
sub-graph option grid, and RQAOA's round-0 angle seeding.  Agreement with
the statevector paths is pinned to ≤1e-9 in ``tests/test_analytic_p1.py``
and measured by ``benchmarks/bench_analytic_p1.py``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.graph import Graph

# Target size of the (γ-chunk, edge-chunk, n) cosine scratch block.  The
# terms pass streams four such products per chunk; past a few MiB wider
# chunks stop helping (same ufunc traffic, colder cache).
TERMS_BUDGET_BYTES = 8 * 1024 * 1024


def angle_axes(resolution: int = 24) -> Tuple[np.ndarray, np.ndarray]:
    """Standard p=1 landscape axes: γ ∈ [0, π), β ∈ [0, π/2).

    Both unitaries are periodic over these open ranges for integer-weight
    graphs, so the grid covers the landscape without duplicating the
    endpoint row/column.  (:func:`repro.experiments.gridsearch.default_angle_axes`
    delegates here.)
    """
    if resolution < 1:
        raise ValueError("resolution must be positive")
    gammas = np.linspace(0.0, np.pi, resolution, endpoint=False)
    betas = np.linspace(0.0, np.pi / 2, resolution, endpoint=False)
    return gammas, betas


class AnalyticP1Energy:
    """Vectorised closed-form p=1 evaluator for one graph.

    Caches the dense endpoint rows of the weighted adjacency once; every
    call is then pure ufunc work, chunked over (γ, edges) so the scratch
    block stays within ``TERMS_BUDGET_BYTES`` regardless of grid size.
    """

    def __init__(self, graph: Graph) -> None:
        if graph.n_nodes < 1:
            raise ValueError("graph must have at least one node")
        self.graph = graph
        self.n_nodes = graph.n_nodes
        self.total_weight = float(graph.w.sum()) if graph.n_edges else 0.0
        adjacency = graph.adjacency()
        # (E, n) dense rows for the two endpoints of every edge; sums and
        # differences feed the Π± products.
        self._rows_u = adjacency[graph.u]
        self._rows_v = adjacency[graph.v]
        self._rows_sum = self._rows_u + self._rows_v
        self._rows_diff = self._rows_u - self._rows_v
        self._u = graph.u
        self._v = graph.v
        self._w = graph.w

    # ------------------------------------------------------------------
    def terms(self, gammas: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """The β-independent harmonics ``(S(γ), T(γ))`` for a 1-D γ axis.

        ``F(γ, β) = W/2 + sin(4β)·S(γ) + sin²(2β)·T(γ)`` — callers close
        the β axis themselves (outer product for grids, elementwise for
        per-row batches).
        """
        gammas = np.asarray(gammas, dtype=np.float64)
        if gammas.ndim != 1:
            raise ValueError(f"gammas must be 1-D, got ndim={gammas.ndim}")
        n_edges = self.graph.n_edges
        s_term = np.zeros(len(gammas), dtype=np.float64)
        t_term = np.zeros(len(gammas), dtype=np.float64)
        if n_edges == 0 or len(gammas) == 0:
            return s_term, t_term
        n = self.n_nodes
        edge_rows = max(1, TERMS_BUDGET_BYTES // (8 * n * max(1, len(gammas))))
        gamma_rows = len(gammas)
        if edge_rows < 4 and n_edges >= 4:
            # Very wide γ axes: chunk γ instead so at least a few edges
            # vectorise per pass.
            edge_rows = 4
            gamma_rows = max(1, TERMS_BUDGET_BYTES // (8 * n * edge_rows))
        for g0 in range(0, len(gammas), gamma_rows):
            g1 = min(g0 + gamma_rows, len(gammas))
            gamma_chunk = gammas[g0:g1]
            for e0 in range(0, n_edges, edge_rows):
                e1 = min(e0 + edge_rows, n_edges)
                s_part, t_part = self._terms_block(gamma_chunk, e0, e1)
                s_term[g0:g1] += s_part
                t_term[g0:g1] += t_part
        return s_term, t_term

    def _terms_block(
        self, gammas: np.ndarray, e0: int, e1: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """S/T contributions of edges ``[e0, e1)`` for one γ chunk."""
        edge_idx = np.arange(e1 - e0)
        u_cols = self._u[e0:e1]
        v_cols = self._v[e0:e1]
        weights = self._w[e0:e1]
        scratch = np.empty((len(gammas), e1 - e0, self.n_nodes))

        def masked_product(rows: np.ndarray, *cols: np.ndarray) -> np.ndarray:
            # Π_k cos(γ · rows[e, k]) with the given endpoint columns
            # forced to 1 (the closed form excludes them; non-edges are
            # already cos(0) = 1).
            np.multiply.outer(gammas, rows, out=scratch)
            np.cos(scratch, out=scratch)
            for col in cols:
                scratch[:, edge_idx, col] = 1.0
            return scratch.prod(axis=2)

        pi_u = masked_product(self._rows_u[e0:e1], v_cols)
        pi_v = masked_product(self._rows_v[e0:e1], u_cols)
        sin_gw = np.sin(np.multiply.outer(gammas, weights))
        s_part = 0.25 * ((weights * sin_gw) * (pi_u + pi_v)).sum(axis=1)
        pi_plus = masked_product(self._rows_sum[e0:e1], u_cols, v_cols)
        pi_minus = masked_product(self._rows_diff[e0:e1], u_cols, v_cols)
        t_part = 0.25 * (weights * (pi_plus - pi_minus)).sum(axis=1)
        return s_part, t_part

    # ------------------------------------------------------------------
    def grid(self, gammas: np.ndarray, betas: np.ndarray) -> np.ndarray:
        """Full landscape: ``out[i, j] = F_1(γ=gammas[i], β=betas[j])``."""
        gammas = np.asarray(gammas, dtype=np.float64)
        betas = np.asarray(betas, dtype=np.float64)
        if gammas.ndim != 1 or betas.ndim != 1:
            raise ValueError("gammas and betas must be 1-D angle axes")
        s_term, t_term = self.terms(gammas)
        return (
            self.total_weight / 2.0
            + np.multiply.outer(s_term, np.sin(4.0 * betas))
            + np.multiply.outer(t_term, np.sin(2.0 * betas) ** 2)
        )

    def energies(self, params_matrix: np.ndarray) -> np.ndarray:
        """F_1 for every ``[γ, β]`` row of a ``(B, 2)`` matrix."""
        mat = np.asarray(params_matrix, dtype=np.float64)
        if mat.ndim == 1:
            mat = mat[None, :]
        if mat.ndim != 2 or mat.shape[1] != 2:
            raise ValueError(
                f"analytic path is p=1 only: expected (B, 2) parameter "
                f"rows, got shape {mat.shape}"
            )
        s_term, t_term = self.terms(mat[:, 0])
        betas = mat[:, 1]
        return (
            self.total_weight / 2.0
            + np.sin(4.0 * betas) * s_term
            + np.sin(2.0 * betas) ** 2 * t_term
        )

    def energy(self, params: np.ndarray) -> float:
        """Single ``[γ, β]`` convenience wrapper over :meth:`energies`."""
        return float(self.energies(np.asarray(params))[0])

    # ------------------------------------------------------------------
    def best_seed(self, resolution: int = 16) -> Tuple[np.ndarray, float]:
        """Best ``[γ, β]`` over the standard axes, plus its energy.

        The statevector-free warm start used by RQAOA's round-0 angle
        seeding; flat argmax (first occurrence) so the seed is
        deterministic for degenerate landscapes.
        """
        gammas, betas = angle_axes(resolution)
        grid = self.grid(gammas, betas)
        flat = int(np.argmax(grid))
        i, j = flat // len(betas), flat % len(betas)
        seed = np.array([gammas[i], betas[j]], dtype=np.float64)
        return seed, float(grid[i, j])


__all__ = ["AnalyticP1Energy", "TERMS_BUDGET_BYTES", "angle_axes"]
