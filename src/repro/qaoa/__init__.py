"""QAOA core: fast energy evaluation, the batched sweep engine, parameter
strategies, the solver and the recursive-QAOA extension."""

from repro.qaoa.analytic import AnalyticP1Energy, angle_axes
from repro.qaoa.energy import MaxCutEnergy
from repro.qaoa.engine import (
    ScratchPool,
    SweepEngine,
    auto_chunk_size,
    shared_pool,
)
from repro.qaoa.params import (
    default_iterations,
    fixed_init,
    initial_parameters,
    linear_ramp_init,
    random_init,
    transfer_parameters,
)
from repro.qaoa.rqaoa import RQAOAResult, rqaoa_solve
from repro.qaoa.solver import QAOAResult, QAOASolver, solve_maxcut_qaoa

__all__ = [
    "AnalyticP1Energy",
    "angle_axes",
    "MaxCutEnergy",
    "ScratchPool",
    "SweepEngine",
    "auto_chunk_size",
    "shared_pool",
    "QAOAResult",
    "QAOASolver",
    "solve_maxcut_qaoa",
    "RQAOAResult",
    "rqaoa_solve",
    "initial_parameters",
    "linear_ramp_init",
    "fixed_init",
    "random_init",
    "transfer_parameters",
    "default_iterations",
]
