"""Recursive QAOA (RQAOA, Bravyi et al. [47]) — extension feature.

The paper notes RQAOA "numerically outperforms standard QAOA" and "can also
be leveraged using QAOA² to get a good global solution for very large
problems".  RQAOA iteratively (1) runs QAOA, (2) measures the edge
correlation ⟨Z_i Z_j⟩ with the largest magnitude, (3) *freezes* the relation
z_j = sign(⟨Z_i Z_j⟩) · z_i, contracting the problem by one variable, until
the residual instance is small enough for brute force.

Implemented on the spin form of MaxCut: maximising
``C(z) = W/2 − ½ Σ w_ij z_i z_j`` means contractions simply re-attach (and
possibly sign-flip) edge weights, producing signed-weight graphs that every
solver in this repo already supports.

Each elimination round is engine-backed by default: one
:class:`repro.qaoa.engine.SweepEngine` per round shares its cached cut
diagonal between the variational loop (batched for SPSA/multi-start
objectives) and the final statevector evolve, and the correlation sweep
evaluates *all* candidate edges in one pass over |ψ|²
(:func:`repro.quantum.pauli.zz_correlations_batch`) instead of a per-pair
Python loop.  ``batched=False`` keeps the original point-by-point path as a
parity and benchmark reference (``benchmarks/bench_rqaoa_engine.py``).

Round 0 additionally warm-starts from the closed-form p=1 angle grid over
the full input graph (``angle_seed``): the analytic evaluator never builds
a statevector, so the seed costs O(E·n) per angle even on graphs far past
the 2**n simulation wall.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import CutResult, cut_value, exact_maxcut_bruteforce
from repro.qaoa.analytic import AnalyticP1Energy
from repro.qaoa.energy import MaxCutEnergy
from repro.qaoa.engine import SweepEngine
from repro.qaoa.solver import QAOASolver
from repro.quantum.pauli import zz_correlations_batch
from repro.util.rng import RngLike, ensure_rng

# Merged edges whose weight collapses below this fraction of the largest
# magnitude that was summed into them are cancellations, not structure.
CONTRACT_RTOL = 1e-9
# Correlations within this band of the maximum magnitude count as tied.
# Exact degeneracies are generic on unweighted/symmetric graphs, and the
# batched GEMM and per-pair correlation kernels agree only to ~1e-15, so a
# raw argmax would let sub-ULP kernel noise pick different edges.
TIE_RTOL = 1e-9
# Axis resolution of the round-0 analytic (γ, β) seeding grid.
SEED_RESOLUTION = 16


def _select_edge(corr: np.ndarray) -> Tuple[int, int]:
    """(edge index, freeze sign) for the largest-|⟨Z_iZ_j⟩| edge.

    Ties within ``TIE_RTOL`` of the maximum break to the canonically
    smallest edge (pairs arrive in the graph's sorted edge order), and a
    correlation indistinguishable from zero freezes with sign +1 — both
    choices are invariant to which correlation kernel produced ``corr``.
    """
    abs_corr = np.abs(corr)
    best_mag = float(abs_corr.max())
    tol = TIE_RTOL * max(1.0, best_mag)
    best_edge = int(np.flatnonzero(abs_corr >= best_mag - tol)[0])
    sign = 1 if corr[best_edge] >= -tol else -1
    return best_edge, sign


@dataclass
class RQAOAResult:
    assignment: np.ndarray
    cut: float
    eliminations: List[Tuple[int, int, int]] = field(default_factory=list)
    # (kept_node, removed_node, sign) in original labels, elimination order
    extra: dict = field(default_factory=dict)

    def as_cut_result(self) -> CutResult:
        return CutResult(self.assignment, self.cut, "rqaoa", dict(self.extra))


def _contract(
    weights: Dict[Tuple[int, int], float],
    keep: int,
    remove: int,
    sign: int,
) -> Dict[Tuple[int, int], float]:
    """Apply z_remove = sign · z_keep to the quadratic weight dict.

    Every edge (remove, k) becomes (keep, k) with weight multiplied by
    ``sign``; the (keep, remove) edge becomes a constant and is dropped
    (it is accounted for during reconstruction via cut_value on the
    original graph, so no constant tracking is needed here).

    Merged weights are pruned with a *relative* tolerance against the
    largest contribution that was summed into them: an exact ``!= 0.0``
    test lets float cancellations (``w + (-w) ≈ 1e-17``) survive as
    spurious near-zero edges that pollute later correlation sweeps and
    ``argmax`` tie-breaks.
    """
    out: Dict[Tuple[int, int], float] = {}
    scale: Dict[Tuple[int, int], float] = {}
    for (a, b), w in weights.items():
        if remove in (a, b):
            other = b if a == remove else a
            if other == keep:
                continue  # becomes constant
            key = (min(keep, other), max(keep, other))
            w = sign * w
        else:
            key = (a, b)
        out[key] = out.get(key, 0.0) + w
        scale[key] = max(scale.get(key, 0.0), abs(w))
    return {k: w for k, w in out.items() if abs(w) > CONTRACT_RTOL * scale[k]}


def _zz_correlations_pointwise(state: np.ndarray, pairs) -> np.ndarray:
    """Per-pair ⟨Z_i Z_j⟩ loop — the pre-engine reference implementation.

    Recomputes the parity mask per edge; kept (only) as the ``batched=False``
    parity/benchmark baseline for :func:`repro.quantum.pauli.zz_correlations_batch`.
    """
    probs = np.abs(state) ** 2
    idx = np.arange(len(state), dtype=np.uint64)
    out = np.empty(len(pairs))
    for k, (i, j) in enumerate(pairs):
        parity = ((idx >> np.uint64(i)) ^ (idx >> np.uint64(j))) & np.uint64(1)
        out[k] = float(np.dot(probs, 1.0 - 2.0 * parity.astype(np.float64)))
    return out


def rqaoa_solve(
    graph: Graph,
    *,
    n_cutoff: int = 8,
    layers: int = 2,
    solver: Optional[QAOASolver] = None,
    rng: RngLike = None,
    n_starts: int = 1,
    batched: bool = True,
    angle_seed: bool = True,
    solver_options: Optional[dict] = None,
) -> RQAOAResult:
    """Solve MaxCut with recursive QAOA.

    Parameters
    ----------
    n_cutoff:
        Remaining-variable count at which the residual instance is brute
        forced exactly.
    layers:
        QAOA depth for the correlation-estimation runs (RQAOA typically
        uses shallow circuits).
    solver:
        Optional pre-configured :class:`QAOASolver`; its ``layers`` wins
        over the ``layers`` argument.  Each round attaches a per-round
        sweep engine to (a copy of) it when ``batched``.
    n_starts / solver_options:
        Forwarded to the internally-constructed :class:`QAOASolver` when
        ``solver`` is not given (``solver_options`` wins on conflicts);
        ``n_starts`` with ``optimizer="spsa"`` gives the fully batched
        multi-start variational loop.
    batched:
        True (default): per-round engine-backed statevector reuse and a
        single batched correlation sweep over all candidate edges.  False:
        the original point-by-point path (per-point statevector, per-pair
        Python correlation loop) — identical results, kept as the parity
        and benchmark reference.
    angle_seed:
        True (default): the round-0 variational loop is warm-started from
        the best point of a closed-form p=1 (γ, β) angle grid over the
        *full* input graph (:class:`repro.qaoa.analytic.AnalyticP1Energy`
        — statevector-free, so the seeding grid costs O(E·n) per angle
        even when 2**n statevectors would not fit).  The p=1 seed is
        re-interpolated onto the solver's depth; deeper rounds keep the
        solver's configured init.  The seed is computed once, before the
        batched/pointwise split, so both paths stay in lockstep.
        Skipped when the caller already warm-starts the solver.
    """
    gen = ensure_rng(rng)
    if solver is None:
        options = dict(solver_options or {})
        options.setdefault("layers", layers)
        options.setdefault("n_starts", n_starts)
        options.setdefault("batched", batched)
        solver = QAOASolver(rng=gen, **options)
    active = list(range(graph.n_nodes))
    weights: Dict[Tuple[int, int], float] = {
        (int(a), int(b)): float(w) for a, b, w in zip(graph.u, graph.v, graph.w, strict=True)
    }
    eliminations: List[Tuple[int, int, int]] = []

    round0_solver = solver
    if angle_seed and graph.n_edges and solver.init != "warm":
        seed_params, _ = AnalyticP1Energy(graph).best_seed(SEED_RESOLUTION)
        round0_solver = replace(solver, init="warm", warm_start=seed_params)

    first_round = True
    while len(active) > max(n_cutoff, 1) and weights:
        label = {node: i for i, node in enumerate(active)}
        # Canonical (sorted) edge order keeps the argmax tie-break below
        # deterministic regardless of dict insertion history.
        edges = [(label[a], label[b], w) for (a, b), w in sorted(weights.items())]
        current = Graph.from_edges(len(active), edges)
        pairs = list(zip(current.u.tolist(), current.v.tolist(), strict=True))
        round_solver = round0_solver if first_round else solver
        first_round = False
        if batched:
            # One engine per round: the cached cut diagonal and pooled
            # buffers back the variational loop, and the solver's final
            # statevector is reused for the correlation sweep (no
            # re-evolve — the pre-refactor path rebuilt the diagonal AND
            # the state a second time).  The engine inherits the solver's
            # statevector-backend spec, so `solver_options={"backend":
            # ...}` reaches every per-round evolve.
            engine = SweepEngine(current, backend=round_solver.backend)
            result = replace(round_solver, engine=engine, keep_state=True).solve(
                current
            )
            state = result.extra["final_state"]
            corr = zz_correlations_batch(state, pairs)
        else:
            result = round_solver.solve(current)
            state = MaxCutEnergy(current).statevector(result.params)
            corr = _zz_correlations_pointwise(state, pairs)
        best_edge, sign = _select_edge(corr)
        li, lj = pairs[best_edge]
        keep, remove = active[li], active[lj]
        weights = _contract(weights, keep, remove, sign)
        eliminations.append((keep, remove, sign))
        active.remove(remove)

    # Solve the residual instance exactly (may have negative weights).
    spins = np.ones(graph.n_nodes, dtype=np.int64)
    if weights and len(active) >= 2:
        label = {node: i for i, node in enumerate(active)}
        edges = [(label[a], label[b], w) for (a, b), w in sorted(weights.items())]
        residual = Graph.from_edges(len(active), edges)
        base = exact_maxcut_bruteforce(residual)
        residual_spins = 1 - 2 * base.assignment.astype(np.int64)
        for node, i in label.items():
            spins[node] = residual_spins[i]
    # Unwind the substitutions in reverse order.
    for keep, remove, sign in reversed(eliminations):
        spins[remove] = sign * spins[keep]
    assignment = ((1 - spins) // 2).astype(np.uint8)
    return RQAOAResult(
        assignment=assignment,
        cut=cut_value(graph, assignment),
        eliminations=eliminations,
        extra={
            "n_eliminated": len(eliminations),
            "batched": batched,
            "angle_seed": round0_solver is not solver,
        },
    )


__all__ = ["RQAOAResult", "rqaoa_solve"]
