"""Recursive QAOA (RQAOA, Bravyi et al. [47]) — extension feature.

The paper notes RQAOA "numerically outperforms standard QAOA" and "can also
be leveraged using QAOA² to get a good global solution for very large
problems".  RQAOA iteratively (1) runs QAOA, (2) measures the edge
correlation ⟨Z_i Z_j⟩ with the largest magnitude, (3) *freezes* the relation
z_j = sign(⟨Z_i Z_j⟩) · z_i, contracting the problem by one variable, until
the residual instance is small enough for brute force.

Implemented on the spin form of MaxCut: maximising
``C(z) = W/2 − ½ Σ w_ij z_i z_j`` means contractions simply re-attach (and
possibly sign-flip) edge weights, producing signed-weight graphs that every
solver in this repo already supports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import CutResult, cut_value, exact_maxcut_bruteforce
from repro.qaoa.solver import QAOASolver
from repro.quantum.pauli import zz_correlations
from repro.qaoa.energy import MaxCutEnergy
from repro.util.rng import RngLike, ensure_rng


@dataclass
class RQAOAResult:
    assignment: np.ndarray
    cut: float
    eliminations: List[Tuple[int, int, int]] = field(default_factory=list)
    # (kept_node, removed_node, sign) in original labels, elimination order
    extra: dict = field(default_factory=dict)

    def as_cut_result(self) -> CutResult:
        return CutResult(self.assignment, self.cut, "rqaoa", dict(self.extra))


def _contract(
    n: int,
    weights: Dict[Tuple[int, int], float],
    keep: int,
    remove: int,
    sign: int,
) -> Dict[Tuple[int, int], float]:
    """Apply z_remove = sign · z_keep to the quadratic weight dict.

    Every edge (remove, k) becomes (keep, k) with weight multiplied by
    ``sign``; the (keep, remove) edge becomes a constant and is dropped
    (it is accounted for during reconstruction via cut_value on the
    original graph, so no constant tracking is needed here).
    """
    out: Dict[Tuple[int, int], float] = {}
    for (a, b), w in weights.items():
        if remove in (a, b):
            other = b if a == remove else a
            if other == keep:
                continue  # becomes constant
            key = (min(keep, other), max(keep, other))
            out[key] = out.get(key, 0.0) + sign * w
        else:
            out[(a, b)] = out.get((a, b), 0.0) + w
    return {k: w for k, w in out.items() if w != 0.0}


def rqaoa_solve(
    graph: Graph,
    *,
    n_cutoff: int = 8,
    layers: int = 2,
    solver: Optional[QAOASolver] = None,
    rng: RngLike = None,
) -> RQAOAResult:
    """Solve MaxCut with recursive QAOA.

    Parameters
    ----------
    n_cutoff:
        Remaining-variable count at which the residual instance is brute
        forced exactly.
    layers:
        QAOA depth for the correlation-estimation runs (RQAOA typically
        uses shallow circuits).
    solver:
        Optional pre-configured :class:`QAOASolver`; its ``layers`` wins
        over the ``layers`` argument.
    """
    gen = ensure_rng(rng)
    if solver is None:
        solver = QAOASolver(layers=layers, rng=gen)
    active = list(range(graph.n_nodes))
    weights: Dict[Tuple[int, int], float] = {
        (int(a), int(b)): float(w) for a, b, w in zip(graph.u, graph.v, graph.w)
    }
    eliminations: List[Tuple[int, int, int]] = []

    while len(active) > max(n_cutoff, 1) and weights:
        label = {node: i for i, node in enumerate(active)}
        edges = [(label[a], label[b], w) for (a, b), w in weights.items()]
        current = Graph.from_edges(len(active), edges)
        energy = MaxCutEnergy(current)
        result = solver.solve(current)
        state = energy.statevector(result.params)
        pairs = list(zip(current.u.tolist(), current.v.tolist()))
        corr = zz_correlations(state, pairs)
        best_edge = int(np.argmax(np.abs(corr)))
        sign = 1 if corr[best_edge] >= 0 else -1
        li, lj = pairs[best_edge]
        keep, remove = active[li], active[lj]
        weights = _contract(graph.n_nodes, weights, keep, remove, sign)
        eliminations.append((keep, remove, sign))
        active.remove(remove)

    # Solve the residual instance exactly (may have negative weights).
    spins = np.ones(graph.n_nodes, dtype=np.int64)
    if weights and len(active) >= 2:
        label = {node: i for i, node in enumerate(active)}
        edges = [(label[a], label[b], w) for (a, b), w in weights.items()]
        residual = Graph.from_edges(len(active), edges)
        base = exact_maxcut_bruteforce(residual)
        residual_spins = 1 - 2 * base.assignment.astype(np.int64)
        for node, i in label.items():
            spins[node] = residual_spins[i]
    # Unwind the substitutions in reverse order.
    for keep, remove, sign in reversed(eliminations):
        spins[remove] = sign * spins[keep]
    assignment = ((1 - spins) // 2).astype(np.uint8)
    return RQAOAResult(
        assignment=assignment,
        cut=cut_value(graph, assignment),
        eliminations=eliminations,
        extra={"n_eliminated": len(eliminations)},
    )


__all__ = ["RQAOAResult", "rqaoa_solve"]
