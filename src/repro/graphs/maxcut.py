"""MaxCut objective, baselines and exact solvers.

The MaxCut problem (paper §3.1): split nodes into two groups maximising the
total weight of edges whose endpoints land in different groups.  Assignments
are ``uint8`` arrays of 0/1 labels; spin (+1/-1) conversions are provided for
the Hamiltonian view.

Includes the random-partition baseline used in Fig. 4 (the networkx
``approximation.maxcut`` analogue), a one-exchange local search, an exact
brute-force solver via the vectorised cut diagonal (the same vector powers the
fast QAOA simulator) and a branch-and-bound exact solver for slightly larger
instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.util.rng import RngLike, ensure_rng


# ---------------------------------------------------------------------------
# Cut evaluation
# ---------------------------------------------------------------------------
def as_binary(assignment: np.ndarray) -> np.ndarray:
    """Coerce a 0/1 or ±1 assignment into canonical uint8 0/1 labels."""
    arr = np.asarray(assignment)
    if arr.dtype == np.uint8:
        return arr
    vals = np.unique(arr)
    if np.all(np.isin(vals, (-1, 1))):
        return ((1 - arr) // 2).astype(np.uint8)  # +1 -> 0, -1 -> 1
    if np.all(np.isin(vals, (0, 1))):
        return arr.astype(np.uint8)
    raise ValueError(f"assignment values must be 0/1 or ±1, got {vals}")


def as_spins(assignment: np.ndarray) -> np.ndarray:
    """0/1 labels -> ±1 spins (0 -> +1, 1 -> -1), the Z eigenvalue view."""
    return (1 - 2 * as_binary(assignment).astype(np.int64)).astype(np.float64)


def cut_value(graph: Graph, assignment: np.ndarray) -> float:
    """Total weight of edges cut by ``assignment`` (vectorised)."""
    x = as_binary(assignment)
    if len(x) != graph.n_nodes:
        raise ValueError(
            f"assignment length {len(x)} != n_nodes {graph.n_nodes}"
        )
    if graph.n_edges == 0:
        return 0.0
    return float(graph.w[x[graph.u] != x[graph.v]].sum())


def cut_diagonal(graph: Graph, dtype=np.float64, chunk: int = 1 << 22) -> np.ndarray:
    """Cut value of *every* bitstring, as a vector of length ``2**n``.

    Index ``i`` encodes the assignment whose node-``q`` label is bit ``q``
    of ``i`` (little-endian, matching the statevector qubit convention).
    This is simultaneously the diagonal of the problem Hamiltonian
    ``H_C = ½ Σ w (1 − Z_i Z_j)`` (paper Eq. 1) and is the workhorse of the
    fast QAOA simulator and the brute-force exact solver.

    Memory: ``8 * 2**n`` bytes; chunked edge accumulation bounds peak
    temporaries for n up to ~26.
    """
    n = graph.n_nodes
    if n > 28:
        raise ValueError(f"cut_diagonal infeasible for n={n} (2**n entries)")
    size = 1 << n
    diag = np.zeros(size, dtype=dtype)
    if graph.n_edges == 0:
        return diag
    u64 = graph.u.astype(np.uint64)
    v64 = graph.v.astype(np.uint64)
    for start in range(0, size, chunk):
        stop = min(start + chunk, size)
        idx = np.arange(start, stop, dtype=np.uint64)
        block = diag[start:stop]
        for a, b, weight in zip(u64, v64, graph.w, strict=True):
            differs = ((idx >> a) ^ (idx >> b)) & np.uint64(1)
            block += weight * differs
    return diag


def bitstring_to_assignment(bits: int, n: int) -> np.ndarray:
    """Integer bitstring index -> uint8 assignment array (little-endian)."""
    return ((bits >> np.arange(n, dtype=np.uint64)) & 1).astype(np.uint8)


def assignment_to_bitstring(assignment: np.ndarray) -> int:
    """uint8 assignment array -> integer index (little-endian)."""
    x = as_binary(assignment).astype(np.uint64)
    return int((x << np.arange(len(x), dtype=np.uint64)).sum())


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------
@dataclass
class CutResult:
    """Solution container: assignment (uint8 0/1), cut value, metadata."""

    assignment: np.ndarray
    cut: float
    method: str = ""
    extra: dict = None

    def __post_init__(self) -> None:
        self.assignment = as_binary(self.assignment)
        if self.extra is None:
            self.extra = {}


def random_cut(graph: Graph, rng: RngLike = None) -> CutResult:
    """Uniform random partition (expected cut = total_weight / 2)."""
    gen = ensure_rng(rng)
    x = gen.integers(0, 2, size=graph.n_nodes, dtype=np.uint8)
    return CutResult(x, cut_value(graph, x), "random")


def randomized_partitioning(
    graph: Graph, *, trials: int = 1, p: float = 0.5, rng: RngLike = None
) -> CutResult:
    """Best of ``trials`` random cuts — the networkx
    ``approximation.maxcut.randomized_partitioning`` analogue used as the
    "Random" series in Fig. 4."""
    gen = ensure_rng(rng)
    best: Optional[CutResult] = None
    for _ in range(max(1, trials)):
        x = (gen.random(graph.n_nodes) < p).astype(np.uint8)
        c = cut_value(graph, x)
        if best is None or c > best.cut:
            best = CutResult(x, c, "randomized_partitioning")
    return best


def one_exchange(
    graph: Graph,
    assignment: Optional[np.ndarray] = None,
    *,
    max_sweeps: int = 100,
    rng: RngLike = None,
) -> CutResult:
    """Greedy single-node-flip local search to a 1-exchange local optimum.

    Flip gain for node ``i`` is ``d_same(i) - d_cross(i)`` where the two
    terms are the weights to same-side and other-side neighbours.  Runs
    sweeps until no improving flip exists (or ``max_sweeps``).
    """
    gen = ensure_rng(rng)
    if assignment is None:
        x = gen.integers(0, 2, size=graph.n_nodes, dtype=np.uint8)
    else:
        x = as_binary(assignment).copy()
    indptr, indices, weights = graph.neighbors()
    for _ in range(max_sweeps):
        improved = False
        order = gen.permutation(graph.n_nodes)
        for i in order:
            nbr = indices[indptr[i] : indptr[i + 1]]
            wn = weights[indptr[i] : indptr[i + 1]]
            if len(nbr) == 0:
                continue
            cross = wn[x[nbr] != x[i]].sum()
            same = wn[x[nbr] == x[i]].sum()
            if same > cross + 1e-12:
                x[i] ^= 1
                improved = True
        if not improved:
            break
    return CutResult(x, cut_value(graph, x), "one_exchange")


# ---------------------------------------------------------------------------
# Exact solvers
# ---------------------------------------------------------------------------
def exact_maxcut_bruteforce(graph: Graph) -> CutResult:
    """Exact optimum by enumerating the cut diagonal (n <= ~22).

    Only half the bitstrings are examined since ``cut(x) == cut(~x)``.
    """
    n = graph.n_nodes
    if n > 24:
        raise ValueError(f"brute force infeasible for n={n}")
    if n == 0:
        return CutResult(np.zeros(0, dtype=np.uint8), 0.0, "exact_bruteforce")
    diag = cut_diagonal(graph)
    half = diag[: max(1, len(diag) // 2)]  # fix node n-1 to side 0
    best_idx = int(np.argmax(half))
    return CutResult(
        bitstring_to_assignment(best_idx, n), float(half[best_idx]), "exact_bruteforce"
    )


def exact_maxcut_branch_and_bound(
    graph: Graph, *, time_budget_nodes: int = 5_000_000
) -> CutResult:
    """Exact optimum via DFS branch-and-bound with an additive bound.

    Bound: current cut + total |weight| of all edges not yet decided.
    Handles negative weights (which QAOA² merge graphs produce).  The node
    budget guards against pathological instances; on exhaustion the
    incumbent (still a valid cut, possibly suboptimal) is returned with
    ``extra['optimal'] = False``.
    """
    n = graph.n_nodes
    if n == 0:
        return CutResult(np.zeros(0, dtype=np.uint8), 0.0, "exact_bnb")
    # Order nodes by weighted degree (descending) for stronger early bounds.
    order = np.argsort(-graph.degrees(weighted=True)).astype(np.int64)
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n)
    # For each node (in assignment order), edges to already-assigned nodes.
    earlier: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    remaining_after = np.zeros(n + 1)
    for a, b, weight in zip(graph.u, graph.v, graph.w, strict=True):
        pa, pb = pos[a], pos[b]
        hi, lo = (pa, pb) if pa > pb else (pb, pa)
        earlier[hi].append((int(lo), float(weight)))
        remaining_after[: hi + 1] += abs(weight)
    # remaining_after[k] = total |w| of edges whose later endpoint is at
    # position >= k, i.e. still undecided once k nodes are fixed.
    incumbent = one_exchange(graph, rng=0)
    best_cut = incumbent.cut
    best_x = incumbent.assignment[order].copy()  # in assignment order
    x = np.zeros(n, dtype=np.uint8)
    visited = 0
    optimal = True

    def dfs(k: int, cur: float) -> None:
        nonlocal best_cut, best_x, visited, optimal
        if visited > time_budget_nodes:
            optimal = False
            return
        visited += 1
        if k == n:
            if cur > best_cut:
                best_cut = cur
                best_x = x.copy()
            return
        if cur + remaining_after[k] <= best_cut + 1e-12:
            return
        gains = [0.0, 0.0]
        for j, weight in earlier[k]:
            gains[1 ^ x[j]] += weight  # placing opposite side cuts the edge
        # Symmetry break: first node pinned to side 0.
        sides = (0,) if k == 0 else ((0, 1) if gains[0] >= gains[1] else (1, 0))
        for side in sides:
            x[k] = side
            dfs(k + 1, cur + gains[side])
        x[k] = 0

    dfs(0, 0.0)
    assignment = np.empty(n, dtype=np.uint8)
    assignment[order] = best_x
    return CutResult(
        assignment, float(best_cut), "exact_bnb", {"optimal": optimal, "visited": visited}
    )


def exact_maxcut(graph: Graph) -> CutResult:
    """Dispatch to the cheapest exact solver for this size."""
    if graph.n_nodes <= 20:
        return exact_maxcut_bruteforce(graph)
    return exact_maxcut_branch_and_bound(graph)


__all__ = [
    "CutResult",
    "as_binary",
    "as_spins",
    "cut_value",
    "cut_diagonal",
    "bitstring_to_assignment",
    "assignment_to_bitstring",
    "random_cut",
    "randomized_partitioning",
    "one_exchange",
    "exact_maxcut_bruteforce",
    "exact_maxcut_branch_and_bound",
    "exact_maxcut",
]
