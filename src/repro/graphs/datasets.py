"""Named benchmark instance families (Gset-style synthetic suite).

The MaxCut literature benchmarks on the Gset collection (rudy-generated
random, toroidal and planar-ish graphs) and on ±1-weighted families.  This
module provides deterministic named instances in those styles so results
can be referenced by name ("g05_60_0") across runs and machines — the
conclusion's "other graph types and partitions including more statistics"
outlook needs exactly this.

Families
--------
* ``g05_N_s``  — unweighted G(N, 0.5) (the classic g05 series).
* ``pm1d_N_s`` — dense ±1 weights (G(N, 0.99), w ∈ {−1, +1}).
* ``pm1s_N_s`` — sparse ±1 weights (G(N, 0.1), w ∈ {−1, +1}).
* ``wd_N_s``   — dense integer weights in [−10, 10] \\ {0}.
* ``torus_K_s``— 2D torus (K×K grid with wraparound), ±1 weights.
* ``er_N_p_s`` — plain Erdős–Rényi with explicit edge probability.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.generators import erdos_renyi
from repro.util.rng import ensure_rng

_NAME_RE = re.compile(
    r"^(?P<family>g05|pm1d|pm1s|wd|torus|er)_(?P<size>\d+)"
    r"(?:_(?P<p>0\.\d+))?_(?P<seed>\d+)$"
)


def _pm1_weights(gen: np.random.Generator, m: int) -> np.ndarray:
    return gen.choice((-1.0, 1.0), size=m)


def _torus(k: int, gen: np.random.Generator) -> Graph:
    n = k * k
    edges: List[Tuple[int, int, float]] = []
    for r in range(k):
        for c in range(k):
            i = r * k + c
            right = r * k + (c + 1) % k
            down = ((r + 1) % k) * k + c
            if i != right:
                edges.append((i, right, float(gen.choice((-1.0, 1.0)))))
            if i != down:
                edges.append((i, down, float(gen.choice((-1.0, 1.0)))))
    return Graph.from_edges(n, edges)


def load_instance(name: str) -> Graph:
    """Materialise a named instance deterministically.

    Examples: ``g05_60_0``, ``pm1s_80_3``, ``torus_8_1``, ``er_50_0.2_7``.
    """
    match = _NAME_RE.match(name)
    if not match:
        raise ValueError(
            f"unknown instance name {name!r}; expected e.g. 'g05_60_0', "
            "'pm1d_40_1', 'torus_8_0', 'er_50_0.2_7'"
        )
    family = match.group("family")
    size = int(match.group("size"))
    p_str = match.group("p")
    seed = int(match.group("seed"))
    # Deterministic seed derivation: family and size salt the stream.
    salt = sum(ord(ch) for ch in family) * 1_000_003 + size * 7919 + seed
    gen = ensure_rng(salt)
    if family == "g05":
        return erdos_renyi(size, 0.5, rng=gen)
    if family == "pm1d":
        base = erdos_renyi(size, 0.99, rng=gen)
        return base.with_weights(_pm1_weights(gen, base.n_edges))
    if family == "pm1s":
        base = erdos_renyi(size, 0.1, rng=gen)
        return base.with_weights(_pm1_weights(gen, base.n_edges))
    if family == "wd":
        base = erdos_renyi(size, 0.5, rng=gen)
        weights = gen.integers(1, 11, size=base.n_edges).astype(np.float64)
        weights *= gen.choice((-1.0, 1.0), size=base.n_edges)
        return base.with_weights(weights)
    if family == "torus":
        return _torus(size, gen)
    if family == "er":
        if p_str is None:
            raise ValueError("er instances need a probability: er_N_p_seed")
        return erdos_renyi(size, float(p_str), rng=gen)
    raise AssertionError("unreachable")  # pragma: no cover


def standard_suite(*, tier: str = "small") -> Dict[str, Graph]:
    """A fixed named suite per tier (used by sweep drivers and docs).

    ``small`` fits exact verification (N ≤ 20); ``medium`` fits the QAOA²
    benches (N ≤ 120).
    """
    if tier == "small":
        names = [
            "g05_14_0", "g05_14_1",
            "pm1d_12_0", "pm1s_16_0",
            "wd_12_0", "torus_4_0",
            "er_16_0.2_0",
        ]
    elif tier == "medium":
        names = [
            "g05_60_0", "pm1s_80_0", "wd_60_0",
            "torus_8_0", "er_100_0.1_0", "er_120_0.1_1",
        ]
    else:
        raise ValueError(f"unknown tier {tier!r}")
    return {name: load_instance(name) for name in names}


__all__ = ["load_instance", "standard_suite"]
