"""Graph partitioning for the QAOA² divide step (paper §3.3 step 2).

The paper partitions the input graph with the *greedy modularity* method
from NetworkX and, whenever a community exceeds the qubit budget ``n``,
recursively re-partitions that community.  We implement the
Clauset–Newman–Moore (CNM) greedy modularity agglomeration from scratch
(heap-based, weighted, with resolution parameter), provide a spectral
bisection fall-back for communities that greedy modularity refuses to split,
and expose the NetworkX implementation as an alternative backend for
cross-validation.  A random balanced partitioner supports the partition
ablation (DESIGN.md A3).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.util.rng import RngLike, ensure_rng
from repro.util.validation import check_positive_int


# ---------------------------------------------------------------------------
# Modularity scoring
# ---------------------------------------------------------------------------
def modularity(graph: Graph, membership: Sequence[int], resolution: float = 1.0) -> float:
    """Weighted Newman modularity Q of a node->community assignment.

    Q = Σ_c [ Σ_in(c) / (2m) − resolution · (Σ_tot(c) / (2m))² ]
    with 2m the total weighted degree.
    """
    membership = np.asarray(membership)
    two_m = 2.0 * graph.total_weight
    if two_m == 0:
        return 0.0
    deg = graph.degrees(weighted=True)
    n_comm = int(membership.max()) + 1 if len(membership) else 0
    sigma_tot = np.zeros(n_comm)
    np.add.at(sigma_tot, membership, deg)
    internal = np.zeros(n_comm)
    same = membership[graph.u] == membership[graph.v]
    np.add.at(internal, membership[graph.u[same]], 2.0 * graph.w[same])
    return float(
        np.sum(internal) / two_m - resolution * np.sum((sigma_tot / two_m) ** 2)
    )


# ---------------------------------------------------------------------------
# Clauset–Newman–Moore greedy modularity (from scratch)
# ---------------------------------------------------------------------------
def greedy_modularity_communities(
    graph: Graph,
    *,
    resolution: float = 1.0,
    min_communities: int = 1,
) -> List[np.ndarray]:
    """Agglomerative greedy modularity maximisation (CNM).

    Starts with singleton communities and repeatedly merges the pair with
    the largest modularity gain until no merge improves modularity (or only
    ``min_communities`` remain).  Heap with lazy invalidation gives
    O(m log² n)-ish behaviour, adequate for the paper's graph sizes.

    Returns communities as arrays of node ids, largest first (ties broken
    by smallest node id) — mirroring the NetworkX convention.
    """
    n = graph.n_nodes
    if n == 0:
        return []
    two_m = 2.0 * float(np.abs(graph.w).sum())
    if graph.n_edges == 0 or two_m == 0.0:
        return [np.array([i], dtype=np.int64) for i in range(n)]

    # For modularity on possibly negative weights (merge graphs), use |w|;
    # standard instances have positive weights so this is a no-op.
    w_eff = np.abs(graph.w)
    deg = np.zeros(n)
    np.add.at(deg, graph.u, w_eff)
    np.add.at(deg, graph.v, w_eff)
    a = deg / two_m

    # Community adjacency: dq[i][j] = modularity gain of merging i and j.
    dq: List[dict] = [dict() for _ in range(n)]
    for uu, vv, ww in zip(graph.u.tolist(), graph.v.tolist(), w_eff.tolist(), strict=True):
        gain = 2.0 * (ww / two_m - resolution * a[uu] * a[vv])
        dq[uu][vv] = gain
        dq[vv][uu] = gain

    heap: list[tuple[float, int, int]] = []
    for i in range(n):
        for j, gain in dq[i].items():
            if i < j:
                heapq.heappush(heap, (-gain, i, j))

    alive = np.ones(n, dtype=bool)
    members: List[Optional[list]] = [[i] for i in range(n)]
    n_comm = n

    while heap and n_comm > min_communities:
        neg_gain, i, j = heapq.heappop(heap)
        gain = -neg_gain
        if not (alive[i] and alive[j]):
            continue
        current = dq[i].get(j)
        if current is None or abs(current - gain) > 1e-12:
            continue  # stale heap entry
        if gain <= 1e-15:
            break  # no improving merge remains
        # Merge j into i (keep the larger community label for fewer updates).
        if len(members[j]) > len(members[i]):
            i, j = j, i
        neighbors = set(dq[i]) | set(dq[j])
        neighbors.discard(i)
        neighbors.discard(j)
        for k in neighbors:
            in_i = k in dq[i]
            in_j = k in dq[j]
            if in_i and in_j:
                new_gain = dq[i][k] + dq[j][k]
            elif in_i:
                new_gain = dq[i][k] - 2.0 * resolution * a[j] * a[k]
            else:
                new_gain = dq[j][k] - 2.0 * resolution * a[i] * a[k]
            dq[i][k] = new_gain
            dq[k][i] = new_gain
            dq[k].pop(j, None)
            heapq.heappush(heap, (-new_gain, min(i, k), max(i, k)))
        dq[i].pop(j, None)
        dq[j].clear()
        a[i] += a[j]
        members[i].extend(members[j])
        members[j] = None
        alive[j] = False
        n_comm -= 1

    communities = [
        np.array(sorted(m), dtype=np.int64) for m in members if m is not None
    ]
    communities.sort(key=lambda c: (-len(c), int(c[0])))
    return communities


def networkx_modularity_communities(
    graph: Graph, *, resolution: float = 1.0
) -> List[np.ndarray]:
    """NetworkX ``greedy_modularity_communities`` backend (cross-check)."""
    import networkx as nx

    comms = nx.algorithms.community.greedy_modularity_communities(
        graph.to_networkx(), weight="weight", resolution=resolution
    )
    return [np.array(sorted(c), dtype=np.int64) for c in comms]


# ---------------------------------------------------------------------------
# Splitters for oversized communities
# ---------------------------------------------------------------------------
def spectral_bisection(graph: Graph, rng: RngLike = None) -> List[np.ndarray]:
    """Split a graph in two using the Fiedler vector (median threshold).

    Falls back to a balanced index split when the spectrum is degenerate
    (e.g. empty or fully disconnected graphs).
    """
    n = graph.n_nodes
    if n <= 1:
        return [np.arange(n, dtype=np.int64)]
    if graph.n_edges == 0:
        half = n // 2
        idx = np.arange(n, dtype=np.int64)
        return [idx[:half], idx[half:]]
    lap = graph.laplacian()
    try:
        vals, vecs = np.linalg.eigh(lap)
        fiedler = vecs[:, 1]
    except np.linalg.LinAlgError:  # pragma: no cover - eigh on sym is robust
        fiedler = ensure_rng(rng).standard_normal(n)
    order = np.argsort(fiedler, kind="stable")
    half = n // 2
    left = np.sort(order[:half]).astype(np.int64)
    right = np.sort(order[half:]).astype(np.int64)
    return [left, right]


def random_balanced_partition(
    graph: Graph, cap: int, rng: RngLike = None
) -> List[np.ndarray]:
    """Random contiguous chunks of size <= cap (ablation baseline)."""
    cap = check_positive_int(cap, "cap")
    gen = ensure_rng(rng)
    perm = gen.permutation(graph.n_nodes).astype(np.int64)
    n_parts = max(1, -(-graph.n_nodes // cap))
    return [np.sort(chunk) for chunk in np.array_split(perm, n_parts)]


# ---------------------------------------------------------------------------
# Cap-respecting partition (the QAOA² divide step)
# ---------------------------------------------------------------------------
@dataclass
class PartitionResult:
    """Partition output: parts (node-id arrays) and node->part membership."""

    parts: List[np.ndarray]
    membership: np.ndarray
    method: str = "greedy_modularity"
    recursion_depth: int = 0

    @property
    def n_parts(self) -> int:
        return len(self.parts)

    def sizes(self) -> np.ndarray:
        return np.array([len(p) for p in self.parts])


def partition_with_cap(
    graph: Graph,
    cap: int,
    *,
    method: str = "greedy_modularity",
    resolution: float = 1.0,
    rng: RngLike = None,
    max_depth: int = 64,
) -> PartitionResult:
    """Partition so every part has at most ``cap`` nodes (paper step 2).

    ``method`` selects the community detector: ``greedy_modularity`` (ours),
    ``networkx`` (NetworkX CNM), ``spectral`` (recursive bisection only) or
    ``random`` (balanced random chunks).  Oversized communities are
    re-partitioned recursively; if a detector returns a single oversized
    community, spectral bisection forces progress.
    """
    cap = check_positive_int(cap, "cap")
    gen = ensure_rng(rng)

    detectors: dict[str, Callable[[Graph], List[np.ndarray]]] = {
        "greedy_modularity": lambda g: greedy_modularity_communities(
            g, resolution=resolution
        ),
        "networkx": lambda g: networkx_modularity_communities(
            g, resolution=resolution
        ),
        "spectral": lambda g: spectral_bisection(g, rng=gen),
        "random": lambda g: random_balanced_partition(g, cap, rng=gen),
    }
    if method not in detectors:
        raise ValueError(f"unknown partition method {method!r}")
    detect = detectors[method]

    final_parts: List[np.ndarray] = []
    max_seen_depth = 0

    def recurse(nodes: np.ndarray, depth: int) -> None:
        nonlocal max_seen_depth
        max_seen_depth = max(max_seen_depth, depth)
        if len(nodes) <= cap:
            final_parts.append(np.sort(nodes))
            return
        if depth >= max_depth:
            n_parts = -(-len(nodes) // cap)
            for chunk in np.array_split(np.sort(nodes), n_parts):
                final_parts.append(chunk)
            return
        sub, orig = graph.subgraph(nodes)
        comms = detect(sub)
        if len(comms) <= 1:
            comms = spectral_bisection(sub, rng=gen)
        if len(comms) <= 1:  # still unsplittable: force balanced halves
            idx = np.arange(sub.n_nodes, dtype=np.int64)
            comms = [idx[: len(idx) // 2], idx[len(idx) // 2 :]]
        for comm in comms:
            recurse(orig[comm], depth + 1)

    recurse(np.arange(graph.n_nodes, dtype=np.int64), 0)
    final_parts.sort(key=lambda p: (-len(p), int(p[0]) if len(p) else -1))
    membership = np.empty(graph.n_nodes, dtype=np.int64)
    for part_id, part in enumerate(final_parts):
        membership[part] = part_id
    return PartitionResult(final_parts, membership, method, max_seen_depth)


__all__ = [
    "modularity",
    "greedy_modularity_communities",
    "networkx_modularity_communities",
    "spectral_bisection",
    "random_balanced_partition",
    "PartitionResult",
    "partition_with_cap",
]
