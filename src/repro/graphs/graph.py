"""Immutable weighted graph used throughout the library.

The paper works with undirected weighted graphs (Erdős–Rényi instances,
§4).  Instead of carrying :mod:`networkx` objects through the hot paths we
use a flat edge-array representation (``u``, ``v``, ``w`` NumPy arrays with
``u < v`` canonical ordering) which vectorises cut evaluation, Hamiltonian
construction and SDP assembly.  Conversion helpers to/from networkx are
provided for interoperability and for the partitioning backend comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

try:  # networkx is a declared dependency but keep import failure local
    import networkx as nx
except ImportError:  # pragma: no cover - networkx is always installed here
    nx = None


@dataclass(frozen=True)
class Graph:
    """Undirected weighted graph with nodes ``0..n_nodes-1``.

    Attributes
    ----------
    n_nodes:
        Number of nodes; nodes are consecutive integers starting at 0.
    u, v:
        Edge endpoint arrays (``int64``), canonicalised so ``u[k] < v[k]``
        and edges sorted lexicographically.  No self loops, no duplicates.
    w:
        Edge weights (``float64``).  Negative weights are allowed — the
        QAOA² merge step (paper §3.3 step 4) produces them.
    """

    n_nodes: int
    u: np.ndarray
    v: np.ndarray
    w: np.ndarray
    _cache: dict = field(default_factory=dict, compare=False, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_edges(
        n_nodes: int,
        edges: Iterable[Tuple[int, int, float]] | Sequence,
        *,
        sum_duplicates: bool = True,
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v, weight)`` triples.

        Self loops are rejected.  Duplicate edges are merged by summing
        weights when ``sum_duplicates`` (needed by the QAOA² merge, which
        aggregates all cross edges between two communities into one edge).
        """
        edge_list = list(edges)
        if not edge_list:
            empty = np.empty(0)
            return Graph(
                int(n_nodes),
                empty.astype(np.int64),
                empty.astype(np.int64),
                empty.astype(np.float64),
            )
        arr = np.asarray(edge_list, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] not in (2, 3):
            raise ValueError("edges must be (u, v) or (u, v, w) triples")
        uu = arr[:, 0].astype(np.int64)
        vv = arr[:, 1].astype(np.int64)
        ww = arr[:, 2] if arr.shape[1] == 3 else np.ones(len(arr))
        return Graph._from_arrays(int(n_nodes), uu, vv, ww, sum_duplicates)

    @staticmethod
    def _from_arrays(
        n_nodes: int,
        uu: np.ndarray,
        vv: np.ndarray,
        ww: np.ndarray,
        sum_duplicates: bool = True,
    ) -> "Graph":
        if len(uu) and (uu.min() < 0 or vv.min() < 0):
            raise ValueError("node indices must be non-negative")
        if len(uu) and max(uu.max(), vv.max()) >= n_nodes:
            raise ValueError("edge endpoint exceeds n_nodes")
        if np.any(uu == vv):
            raise ValueError("self loops are not allowed")
        lo = np.minimum(uu, vv)
        hi = np.maximum(uu, vv)
        order = np.lexsort((hi, lo))
        lo, hi, ww = lo[order], hi[order], np.asarray(ww, dtype=np.float64)[order]
        if len(lo) > 1:
            same = (lo[1:] == lo[:-1]) & (hi[1:] == hi[:-1])
            if same.any():
                if not sum_duplicates:
                    raise ValueError("duplicate edges present")
                # Group-by consecutive identical (lo, hi) pairs and sum weights
                boundary = np.concatenate(([True], ~same))
                group = np.cumsum(boundary) - 1
                n_groups = group[-1] + 1
                wsum = np.zeros(n_groups)
                np.add.at(wsum, group, ww)
                keep = np.flatnonzero(boundary)
                lo, hi, ww = lo[keep], hi[keep], wsum
        return Graph(int(n_nodes), lo, hi, ww)

    @staticmethod
    def from_networkx(g: "nx.Graph", weight: str = "weight") -> "Graph":
        """Convert a networkx graph (nodes relabelled to 0..n-1, sorted)."""
        nodes = sorted(g.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [
            (index[a], index[b], float(data.get(weight, 1.0)))
            for a, b, data in g.edges(data=True)
        ]
        return Graph.from_edges(len(nodes), edges)

    def to_networkx(self) -> "nx.Graph":
        """Convert to a networkx graph with ``weight`` edge attributes."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n_nodes))
        for a, b, weight in zip(self.u, self.v, self.w, strict=True):
            g.add_edge(int(a), int(b), weight=float(weight))
        return g

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return len(self.u)

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights (the trivial upper bound on the cut)."""
        return float(self.w.sum())

    @property
    def is_weighted(self) -> bool:
        """True unless every edge weight equals 1 (paper's "unweighted")."""
        return bool(self.n_edges) and not np.allclose(self.w, 1.0)

    @property
    def density(self) -> float:
        """Edge density |E| / C(n, 2); the paper's "edge probability" analogue."""
        if self.n_nodes < 2:
            return 0.0
        return 2.0 * self.n_edges / (self.n_nodes * (self.n_nodes - 1))

    def degrees(self, weighted: bool = False) -> np.ndarray:
        """Per-node degree (or weighted degree / strength)."""
        deg = np.zeros(self.n_nodes)
        inc = self.w if weighted else np.ones(self.n_edges)
        np.add.at(deg, self.u, inc)
        np.add.at(deg, self.v, inc)
        return deg

    def edge_index(self) -> Dict[Tuple[int, int], int]:
        """Map from canonical ``(u, v)`` pair to edge position."""
        return {
            (int(a), int(b)): k for k, (a, b) in enumerate(zip(self.u, self.v, strict=True))
        }

    # ------------------------------------------------------------------
    # Matrix views (cached; graphs are frozen so caching is safe)
    # ------------------------------------------------------------------
    def adjacency(self) -> np.ndarray:
        """Dense symmetric weighted adjacency matrix (small graphs only)."""
        key = "adjacency"
        if key not in self._cache:
            a = np.zeros((self.n_nodes, self.n_nodes))
            a[self.u, self.v] = self.w
            a[self.v, self.u] = self.w
            self._cache[key] = a
        return self._cache[key]

    def adjacency_sparse(self):
        """Sparse CSR adjacency (used by the SDP mixing solver and spectra)."""
        key = "adjacency_sparse"
        if key not in self._cache:
            from scipy.sparse import coo_matrix

            row = np.concatenate([self.u, self.v])
            col = np.concatenate([self.v, self.u])
            dat = np.concatenate([self.w, self.w])
            self._cache[key] = coo_matrix(
                (dat, (row, col)), shape=(self.n_nodes, self.n_nodes)
            ).tocsr()
        return self._cache[key]

    def laplacian(self) -> np.ndarray:
        """Dense weighted Laplacian L = D - A."""
        a = self.adjacency()
        return np.diag(a.sum(axis=1)) - a

    def neighbors(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR-style neighbor lists: (indptr, indices, weights)."""
        key = "neighbors"
        if key not in self._cache:
            csr = self.adjacency_sparse()
            self._cache[key] = (csr.indptr.copy(), csr.indices.copy(), csr.data.copy())
        return self._cache[key]

    # ------------------------------------------------------------------
    # Subgraphs & edge partitions (the QAOA² divide step uses these)
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Sequence[int]) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph on ``nodes``.

        Returns the subgraph (relabelled ``0..len(nodes)-1`` following the
        order of ``nodes``) and the original-node array so solutions can be
        lifted back (``original = nodes[local]``).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(np.unique(nodes)) != len(nodes):
            raise ValueError("duplicate nodes in subgraph selection")
        inv = np.full(self.n_nodes, -1, dtype=np.int64)
        inv[nodes] = np.arange(len(nodes))
        mask = (inv[self.u] >= 0) & (inv[self.v] >= 0)
        sub = Graph._from_arrays(
            len(nodes), inv[self.u[mask]], inv[self.v[mask]], self.w[mask]
        )
        return sub, nodes

    def cross_edges(
        self, membership: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Edges whose endpoints lie in different parts.

        Parameters
        ----------
        membership:
            Array of length ``n_nodes`` mapping node -> part id.

        Returns
        -------
        (u, v, w, part_u, part_v) restricted to cross edges.
        """
        membership = np.asarray(membership)
        pu = membership[self.u]
        pv = membership[self.v]
        mask = pu != pv
        return self.u[mask], self.v[mask], self.w[mask], pu[mask], pv[mask]

    def relabel(self, permutation: Sequence[int]) -> "Graph":
        """Return the graph with node ``i`` renamed ``permutation[i]``."""
        perm = np.asarray(permutation, dtype=np.int64)
        if sorted(perm.tolist()) != list(range(self.n_nodes)):
            raise ValueError("permutation must be a bijection on nodes")
        return Graph._from_arrays(self.n_nodes, perm[self.u], perm[self.v], self.w)

    def with_weights(self, new_w: np.ndarray) -> "Graph":
        """Same topology with replaced weights (used in tests/ablations)."""
        new_w = np.asarray(new_w, dtype=np.float64)
        if new_w.shape != self.w.shape:
            raise ValueError("weight array shape mismatch")
        return Graph(self.n_nodes, self.u, self.v, new_w)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "weighted" if self.is_weighted else "unweighted"
        return f"Graph(n={self.n_nodes}, m={self.n_edges}, {kind})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n_nodes == other.n_nodes
            and np.array_equal(self.u, other.u)
            and np.array_equal(self.v, other.v)
            and np.allclose(self.w, other.w)
        )

    def __hash__(self) -> int:
        return hash((self.n_nodes, self.n_edges, float(self.w.sum())))


__all__ = ["Graph"]
