"""Graph serialisation: edge-list, JSON, and Gset/DIMACS-style formats.

Benchmark MaxCut work distributes instances as weighted edge lists (the
Gset collection, rudy format); this module reads/writes those plus a JSON
container with metadata, so experiments can be re-run on external
instances and our generated instances can be shipped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union


from repro.graphs.graph import Graph

PathLike = Union[str, Path]


def write_edgelist(graph: Graph, path: PathLike, *, header: bool = True) -> None:
    """Gset/rudy format: first line ``n_nodes n_edges`` (optional), then one
    ``u v w`` line per edge with 1-based node indices."""
    lines = []
    if header:
        lines.append(f"{graph.n_nodes} {graph.n_edges}")
    for a, b, w in zip(graph.u.tolist(), graph.v.tolist(), graph.w.tolist(), strict=True):
        if w == int(w):
            lines.append(f"{a + 1} {b + 1} {int(w)}")
        else:
            lines.append(f"{a + 1} {b + 1} {w!r}")
    Path(path).write_text("\n".join(lines) + "\n")


def read_edgelist(path: PathLike, *, n_nodes: Optional[int] = None) -> Graph:
    """Read the Gset/rudy format (with or without the header line).

    A first line of exactly two integers is treated as the ``n m`` header
    only when its second value matches the number of remaining data lines —
    this disambiguates headerless two-column (unweighted) edge lists.
    """
    text = Path(path).read_text()
    data_lines = [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith(("#", "%", "c"))
    ]
    header_nodes: Optional[int] = None
    if data_lines:
        first = data_lines[0].split()
        if len(first) == 2 and int(float(first[1])) == len(data_lines) - 1:
            header_nodes = int(first[0])
            data_lines = data_lines[1:]
    edges = []
    max_node = 0
    for line in data_lines:
        parts = line.split()
        if len(parts) == 2:
            a, b, w = int(parts[0]), int(parts[1]), 1.0
        elif len(parts) >= 3:
            a, b, w = int(parts[0]), int(parts[1]), float(parts[2])
        else:
            raise ValueError(f"malformed edge line: {line!r}")
        edges.append((a - 1, b - 1, w))
        max_node = max(max_node, a, b)
    n = n_nodes if n_nodes is not None else (header_nodes or max_node)
    return Graph.from_edges(n, edges)


def write_json(graph: Graph, path: PathLike, *, metadata: Optional[dict] = None) -> None:
    """JSON container: nodes, edges and free-form metadata."""
    payload = {
        "n_nodes": graph.n_nodes,
        "edges": [
            [int(a), int(b), float(w)]
            for a, b, w in zip(graph.u, graph.v, graph.w, strict=True)
        ],
        "metadata": metadata or {},
    }
    Path(path).write_text(json.dumps(payload))


def read_json(path: PathLike) -> tuple[Graph, dict]:
    payload = json.loads(Path(path).read_text())
    graph = Graph.from_edges(payload["n_nodes"], payload["edges"])
    return graph, payload.get("metadata", {})


__all__ = ["write_edgelist", "read_edgelist", "write_json", "read_json"]
