"""Graph generators.

The paper's evaluation (§4) uses Erdős–Rényi ``G(n, p)`` graphs, one
*unweighted* instance (all weights 1) and one *weighted* instance with
weights drawn uniformly from ``[0, 1]`` for every (node count, edge
probability) pair.  Additional generators (rings, regular, complete,
bipartite, planted-partition) support tests, ablations and the "other graph
types" outlook from the conclusion.
"""

from __future__ import annotations


import numpy as np

from repro.graphs.graph import Graph
from repro.util.rng import RngLike, ensure_rng
from repro.util.validation import check_probability, check_positive_int


def erdos_renyi(
    n: int,
    p: float,
    *,
    weighted: bool = False,
    rng: RngLike = None,
    ensure_edge: bool = True,
) -> Graph:
    """Erdős–Rényi ``G(n, p)`` graph, matching the paper's instances.

    Parameters
    ----------
    n:
        Node count.
    p:
        Independent edge probability.
    weighted:
        If True, weights are drawn uniformly from ``[0, 1]`` (paper §4);
        otherwise all weights are 1.
    ensure_edge:
        Guarantee at least one edge (re-draws a single random pair if the
        sampled graph is empty) so downstream solvers never receive a
        degenerate instance.  Set False for exact G(n, p) semantics.
    """
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    gen = ensure_rng(rng)
    iu, iv = np.triu_indices(n, k=1)
    mask = gen.random(len(iu)) < p
    uu, vv = iu[mask], iv[mask]
    if ensure_edge and len(uu) == 0 and n >= 2:
        a = int(gen.integers(0, n - 1))
        b = int(gen.integers(a + 1, n))
        uu = np.array([a], dtype=np.int64)
        vv = np.array([b], dtype=np.int64)
    if weighted:
        ww = gen.random(len(uu))
    else:
        ww = np.ones(len(uu))
    return Graph._from_arrays(n, uu.astype(np.int64), vv.astype(np.int64), ww)


def erdos_renyi_pair(
    n: int, p: float, *, rng: RngLike = None
) -> tuple[Graph, Graph]:
    """The paper's per-grid-point instance pair: (unweighted, weighted)."""
    gen = ensure_rng(rng)
    return (
        erdos_renyi(n, p, weighted=False, rng=gen),
        erdos_renyi(n, p, weighted=True, rng=gen),
    )


def ring(n: int, *, weighted: bool = False, rng: RngLike = None) -> Graph:
    """Cycle graph C_n (known MaxCut: n for even n, n-1 for odd n, unweighted)."""
    n = check_positive_int(n, "n")
    if n < 3:
        raise ValueError("ring requires n >= 3")
    uu = np.arange(n, dtype=np.int64)
    vv = (uu + 1) % n
    ww = ensure_rng(rng).random(n) if weighted else np.ones(n)
    return Graph._from_arrays(n, uu, vv, ww)


def complete(n: int, *, weighted: bool = False, rng: RngLike = None) -> Graph:
    """Complete graph K_n (MaxCut = floor(n/2)*ceil(n/2) when unweighted)."""
    n = check_positive_int(n, "n")
    iu, iv = np.triu_indices(n, k=1)
    ww = ensure_rng(rng).random(len(iu)) if weighted else np.ones(len(iu))
    return Graph._from_arrays(n, iu.astype(np.int64), iv.astype(np.int64), ww)


def complete_bipartite(a: int, b: int) -> Graph:
    """K_{a,b}: every edge crosses the bipartition, so MaxCut = a*b."""
    a = check_positive_int(a, "a")
    b = check_positive_int(b, "b")
    left = np.repeat(np.arange(a), b)
    right = np.tile(np.arange(a, a + b), a)
    return Graph._from_arrays(
        a + b, left.astype(np.int64), right.astype(np.int64), np.ones(a * b)
    )


def random_regular(n: int, d: int, *, rng: RngLike = None) -> Graph:
    """Random d-regular graph via the configuration model with retries.

    3-regular graphs are the classic QAOA benchmark family (Farhi et al.);
    provided for the conclusion's "other graph types" outlook.
    """
    n = check_positive_int(n, "n")
    if d < 1 or d >= n or (n * d) % 2 != 0:
        raise ValueError(f"invalid regular graph parameters n={n}, d={d}")
    gen = ensure_rng(rng)
    for _ in range(200):
        stubs = np.repeat(np.arange(n), d)
        gen.shuffle(stubs)
        uu = stubs[0::2]
        vv = stubs[1::2]
        bad = uu == vv
        pairs = set()
        ok = True
        for x, y in zip(uu, vv, strict=True):
            if x == y:
                ok = False
                break
            key = (min(x, y), max(x, y))
            if key in pairs:
                ok = False
                break
            pairs.add(key)
        if ok and not bad.any():
            return Graph._from_arrays(
                n, uu.astype(np.int64), vv.astype(np.int64), np.ones(len(uu))
            )
    raise RuntimeError("failed to sample a simple regular graph; try other n, d")


def planted_partition(
    n: int,
    k: int,
    p_in: float,
    p_out: float,
    *,
    weighted: bool = False,
    rng: RngLike = None,
) -> Graph:
    """Planted-partition (stochastic block) graph with ``k`` equal blocks.

    Community structure makes these ideal for exercising the greedy
    modularity divide step of QAOA² — communities should align with blocks.
    """
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    check_probability(p_in, "p_in")
    check_probability(p_out, "p_out")
    gen = ensure_rng(rng)
    block = np.arange(n) % k
    iu, iv = np.triu_indices(n, k=1)
    same = block[iu] == block[iv]
    prob = np.where(same, p_in, p_out)
    mask = gen.random(len(iu)) < prob
    uu, vv = iu[mask], iv[mask]
    ww = gen.random(len(uu)) if weighted else np.ones(len(uu))
    return Graph._from_arrays(n, uu.astype(np.int64), vv.astype(np.int64), ww)


def grid_2d(rows: int, cols: int) -> Graph:
    """Rectangular grid graph (bipartite: MaxCut = number of edges)."""
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    edges = []
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if c + 1 < cols:
                edges.append((i, i + 1, 1.0))
            if r + 1 < rows:
                edges.append((i, i + cols, 1.0))
    return Graph.from_edges(rows * cols, edges)


__all__ = [
    "erdos_renyi",
    "erdos_renyi_pair",
    "ring",
    "complete",
    "complete_bipartite",
    "random_regular",
    "planted_partition",
    "grid_2d",
]
