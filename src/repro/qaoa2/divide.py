"""The QAOA² divide step, re-exported with the paper's vocabulary.

Thin naming layer over :mod:`repro.graphs.partition`: the paper's step 2
is "partition into sub-graphs in which the number of nodes does not exceed
the number of qubits, recursively re-dividing oversized communities".
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.partition import PartitionResult, partition_with_cap
from repro.util.rng import RngLike


def divide(
    graph: Graph,
    n_qubits: int,
    *,
    method: str = "greedy_modularity",
    rng: RngLike = None,
) -> PartitionResult:
    """Partition ``graph`` so every sub-graph fits in ``n_qubits`` qubits."""
    return partition_with_cap(graph, n_qubits, method=method, rng=rng)


def extract_subgraphs(
    graph: Graph, partition: PartitionResult
) -> List[Tuple[Graph, np.ndarray]]:
    """Materialise the induced sub-graph (+ original-node map) per part."""
    return [graph.subgraph(part) for part in partition.parts]


__all__ = ["divide", "extract_subgraphs"]
