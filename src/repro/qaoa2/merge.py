"""The QAOA² merge step (paper §3.3 steps 4-5).

Given sub-graph solutions, a *merged graph* is built with one node per
sub-graph:

    4(a) each sub-graph is represented by a node;
    4(b) each cross edge that is part of the current cut gets its weight
         multiplied by −1, uncut cross edges keep their weight;
    4(c) all (signed) cross edges between two sub-graphs are summed into a
         single merged edge.

Solving MaxCut on the merged graph decides which sub-graphs to *flip*
(step 5: "if a node in the new graph is −1, all the nodes in the sub-graph
represented by this node are flipped").

Why this is exact bookkeeping: flipping whole sub-graphs never changes
intra-sub-graph cut contributions; a cross edge (i, j) between sub-graphs
A and B toggles its cut status iff exactly one of A, B flips.  Writing
d_AB = 1 when A and B land on opposite sides of the merged cut,

    cross-cut after flips = C0 + Σ_{A<B} W̃_AB · d_AB,

with C0 the currently-cut cross weight and W̃_AB = Σ_uncut w − Σ_cut w the
merged weight from 4(b)+4(c).  Maximising the merged cut therefore
maximises exactly the achievable cross-cut gain — this identity is
property-tested in ``tests/test_qaoa2_merge.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import as_binary, cut_value


@dataclass
class MergeProblem:
    """Merged graph plus the bookkeeping needed to lift its solution."""

    merged_graph: Graph
    baseline_cross_cut: float  # C0: cross weight already cut before flips
    intra_cut: float  # Σ intra-sub-graph cut (invariant under flips)
    membership: np.ndarray  # node -> part id

    @property
    def baseline_total_cut(self) -> float:
        """Total cut if no sub-graph is flipped (merged solution = all zeros)."""
        return self.intra_cut + self.baseline_cross_cut

    def total_cut_for(self, merged_assignment: np.ndarray) -> float:
        """Predicted global cut for a merged-graph assignment (the identity)."""
        merged_cut = cut_value(self.merged_graph, merged_assignment)
        return self.intra_cut + self.baseline_cross_cut + merged_cut


def assemble_global_assignment(
    n_nodes: int, parts: Sequence[np.ndarray], local_assignments: Sequence[np.ndarray]
) -> np.ndarray:
    """Scatter per-part local assignments into one global 0/1 array."""
    x = np.zeros(n_nodes, dtype=np.uint8)
    for part, local in zip(parts, local_assignments, strict=True):
        local = as_binary(np.asarray(local))
        if len(local) != len(part):
            raise ValueError("local assignment length mismatch with part size")
        x[part] = local
    return x


def build_merge_problem(
    graph: Graph,
    parts: Sequence[np.ndarray],
    membership: np.ndarray,
    global_assignment: np.ndarray,
) -> MergeProblem:
    """Construct the merged graph for the current sub-graph solutions."""
    x = as_binary(global_assignment)
    membership = np.asarray(membership, dtype=np.int64)
    n_parts = len(parts)
    pu = membership[graph.u]
    pv = membership[graph.v]
    cross = pu != pv
    cu, cv, cw = graph.u[cross], graph.v[cross], graph.w[cross]
    cpu, cpv = pu[cross], pv[cross]
    is_cut = x[cu] != x[cv]
    baseline_cross = float(cw[is_cut].sum())
    signed = np.where(is_cut, -cw, cw)
    merged_edges = list(zip(cpu.tolist(), cpv.tolist(), signed.tolist(), strict=True))
    merged_graph = Graph.from_edges(n_parts, merged_edges, sum_duplicates=True)
    # Intra cut = total cut − cross cut of the current assignment.
    total = cut_value(graph, x)
    intra = total - baseline_cross
    return MergeProblem(merged_graph, baseline_cross, intra, membership)


def apply_flips(
    global_assignment: np.ndarray,
    parts: Sequence[np.ndarray],
    merged_assignment: np.ndarray,
) -> np.ndarray:
    """Step 5: flip every node of each sub-graph whose merged label is 1.

    (Merged label 1 corresponds to the −1 spin in the paper's wording.)
    """
    x = as_binary(global_assignment).copy()
    merged = as_binary(merged_assignment)
    if len(merged) != len(parts):
        raise ValueError("merged assignment length != number of parts")
    for part, flip in zip(parts, merged, strict=True):
        if flip:
            x[part] ^= 1
    return x


__all__ = [
    "MergeProblem",
    "assemble_global_assignment",
    "build_merge_problem",
    "apply_flips",
]
