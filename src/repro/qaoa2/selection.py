"""Run-time method-selection policies for QAOA² sub-graphs (paper §3.6).

The paper's SLURM MPMD setup allocates a mixture of quantum and classical
resources and chooses, per sub-graph, whether QAOA or GW solves it.  The
grid search of Fig. 3 is the "simple, yet instructive, knowledge base" that
informs this choice; Moussa et al. [35] do it with an ML classifier.  All
three mechanisms are implemented here as callables plugging straight into
:class:`repro.qaoa2.solver.QAOA2Solver` (``subgraph_method=policy``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph


@dataclass
class DensityPolicy:
    """Static rule distilled from Fig. 3: QAOA wins mostly at small edge
    probabilities; solve dense sub-graphs classically.

    ``qaoa`` when the sub-graph density is below ``threshold`` (and the
    sub-graph is non-trivial), else ``gw``.
    """

    threshold: float = 0.25
    min_nodes: int = 3

    def __call__(self, subgraph: Graph) -> str:
        if subgraph.n_nodes < self.min_nodes or subgraph.n_edges == 0:
            return "gw"
        return "qaoa" if subgraph.density < self.threshold else "gw"


@dataclass
class KnowledgeBasePolicy:
    """Look up QAOA-vs-GW win rates recorded by the Fig. 3 grid search.

    Delegates to :meth:`repro.ml.knowledge.KnowledgeBase.recommend_method`;
    falls back to ``default`` when the knowledge base has no data near the
    sub-graph's (node count, density) cell.
    """

    knowledge_base: object  # repro.ml.knowledge.KnowledgeBase
    default: str = "gw"

    def __call__(self, subgraph: Graph) -> str:
        method = self.knowledge_base.recommend_method(
            subgraph.n_nodes, subgraph.density, subgraph.is_weighted
        )
        return method if method is not None else self.default


@dataclass
class ClassifierPolicy:
    """Moussa-et-al-style learned selector (paper ref. [35]).

    Wraps a trained :class:`repro.ml.classifier.MethodClassifier`; predicts
    ``qaoa`` or ``gw`` from graph features.
    """

    classifier: object  # repro.ml.classifier.MethodClassifier
    default: str = "gw"

    def __call__(self, subgraph: Graph) -> str:
        if subgraph.n_edges == 0:
            return self.default
        return self.classifier.predict_method(subgraph)


__all__ = ["DensityPolicy", "KnowledgeBasePolicy", "ClassifierPolicy"]
