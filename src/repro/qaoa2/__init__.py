"""QAOA-in-QAOA (QAOA²): the paper's divide-and-conquer MaxCut method."""

from repro.qaoa2.divide import divide, extract_subgraphs
from repro.qaoa2.merge import (
    MergeProblem,
    apply_flips,
    assemble_global_assignment,
    build_merge_problem,
)
from repro.qaoa2.selection import ClassifierPolicy, DensityPolicy, KnowledgeBasePolicy
from repro.qaoa2.solver import (
    LevelRecord,
    QAOA2Result,
    QAOA2Solver,
    SubgraphRecord,
    expected_subproblem_count,
)

__all__ = [
    "divide",
    "extract_subgraphs",
    "MergeProblem",
    "assemble_global_assignment",
    "build_merge_problem",
    "apply_flips",
    "DensityPolicy",
    "KnowledgeBasePolicy",
    "ClassifierPolicy",
    "QAOA2Solver",
    "QAOA2Result",
    "SubgraphRecord",
    "LevelRecord",
    "expected_subproblem_count",
]
