"""QAOA-in-QAOA driver (paper §3.3) — the core contribution.

Steps, matching the paper's enumeration:

1. Fix the qubit budget ``n_max_qubits``, ansatz depth and iteration count.
2. Partition the graph with greedy modularity, recursively re-partitioning
   any community exceeding the budget (:mod:`repro.graphs.partition`).
3. Solve all sub-graphs *in parallel* (configurable executor backend) with
   QAOA, GW, the better of the two, or a run-time selection policy —
   the hybrid resource-mix idea of §3.6.
4. Build the merged graph with sign-flipped cut edges
   (:mod:`repro.qaoa2.merge`).
5. Solve the merged graph (recursively if it still exceeds the budget;
   classical by default at deeper levels, as in the paper) and flip the
   sub-graphs selected by its solution.

The method distinction (QAOA / GW / best / policy) applies to the first
partitioning level only, exactly as in the paper's preliminary setup; all
deeper levels use ``merged_method``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.classical.gw import goemans_williamson
from repro.graphs.graph import Graph
from repro.graphs.maxcut import CutResult, cut_value
from repro.graphs.partition import partition_with_cap
from repro.hpc.executor import ExecutorConfig, map_jobs
from repro.qaoa.engine import SweepEngine
from repro.qaoa.solver import QAOASolver
from repro.qaoa2.merge import (
    apply_flips,
    assemble_global_assignment,
    build_merge_problem,
)
from repro.util.rng import RngLike, ensure_rng

MethodPolicy = Union[str, Callable[[Graph], str]]


@dataclass
class SubgraphRecord:
    """Per-sub-problem trace entry (feeds the ML testbed and Fig. 4 stats)."""

    level: int
    part_id: int
    n_nodes: int
    n_edges: int
    method: str
    cut: float
    qaoa_cut: Optional[float] = None
    gw_cut: Optional[float] = None
    gw_average: Optional[float] = None
    elapsed: float = 0.0


@dataclass
class LevelRecord:
    """Per-recursion-level accounting (validates the ~log_n N level count)."""

    level: int
    n_nodes: int
    n_parts: int
    merged_nodes: int
    merged_gain: float
    elapsed: float


@dataclass
class QAOA2Result:
    """Global solution plus the full divide/merge trace."""

    assignment: np.ndarray
    cut: float
    levels: List[LevelRecord] = field(default_factory=list)
    subgraphs: List[SubgraphRecord] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @property
    def n_subproblems(self) -> int:
        return len(self.subgraphs)

    def method_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for rec in self.subgraphs:
            counts[rec.method] = counts.get(rec.method, 0) + 1
        return counts

    def as_cut_result(self) -> CutResult:
        return CutResult(self.assignment, self.cut, "qaoa2", dict(self.extra))


# ---------------------------------------------------------------------------
# Sub-graph job (module level so the process backend can pickle it)
# ---------------------------------------------------------------------------
def _solve_subgraph_job(payload: dict) -> dict:
    """Solve one sub-graph with the requested method; returns a plain dict.

    Optional payload keys beyond the required six:

    ``diagonal``
        A precomputed cut diagonal for ``graph`` — the solver service's
        batch scheduler shares one diagonal across all pending jobs on
        byte-identical graphs, skipping the dominant per-solve setup cost.
        The values computed are bit-identical with or without it.
    """
    graph: Graph = payload["graph"]
    method: str = payload["method"]
    seed: int = payload["seed"]
    qaoa_options: dict = payload["qaoa_options"]
    qaoa_grid: Optional[Sequence[dict]] = payload["qaoa_grid"]
    gw_options: dict = payload["gw_options"]
    diagonal = payload.get("diagonal")

    start = time.perf_counter()
    out: dict = {"method": method, "qaoa_cut": None, "gw_cut": None, "gw_average": None,
                 "params": None, "layers": None, "rhobeg": None}

    def run_qaoa() -> CutResult:
        # One engine per sub-graph: the cut diagonal is built once and every
        # config in the option grid (and every optimizer iteration) reuses
        # it; the engine's pooled buffers are additionally shared across
        # equal-sized partitions solved by the same worker.  Grid entries
        # with layers=1 automatically drop to the solver's closed-form
        # analytic objective (no statevector until solution selection).
        # The engine resolves the statevector backend once per sub-graph
        # from the job's options (grid overrides inherit it).
        engine = SweepEngine(
            graph, diagonal=diagonal, backend=qaoa_options.get("backend", "auto")
        )
        configs = qaoa_grid if qaoa_grid else [{}]
        best: Optional[CutResult] = None
        for offset, overrides in enumerate(configs):
            options = {**qaoa_options, **overrides}
            solver = QAOASolver(rng=seed + offset, engine=engine, **options)
            qaoa_result = solver.solve(graph)
            result = qaoa_result.as_cut_result()
            if best is None or result.cut > best.cut:
                best = result
                # Winning parameterisation, exported so the result cache
                # can feed the knowledge base's warm starts.
                out["params"] = [float(x) for x in qaoa_result.params]
                out["layers"] = int(solver.layers)
                out["rhobeg"] = float(solver.rhobeg)
                out["backend"] = qaoa_result.extra.get("backend")
        return best

    def run_gw() -> CutResult:
        gw = goemans_williamson(graph, rng=seed + 7919, **gw_options)
        out["gw_average"] = gw.average_cut
        return gw.as_cut_result()

    if method == "qaoa":
        chosen = run_qaoa()
        out["qaoa_cut"] = chosen.cut
    elif method == "gw":
        chosen = run_gw()
        out["gw_cut"] = chosen.cut
    elif method == "best":
        q = run_qaoa()
        g = run_gw()
        out["qaoa_cut"] = q.cut
        out["gw_cut"] = g.cut
        chosen = q if q.cut >= g.cut else g
        out["method"] = f"best:{chosen.method}"
    elif method == "rqaoa":
        # The paper (§3.2): RQAOA "can also be leveraged using QAOA² to get
        # a good global solution for very large problems".
        from repro.qaoa.rqaoa import rqaoa_solve

        layers = int(qaoa_options.get("layers", 2))
        chosen = rqaoa_solve(
            graph,
            layers=layers,
            rng=seed,
            solver_options=dict(qaoa_options),
        ).as_cut_result()
        out["qaoa_cut"] = chosen.cut
    elif method == "anneal":
        # QUBO/annealer path (§1's "conversely formulated as QUBO" remark).
        from repro.classical.qubo import SimulatedAnnealerSampler

        chosen = SimulatedAnnealerSampler().sample_maxcut(
            graph, num_reads=8, rng=seed
        )
    else:
        raise ValueError(f"unknown sub-graph method {method!r}")

    out["assignment"] = chosen.assignment
    out["cut"] = chosen.cut
    out["elapsed"] = time.perf_counter() - start
    return out


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------
@dataclass
class QAOA2Solver:
    """Divide-and-conquer MaxCut solver.

    Parameters
    ----------
    n_max_qubits:
        Qubit budget per sub-problem (paper step 1).
    subgraph_method:
        ``"qaoa"`` | ``"gw"`` | ``"best"`` | ``"rqaoa"`` | ``"anneal"`` or a
        callable ``Graph -> method`` (run-time selection policy, §3.6) —
        applied at the first level only.  ``rqaoa`` and ``anneal`` are the
        extension solvers the paper mentions (refs. [47], [29]).
    merged_method:
        Solver for merged graphs and deeper levels (paper: classical,
        default ``"gw"``; ``"qaoa"`` allowed for ablations).
    qaoa_options / qaoa_grid / gw_options:
        Forwarded to the leaf solvers; ``qaoa_grid`` is a list of option
        overrides, the best cut over the grid is kept (the Fig. 4 setup runs
        the full (p, rhobeg) grid per sub-graph).  Any
        :class:`repro.qaoa.solver.QAOASolver` knob is accepted — in
        particular ``{"n_starts": S, "optimizer": "spsa"}`` runs every
        sub-graph's variational loop as lock-step multi-start, one
        ``(2S, 2p)`` batched engine evaluation per iteration on the
        sub-graph's shared engine.
    partition_method:
        Community detector (see :func:`repro.graphs.partition.partition_with_cap`).
    executor:
        Parallel backend for the per-level sub-graph batch.
    service:
        Optional :class:`repro.service.MaxCutService`.  When set, every
        leaf solve (sub-graph batches *and* small merged graphs) is routed
        through the service instead of a direct executor fan-out, with
        ``executor`` still governing the dispatch backend.  Duplicate
        in-flight leaves coalesce and same-shape batches share cut
        diagonals; whether *distinct-but-isomorphic* leaves share work is
        the ``service_seeds`` trade-off below.
    service_seeds:
        ``"request"`` (default): leaves carry the exact sequentially-drawn
        seeds the direct path would use, so the service path produces cut
        values identical to the direct path at fixed seeds (pinned in
        ``tests/test_service.py``).  Since each leaf's seed is unique,
        cache hits then only occur for bit-exact repeats — re-running the
        same solve, or several solvers sharing one service.
        ``"canonical"``: leaves are submitted seedless and the service
        derives content-addressed seeds, so identical/isomorphic
        sub-graphs *within one run* share a single solve via the cache —
        the deeper-level QAOA² reuse the paper's knowledge base motivates
        — at the cost of a different (still deterministic) seed stream
        than the direct path.
    """

    n_max_qubits: int = 10
    subgraph_method: MethodPolicy = "qaoa"
    merged_method: str = "gw"
    qaoa_options: dict = field(default_factory=dict)
    qaoa_grid: Optional[Sequence[dict]] = None
    gw_options: dict = field(default_factory=dict)
    partition_method: str = "greedy_modularity"
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    service: Optional[object] = None  # repro.service.MaxCutService
    service_seeds: str = "request"  # "request" | "canonical"
    rng: RngLike = None
    max_levels: int = 32

    def solve(self, graph: Graph) -> QAOA2Result:
        gen = ensure_rng(self.rng)
        records: List[SubgraphRecord] = []
        levels: List[LevelRecord] = []
        assignment = self._recurse(graph, 0, gen, records, levels)
        cut = cut_value(graph, assignment)
        return QAOA2Result(
            assignment=assignment,
            cut=cut,
            levels=levels,
            subgraphs=records,
            extra={
                "n_max_qubits": self.n_max_qubits,
                "partition_method": self.partition_method,
            },
        )

    # ------------------------------------------------------------------
    def _method_for(self, subgraph: Graph, level: int) -> str:
        if level > 0:
            return self.merged_method
        if callable(self.subgraph_method):
            method = self.subgraph_method(subgraph)
            if method not in ("qaoa", "gw", "best", "rqaoa", "anneal"):
                raise ValueError(f"policy returned unknown method {method!r}")
            return method
        return self.subgraph_method

    def _leaf_payload(self, subgraph: Graph, level: int, seed: int) -> dict:
        return {
            "graph": subgraph,
            "method": self._method_for(subgraph, level),
            "seed": seed,
            "qaoa_options": dict(self.qaoa_options),
            "qaoa_grid": self.qaoa_grid if level == 0 else None,
            "gw_options": dict(self.gw_options),
        }

    def _solve_leaf_payloads(self, payloads: List[dict]) -> List[dict]:
        """Solve a batch of leaf payloads, directly or through the service.

        The service path submits the *same* payloads (same graphs, same
        sequentially-drawn seeds) as ``exact`` requests, so cold solves run
        the reference :func:`_solve_subgraph_job` computation bit-for-bit;
        only caching/coalescing/diagonal-sharing differ.
        """
        if self.service is None:
            return map_jobs(_solve_subgraph_job, payloads, config=self.executor)
        if self.service_seeds not in ("request", "canonical"):
            raise ValueError(
                f"unknown service_seeds mode {self.service_seeds!r}; "
                "expected 'request' or 'canonical'"
            )
        from repro.service import SolveRequest

        canonical = self.service_seeds == "canonical"
        requests = [
            SolveRequest(
                graph=payload["graph"],
                method=payload["method"],
                options=dict(payload["qaoa_options"]),
                qaoa_grid=payload["qaoa_grid"],
                gw_options=dict(payload["gw_options"]),
                seed=None if canonical else payload["seed"],
                exact=True,
            )
            for payload in payloads
        ]
        return [
            {
                "method": res.method,
                "cut": res.cut,
                "assignment": res.assignment,
                "qaoa_cut": res.extra.get("qaoa_cut"),
                "gw_cut": res.extra.get("gw_cut"),
                "gw_average": res.extra.get("gw_average"),
                "elapsed": res.elapsed,
            }
            for res in self.service.solve_many(requests, executor=self.executor)
        ]

    def _recurse(
        self,
        graph: Graph,
        level: int,
        gen: np.random.Generator,
        records: List[SubgraphRecord],
        levels: List[LevelRecord],
    ) -> np.ndarray:
        if level >= self.max_levels:
            raise RuntimeError("QAOA2 recursion exceeded max_levels")
        start = time.perf_counter()
        if graph.n_nodes <= self.n_max_qubits:
            payload = self._leaf_payload(graph, level, int(gen.integers(2**31)))
            result = self._solve_leaf_payloads([payload])[0]
            records.append(
                SubgraphRecord(
                    level=level,
                    part_id=0,
                    n_nodes=graph.n_nodes,
                    n_edges=graph.n_edges,
                    method=result["method"],
                    cut=result["cut"],
                    qaoa_cut=result["qaoa_cut"],
                    gw_cut=result["gw_cut"],
                    gw_average=result["gw_average"],
                    elapsed=result["elapsed"],
                )
            )
            return result["assignment"]

        partition = partition_with_cap(
            graph, self.n_max_qubits, method=self.partition_method, rng=gen
        )
        payloads = []
        for part_id, part in enumerate(partition.parts):
            subgraph, _ = graph.subgraph(part)
            payloads.append(
                (part_id, self._leaf_payload(subgraph, level, int(gen.integers(2**31))))
            )
        results = self._solve_leaf_payloads([p for _, p in payloads])
        local_assignments: List[np.ndarray] = []
        for (part_id, payload), result in zip(payloads, results, strict=True):
            sub = payload["graph"]
            records.append(
                SubgraphRecord(
                    level=level,
                    part_id=part_id,
                    n_nodes=sub.n_nodes,
                    n_edges=sub.n_edges,
                    method=result["method"],
                    cut=result["cut"],
                    qaoa_cut=result["qaoa_cut"],
                    gw_cut=result["gw_cut"],
                    gw_average=result["gw_average"],
                    elapsed=result["elapsed"],
                )
            )
            local_assignments.append(result["assignment"])

        x = assemble_global_assignment(
            graph.n_nodes, partition.parts, local_assignments
        )
        merge = build_merge_problem(graph, partition.parts, partition.membership, x)
        merged_assignment = self._recurse(
            merge.merged_graph, level + 1, gen, records, levels
        )
        # Never regress below the unflipped configuration: a merged solution
        # with negative cut is worse than flipping nothing.
        merged_cut = cut_value(merge.merged_graph, merged_assignment)
        if merged_cut < 0.0:
            merged_assignment = np.zeros(merge.merged_graph.n_nodes, dtype=np.uint8)
        final = apply_flips(x, partition.parts, merged_assignment)
        levels.append(
            LevelRecord(
                level=level,
                n_nodes=graph.n_nodes,
                n_parts=partition.n_parts,
                merged_nodes=merge.merged_graph.n_nodes,
                merged_gain=max(merged_cut, 0.0),
                elapsed=time.perf_counter() - start,
            )
        )
        return final


def expected_subproblem_count(n_nodes: int, n_qubits: int) -> float:
    """The paper's estimate: ~N(nᵃ − 1)/(nᵃ(n − 1)) sub-graphs over
    a ≈ ⌈log_n N⌉ − 1 levels."""
    if n_qubits < 2 or n_nodes <= n_qubits:
        return 1.0
    a = max(1, int(np.ceil(np.log(n_nodes) / np.log(n_qubits))) - 1)
    return n_nodes * (n_qubits**a - 1) / (n_qubits**a * (n_qubits - 1))


__all__ = [
    "SubgraphRecord",
    "LevelRecord",
    "QAOA2Result",
    "QAOA2Solver",
    "expected_subproblem_count",
]
