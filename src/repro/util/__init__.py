"""Shared utilities: RNG handling, timing, validation, tracing primitives."""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.timing import Timer, timed
from repro.util.tracing import (
    NO_TRACE,
    Span,
    TraceContext,
    current_trace,
    use_trace,
)
from repro.util.validation import check_probability, check_positive_int

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "timed",
    "check_probability",
    "check_positive_int",
    "NO_TRACE",
    "Span",
    "TraceContext",
    "current_trace",
    "use_trace",
]
