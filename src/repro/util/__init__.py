"""Shared utilities: RNG handling, timing, validation, lightweight logging."""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.timing import Timer, timed
from repro.util.validation import check_probability, check_positive_int

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "timed",
    "check_probability",
    "check_positive_int",
]
