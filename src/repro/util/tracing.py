"""Request-scoped tracing primitives: spans, trace contexts, contextvars.

This module is the dependency-free core of the observability layer
(``repro.service.trace`` builds the recorder/exposition on top).  It
lives in ``repro.util`` so that CORE packages (``repro.qaoa``,
``repro.quantum``) can emit spans without importing the service layer —
the import graph stays acyclic and the layering rule stays happy.

Design constraints, in order:

1. **Near-zero cost when disabled.**  Code that may run without tracing
   holds a :data:`NO_TRACE` singleton whose ``span()`` returns a shared
   no-op context manager — one attribute lookup, one call, no
   allocation.  Hot loops (backend evolve, Walsh stages) pay only that.
2. **Explicit propagation first, contextvar second.**  The owning trace
   travels on the request object through ``submit`` → shard worker →
   service → scheduler.  The contextvar (:func:`current_trace` /
   :func:`use_trace`) bridges the last hop into code that cannot take a
   trace argument (``SweepEngine``, backends) — including across
   ``asyncio.to_thread`` and executor worker threads, where the caller
   sets it explicitly via :func:`use_trace`.
3. **Spans are ``with``-scoped.**  :meth:`TraceContext.span` returns a
   context manager and must be used as a ``with``-item (machine-checked
   by the ``span-hygiene`` analyzer rule); already-elapsed intervals are
   recorded with :meth:`TraceContext.add_span` instead, which cannot
   leak because it never opens anything.

Concurrency: a trace is mutated by one logical thread at a time (the
HTTP handler is suspended on a future while the shard worker appends),
so spans take no lock.  :meth:`TraceContext.finish` flips the trace
inert, so stray spans from an abandoned solve (e.g. after a deadline
response was already sent) are dropped instead of corrupting the tree.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "NO_TRACE",
    "NullTraceContext",
    "Span",
    "TraceContext",
    "current_trace",
    "use_trace",
]

#: Characters allowed in an externally supplied trace id (header value).
_ID_SAFE = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-")

#: Longest accepted trace id; longer external ids are truncated.
MAX_TRACE_ID_LEN = 64


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (uuid4; no global RNG state)."""
    return uuid.uuid4().hex


def sanitize_trace_id(raw: Optional[str]) -> str:
    """Normalise an externally supplied trace id (e.g. a header value).

    Keeps only header-safe characters and caps the length; returns a
    fresh id when nothing usable remains.
    """
    if not raw:
        return new_trace_id()
    cleaned = "".join(ch for ch in raw if ch in _ID_SAFE)[:MAX_TRACE_ID_LEN]
    return cleaned or new_trace_id()


class Span:
    """One timed stage: name, wall/CPU interval, attributes, children."""

    __slots__ = ("name", "attrs", "children", "start", "end", "cpu_start", "cpu_end")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        self.children: List["Span"] = []
        self.start = time.perf_counter()
        self.end = self.start
        self.cpu_start = time.process_time()
        self.cpu_end = self.cpu_start

    @property
    def wall_s(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def cpu_s(self) -> float:
        return max(0.0, self.cpu_end - self.cpu_start)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "wall_s": round(self.wall_s, 9),
            "cpu_s": round(self.cpu_s, 9),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class _SpanHandle:
    """Context manager that closes one span on exit (and pops the stack)."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "TraceContext", span: Span) -> None:
        self._trace = trace
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        span = self._span
        span.end = time.perf_counter()
        span.cpu_end = time.process_time()
        if exc_type is not None:
            span.attrs.setdefault("error", getattr(exc_type, "__name__", "error"))
        stack = self._trace._stack
        if stack and stack[-1] is span:
            stack.pop()
        return False


class _NullSpanHandle:
    """Shared no-op span handle: the entire cost of disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpanHandle":
        return self


NULL_SPAN = _NullSpanHandle()


class NullTraceContext:
    """Inert stand-in used wherever tracing is disabled.

    Every method is a no-op returning a shared object, so instrumented
    code needs no ``if traced:`` branches — holding :data:`NO_TRACE` *is*
    the branch.
    """

    __slots__ = ()

    enabled = False
    trace_id = ""

    def span(self, name: str, **attrs: Any) -> _NullSpanHandle:
        return NULL_SPAN

    def add_span(
        self, name: str, start: float, end: float, **attrs: Any
    ) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None

    def finish(self) -> None:
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {"trace_id": "", "spans": []}

    def format_tree(self) -> str:
        return "<no trace>"


NO_TRACE = NullTraceContext()


class TraceContext:
    """A request's identity plus its ordered span tree.

    The root span (named ``request``) opens at construction and closes
    at :meth:`finish`; :meth:`span` opens children under whichever span
    is currently innermost.  After ``finish()`` the context goes inert:
    late spans from abandoned work are silently dropped.
    """

    __slots__ = ("trace_id", "root", "finished", "_stack")

    enabled = True

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = sanitize_trace_id(trace_id) if trace_id else new_trace_id()
        self.root = Span("request")
        self.finished = False
        self._stack: List[Span] = [self.root]

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> "_SpanHandle | _NullSpanHandle":
        """Open a child span; use only as a ``with``-item (span-hygiene)."""
        if self.finished:
            return NULL_SPAN
        span = Span(name, attrs or None)
        parent = self._stack[-1] if self._stack else self.root
        parent.children.append(span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def add_span(self, name: str, start: float, end: float, **attrs: Any) -> None:
        """Record an already-elapsed interval (e.g. queue wait) as a span.

        ``start``/``end`` are ``time.perf_counter()`` readings; CPU time
        is recorded as zero because the interval was spent waiting.
        """
        if self.finished:
            return
        span = Span(name, attrs or None)
        span.start, span.end = start, max(start, end)
        span.cpu_end = span.cpu_start
        parent = self._stack[-1] if self._stack else self.root
        parent.children.append(span)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span."""
        if self.finished:
            return
        target = self._stack[-1] if self._stack else self.root
        target.attrs.update(attrs)

    def finish(self) -> None:
        """Close the root span and make the context inert (idempotent)."""
        if self.finished:
            return
        self.root.end = time.perf_counter()
        self.root.cpu_end = time.process_time()
        self.finished = True
        del self._stack[:]

    # -- introspection -------------------------------------------------

    @property
    def wall_s(self) -> float:
        return self.root.wall_s

    def iter_spans(self) -> Iterator[Span]:
        """Depth-first walk over the whole tree, root included."""
        pending = [self.root]
        while pending:
            span = pending.pop()
            yield span
            pending.extend(reversed(span.children))

    def to_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "spans": [self.root.to_dict()]}

    def format_tree(self) -> str:
        """Render the span tree, one line per span, durations in ms."""
        lines = [f"trace {self.trace_id}  total {self.root.wall_s * 1e3:.3f} ms"]
        total = self.root.wall_s or 1.0

        def _render(span: Span, depth: int) -> None:
            attrs = ""
            if span.attrs:
                attrs = "  " + " ".join(
                    f"{key}={value}" for key, value in sorted(span.attrs.items())
                )
            share = 100.0 * span.wall_s / total
            lines.append(
                f"{'  ' * depth}- {span.name:<20s} "
                f"{span.wall_s * 1e3:9.3f} ms  cpu {span.cpu_s * 1e3:8.3f} ms"
                f"  {share:5.1f}%{attrs}"
            )
            for child in span.children:
                _render(child, depth + 1)

        _render(self.root, 1)
        return "\n".join(lines)


#: Union accepted everywhere a trace flows; NO_TRACE is the default.
TraceLike = Union["TraceContext", "NullTraceContext"]

_CURRENT_TRACE: ContextVar["TraceContext | NullTraceContext"] = ContextVar(
    "repro_current_trace", default=NO_TRACE
)


def current_trace() -> "TraceContext | NullTraceContext":
    """The trace bound to the current thread/task, or :data:`NO_TRACE`."""
    return _CURRENT_TRACE.get()


@contextmanager
def use_trace(
    trace: "TraceContext | NullTraceContext",
) -> Iterator["TraceContext | NullTraceContext"]:
    """Bind ``trace`` as :func:`current_trace` for the enclosed block.

    This is the explicit bridge into executor worker threads: call it
    *inside* the submitted function so the binding lives in the worker's
    own context.  (``asyncio.to_thread`` copies the caller's context by
    itself, but batched workers carry several traces and must pick the
    right one per job.)
    """
    token = _CURRENT_TRACE.set(trace)
    try:
        yield trace
    finally:
        _CURRENT_TRACE.reset(token)


def span_signature(trace: "TraceContext | NullTraceContext") -> Tuple[str, ...]:
    """Depth-first span names — a compact shape check for tests/benches."""
    if not isinstance(trace, TraceContext):
        return ()
    return tuple(span.name for span in trace.iter_spans())
