"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts ``rng`` as either a seed,
``None`` (fresh nondeterministic generator) or an existing
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
call sites one-liners and guarantees reproducibility when a seed is given.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for a fresh OS-seeded generator, an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator (returned
        unchanged so state is shared with the caller).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(rng)


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used to hand one generator per parallel sub-problem (e.g. one per
    QAOA² sub-graph) so results do not depend on execution order.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def rng_seed_for(rng: RngLike, tag: str) -> int:
    """Deterministically derive an integer seed from ``rng`` and a string tag.

    Useful when a sub-component needs a reproducible but distinct stream
    (e.g. "rounding" vs "sampling") from the same top-level seed.
    """
    base = ensure_rng(rng)
    offset = sum(ord(c) for c in tag) % 65537
    return int(base.integers(0, 2**62)) ^ offset


__all__ = ["RngLike", "ensure_rng", "spawn_rngs", "rng_seed_for"]
