"""Small argument-validation helpers shared across subpackages."""

from __future__ import annotations

from typing import Any


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in [0, 1] and return it as float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive_int(value: Any, name: str = "value") -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    ivalue = int(value)
    if ivalue != value or ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return ivalue


def check_nonnegative_int(value: Any, name: str = "value") -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    ivalue = int(value)
    if ivalue != value or ivalue < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
    return ivalue


__all__ = ["check_probability", "check_positive_int", "check_nonnegative_int"]
