"""Wall-clock timing helpers used by the experiment drivers and HPC traces."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Timer:
    """Accumulating named timer.

    Example
    -------
    >>> t = Timer()
    >>> with t.section("partition"):
    ...     pass
    >>> "partition" in t.totals
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def report(self) -> str:
        lines: List[str] = []
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(
                f"{name:<28s} {self.totals[name]:10.4f}s  x{self.counts[name]}"
            )
        return "\n".join(lines)


@contextmanager
def timed() -> Iterator[dict]:
    """Context manager yielding a dict whose ``elapsed`` key is set on exit."""
    box = {"elapsed": 0.0}
    start = time.perf_counter()
    try:
        yield box
    finally:
        box["elapsed"] = time.perf_counter() - start


__all__ = ["Timer", "timed"]
