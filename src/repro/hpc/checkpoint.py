"""Checkpoint/restart for long-running QAOA² sweeps.

The Fig. 2 caption notes that aligning classical and quantum resource
consumption "can be achieved by splitting, checkpointing, and restarting
the classical part appropriately".  This module provides exactly that for
the batch of sub-graph solves: completed sub-problem results are journaled
to disk as they finish, and a restarted run resumes from the journal
instead of recomputing.

Format: one JSON object per line (append-only journal), so a crash between
writes loses at most the in-flight record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np


@dataclass
class CheckpointStore:
    """Append-only journal of keyed job results."""

    path: Path

    def __init__(self, path) -> None:
        self.path = Path(path)

    def load(self) -> Dict[str, dict]:
        """Read all committed records; later duplicates win."""
        if not self.path.exists():
            return {}
        records: Dict[str, dict] = {}
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated in-flight record from a crash
            records[payload["key"]] = payload["value"]
        return records

    def append(self, key: str, value: dict) -> None:
        with self.path.open("a") as fh:
            fh.write(json.dumps({"key": key, "value": value}) + "\n")

    def clear(self) -> None:
        if self.path.exists():
            self.path.unlink()


def _encode_result(result: dict) -> dict:
    out = dict(result)
    out["assignment"] = np.asarray(result["assignment"], dtype=np.uint8).tolist()
    return out


def _decode_result(value: dict) -> dict:
    out = dict(value)
    out["assignment"] = np.asarray(value["assignment"], dtype=np.uint8)
    return out


def run_with_checkpoints(
    jobs: Sequence[dict],
    keys: Sequence[str],
    solve: Callable[[dict], dict],
    store: CheckpointStore,
) -> List[dict]:
    """Execute ``solve`` per job, skipping keys already in the journal.

    ``keys`` must identify jobs stably across restarts (e.g.
    ``"level0/part3/seed12345"``).  Results are journaled immediately after
    each completion; the return list is ordered like ``jobs``.
    """
    if len(jobs) != len(keys):
        raise ValueError("jobs and keys must align")
    done = store.load()
    results: List[Optional[dict]] = [None] * len(jobs)
    n_resumed = 0
    for idx, (job, key) in enumerate(zip(jobs, keys, strict=True)):
        if key in done:
            results[idx] = _decode_result(done[key])
            n_resumed += 1
            continue
        result = solve(job)
        store.append(key, _encode_result(result))
        results[idx] = result
    for r in results:
        assert r is not None
    return results


def checkpointed_qaoa2_level(
    graph,
    parts,
    payload_for: Callable[[int], dict],
    store: CheckpointStore,
) -> List[dict]:
    """Checkpoint one QAOA² level: solve each part's sub-graph resumably.

    ``payload_for(part_id)`` must return the sub-graph job payload (see
    :func:`repro.qaoa2.solver._solve_subgraph_job`).  The journal key
    includes the part id, node count and seed, so changed partitions do
    not silently reuse stale results.
    """
    from repro.qaoa2.solver import _solve_subgraph_job

    payloads = [payload_for(part_id) for part_id in range(len(parts))]
    keys = [
        f"part{part_id}/n{p['graph'].n_nodes}/m{p['graph'].n_edges}/"
        f"seed{p['seed']}/{p['method']}"
        for part_id, p in enumerate(payloads)
    ]

    def solve(payload: dict) -> dict:
        result = _solve_subgraph_job(payload)
        return {
            "assignment": result["assignment"],
            "cut": result["cut"],
            "method": result["method"],
            "elapsed": result["elapsed"],
        }

    return run_with_checkpoints(payloads, keys, solve, store)


__all__ = ["CheckpointStore", "run_with_checkpoints", "checkpointed_qaoa2_level"]
