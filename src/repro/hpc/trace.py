"""Execution traces, idle-time accounting and text Gantt rendering.

Shared by the SLURM simulator (Fig. 1 experiment) and the coordinator
scheme (Fig. 2 experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class Interval:
    """One allocation/usage interval of a resource."""

    start: float
    end: float
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ResourceTrace:
    """Allocated and used intervals for one resource type."""

    name: str
    capacity: int = 1
    allocated: List[Interval] = field(default_factory=list)
    used: List[Interval] = field(default_factory=list)

    def allocated_time(self) -> float:
        return sum(i.duration for i in self.allocated)

    def used_time(self) -> float:
        return sum(i.duration for i in self.used)

    def idle_while_allocated(self) -> float:
        """Time a resource was held by a job but not doing that job's work —
        the quantity Fig. 1's heterogeneous jobs reduce."""
        return self.allocated_time() - self.used_time()

    def utilization(self, makespan: float) -> float:
        """Used time / (capacity × makespan)."""
        if makespan <= 0:
            return 0.0
        return self.used_time() / (self.capacity * makespan)


def merge_intervals(intervals: List[Interval]) -> List[Interval]:
    """Union of possibly overlapping intervals (for busy-span accounting)."""
    if not intervals:
        return []
    ordered = sorted(intervals, key=lambda i: (i.start, i.end))
    merged = [ordered[0]]
    for interval in ordered[1:]:
        last = merged[-1]
        if interval.start <= last.end + 1e-12:
            merged[-1] = Interval(last.start, max(last.end, interval.end), last.label)
        else:
            merged.append(interval)
    return merged


def busy_span(intervals: List[Interval]) -> float:
    """Total covered time of the interval union."""
    return sum(i.duration for i in merge_intervals(intervals))


def render_gantt(
    rows: Dict[str, List[Interval]],
    *,
    width: int = 72,
    t_max: Optional[float] = None,
) -> str:
    """ASCII Gantt chart: one row per resource/worker, '#' = busy."""
    if not rows:
        return "(empty trace)"
    horizon = t_max or max(
        (i.end for intervals in rows.values() for i in intervals), default=1.0
    )
    if horizon <= 0:
        horizon = 1.0
    lines = []
    label_width = max(len(name) for name in rows) + 1
    for name, intervals in rows.items():
        cells = [" "] * width
        for interval in intervals:
            lo = int(np.floor(interval.start / horizon * width))
            hi = int(np.ceil(interval.end / horizon * width))
            for c in range(max(0, lo), min(width, hi)):
                cells[c] = "#"
        lines.append(f"{name:<{label_width}s}|{''.join(cells)}|")
    lines.append(f"{'':<{label_width}s}0{'':<{width - 8}s}{horizon:8.2f}")
    return "\n".join(lines)


__all__ = [
    "Interval",
    "ResourceTrace",
    "merge_intervals",
    "busy_span",
    "render_gantt",
]
