"""HPC workflow substrate: MPI-like communicator, parallel executors, a
SLURM-like discrete-event workload manager, and the Fig. 2
coordinator/worker scheme."""

from repro.hpc.comm import ANY_SOURCE, ANY_TAG, Communicator, run_parallel
from repro.hpc.coordinator import (
    CoordinatorResult,
    WorkerStats,
    run_coordinated_qaoa2,
)
from repro.hpc.checkpoint import (
    CheckpointStore,
    checkpointed_qaoa2_level,
    run_with_checkpoints,
)
from repro.hpc.executor import BACKENDS, ExecutorConfig, map_jobs
from repro.hpc.slurm import (
    Cluster,
    Job,
    Phase,
    PhaseRecord,
    ScheduleResult,
    SlurmSimulator,
    hybrid_workflow_jobs,
)
from repro.hpc.trace import (
    Interval,
    ResourceTrace,
    busy_span,
    merge_intervals,
    render_gantt,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "run_parallel",
    "BACKENDS",
    "ExecutorConfig",
    "map_jobs",
    "Cluster",
    "Job",
    "Phase",
    "PhaseRecord",
    "ScheduleResult",
    "SlurmSimulator",
    "hybrid_workflow_jobs",
    "Interval",
    "ResourceTrace",
    "busy_span",
    "merge_intervals",
    "render_gantt",
    "CoordinatorResult",
    "WorkerStats",
    "run_coordinated_qaoa2",
    "CheckpointStore",
    "run_with_checkpoints",
    "checkpointed_qaoa2_level",
]
