"""Coordinator/worker distribution of QAOA² sub-graphs (paper Fig. 2).

"A coordinator executed on a dedicated MPI rank handles the partitioning
and collection of results"; worker ranks solve sub-graph MaxCut problems
either classically (GW) or quantum-mechanically (simulated QAOA).  This
module implements exactly that scheme on the in-process MPI substrate
(:mod:`repro.hpc.comm`) with dynamic (first-free-worker) dispatch, and
measures the coordination overhead behind the paper's "almost ideal
scaling" observation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import cut_value
from repro.graphs.partition import partition_with_cap
from repro.hpc.comm import ANY_SOURCE, Communicator, run_parallel
from repro.util.rng import RngLike, ensure_rng

# NOTE: repro.qaoa2 imports are deferred to function bodies: qaoa2.solver
# uses repro.hpc.executor, so importing it here would create a package-level
# import cycle through repro.hpc.__init__.

_TAG_JOB = 1
_TAG_RESULT = 2
_TAG_STOP = 3


@dataclass
class WorkerStats:
    rank: int
    jobs: int = 0
    busy_time: float = 0.0


@dataclass
class CoordinatorResult:
    """Distributed QAOA² outcome + scaling diagnostics."""

    assignment: np.ndarray
    cut: float
    wall_time: float
    worker_stats: List[WorkerStats]
    coordinator_time: float  # partition + merge + merged-solve time on rank 0
    n_jobs: int

    @property
    def total_work(self) -> float:
        return sum(w.busy_time for w in self.worker_stats)

    @property
    def speedup(self) -> float:
        """Serial-work / wall-clock — 'almost ideal' ≈ worker count."""
        if self.wall_time <= 0:
            return 0.0
        return (self.total_work + self.coordinator_time) / self.wall_time

    @property
    def efficiency(self) -> float:
        n = max(1, len(self.worker_stats))
        return self.speedup / n

    @property
    def coordination_overhead(self) -> float:
        """Fraction of wall time not covered by useful work on the critical
        path (lower is better; the paper reports it as 'minimal')."""
        if self.wall_time <= 0:
            return 0.0
        ideal = (self.total_work / max(1, len(self.worker_stats))) + self.coordinator_time
        return max(0.0, 1.0 - ideal / self.wall_time)


def _worker_loop(comm: Communicator) -> WorkerStats:
    from repro.qaoa2.solver import _solve_subgraph_job

    stats = WorkerStats(rank=comm.rank)
    while True:
        status: dict = {}
        message = comm.recv(source=0, tag=ANY_SOURCE, status=status)
        if status["tag"] == _TAG_STOP:
            return stats
        job_id, payload = message
        start = time.perf_counter()
        result = _solve_subgraph_job(payload)
        stats.busy_time += time.perf_counter() - start
        stats.jobs += 1
        comm.send((job_id, result), dest=0, tag=_TAG_RESULT)


def _coordinator_loop(
    comm: Communicator,
    graph: Graph,
    n_max_qubits: int,
    method: Union[str, Callable[[Graph], str]],
    qaoa_options: dict,
    gw_options: dict,
    merged_method: str,
    partition_method: str,
    seed: int,
) -> CoordinatorResult:
    from repro.qaoa2.merge import (
        apply_flips,
        assemble_global_assignment,
        build_merge_problem,
    )
    from repro.qaoa2.solver import QAOA2Solver

    gen = ensure_rng(seed)
    wall_start = time.perf_counter()
    coord_time = 0.0

    t0 = time.perf_counter()
    partition = partition_with_cap(
        graph, n_max_qubits, method=partition_method, rng=gen
    )
    subgraphs = [graph.subgraph(part)[0] for part in partition.parts]
    payloads = []
    for sub in subgraphs:
        chosen = method(sub) if callable(method) else method
        payloads.append(
            {
                "graph": sub,
                "method": chosen,
                "seed": int(gen.integers(2**31)),
                "qaoa_options": dict(qaoa_options),
                "qaoa_grid": None,
                "gw_options": dict(gw_options),
            }
        )
    coord_time += time.perf_counter() - t0

    n_workers = comm.size - 1
    results: Dict[int, dict] = {}
    next_job = 0
    in_flight = 0
    # Prime every worker, then dynamic dispatch on completion (Fig. 2's
    # "consumption of resources does not start at the same time" is handled
    # naturally: idle workers immediately receive the next sub-graph).
    for worker in range(1, comm.size):
        if next_job < len(payloads):
            comm.send((next_job, payloads[next_job]), dest=worker, tag=_TAG_JOB)
            next_job += 1
            in_flight += 1
    while in_flight > 0:
        status: dict = {}
        job_id, result = comm.recv(source=ANY_SOURCE, tag=_TAG_RESULT, status=status)
        results[job_id] = result
        in_flight -= 1
        if next_job < len(payloads):
            comm.send(
                (next_job, payloads[next_job]), dest=status["source"], tag=_TAG_JOB
            )
            next_job += 1
            in_flight += 1
    for worker in range(1, comm.size):
        comm.send(None, dest=worker, tag=_TAG_STOP)

    t0 = time.perf_counter()
    local_assignments = [results[k]["assignment"] for k in range(len(payloads))]
    x = assemble_global_assignment(graph.n_nodes, partition.parts, local_assignments)
    merge = build_merge_problem(graph, partition.parts, partition.membership, x)
    merged_solver = QAOA2Solver(
        n_max_qubits=n_max_qubits,
        subgraph_method=merged_method,
        merged_method=merged_method,
        qaoa_options=qaoa_options,
        gw_options=gw_options,
        partition_method=partition_method,
        rng=int(gen.integers(2**31)),
    )
    merged_result = merged_solver.solve(merge.merged_graph)
    merged_assignment = merged_result.assignment
    if cut_value(merge.merged_graph, merged_assignment) < 0.0:
        merged_assignment = np.zeros(merge.merged_graph.n_nodes, dtype=np.uint8)
    final = apply_flips(x, partition.parts, merged_assignment)
    coord_time += time.perf_counter() - t0

    return CoordinatorResult(
        assignment=final,
        cut=cut_value(graph, final),
        wall_time=time.perf_counter() - wall_start,
        worker_stats=[],  # filled by run_coordinated_qaoa2
        coordinator_time=coord_time,
        n_jobs=len(payloads),
    )


def run_coordinated_qaoa2(
    graph: Graph,
    *,
    n_workers: int = 2,
    n_max_qubits: int = 10,
    method: Union[str, Callable[[Graph], str]] = "qaoa",
    qaoa_options: Optional[dict] = None,
    gw_options: Optional[dict] = None,
    merged_method: str = "gw",
    partition_method: str = "greedy_modularity",
    rng: RngLike = None,
) -> CoordinatorResult:
    """Run one level of QAOA² through the coordinator/worker scheme.

    Rank 0 partitions and merges; ranks 1..n_workers solve sub-graphs.
    Returns the global solution with per-worker utilisation statistics.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker rank")
    seed = int(ensure_rng(rng).integers(2**31))

    def entry(comm: Communicator):
        if comm.rank == 0:
            return _coordinator_loop(
                comm,
                graph,
                n_max_qubits,
                method,
                qaoa_options or {},
                gw_options or {},
                merged_method,
                partition_method,
                seed,
            )
        return _worker_loop(comm)

    outputs = run_parallel(n_workers + 1, entry)
    result: CoordinatorResult = outputs[0]
    result.worker_stats = [outputs[r] for r in range(1, n_workers + 1)]
    return result


__all__ = ["WorkerStats", "CoordinatorResult", "run_coordinated_qaoa2"]
