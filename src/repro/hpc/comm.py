"""In-process MPI-like communicator (mpi4py API surface).

The paper's workflow runs over mpi4py on an HPE-Cray EX machine; this
module provides a faithful in-process substitute so the coordinator/worker
scheme (Fig. 2) is written against the same API and could be dropped onto
real MPI by swapping the import.  Ranks are threads; message payloads go
through an actual pickle round-trip to preserve mpi4py's
"communication of generic Python objects" semantics (unpicklable payloads
fail here exactly as they would on real MPI).

Supported: ``send/recv`` (with source/tag matching and ANY wildcards),
``bcast``, ``scatter``, ``gather``, ``allgather``, ``allreduce``,
``barrier``, plus the ``Get_rank``/``Get_size`` spellings.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class _Message:
    source: int
    tag: int
    payload: bytes


class _Mailbox:
    """Per-rank buffered mailbox with source/tag matching."""

    def __init__(self) -> None:
        self._messages: List[_Message] = []
        self._condition = threading.Condition()

    def put(self, message: _Message) -> None:
        with self._condition:
            self._messages.append(message)
            self._condition.notify_all()

    def get(self, source: int, tag: int, timeout: Optional[float]) -> _Message:
        def match() -> Optional[int]:
            for idx, msg in enumerate(self._messages):
                if source not in (ANY_SOURCE, msg.source):
                    continue
                if tag not in (ANY_TAG, msg.tag):
                    continue
                return idx
            return None

        with self._condition:
            idx = match()
            while idx is None:
                if not self._condition.wait(timeout=timeout):
                    raise TimeoutError(
                        f"recv timed out waiting for source={source} tag={tag}"
                    )
                idx = match()
            return self._messages.pop(idx)


class _World:
    """Shared state of a communicator group."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier = threading.Barrier(size)


class Communicator:
    """One rank's handle on the group (the ``comm`` object)."""

    def __init__(self, world: _World, rank: int) -> None:
        self._world = world
        self.rank = rank
        self.size = world.size

    # mpi4py-style accessors
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # Point to point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid dest rank {dest}")
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._world.mailboxes[dest].put(_Message(self.rank, tag, payload))

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        *,
        timeout: Optional[float] = 60.0,
        status: Optional[dict] = None,
    ) -> Any:
        msg = self._world.mailboxes[self.rank].get(source, tag, timeout)
        if status is not None:
            status["source"] = msg.source
            status["tag"] = msg.tag
        return pickle.loads(msg.payload)

    # ------------------------------------------------------------------
    # Collectives (built on point-to-point, root-rooted trees kept simple)
    # ------------------------------------------------------------------
    _COLL_TAG = 1 << 20  # reserved tag space for collectives

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(obj, dest, tag=self._COLL_TAG)
            return obj
        return self.recv(source=root, tag=self._COLL_TAG)

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter needs one object per rank at root")
            for dest in range(self.size):
                if dest != root:
                    self.send(objs[dest], dest, tag=self._COLL_TAG + 1)
            return objs[root]
        return self.recv(source=root, tag=self._COLL_TAG + 1)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[root] = obj
            # Receive per-source: message order is FIFO per (source, dest)
            # pair, so consecutive collectives cannot steal each other's
            # payloads (an ANY_SOURCE loop could).
            for source in range(self.size):
                if source != root:
                    out[source] = self.recv(source=source, tag=self._COLL_TAG + 2)
            return out
        self.send(obj, root, tag=self._COLL_TAG + 2)
        return None

    def allgather(self, obj: Any) -> List[Any]:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def allreduce(
        self, obj: Any, op: Optional[Callable[[Any, Any], Any]] = None
    ) -> Any:
        import operator

        reducer = op or operator.add
        values = self.allgather(obj)
        acc = values[0]
        for value in values[1:]:
            acc = reducer(acc, value)
        return acc

    def barrier(self) -> None:
        self._world.barrier.wait()


def run_parallel(
    size: int, fn: Callable[..., Any], *args: Any, timeout: float = 300.0
) -> List[Any]:
    """Launch ``fn(comm, *args)`` on ``size`` thread-ranks; gather returns.

    Exceptions on any rank are re-raised in the caller (first by rank), so
    deadlocks/failures surface in tests instead of hanging.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    world = _World(size)
    results: List[Any] = [None] * size
    errors: List[Optional[BaseException]] = [None] * size

    def runner(rank: int) -> None:
        comm = Communicator(world, rank)
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            errors[rank] = exc
            world.barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(rank,), daemon=True)
        for rank in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            raise TimeoutError("parallel section did not complete in time")
    for exc in errors:
        if exc is not None:
            raise exc
    return results


__all__ = ["ANY_SOURCE", "ANY_TAG", "Communicator", "run_parallel"]
