"""Parallel execution backends for batches of independent jobs.

QAOA² solves all sub-graphs of a level "in parallel over different
(simulated) quantum devices" (paper §3.3 step 3).  This module provides the
execution backends used for that fan-out:

* ``serial``  — in-order execution (deterministic debugging baseline),
* ``thread``  — :class:`~concurrent.futures.ThreadPoolExecutor`; NumPy
  kernels release the GIL so statevector-heavy jobs scale reasonably,
* ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor`; true
  multi-core parallelism, requires picklable functions/arguments (all job
  payloads in this repo are module-level functions over plain data).

Results are always returned in submission order regardless of completion
order, so parallel and serial runs are bit-identical when the per-job RNGs
are pre-spawned (see :func:`repro.util.rng.spawn_rngs`).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

BACKENDS = ("serial", "thread", "process")


@dataclass
class ExecutorConfig:
    """Backend selection and sizing for job batches."""

    backend: str = "serial"
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.max_workers is None:
            self.max_workers = max(1, (os.cpu_count() or 2) - 1)


def map_jobs(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    *,
    config: Optional[ExecutorConfig] = None,
    backend: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Apply ``fn`` to every job, preserving input order.

    Either pass a full :class:`ExecutorConfig` or the individual knobs.
    For the ``process`` backend, ``fn`` must be defined at module level and
    all jobs/results must pickle.
    """
    if config is None:
        config = ExecutorConfig(
            backend=backend or "serial", max_workers=max_workers
        )
    jobs = list(jobs)
    if not jobs:
        return []
    if config.backend == "serial" or len(jobs) == 1:
        return [fn(job) for job in jobs]
    workers = min(config.max_workers, len(jobs))
    if config.backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, jobs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, jobs))


__all__ = ["BACKENDS", "ExecutorConfig", "map_jobs"]
