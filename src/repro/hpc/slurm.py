"""Discrete-event SLURM-like workload manager simulator.

The paper (§3.6, Figs. 1-2) argues that SLURM's MPMD and *heterogeneous
jobs* paradigms let a hybrid workflow keep a scarce quantum device busy:
when the quantum phase of a job is a separately-allocated component, the
QPU is only held while actually in use, so a second job's quantum phase can
start "before the first heterogeneous job finishes".

Model
-----
* A :class:`Cluster` owns counted resource types (e.g. ``{"cpu": 4,
  "qpu": 1}``) — a QPU partition next to CPU partitions.
* A :class:`Job` is a sequence of :class:`Phase` s (classical pre-work,
  quantum execution, classical post-work ...).  A phase requesting several
  resource types at once models an MPMD step.
* Scheduling modes:
  - ``monolithic`` — the whole job is one allocation requesting, per type,
    the maximum over its phases, held for the job's total duration (the
    conventional non-heterogeneous submission).  Resources are *allocated*
    throughout but only *used* during phases that request them.
  - ``heterogeneous`` — each phase is its own co-schedulable allocation;
    phase k+1 becomes ready when phase k completes.
* FIFO scheduling with optional EASY backfill (a later unit may jump the
  queue if it fits now and cannot delay the head unit's shadow start time).

The :class:`ScheduleResult` exposes per-type allocated/used/idle accounting
— the exact quantities behind Fig. 1's idle-time claim.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hpc.trace import Interval, ResourceTrace, render_gantt


@dataclass(frozen=True)
class Phase:
    """One stage of a job: named resource demand for a fixed duration."""

    name: str
    resources: Dict[str, int]
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("phase duration must be >= 0")
        for rtype, count in self.resources.items():
            if count <= 0:
                raise ValueError(f"resource count for {rtype!r} must be > 0")


@dataclass
class Job:
    """A sequence of phases submitted at ``submit_time``."""

    name: str
    phases: List[Phase]
    submit_time: float = 0.0

    def total_duration(self) -> float:
        return sum(p.duration for p in self.phases)

    def union_resources(self) -> Dict[str, int]:
        union: Dict[str, int] = {}
        for phase in self.phases:
            for rtype, count in phase.resources.items():
                union[rtype] = max(union.get(rtype, 0), count)
        return union


@dataclass
class Cluster:
    """Counted resource pools by type."""

    resources: Dict[str, int]

    def __post_init__(self) -> None:
        for rtype, count in self.resources.items():
            if count <= 0:
                raise ValueError(f"cluster resource {rtype!r} must be > 0")


@dataclass
class PhaseRecord:
    """Trace record of one executed phase."""

    job: str
    phase: str
    start: float
    end: float
    resources: Dict[str, int]


@dataclass
class ScheduleResult:
    """Simulation output with idle-time accounting."""

    records: List[PhaseRecord]
    traces: Dict[str, ResourceTrace]
    makespan: float
    mode: str

    def idle_while_allocated(self, rtype: str) -> float:
        return self.traces[rtype].idle_while_allocated()

    def utilization(self, rtype: str) -> float:
        return self.traces[rtype].utilization(self.makespan)

    def job_turnaround(self) -> Dict[str, float]:
        """Per-job completion time (end of last phase)."""
        out: Dict[str, float] = {}
        for rec in self.records:
            out[rec.job] = max(out.get(rec.job, 0.0), rec.end)
        return out

    def gantt(self, *, width: int = 72) -> str:
        rows: Dict[str, List[Interval]] = {}
        for rec in self.records:
            for rtype in rec.resources:
                rows.setdefault(rtype, []).append(
                    Interval(rec.start, rec.end, rec.job)
                )
        return render_gantt(rows, width=width, t_max=self.makespan)


# ---------------------------------------------------------------------------
# Internal scheduling unit
# ---------------------------------------------------------------------------
@dataclass
class _Unit:
    """One schedulable allocation (whole job or single phase)."""

    order: int  # FIFO priority
    job: Job
    resources: Dict[str, int]
    duration: float
    ready_time: float
    phase_index: Optional[int] = None  # None = monolithic whole-job unit


class SlurmSimulator:
    """Event-driven scheduler over a :class:`Cluster`."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        mode: str = "heterogeneous",
        backfill: bool = True,
    ) -> None:
        if mode not in ("heterogeneous", "monolithic"):
            raise ValueError(f"unknown mode {mode!r}")
        self.cluster = cluster
        self.mode = mode
        self.backfill = backfill
        self.jobs: List[Job] = []

    def submit(self, job: Job) -> None:
        for phase in job.phases:
            for rtype, count in phase.resources.items():
                if rtype not in self.cluster.resources:
                    raise ValueError(f"unknown resource type {rtype!r}")
                if count > self.cluster.resources[rtype]:
                    raise ValueError(
                        f"phase {phase.name!r} requests {count} {rtype!r} > "
                        f"cluster capacity {self.cluster.resources[rtype]}"
                    )
        self.jobs.append(job)

    # ------------------------------------------------------------------
    def run(self) -> ScheduleResult:
        free = dict(self.cluster.resources)
        counter = itertools.count()
        pending: List[_Unit] = []
        # (end_time, seq, unit, start_time)
        running: List[Tuple[float, int, _Unit, float]] = []
        records: List[PhaseRecord] = []
        traces = {
            rtype: ResourceTrace(rtype, capacity=count)
            for rtype, count in self.cluster.resources.items()
        }
        now = 0.0

        def make_ready(job: Job, phase_index: int, at: float) -> None:
            if self.mode == "monolithic":
                pending.append(
                    _Unit(
                        next(counter),
                        job,
                        job.union_resources(),
                        job.total_duration(),
                        at,
                    )
                )
            else:
                phase = job.phases[phase_index]
                pending.append(
                    _Unit(
                        next(counter),
                        job,
                        dict(phase.resources),
                        phase.duration,
                        at,
                        phase_index,
                    )
                )

        for job in sorted(self.jobs, key=lambda j: j.submit_time):
            if not job.phases:
                continue
            make_ready(job, 0, job.submit_time)

        def fits(unit: _Unit) -> bool:
            return all(free.get(r, 0) >= c for r, c in unit.resources.items())

        def start(unit: _Unit, at: float) -> None:
            for rtype, count in unit.resources.items():
                free[rtype] -= count
            end = at + unit.duration
            heapq.heappush(running, (end, next(counter), unit, at))
            self._record_unit(unit, at, records, traces)

        def shadow_time(head: _Unit) -> float:
            """Earliest time the head unit could start given running ends."""
            avail = dict(free)
            if all(avail.get(r, 0) >= c for r, c in head.resources.items()):
                return now
            for end, _, unit, _start in sorted(running):
                for rtype, count in unit.resources.items():
                    avail[rtype] = avail.get(rtype, 0) + count
                if all(avail.get(r, 0) >= c for r, c in head.resources.items()):
                    return end
            return float("inf")

        while pending or running:
            # Admit ready units (FIFO; optional EASY backfill).
            ready = sorted(
                [u for u in pending if u.ready_time <= now + 1e-12],
                key=lambda u: u.order,
            )
            progressed = True
            while progressed and ready:
                progressed = False
                head = ready[0]
                if fits(head):
                    start(head, now)
                    pending.remove(head)
                    ready.pop(0)
                    progressed = True
                    continue
                if self.backfill and len(ready) > 1:
                    shadow = shadow_time(head)
                    for candidate in ready[1:]:
                        if not fits(candidate):
                            continue
                        blocking = any(
                            candidate.resources.get(r, 0) > 0
                            for r in head.resources
                        )
                        if now + candidate.duration <= shadow + 1e-12 or not blocking:
                            start(candidate, now)
                            pending.remove(candidate)
                            ready.remove(candidate)
                            progressed = True
                            break
            if not running:
                if pending:
                    # Jump to the next submit/ready time.
                    now = min(u.ready_time for u in pending)
                    continue
                break
            end, _, unit, _started = heapq.heappop(running)
            now = max(now, end)
            for rtype, count in unit.resources.items():
                free[rtype] += count
            # Release follow-up phase in heterogeneous mode.
            if unit.phase_index is not None:
                nxt = unit.phase_index + 1
                if nxt < len(unit.job.phases):
                    make_ready(unit.job, nxt, now)

        makespan = max((rec.end for rec in records), default=0.0)
        return ScheduleResult(records, traces, makespan, self.mode)

    # ------------------------------------------------------------------
    def _record_unit(
        self,
        unit: _Unit,
        at: float,
        records: List[PhaseRecord],
        traces: Dict[str, ResourceTrace],
    ) -> None:
        if unit.phase_index is not None:
            phase = unit.job.phases[unit.phase_index]
            records.append(
                PhaseRecord(
                    unit.job.name, phase.name, at, at + phase.duration, dict(phase.resources)
                )
            )
            for rtype, count in phase.resources.items():
                for _ in range(count):
                    traces[rtype].allocated.append(
                        Interval(at, at + phase.duration, unit.job.name)
                    )
                    traces[rtype].used.append(
                        Interval(at, at + phase.duration, phase.name)
                    )
            return
        # Monolithic: allocation spans the job; usage follows the phases.
        cursor = at
        union = unit.resources
        for rtype, count in union.items():
            for _ in range(count):
                traces[rtype].allocated.append(
                    Interval(at, at + unit.duration, unit.job.name)
                )
        for phase in unit.job.phases:
            records.append(
                PhaseRecord(
                    unit.job.name,
                    phase.name,
                    cursor,
                    cursor + phase.duration,
                    dict(phase.resources),
                )
            )
            for rtype, count in phase.resources.items():
                for _ in range(count):
                    traces[rtype].used.append(
                        Interval(cursor, cursor + phase.duration, phase.name)
                    )
            cursor += phase.duration


def hybrid_workflow_jobs(
    n_jobs: int,
    *,
    classical_pre: float = 4.0,
    quantum: float = 1.0,
    classical_post: float = 2.0,
    cpus: int = 1,
    qpus: int = 1,
) -> List[Job]:
    """The Fig. 1 workload: classical pre-work → quantum phase → post-work."""
    jobs = []
    for k in range(n_jobs):
        jobs.append(
            Job(
                name=f"job{k}",
                phases=[
                    Phase("classical-pre", {"cpu": cpus}, classical_pre),
                    Phase("quantum", {"qpu": qpus}, quantum),
                    Phase("classical-post", {"cpu": cpus}, classical_post),
                ],
            )
        )
    return jobs


__all__ = [
    "Phase",
    "Job",
    "Cluster",
    "PhaseRecord",
    "ScheduleResult",
    "SlurmSimulator",
    "hybrid_workflow_jobs",
]
