"""Paper-style table formatting for experiment outputs.

The paper reports proportions with two significant digits (e.g. ``0.067``,
``0.53``); these helpers render the same matrix layouts as Fig. 3's heat
tables, Table 1 and Fig. 4's series so bench output can be compared to the
paper side by side.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np


def fmt_proportion(value: Optional[float]) -> str:
    """Two-significant-digit formatting matching the paper's tables."""
    if value is None or (isinstance(value, float) and np.isnan(value)):
        return "  -  "
    if value == 0:
        return "0"
    return f"{value:.2g}"


def format_heat_table(
    row_labels: Sequence,
    col_labels: Sequence,
    values: np.ndarray,
    *,
    title: str = "",
    row_header: str = "Node Counts",
    col_header: str = "Edge Probabilities",
) -> str:
    """Render a (rows × cols) proportion matrix like Fig. 3's panels."""
    values = np.asarray(values, dtype=np.float64)
    cells = [[fmt_proportion(v) if not np.isnan(v) else "-" for v in row] for row in values]
    col_width = max(
        6,
        max((len(c) for row in cells for c in row), default=1) + 1,
        max(len(str(c)) for c in col_labels) + 1,
    )
    label_width = max(len(str(r)) for r in row_labels) + 2
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{row_header} \\ {col_header}")
    header = " " * label_width + "".join(f"{str(c):>{col_width}}" for c in col_labels)
    lines.append(header)
    for label, row in zip(row_labels, cells, strict=True):
        lines.append(
            f"{str(label):<{label_width}}" + "".join(f"{c:>{col_width}}" for c in row)
        )
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[Optional[float]]],
    *,
    title: str = "",
    fmt: str = "{:.4f}",
) -> str:
    """Render named series over a shared x axis (Fig. 4 layout)."""
    names = list(series)
    col_width = max(10, max(len(n) for n in names) + 2)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{x_label:<12}" + "".join(f"{n:>{col_width}}" for n in names)
    lines.append(header)
    for i, x in enumerate(x_values):
        row = [f"{str(x):<12}"]
        for name in names:
            v = series[name][i]
            row.append(
                f"{'-':>{col_width}}" if v is None else f"{fmt.format(v):>{col_width}}"
            )
        lines.append("".join(row))
    return "\n".join(lines)


def format_kv_block(title: str, items: Mapping[str, object]) -> str:
    """Simple aligned key/value block for workflow metrics."""
    width = max(len(k) for k in items) + 1
    lines = [title] if title else []
    for key, value in items.items():
        if isinstance(value, float):
            lines.append(f"  {key:<{width}} {value:.4f}")
        else:
            lines.append(f"  {key:<{width}} {value}")
    return "\n".join(lines)


__all__ = [
    "fmt_proportion",
    "format_heat_table",
    "format_series_table",
    "format_kv_block",
]
