"""Quantitative paper-vs-measured comparison utilities.

Given a measured :class:`~repro.experiments.gridsearch.GridSearchResult`
(or raw proportion matrices) and the transcribed published tables in
:mod:`repro.experiments.paperdata`, these helpers compute the agreement
statistics quoted in EXPERIMENTS.md: mean absolute difference, rank
correlation of the density profile, and the boolean shape checks the
paper's prose makes ("advantage at small edge probabilities", "higher
rhobeg/layers more successful", "wins rarer at the large tier").

Only meaningful when the measured sweep covers the published axes (i.e.
``REPRO_PAPER_SCALE=1`` runs); laptop-tier sweeps use the boolean shape
checks alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.experiments import paperdata


def mean_abs_difference(measured: np.ndarray, published: np.ndarray) -> float:
    """Mean |measured − published| over cells both define (NaN-safe)."""
    measured = np.asarray(measured, dtype=np.float64)
    published = np.asarray(published, dtype=np.float64)
    if measured.shape != published.shape:
        raise ValueError(
            f"shape mismatch {measured.shape} vs {published.shape}; "
            "run the sweep on the published axes"
        )
    mask = ~(np.isnan(measured) | np.isnan(published))
    if not mask.any():
        raise ValueError("no overlapping cells")
    return float(np.abs(measured[mask] - published[mask]).mean())


def rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation over the flattened, co-defined cells."""
    from scipy import stats

    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    mask = ~(np.isnan(a) | np.isnan(b))
    if mask.sum() < 3:
        raise ValueError("need at least 3 overlapping cells")
    rho, _ = stats.spearmanr(a[mask], b[mask])
    return float(rho)


def density_profile(matrix: np.ndarray) -> np.ndarray:
    """Column means — the win-rate profile over edge probabilities."""
    return np.nanmean(np.asarray(matrix, dtype=np.float64), axis=0)


def low_density_advantage(matrix: np.ndarray) -> float:
    """Mean(win | low p) − mean(win | high p); positive reproduces the
    paper's 'partial advantage at small edge connection probabilities'."""
    profile = density_profile(matrix)
    k = max(1, len(profile) // 2 - 1)
    return float(np.nanmean(profile[:k + 1]) - np.nanmean(profile[-k - 1:]))


@dataclass
class Fig3Comparison:
    """Shape-level agreement summary for one weighting class."""

    weighted: bool
    measured_advantage: float
    published_advantage: float
    advantage_sign_agrees: bool
    mean_abs_diff: Optional[float] = None
    rank_corr: Optional[float] = None

    def summary(self) -> str:
        lines = [
            f"Fig3 ({'weighted' if self.weighted else 'unweighted'}):",
            f"  low-density advantage: measured {self.measured_advantage:+.3f}"
            f" vs published {self.published_advantage:+.3f}"
            f" -> sign {'AGREES' if self.advantage_sign_agrees else 'DIFFERS'}",
        ]
        if self.mean_abs_diff is not None:
            lines.append(f"  mean |Δ proportion|: {self.mean_abs_diff:.3f}")
        if self.rank_corr is not None:
            lines.append(f"  Spearman rank corr:  {self.rank_corr:+.3f}")
        return "\n".join(lines)


def compare_fig3(grid_result, *, weighted: bool) -> Fig3Comparison:
    """Compare a measured grid search against the published Fig. 3(a).

    Cell-level statistics are only computed when the measured axes match
    the published ones exactly; otherwise the shape booleans alone are
    returned (laptop-tier behaviour).
    """
    measured = grid_result.proportions_by_graph(weighted=weighted, mode="strict")
    published = paperdata.fig3a(weighted)
    measured_adv = low_density_advantage(measured)
    published_adv = low_density_advantage(published)
    comparison = Fig3Comparison(
        weighted=weighted,
        measured_advantage=measured_adv,
        published_advantage=published_adv,
        advantage_sign_agrees=(measured_adv > 0) == (published_adv > 0),
    )
    axes_match = (
        tuple(grid_result.config.node_counts) == paperdata.FIG3_NODE_COUNTS
        and tuple(grid_result.config.edge_probs) == paperdata.FIG3_EDGE_PROBS
    )
    if axes_match:
        comparison.mean_abs_diff = mean_abs_difference(measured, published)
        comparison.rank_corr = rank_correlation(measured, published)
    return comparison


def compare_table1(table1_result) -> Dict[str, float]:
    """Mean strict-win proportions, measured vs published Table 1.

    Works across tiers (the node counts differ by design); the comparison
    is between *means*, quantifying the "wins are less frequent" claim.
    """
    measured = table1_result.proportions("strict")
    return {
        "measured_mean_win": float(np.mean(list(measured.values()))),
        "published_mean_win": float(
            np.mean(list(paperdata.TABLE1_STRICT.values()))
        ),
        "published_fig3_mean_win": float(paperdata.FIG3A_UNWEIGHTED.mean()),
    }


__all__ = [
    "mean_abs_difference",
    "rank_correlation",
    "density_profile",
    "low_density_advantage",
    "Fig3Comparison",
    "compare_fig3",
    "compare_table1",
]
