"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments import paperdata
from repro.experiments.compare import (
    Fig3Comparison,
    compare_fig3,
    compare_table1,
    low_density_advantage,
    mean_abs_difference,
    rank_correlation,
)
from repro.experiments.gridsearch import (
    AngleGridResult,
    GridSearchConfig,
    GridSearchResult,
    default_angle_axes,
    laptop_scale_config,
    paper_scale_config,
    run_angle_grid,
    run_grid_search,
)
from repro.experiments.report import (
    fmt_proportion,
    format_heat_table,
    format_kv_block,
    format_series_table,
)
from repro.experiments.scaling import (
    SERIES_NAMES,
    ScalingConfig,
    ScalingResult,
    paper_scale_scaling_config,
    run_scaling_experiment,
)
from repro.experiments.table1 import (
    Table1Config,
    Table1Result,
    paper_scale_table1_config,
    run_table1,
)
from repro.experiments.workflow import (
    CoordinatorScalingResult,
    HetJobExperimentResult,
    run_coordinator_scaling,
    run_hetjob_experiment,
)

__all__ = [
    "AngleGridResult",
    "GridSearchConfig",
    "GridSearchResult",
    "default_angle_axes",
    "laptop_scale_config",
    "paper_scale_config",
    "run_angle_grid",
    "run_grid_search",
    "Table1Config",
    "Table1Result",
    "paper_scale_table1_config",
    "run_table1",
    "ScalingConfig",
    "ScalingResult",
    "SERIES_NAMES",
    "paper_scale_scaling_config",
    "run_scaling_experiment",
    "HetJobExperimentResult",
    "run_hetjob_experiment",
    "CoordinatorScalingResult",
    "run_coordinator_scaling",
    "fmt_proportion",
    "format_heat_table",
    "format_series_table",
    "format_kv_block",
    "paperdata",
    "Fig3Comparison",
    "compare_fig3",
    "compare_table1",
    "low_density_advantage",
    "mean_abs_difference",
    "rank_correlation",
]
