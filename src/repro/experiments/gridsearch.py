"""The Fig. 3 grid-search experiment (paper §4).

For every (node count, edge probability) cell, one unweighted and one
weighted Erdős–Rényi instance are generated.  A grid over circuit layers
p and COBYLA ``rhobeg`` is swept; for each grid point the QAOA MaxCut value
(highest-amplitude bitstring) is compared against the GW 30-slice average
for the same graph.  Reported aggregations match the paper's three panels:

* Fig. 3(a): per-(N, p_edge) proportion of grid points where QAOA is
  *strictly better* than GW — split by weighting.
* Fig. 3(b): same, for QAOA reaching [95, 100)% of the GW value.
* Fig. 3(c): per-(rhobeg, layers) proportion of *graphs* where that grid
  point made QAOA strictly better — split by weighting.

The paper's iteration budget ("linearly dependent on p, 30 to 100") is the
default.  ``paper_scale_config()`` reproduces the full published sweep
(N ∈ [15, 25], p_edge ∈ {0.1..0.5}, p ∈ {3..8}, rhobeg ∈ {0.1..0.5});
``laptop_scale_config()`` is the CI-friendly default.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.classical.gw import goemans_williamson
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph
from repro.hpc.executor import ExecutorConfig, map_jobs
from repro.ml.knowledge import GridRecord, KnowledgeBase
from repro.qaoa.analytic import angle_axes
from repro.qaoa.energy import MaxCutEnergy
from repro.qaoa.engine import SweepEngine
from repro.qaoa.params import default_iterations
from repro.qaoa.solver import QAOASolver
from repro.util.rng import RngLike, ensure_rng


@dataclass
class GridSearchConfig:
    """Sweep definition.  Defaults are laptop scale; see factory functions."""

    node_counts: Sequence[int] = (8, 10, 12)
    edge_probs: Sequence[float] = (0.2, 0.4)
    layers_grid: Sequence[int] = (2, 3)
    rhobeg_grid: Sequence[float] = (0.2, 0.4)
    weightings: Sequence[bool] = (False, True)
    # Paper methodology: shot-based objective (4096 shots), no warm start —
    # the rhobeg sweep only matters from a naive starting point.
    objective: str = "sampled"
    selection: str = "top1"
    init: str = "fixed"
    shots: int = 4096
    gw_slices: int = 30
    maxiter: Optional[int] = None  # None -> paper's p-linear budget
    store_params: bool = True
    rng: RngLike = 0
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)


def laptop_scale_config(**overrides) -> GridSearchConfig:
    """Small sweep that runs in seconds (default for tests/benches)."""
    return GridSearchConfig(**overrides)


def paper_scale_config(**overrides) -> GridSearchConfig:
    """The published Fig. 3 sweep (minutes-to-hours of runtime)."""
    params = dict(
        node_counts=tuple(range(15, 26)),
        edge_probs=(0.1, 0.2, 0.3, 0.4, 0.5),
        layers_grid=(3, 4, 5, 6, 7, 8),
        rhobeg_grid=(0.1, 0.2, 0.3, 0.4, 0.5),
    )
    params.update(overrides)
    return GridSearchConfig(**params)


# ---------------------------------------------------------------------------
# Per-cell job (module level for the process backend)
# ---------------------------------------------------------------------------
def _grid_cell_job(payload: dict) -> List[GridRecord]:
    n: int = payload["n"]
    p_edge: float = payload["p_edge"]
    weighted: bool = payload["weighted"]
    seed: int = payload["seed"]
    config_fields: dict = payload["config"]

    gen = ensure_rng(seed)
    graph = erdos_renyi(n, p_edge, weighted=weighted, rng=gen)
    gw = goemans_williamson(
        graph, n_slices=config_fields["gw_slices"], rng=gen
    )
    gw_value = gw.average_cut  # §3.4: average over slices vs unrepeated QAOA
    records: List[GridRecord] = []
    for layers in config_fields["layers_grid"]:
        maxiter = (
            config_fields["maxiter"]
            if config_fields["maxiter"] is not None
            else default_iterations(layers)
        )
        for rhobeg in config_fields["rhobeg_grid"]:
            solver = QAOASolver(
                layers=layers,
                rhobeg=rhobeg,
                maxiter=maxiter,
                objective=config_fields["objective"],
                selection=config_fields["selection"],
                init=config_fields["init"],
                shots=config_fields["shots"],
                rng=int(gen.integers(2**31)),
            )
            result = solver.solve(graph)
            records.append(
                GridRecord(
                    n_nodes=n,
                    edge_probability=p_edge,
                    weighted=weighted,
                    layers=layers,
                    rhobeg=rhobeg,
                    qaoa_cut=result.cut,
                    gw_cut=gw_value,
                    qaoa_params=(
                        result.params.tolist() if config_fields["store_params"] else None
                    ),
                )
            )
    return records


# ---------------------------------------------------------------------------
# Result container + the paper's aggregations
# ---------------------------------------------------------------------------
@dataclass
class GridSearchResult:
    config: GridSearchConfig
    records: List[GridRecord]
    elapsed: float = 0.0

    # -- Fig. 3(a) / 3(b): (node count × edge prob) proportions ----------
    def proportions_by_graph(
        self, *, weighted: bool, mode: str = "strict"
    ) -> np.ndarray:
        """Matrix (node_counts × edge_probs) of per-graph proportions.

        ``strict``: QAOA > GW.  ``band95``: GW·0.95 ≤ QAOA < GW.
        """
        rows = list(self.config.node_counts)
        cols = list(self.config.edge_probs)
        out = np.full((len(rows), len(cols)), np.nan)
        for i, n in enumerate(rows):
            for j, p in enumerate(cols):
                hits = [
                    rec
                    for rec in self.records
                    if rec.n_nodes == n
                    and rec.edge_probability == p
                    and rec.weighted == weighted
                ]
                if not hits:
                    continue
                if mode == "strict":
                    wins = [rec.qaoa_cut > rec.gw_cut for rec in hits]
                elif mode == "band95":
                    wins = [
                        0.95 * rec.gw_cut <= rec.qaoa_cut < rec.gw_cut for rec in hits
                    ]
                else:
                    raise ValueError(f"unknown mode {mode!r}")
                out[i, j] = float(np.mean(wins))
        return out

    # -- Fig. 3(c): (rhobeg × layers) proportions -------------------------
    def proportions_by_gridpoint(self, *, weighted: bool) -> np.ndarray:
        """Matrix (rhobeg × layers): fraction of graphs where the grid point
        made QAOA strictly better (the paper's normalised scores)."""
        rhos = list(self.config.rhobeg_grid)
        lays = list(self.config.layers_grid)
        out = np.full((len(rhos), len(lays)), np.nan)
        for i, rho in enumerate(rhos):
            for j, lay in enumerate(lays):
                hits = [
                    rec
                    for rec in self.records
                    if rec.rhobeg == rho and rec.layers == lay and rec.weighted == weighted
                ]
                if not hits:
                    continue
                out[i, j] = float(np.mean([rec.qaoa_cut > rec.gw_cut for rec in hits]))
        return out

    def best_gridpoint(self, *, weighted: Optional[bool] = None) -> Tuple[float, int]:
        """(rhobeg, layers) with the highest strict-win proportion — the
        paper identifies (0.5, 6) at its scale."""
        best: Tuple[float, int] = (0.0, 0)
        best_score = -1.0
        for rho in self.config.rhobeg_grid:
            for lay in self.config.layers_grid:
                hits = [
                    rec
                    for rec in self.records
                    if rec.rhobeg == rho
                    and rec.layers == lay
                    and (weighted is None or rec.weighted == weighted)
                ]
                if not hits:
                    continue
                score = float(np.mean([rec.qaoa_cut > rec.gw_cut for rec in hits]))
                if score > best_score:
                    best_score = score
                    best = (rho, lay)
        return best

    def to_knowledge_base(self, **kb_kwargs) -> KnowledgeBase:
        kb = KnowledgeBase(**kb_kwargs)
        kb.extend(self.records)
        return kb

    # -- formatted output --------------------------------------------------
    def format_fig3(self) -> str:
        from repro.experiments.report import format_heat_table

        blocks = []
        for mode, label in (("strict", "QAOA strictly better than GW"),
                            ("band95", "QAOA within [95,100)% of GW")):
            for weighted in (False, True):
                tag = "weighted" if weighted else "unweighted"
                blocks.append(
                    format_heat_table(
                        list(self.config.node_counts),
                        list(self.config.edge_probs),
                        self.proportions_by_graph(weighted=weighted, mode=mode),
                        title=f"Fig3 {label} ({tag})",
                    )
                )
        for weighted in (False, True):
            tag = "weighted" if weighted else "unweighted"
            blocks.append(
                format_heat_table(
                    list(self.config.rhobeg_grid),
                    list(self.config.layers_grid),
                    self.proportions_by_gridpoint(weighted=weighted),
                    title=f"Fig3c strict-win proportion per grid point ({tag})",
                    row_header="rhobeg",
                    col_header="layers",
                )
            )
        return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# The (γ, β) angle-grid sweep (energy landscapes, any depth)
# ---------------------------------------------------------------------------
@dataclass
class AngleGridResult:
    """A full (γ, β) energy landscape over one graph.

    ``energies[i, j] = F_p(γ=gammas[i], β=betas[j])`` — 1-D axes are the
    classic p=1 landscape, ``(rows, p)`` axes pair per-layer schedules.
    The best point is the flat-argmax (first occurrence), so loop and
    batched evaluations of the same grid resolve ties identically.
    """

    gammas: np.ndarray
    betas: np.ndarray
    energies: np.ndarray
    elapsed: float = 0.0
    method: str = "batched"

    @property
    def best_index(self) -> Tuple[int, int]:
        flat = int(np.argmax(self.energies))
        return flat // self.energies.shape[1], flat % self.energies.shape[1]

    @property
    def best_energy(self) -> float:
        i, j = self.best_index
        return float(self.energies[i, j])

    @property
    def best_params(self) -> np.ndarray:
        """Winning ``[γ_1..γ_p, β_1..β_p]`` vector (gammas-first packing)."""
        i, j = self.best_index
        return np.concatenate(
            [np.atleast_1d(self.gammas[i]), np.atleast_1d(self.betas[j])]
        ).astype(np.float64)


def default_angle_axes(resolution: int = 24) -> Tuple[np.ndarray, np.ndarray]:
    """Standard p=1 landscape axes: γ ∈ [0, π), β ∈ [0, π/2).

    Both unitaries are periodic over these ranges for integer-weight graphs,
    so the open intervals cover the landscape without duplicating the
    endpoint column/row.  (Delegates to :func:`repro.qaoa.analytic.angle_axes`
    so the RQAOA seeding grid and the experiments share one definition.)
    """
    return angle_axes(resolution)


def run_angle_grid(
    graph: Graph,
    gammas: Optional[np.ndarray] = None,
    betas: Optional[np.ndarray] = None,
    *,
    resolution: int = 24,
    chunk_size: Optional[int] = None,
    engine: Optional[SweepEngine] = None,
    method: str = "batched",
) -> AngleGridResult:
    """Evaluate the QAOA energy over a full (γ, β) grid.

    Axes may be 1-D (p=1, the default landscape) or ``(rows, p)`` per-layer
    schedules (p ≥ 2).  ``method="batched"`` (default) routes through
    :meth:`SweepEngine.angle_grid` with automatic tier selection — the
    closed-form analytic path for p=1, chunked generic batches for deeper
    grids.  ``"analytic"`` and ``"spectral"`` force the p=1 tiers
    explicitly; ``method="loop"`` is the original per-point double Python
    loop over :meth:`~repro.qaoa.energy.MaxCutEnergy.expectation`, kept as
    the cross-validation reference and benchmark baseline.
    """
    if gammas is None or betas is None:
        default_g, default_b = default_angle_axes(resolution)
        gammas = default_g if gammas is None else gammas
        betas = default_b if betas is None else betas
    gammas = np.asarray(gammas, dtype=np.float64)
    betas = np.asarray(betas, dtype=np.float64)
    if engine is not None and engine.graph is not graph:
        raise ValueError("engine was built for a different graph")
    start = time.perf_counter()
    if method in ("batched", "analytic", "spectral"):
        engine = engine or SweepEngine(graph, chunk_size=chunk_size)
        tier = "auto" if method == "batched" else method
        energies = engine.angle_grid(gammas, betas, method=tier)
    elif method == "loop":
        energy = MaxCutEnergy(graph)
        g2d = gammas[:, None] if gammas.ndim == 1 else gammas
        b2d = betas[:, None] if betas.ndim == 1 else betas
        energies = np.empty((g2d.shape[0], b2d.shape[0]), dtype=np.float64)
        for i, gamma_row in enumerate(g2d):
            for j, beta_row in enumerate(b2d):
                energies[i, j] = energy.expectation(
                    np.concatenate([gamma_row, beta_row])
                )
    else:
        raise ValueError(f"unknown angle-grid method {method!r}")
    return AngleGridResult(
        gammas=gammas,
        betas=betas,
        energies=energies,
        elapsed=time.perf_counter() - start,
        method=method,
    )


def run_grid_search(config: Optional[GridSearchConfig] = None) -> GridSearchResult:
    """Execute the sweep (cells fan out over the configured executor)."""
    config = config or GridSearchConfig()
    gen = ensure_rng(config.rng)
    config_fields = {
        "layers_grid": list(config.layers_grid),
        "rhobeg_grid": list(config.rhobeg_grid),
        "objective": config.objective,
        "selection": config.selection,
        "init": config.init,
        "shots": config.shots,
        "gw_slices": config.gw_slices,
        "maxiter": config.maxiter,
        "store_params": config.store_params,
    }
    payloads = []
    for n in config.node_counts:
        for p_edge in config.edge_probs:
            for weighted in config.weightings:
                payloads.append(
                    {
                        "n": int(n),
                        "p_edge": float(p_edge),
                        "weighted": bool(weighted),
                        "seed": int(gen.integers(2**31)),
                        "config": config_fields,
                    }
                )
    start = time.perf_counter()
    batches = map_jobs(_grid_cell_job, payloads, config=config.executor)
    records = [rec for batch in batches for rec in batch]
    return GridSearchResult(config, records, time.perf_counter() - start)


__all__ = [
    "AngleGridResult",
    "GridSearchConfig",
    "GridSearchResult",
    "default_angle_axes",
    "laptop_scale_config",
    "paper_scale_config",
    "run_angle_grid",
    "run_grid_search",
]
