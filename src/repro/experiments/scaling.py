"""Fig. 4: QAOA² on large graphs with different sub-graph method mixes.

For each node count the paper reports five series (relative to the QAOA
series): Random partition, Classic (all sub-graphs solved with GW), QAOA
(all sub-graphs QAOA, best over the parameter grid), Best (better of
QAOA/GW per sub-graph) and GW applied to the whole graph.  The paper's
published shape: full-graph GW dominates up to its abnormal termination at
2000 nodes, all QAOA² variants sit within a few percent of each other,
"Best" is marginally ahead of the pure mixes, and everything beats Random.

``gw_fail_above`` reproduces the termination: the GW-full series becomes
``None`` beyond the threshold (paper: >2000 nodes, cvxpy/Eigen triplets).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


from repro.classical.gw import GWAbnormalTermination, goemans_williamson
from repro.graphs.generators import erdos_renyi
from repro.graphs.maxcut import randomized_partitioning
from repro.hpc.executor import ExecutorConfig
from repro.qaoa2.solver import QAOA2Solver
from repro.util.rng import RngLike, ensure_rng

SERIES_NAMES = ("Random", "Classic", "QAOA", "Best", "GW")


@dataclass
class ScalingConfig:
    """Fig. 4 sweep definition (defaults: laptop scale).

    Paper scale: ``node_counts=(500, 1000, 1500, 2000, 2500)``,
    ``n_max_qubits`` up to 33, ``qaoa_grid`` = the full (p, rhobeg) grid,
    ``gw_fail_above=2000``.

    All QAOA sub-graph solves are engine-backed: each sub-graph gets a
    :class:`repro.qaoa.engine.SweepEngine` whose pooled buffers are shared
    across the many equal-sized partitions a sweep produces (one working
    set per sub-graph size, not per solve), and the whole option grid of a
    sub-graph reuses that engine's cached cut diagonal.  ``n_starts > 1``
    additionally runs every variational loop as lock-step multi-start —
    with ``"optimizer": "spsa"`` in ``qaoa_options`` each iteration is one
    batched ``(2·n_starts, 2p)`` engine evaluation.  With
    ``{"layers": 1}`` in ``qaoa_options`` (or in a ``qaoa_grid`` entry)
    the sub-graph objectives drop to the closed-form analytic tier
    (:mod:`repro.qaoa.analytic`) — exact energies with no statevector, so
    the per-solve cost no longer scales with 2**n_max_qubits.

    ``service`` routes every QAOA² leaf solve of the sweep through a
    shared :class:`repro.service.MaxCutService` with the solver's own
    per-leaf seeds, so cut values stay identical to the direct path and
    bit-exact repeats (re-running a sweep, or several sweeps sharing one
    service) are answered from its cache.  For in-run reuse across
    isomorphic sub-graphs, run ``QAOA2Solver`` directly with
    ``service_seeds="canonical"``.
    """

    node_counts: Sequence[int] = (60, 120, 180)
    edge_prob: float = 0.1
    n_max_qubits: int = 10
    qaoa_options: dict = field(
        default_factory=lambda: {"layers": 3, "maxiter": 40}
    )
    qaoa_grid: Optional[Sequence[dict]] = None
    n_starts: int = 1
    gw_options: dict = field(default_factory=dict)
    gw_fail_above: Optional[int] = None
    partition_method: str = "greedy_modularity"
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    service: Optional[object] = None  # repro.service.MaxCutService
    rng: RngLike = 0


def paper_scale_scaling_config(**overrides) -> ScalingConfig:
    """The published Fig. 4 sweep (long-running)."""
    params = dict(
        node_counts=(500, 1000, 1500, 2000, 2500),
        edge_prob=0.1,
        n_max_qubits=16,
        qaoa_grid=[
            {"layers": layers, "rhobeg": rhobeg}
            for layers in (3, 4, 5, 6)
            for rhobeg in (0.3, 0.5)
        ],
        gw_fail_above=2000,
    )
    params.update(overrides)
    return ScalingConfig(**params)


@dataclass
class ScalingResult:
    config: ScalingConfig
    cuts: Dict[str, List[Optional[float]]]
    elapsed: Dict[str, List[float]]
    subproblems: List[int]

    def relative_to_qaoa(self) -> Dict[str, List[Optional[float]]]:
        """The paper's normalisation: every series divided by the QAOA series."""
        out: Dict[str, List[Optional[float]]] = {}
        base = self.cuts["QAOA"]
        for name, values in self.cuts.items():
            rel: List[Optional[float]] = []
            for value, q in zip(values, base, strict=True):
                rel.append(None if (value is None or not q) else value / q)
            out[name] = rel
        return out

    def format_table(self) -> str:
        from repro.experiments.report import format_series_table

        absolute = format_series_table(
            "nodes",
            list(self.config.node_counts),
            self.cuts,
            title="Fig4 absolute MaxCut values",
            fmt="{:.1f}",
        )
        relative = format_series_table(
            "nodes",
            list(self.config.node_counts),
            self.relative_to_qaoa(),
            title="Fig4 MaxCut relative to QAOA (paper normalisation)",
        )
        return absolute + "\n\n" + relative


def run_scaling_experiment(config: Optional[ScalingConfig] = None) -> ScalingResult:
    config = config or ScalingConfig()
    gen = ensure_rng(config.rng)
    cuts: Dict[str, List[Optional[float]]] = {name: [] for name in SERIES_NAMES}
    elapsed: Dict[str, List[float]] = {name: [] for name in SERIES_NAMES}
    subproblem_counts: List[int] = []

    # ``n_starts`` rides along with the per-sub-graph QAOA options (it is a
    # QAOASolver knob), unless the caller pinned it there explicitly.
    qaoa_options = dict(config.qaoa_options)
    qaoa_options.setdefault("n_starts", config.n_starts)

    def qaoa2(method: str, graph, seed: int):
        return QAOA2Solver(
            n_max_qubits=config.n_max_qubits,
            subgraph_method=method,
            qaoa_options=dict(qaoa_options),
            qaoa_grid=config.qaoa_grid,
            gw_options=dict(config.gw_options),
            partition_method=config.partition_method,
            executor=config.executor,
            service=config.service,
            rng=seed,
        ).solve(graph)

    for n in config.node_counts:
        graph = erdos_renyi(int(n), config.edge_prob, rng=gen)
        seeds = gen.integers(2**31, size=5)

        t0 = time.perf_counter()
        random_result = randomized_partitioning(graph, trials=1, rng=int(seeds[0]))
        cuts["Random"].append(random_result.cut)
        elapsed["Random"].append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        classic = qaoa2("gw", graph, int(seeds[1]))
        cuts["Classic"].append(classic.cut)
        elapsed["Classic"].append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        qaoa = qaoa2("qaoa", graph, int(seeds[2]))
        cuts["QAOA"].append(qaoa.cut)
        elapsed["QAOA"].append(time.perf_counter() - t0)
        subproblem_counts.append(qaoa.n_subproblems)

        t0 = time.perf_counter()
        best = qaoa2("best", graph, int(seeds[3]))
        cuts["Best"].append(best.cut)
        elapsed["Best"].append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        try:
            gw_full = goemans_williamson(
                graph,
                rng=int(seeds[4]),
                fail_above_nodes=config.gw_fail_above,
                **config.gw_options,
            )
            cuts["GW"].append(gw_full.average_cut)
        except GWAbnormalTermination:
            cuts["GW"].append(None)  # the paper's truncated black curve
        elapsed["GW"].append(time.perf_counter() - t0)

    return ScalingResult(config, cuts, elapsed, subproblem_counts)


__all__ = [
    "SERIES_NAMES",
    "ScalingConfig",
    "ScalingResult",
    "paper_scale_scaling_config",
    "run_scaling_experiment",
]
