"""The paper's published results, transcribed as data.

Digitised from arXiv:2406.17383v2: the four Fig. 3(a)/(b) heat tables, the
two Fig. 3(c) grid-point tables, Table 1 and the qualitative Fig. 4
ordering.  Used by EXPERIMENTS.md tooling to compare our regenerated
tables against the published ones, and by tests asserting that the
transcription is internally consistent (shapes, value ranges, the
"most successful grid point" claim).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

# Axes of Fig. 3(a)/(b): node counts 15..25 (rows) x edge probs 0.1..0.5.
FIG3_NODE_COUNTS: Tuple[int, ...] = tuple(range(15, 26))
FIG3_EDGE_PROBS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)

# Fig. 3(a): proportions of cases where QAOA is strictly better than GW.
FIG3A_UNWEIGHTED = np.array([
    [0.067, 0.67, 0.067, 0.23, 0.17],
    [0.67, 0.5, 0.53, 0.23, 0.17],
    [0.033, 0.53, 0.43, 0.37, 0.1],
    [0.3, 0.47, 0.5, 0.33, 0.067],
    [0.033, 0.23, 0.37, 0.2, 0.033],
    [0.5, 0.57, 0.23, 0.033, 0.067],
    [0.5, 0.47, 0.13, 0.13, 0.033],
    [0.5, 0.5, 0.2, 0.067, 0.033],
    [0.53, 0.17, 0.3, 0.033, 0.0],
    [0.1, 0.27, 0.033, 0.1, 0.033],
    [0.33, 0.1, 0.13, 0.0, 0.033],
])

FIG3A_WEIGHTED = np.array([
    [0.1, 0.57, 0.1, 0.23, 0.1],
    [0.63, 0.5, 0.67, 0.33, 0.1],
    [0.033, 0.6, 0.33, 0.3, 0.13],
    [0.33, 0.57, 0.43, 0.33, 0.067],
    [0.067, 0.37, 0.4, 0.27, 0.067],
    [0.5, 0.3, 0.27, 0.067, 0.067],
    [0.37, 0.23, 0.2, 0.0, 0.067],
    [0.57, 0.5, 0.1, 0.033, 0.067],
    [0.57, 0.17, 0.27, 0.033, 0.0],
    [0.13, 0.2, 0.13, 0.0, 0.0],
    [0.33, 0.17, 0.033, 0.067, 0.0],
])

# Fig. 3(b): proportions where QAOA reaches [95, 100)% of GW.
FIG3B_UNWEIGHTED = np.array([
    [0.53, 0.17, 0.43, 0.1, 0.2],
    [0.033, 0.2, 0.067, 0.1, 0.13],
    [0.83, 0.1, 0.13, 0.13, 0.13],
    [0.43, 0.2, 0.033, 0.17, 0.13],
    [0.77, 0.33, 0.13, 0.1, 0.1],
    [0.47, 0.1, 0.033, 0.067, 0.13],
    [0.3, 0.33, 0.1, 0.067, 0.1],
    [0.27, 0.23, 0.067, 0.033, 0.067],
    [0.13, 0.27, 0.1, 0.13, 0.067],
    [0.3, 0.13, 0.17, 0.067, 0.033],
    [0.33, 0.27, 0.1, 0.033, 0.0],
])

FIG3B_WEIGHTED = np.array([
    [0.47, 0.17, 0.37, 0.033, 0.1],
    [0.033, 0.37, 0.067, 0.1, 0.23],
    [0.73, 0.033, 0.13, 0.0, 0.17],
    [0.47, 0.2, 0.033, 0.13, 0.13],
    [0.73, 0.27, 0.1, 0.1, 0.1],
    [0.4, 0.17, 0.1, 0.13, 0.067],
    [0.47, 0.5, 0.17, 0.067, 0.17],
    [0.17, 0.13, 0.23, 0.1, 0.13],
    [0.23, 0.3, 0.1, 0.067, 0.033],
    [0.2, 0.13, 0.13, 0.2, 0.0],
    [0.33, 0.27, 0.1, 0.1, 0.0],
])

# Fig. 3(c): rows rhobeg 0.1..0.5, cols layers 3..8 (strict-win proportions
# per grid point, normalised over the 55 graphs of each weighting class).
FIG3C_RHOBEGS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
FIG3C_LAYERS: Tuple[int, ...] = (3, 4, 5, 6, 7, 8)

FIG3C_UNWEIGHTED = np.array([
    [0.036, 0.036, 0.33, 0.091, 0.018, 0.073],
    [0.036, 0.27, 0.45, 0.35, 0.11, 0.25],
    [0.036, 0.35, 0.38, 0.38, 0.16, 0.25],
    [0.13, 0.29, 0.4, 0.49, 0.2, 0.31],
    [0.11, 0.31, 0.35, 0.51, 0.29, 0.33],
])

FIG3C_WEIGHTED = np.array([
    [0.018, 0.091, 0.36, 0.15, 0.018, 0.073],
    [0.036, 0.22, 0.44, 0.2, 0.091, 0.18],
    [0.073, 0.18, 0.45, 0.38, 0.091, 0.27],
    [0.073, 0.35, 0.42, 0.49, 0.24, 0.29],
    [0.16, 0.25, 0.42, 0.47, 0.31, 0.33],
])

# Table 1: {(nodes, weighted, edge_prob): proportion}.
TABLE1_STRICT: Dict[Tuple[int, bool, float], float] = {
    (30, True, 0.1): 0.1, (30, True, 0.2): 0.1,
    (30, False, 0.1): 0.167, (30, False, 0.2): 0.0,
    (31, True, 0.1): 0.267, (31, True, 0.2): 0.033,
    (31, False, 0.1): 0.0, (31, False, 0.2): 0.067,
    (32, True, 0.1): 0.1, (32, True, 0.2): 0.033,
    (32, False, 0.1): 0.1, (32, False, 0.2): 0.0,
    (33, True, 0.1): 0.033, (33, True, 0.2): 0.033,
    (33, False, 0.1): 0.167, (33, False, 0.2): 0.033,
}

TABLE1_BAND95: Dict[Tuple[int, bool, float], float] = {
    (30, True, 0.1): 0.133, (30, True, 0.2): 0.2,
    (30, False, 0.1): 0.33, (30, False, 0.2): 0.1,
    (31, True, 0.1): 0.1, (31, True, 0.2): 0.1,
    (31, False, 0.1): 0.2, (31, False, 0.2): 0.033,
    (32, True, 0.1): 0.167, (32, True, 0.2): 0.067,
    (32, False, 0.1): 0.167, (32, False, 0.2): 0.133,
    (33, True, 0.1): 0.067, (33, True, 0.2): 0.167,
    (33, False, 0.1): 0.2, (33, False, 0.2): 0.067,
}

# Fig. 4: node counts and the qualitative facts the text states.
FIG4_NODE_COUNTS: Tuple[int, ...] = (500, 1000, 1500, 2000, 2500)
FIG4_GW_FAILURE_ABOVE: int = 2000
# "GW applied to the full graph is superior ... up to 2000 nodes" and
# "diminishes steadily compared to QAOA2 for larger node counts";
# "choosing the best ... yields slightly better results"; "all methods are
# better than a random cut".
FIG4_ORDERING = ("Random < QAOA2-variants", "Best >= max(Classic-ish, QAOA)",
                 "GW-full > QAOA2 while it runs")

# §4 text: most successful parameter combination at the Fig. 3 scale.
BEST_GRID_POINT: Tuple[float, int] = (0.5, 6)  # (rhobeg, layers)

# §4 text: 33-qubit simulation cost.
QUBITS_33_RUNTIME_MIN: float = 10.0
QUBITS_33_NODES: int = 512
QUBITS_33_LAYERS: int = 8


def fig3a(weighted: bool) -> np.ndarray:
    return FIG3A_WEIGHTED if weighted else FIG3A_UNWEIGHTED


def fig3b(weighted: bool) -> np.ndarray:
    return FIG3B_WEIGHTED if weighted else FIG3B_UNWEIGHTED


def fig3c(weighted: bool) -> np.ndarray:
    return FIG3C_WEIGHTED if weighted else FIG3C_UNWEIGHTED


def published_low_density_advantage(weighted: bool) -> float:
    """Mean strict-win proportion at p=0.1-0.2 minus p=0.4-0.5 — positive
    means the paper's 'QAOA advantage at small edge probabilities'."""
    a = fig3a(weighted)
    return float(a[:, :2].mean() - a[:, 3:].mean())


def published_best_gridpoint(weighted: bool) -> Tuple[float, int]:
    """argmax of Fig. 3(c) — the paper identifies (0.5, 6)."""
    c = fig3c(weighted)
    i, j = np.unravel_index(int(np.argmax(c)), c.shape)
    return FIG3C_RHOBEGS[i], FIG3C_LAYERS[j]


__all__ = [
    "FIG3_NODE_COUNTS", "FIG3_EDGE_PROBS",
    "FIG3A_UNWEIGHTED", "FIG3A_WEIGHTED",
    "FIG3B_UNWEIGHTED", "FIG3B_WEIGHTED",
    "FIG3C_RHOBEGS", "FIG3C_LAYERS",
    "FIG3C_UNWEIGHTED", "FIG3C_WEIGHTED",
    "TABLE1_STRICT", "TABLE1_BAND95",
    "FIG4_NODE_COUNTS", "FIG4_GW_FAILURE_ABOVE", "FIG4_ORDERING",
    "BEST_GRID_POINT", "QUBITS_33_RUNTIME_MIN", "QUBITS_33_NODES",
    "QUBITS_33_LAYERS",
    "fig3a", "fig3b", "fig3c",
    "published_low_density_advantage", "published_best_gridpoint",
]
