"""Table 1: the grid search repeated at the "large qubit" tier (paper §4).

The paper runs node counts 30–33 with edge probabilities {0.1, 0.2} —
33-qubit statevectors on 512 EX nodes.  The same experiment *shape* at a
laptop-tractable tier (default 16–19 nodes) reproduces the published
qualitative finding: at the larger tier, strict QAOA wins become rarer and
no single grid point dominates (DESIGN.md E4 documents the substitution).
Output formatting mirrors Table 1: rows (node count × weighting), one
column per edge probability, two blocks (strictly-better / [95,100)% band).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.gridsearch import (
    GridSearchConfig,
    GridSearchResult,
    run_grid_search,
)
from repro.hpc.executor import ExecutorConfig
from repro.util.rng import RngLike


@dataclass
class Table1Config:
    """Large-tier sweep parameters (paper values: nodes 30-33, probs .1/.2)."""

    node_counts: Sequence[int] = (16, 17, 18, 19)
    edge_probs: Sequence[float] = (0.1, 0.2)
    layers_grid: Sequence[int] = (2, 3)
    rhobeg_grid: Sequence[float] = (0.2, 0.4)
    rng: RngLike = 0
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)


def paper_scale_table1_config(**overrides) -> Table1Config:
    """The published Table 1 tier — requires ≥ 2^30 amplitude simulation
    (hours + ≥ 17 GiB); only meaningful with ample hardware."""
    params = dict(
        node_counts=(30, 31, 32, 33),
        edge_probs=(0.1, 0.2),
        layers_grid=(3, 4, 5, 6, 7, 8),
        rhobeg_grid=(0.1, 0.2, 0.3, 0.4, 0.5),
    )
    params.update(overrides)
    return Table1Config(**params)


@dataclass
class Table1Result:
    grid: GridSearchResult
    config: Table1Config

    def proportions(
        self, mode: str = "strict"
    ) -> Dict[Tuple[int, bool, float], float]:
        """{(n, weighted, edge_prob): proportion} for the requested block."""
        out: Dict[Tuple[int, bool, float], float] = {}
        for n in self.config.node_counts:
            for weighted in (True, False):
                for p in self.config.edge_probs:
                    hits = [
                        rec
                        for rec in self.grid.records
                        if rec.n_nodes == n
                        and rec.weighted == weighted
                        and rec.edge_probability == p
                    ]
                    if not hits:
                        continue
                    if mode == "strict":
                        wins = [rec.qaoa_cut > rec.gw_cut for rec in hits]
                    else:
                        wins = [
                            0.95 * rec.gw_cut <= rec.qaoa_cut < rec.gw_cut
                            for rec in hits
                        ]
                    out[(n, weighted, p)] = float(np.mean(wins))
        return out

    def format_table(self) -> str:
        from repro.experiments.report import fmt_proportion

        lines: List[str] = []
        probs = list(self.config.edge_probs)
        header = f"{'Nodes':>6} {'Weighted':>9}" + "".join(
            f"{p:>8}" for p in probs
        )
        for mode, label in (
            ("strict", "QAOA strictly better than GW"),
            ("band95", "QAOA within [95,100)% of GW"),
        ):
            props = self.proportions(mode)
            lines.append(f"Table 1 block: {label}")
            lines.append(header)
            for n in self.config.node_counts:
                for weighted in (True, False):
                    row = f"{n:>6} {'yes' if weighted else 'no':>9}"
                    for p in probs:
                        row += f"{fmt_proportion(props.get((n, weighted, p))):>8}"
                    lines.append(row)
            lines.append("")
        return "\n".join(lines)


def run_table1(config: Optional[Table1Config] = None) -> Table1Result:
    config = config or Table1Config()
    grid_config = GridSearchConfig(
        node_counts=config.node_counts,
        edge_probs=config.edge_probs,
        layers_grid=config.layers_grid,
        rhobeg_grid=config.rhobeg_grid,
        rng=config.rng,
        executor=config.executor,
    )
    return Table1Result(run_grid_search(grid_config), config)


__all__ = [
    "Table1Config",
    "Table1Result",
    "paper_scale_table1_config",
    "run_table1",
]
