"""Figs. 1-2 workflow experiments: heterogeneous-job idle-time reduction and
coordinator/worker distribution overhead.

Fig. 1 is a scheduling claim — submitting the hybrid jobs as heterogeneous
components lets a second job use the quantum device before the first job
finishes, eliminating QPU hold-idle time.  Fig. 2's scheme is the
coordinator rank distributing QAOA² sub-graphs to workers; the paper reports
the coordination overhead "is minimal and overall an almost ideal scaling is
achieved".  Both are measured here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.generators import erdos_renyi
from repro.hpc.coordinator import CoordinatorResult, run_coordinated_qaoa2
from repro.hpc.slurm import Cluster, SlurmSimulator, hybrid_workflow_jobs
from repro.util.rng import RngLike


# ---------------------------------------------------------------------------
# Fig. 1 — heterogeneous jobs vs monolithic allocation
# ---------------------------------------------------------------------------
@dataclass
class HetJobExperimentResult:
    """Metrics per scheduling mode (the Fig. 1 comparison)."""

    metrics: Dict[str, Dict[str, float]]
    gantts: Dict[str, str]

    @property
    def qpu_idle_reduction(self) -> float:
        """Absolute QPU hold-idle time saved by heterogeneous jobs."""
        return (
            self.metrics["monolithic"]["qpu_idle_while_allocated"]
            - self.metrics["heterogeneous"]["qpu_idle_while_allocated"]
        )

    @property
    def makespan_speedup(self) -> float:
        het = self.metrics["heterogeneous"]["makespan"]
        if het <= 0:
            return 1.0
        return self.metrics["monolithic"]["makespan"] / het

    def format_report(self) -> str:
        from repro.experiments.report import format_kv_block

        blocks = []
        for mode, values in self.metrics.items():
            blocks.append(format_kv_block(f"[{mode}]", values))
            blocks.append(self.gantts[mode])
        blocks.append(
            format_kv_block(
                "[summary]",
                {
                    "qpu_idle_reduction": self.qpu_idle_reduction,
                    "makespan_speedup": self.makespan_speedup,
                },
            )
        )
        return "\n\n".join(blocks)


def run_hetjob_experiment(
    *,
    n_jobs: int = 2,
    classical_pre: float = 4.0,
    quantum: float = 1.0,
    classical_post: float = 2.0,
    cpus: int = 4,
    qpus: int = 1,
    backfill: bool = True,
) -> HetJobExperimentResult:
    """Schedule the Fig. 1 workload under both submission modes."""
    metrics: Dict[str, Dict[str, float]] = {}
    gantts: Dict[str, str] = {}
    for mode in ("monolithic", "heterogeneous"):
        cluster = Cluster({"cpu": cpus, "qpu": qpus})
        sim = SlurmSimulator(cluster, mode=mode, backfill=backfill)
        for job in hybrid_workflow_jobs(
            n_jobs,
            classical_pre=classical_pre,
            quantum=quantum,
            classical_post=classical_post,
        ):
            sim.submit(job)
        schedule = sim.run()
        metrics[mode] = {
            "makespan": schedule.makespan,
            "qpu_idle_while_allocated": schedule.idle_while_allocated("qpu"),
            "qpu_utilization": schedule.utilization("qpu"),
            "cpu_utilization": schedule.utilization("cpu"),
            "mean_turnaround": float(
                np.mean(list(schedule.job_turnaround().values()))
            ),
        }
        gantts[mode] = schedule.gantt(width=60)
    return HetJobExperimentResult(metrics, gantts)


# ---------------------------------------------------------------------------
# Fig. 2 — coordinator/worker scaling
# ---------------------------------------------------------------------------
@dataclass
class CoordinatorScalingResult:
    worker_counts: List[int]
    results: List[CoordinatorResult]

    def speedups(self) -> List[float]:
        return [r.speedup for r in self.results]

    def efficiencies(self) -> List[float]:
        return [r.efficiency for r in self.results]

    def overheads(self) -> List[float]:
        return [r.coordination_overhead for r in self.results]

    def format_table(self) -> str:
        from repro.experiments.report import format_series_table

        return format_series_table(
            "workers",
            self.worker_counts,
            {
                "cut": [r.cut for r in self.results],
                "wall_s": [r.wall_time for r in self.results],
                "speedup": self.speedups(),
                "efficiency": self.efficiencies(),
                "overhead": self.overheads(),
            },
            title="Fig2 coordinator/worker scaling",
        )


def run_coordinator_scaling(
    graph: Optional[Graph] = None,
    *,
    worker_counts: Sequence[int] = (1, 2, 4),
    n_nodes: int = 60,
    edge_prob: float = 0.1,
    n_max_qubits: int = 10,
    method: str = "qaoa",
    qaoa_options: Optional[dict] = None,
    rng: RngLike = 0,
) -> CoordinatorScalingResult:
    """Run the coordinator scheme at several worker counts on one graph."""
    if graph is None:
        graph = erdos_renyi(n_nodes, edge_prob, rng=rng)
    results = []
    for workers in worker_counts:
        results.append(
            run_coordinated_qaoa2(
                graph,
                n_workers=int(workers),
                n_max_qubits=n_max_qubits,
                method=method,
                qaoa_options=qaoa_options or {"layers": 3, "maxiter": 40},
                rng=rng,
            )
        )
    return CoordinatorScalingResult(list(worker_counts), results)


__all__ = [
    "HetJobExperimentResult",
    "run_hetjob_experiment",
    "CoordinatorScalingResult",
    "run_coordinator_scaling",
]
