"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the experiment drivers so the paper's
workflow can be driven from a shell (or a SLURM batch script) without
writing Python:

* ``solve``         — solve one instance (qaoa | gw | qaoa2 | anneal | exact)
* ``gridsearch``    — the Fig. 3 sweep, printing the three proportion panels
* ``scaling``       — the Fig. 4 QAOA² method-mix experiment
* ``hetjobs``       — the Fig. 1 workload-manager comparison
* ``coordinator``   — the Fig. 2 coordinator/worker scaling run
* ``service-stats`` — run a Zipf request stream through MaxCutService and
  print its counters / latency histograms / cache report (``--json`` for
  machine-readable output, ``--trace`` for the per-stage span breakdown)
* ``trace``         — run a traced Zipf stream and pretty-print the last
  N request span trees (vocabulary in docs/observability.md)
* ``serve``         — drive the same stream through the async sharded
  front end (AsyncMaxCutServer): concurrent clients, in-flight
  coalescing, per-shard queues; prints the merged shard report.  With
  ``--http HOST:PORT`` it instead exposes the server over real HTTP
  (JSON protocol, see docs/http-api.md) until SIGINT/SIGTERM
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.graphs.generators import erdos_renyi
from repro.graphs.io import read_edgelist


def _load_graph(args: argparse.Namespace):
    if args.graph_file:
        return read_edgelist(args.graph_file)
    return erdos_renyi(
        args.nodes, args.edge_prob, weighted=args.weighted, rng=args.seed
    )


def _add_instance_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=40, help="ER node count")
    parser.add_argument("--edge-prob", type=float, default=0.1, help="ER edge probability")
    parser.add_argument("--weighted", action="store_true", help="U[0,1] edge weights")
    parser.add_argument("--graph-file", type=str, default=None,
                        help="read instance from an edge-list file instead")
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")


def _backend_choices() -> tuple:
    from repro.quantum.backend import available_backends

    return ("auto", *available_backends())


def cmd_solve(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    print(f"instance: {graph}")
    if args.method == "qaoa":
        from repro.qaoa import QAOASolver

        result = QAOASolver(
            layers=args.layers, rhobeg=args.rhobeg, selection=args.selection,
            backend=args.backend, rng=args.seed,
        ).solve(graph)
        print(f"QAOA cut = {result.cut:.4f}  (F_p = {result.energy:.4f}, "
              f"{result.nfev} evaluations, "
              f"backend {result.extra.get('backend', '?')})")
    elif args.method == "gw":
        from repro.classical import goemans_williamson

        gw = goemans_williamson(graph, rng=args.seed)
        print(f"GW best = {gw.best_cut:.4f}, 30-slice average = "
              f"{gw.average_cut:.4f}, SDP bound = {gw.sdp_objective:.4f}")
    elif args.method == "qaoa2":
        from repro.qaoa2 import QAOA2Solver

        result = QAOA2Solver(
            n_max_qubits=args.qubits,
            subgraph_method=args.subgraph_method,
            qaoa_options={"layers": args.layers, "rhobeg": args.rhobeg,
                          "backend": args.backend},
            rng=args.seed,
        ).solve(graph)
        print(f"QAOA² cut = {result.cut:.4f}  ({result.n_subproblems} "
              f"sub-problems, methods {result.method_counts()})")
    elif args.method == "anneal":
        from repro.classical import SimulatedAnnealerSampler

        result = SimulatedAnnealerSampler().sample_maxcut(
            graph, num_reads=10, rng=args.seed
        )
        print(f"annealer (QUBO) cut = {result.cut:.4f}")
    elif args.method == "exact":
        from repro.graphs import exact_maxcut

        result = exact_maxcut(graph)
        print(f"exact cut = {result.cut:.4f} ({result.method})")
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.method)
    return 0


def cmd_gridsearch(args: argparse.Namespace) -> int:
    from repro.experiments import GridSearchConfig, run_grid_search
    from repro.hpc.executor import ExecutorConfig

    config = GridSearchConfig(
        node_counts=tuple(args.node_counts),
        edge_probs=tuple(args.edge_probs),
        layers_grid=tuple(args.layers_grid),
        rhobeg_grid=tuple(args.rhobeg_grid),
        executor=ExecutorConfig(backend=args.backend),
        rng=args.seed,
    )
    result = run_grid_search(config)
    print(result.format_fig3())
    rho, layers = result.best_gridpoint()
    print(f"\nmost successful grid point: rhobeg={rho}, p={layers}")
    if args.save_kb:
        result.to_knowledge_base().save(args.save_kb)
        print(f"knowledge base written to {args.save_kb}")
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    from repro.experiments import ScalingConfig, run_scaling_experiment
    from repro.hpc.executor import ExecutorConfig

    service = None
    if args.use_service:
        from repro.service import MaxCutService

        service = MaxCutService(seed=args.seed)
    config = ScalingConfig(
        node_counts=tuple(args.node_counts),
        edge_prob=args.edge_prob,
        n_max_qubits=args.qubits,
        qaoa_options={"layers": args.layers, "maxiter": args.maxiter,
                      "backend": args.sv_backend},
        gw_fail_above=args.gw_fail_above,
        executor=ExecutorConfig(backend=args.backend),
        service=service,
        rng=args.seed,
    )
    result = run_scaling_experiment(config)
    print(result.format_table())
    if service is not None:
        print()
        print(service.stats_report())
    return 0


def cmd_service_stats(args: argparse.Namespace) -> int:
    import json

    from repro.service import MaxCutService, zipf_requests

    service = MaxCutService(
        seed=args.seed, disk_dir=args.disk_dir, tracing=args.trace
    )
    requests = zipf_requests(
        n_requests=args.requests,
        universe=args.universe,
        n_nodes=args.nodes,
        edge_prob=args.edge_prob,
        zipf_exponent=args.zipf,
        options={"layers": args.layers, "maxiter": args.maxiter,
                 "backend": args.backend},
        rng=args.seed,
    )
    results = service.solve_many(requests)
    if args.json:
        payload = {
            "requests": len(results),
            "universe": args.universe,
            "zipf": args.zipf,
            "metrics": service.metrics.json_snapshot(),
        }
        if service.traces is not None:
            payload["trace_stages"] = service.traces.stage_summary()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"served {len(results)} requests over {args.universe} distinct "
        f"graphs (zipf s={args.zipf})"
    )
    if args.compact:
        if args.disk_dir is None:
            print("--compact ignored: no --disk-dir tier configured")
        else:
            stats = service.cache.compact()
            print(
                f"compacted disk tier: {stats['entries']} entries, merged "
                f"{stats['merged_files']} per-entry files into "
                f"{stats['data_bytes']} data bytes"
            )
    print()
    print(service.stats_report())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.service import MaxCutService, zipf_requests
    from repro.service.trace import TraceRecorder

    recorder = TraceRecorder(
        jsonl_path=args.jsonl,
        slow_threshold_s=(
            None if args.slow_ms is None else args.slow_ms / 1e3
        ),
    )
    service = MaxCutService(seed=args.seed, traces=recorder)
    requests = zipf_requests(
        n_requests=args.requests,
        universe=args.universe,
        n_nodes=args.nodes,
        edge_prob=args.edge_prob,
        zipf_exponent=args.zipf,
        options={"layers": args.layers, "maxiter": args.maxiter,
                 "backend": args.backend},
        rng=args.seed,
    )
    service.solve_many(requests)
    for trace in recorder.last(args.last):
        print(trace.format_tree())
        print()
    print(recorder.format_stage_table())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    if args.http is not None:
        from repro.service import serve_http

        host, _, port_text = args.http.rpartition(":")
        if not host or not port_text.isdigit():
            print(f"--http expects HOST:PORT, got {args.http!r}", file=sys.stderr)
            return 2
        serve_http(
            host,
            int(port_text),
            http_options={"tracing": True} if args.trace else None,
            n_shards=args.shards,
            seed=args.seed,
            queue_depth=args.queue_depth,
            admission=args.admission,
            max_batch=args.max_batch,
            disk_dir=args.disk_dir,
            cache_cost_floor=args.cache_cost_floor,
            compact_every=args.compact_every,
        )
        return 0

    from repro.service import serve_requests, zipf_requests

    requests = zipf_requests(
        n_requests=args.requests,
        universe=args.universe,
        n_nodes=args.nodes,
        edge_prob=args.edge_prob,
        zipf_exponent=args.zipf,
        options={"layers": args.layers, "maxiter": args.maxiter,
                 "backend": args.backend},
        rng=args.seed,
    )
    server, results = serve_requests(
        requests,
        clients=args.clients,
        n_shards=args.shards,
        seed=args.seed,
        queue_depth=args.queue_depth,
        admission=args.admission,
        max_batch=args.max_batch,
        disk_dir=args.disk_dir,
        cache_cost_floor=args.cache_cost_floor,
        compact_every=args.compact_every,
    )
    solved = sum(1 for res in results if not res.failed)
    print(
        f"served {solved}/{len(results)} requests over {args.universe} "
        f"distinct graphs with {args.clients} concurrent clients on "
        f"{args.shards} shard(s)"
    )
    print()
    print(server.stats_report())
    return 0


def cmd_hetjobs(args: argparse.Namespace) -> int:
    from repro.experiments import run_hetjob_experiment

    result = run_hetjob_experiment(
        n_jobs=args.jobs,
        classical_pre=args.classical_pre,
        quantum=args.quantum,
        classical_post=args.classical_post,
        cpus=args.cpus,
        qpus=args.qpus,
    )
    print(result.format_report())
    return 0


def cmd_coordinator(args: argparse.Namespace) -> int:
    from repro.experiments import run_coordinator_scaling

    result = run_coordinator_scaling(
        worker_counts=tuple(args.workers),
        n_nodes=args.nodes,
        edge_prob=args.edge_prob,
        n_max_qubits=args.qubits,
        method=args.subgraph_method,
        qaoa_options={"layers": args.layers, "maxiter": args.maxiter},
        rng=args.seed,
    )
    print(result.format_table())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QAOA-in-QAOA MaxCut reproduction (Esposito & Danzig, 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve one MaxCut instance")
    _add_instance_args(p_solve)
    p_solve.add_argument("--method", choices=("qaoa", "gw", "qaoa2", "anneal", "exact"),
                         default="qaoa2")
    p_solve.add_argument("--qubits", type=int, default=10, help="QAOA² qubit budget")
    p_solve.add_argument("--layers", type=int, default=3)
    p_solve.add_argument("--rhobeg", type=float, default=0.5)
    p_solve.add_argument("--selection", choices=("top1", "topk", "sampled"),
                         default="top1")
    p_solve.add_argument("--subgraph-method", choices=("qaoa", "gw", "best"),
                         default="best")
    p_solve.add_argument("--backend", choices=_backend_choices(), default="auto",
                         help="statevector evolution backend for QAOA solves")
    p_solve.set_defaults(func=cmd_solve)

    p_grid = sub.add_parser("gridsearch", help="the Fig. 3 sweep")
    p_grid.add_argument("--node-counts", type=int, nargs="+", default=[8, 10, 12])
    p_grid.add_argument("--edge-probs", type=float, nargs="+", default=[0.1, 0.3, 0.5])
    p_grid.add_argument("--layers-grid", type=int, nargs="+", default=[2, 3])
    p_grid.add_argument("--rhobeg-grid", type=float, nargs="+", default=[0.3, 0.5])
    p_grid.add_argument("--backend", choices=("serial", "thread", "process"),
                        default="thread")
    p_grid.add_argument("--save-kb", type=str, default=None,
                        help="write the knowledge base JSON here")
    p_grid.add_argument("--seed", type=int, default=0)
    p_grid.set_defaults(func=cmd_gridsearch)

    p_scale = sub.add_parser("scaling", help="the Fig. 4 experiment")
    p_scale.add_argument("--node-counts", type=int, nargs="+", default=[60, 120, 180])
    p_scale.add_argument("--edge-prob", type=float, default=0.1)
    p_scale.add_argument("--qubits", type=int, default=10)
    p_scale.add_argument("--layers", type=int, default=3)
    p_scale.add_argument("--maxiter", type=int, default=40)
    p_scale.add_argument("--gw-fail-above", type=int, default=None)
    p_scale.add_argument("--backend", choices=("serial", "thread", "process"),
                         default="thread")
    p_scale.add_argument("--use-service", action="store_true",
                         help="route leaf solves through a shared MaxCutService "
                              "(cache + coalescing) and print its stats")
    p_scale.add_argument("--sv-backend", choices=_backend_choices(),
                         default="auto",
                         help="statevector evolution backend for QAOA leaf "
                              "solves (--backend is the executor backend)")
    p_scale.add_argument("--seed", type=int, default=0)
    p_scale.set_defaults(func=cmd_scaling)

    p_stats = sub.add_parser(
        "service-stats",
        help="run a Zipf request stream through MaxCutService, print stats",
    )
    p_stats.add_argument("--requests", type=int, default=60)
    p_stats.add_argument("--universe", type=int, default=6,
                         help="number of distinct graphs in the stream")
    p_stats.add_argument("--nodes", type=int, default=12)
    p_stats.add_argument("--edge-prob", type=float, default=0.3)
    p_stats.add_argument("--zipf", type=float, default=1.1,
                         help="Zipf exponent of the request popularity")
    p_stats.add_argument("--layers", type=int, default=2)
    p_stats.add_argument("--maxiter", type=int, default=30)
    p_stats.add_argument("--disk-dir", type=str, default=None,
                         help="enable the JSON disk cache tier here")
    p_stats.add_argument("--compact", action="store_true",
                         help="compact the disk tier (merge per-entry JSON "
                              "files into one indexed store) after the stream")
    p_stats.add_argument("--backend", choices=_backend_choices(), default="auto",
                         help="statevector evolution backend for QAOA solves")
    p_stats.add_argument("--seed", type=int, default=0)
    p_stats.add_argument("--json", action="store_true",
                         help="print a machine-readable JSON snapshot "
                              "instead of the text report")
    p_stats.add_argument("--trace", action="store_true",
                         help="trace every request and include the "
                              "per-stage span breakdown in the report")
    p_stats.set_defaults(func=cmd_service_stats)

    p_trace = sub.add_parser(
        "trace",
        help="run a traced Zipf stream and pretty-print the last N "
             "request span trees",
    )
    p_trace.add_argument("--last", type=int, default=3,
                         help="number of most recent span trees to print")
    p_trace.add_argument("--requests", type=int, default=12)
    p_trace.add_argument("--universe", type=int, default=4,
                         help="number of distinct graphs in the stream")
    p_trace.add_argument("--nodes", type=int, default=12)
    p_trace.add_argument("--edge-prob", type=float, default=0.3)
    p_trace.add_argument("--zipf", type=float, default=1.1,
                         help="Zipf exponent of the request popularity")
    p_trace.add_argument("--layers", type=int, default=2)
    p_trace.add_argument("--maxiter", type=int, default=30)
    p_trace.add_argument("--jsonl", type=str, default=None,
                         help="append finished traces to this JSONL file")
    p_trace.add_argument("--slow-ms", type=float, default=None,
                         help="log span trees of requests slower than "
                              "this many milliseconds")
    p_trace.add_argument("--backend", choices=_backend_choices(), default="auto",
                         help="statevector evolution backend for QAOA solves")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.set_defaults(func=cmd_trace)

    p_serve = sub.add_parser(
        "serve",
        help="drive a Zipf stream through the async sharded server "
             "(concurrent clients + in-flight coalescing), print stats",
    )
    p_serve.add_argument("--http", metavar="HOST:PORT", default=None,
                         help="serve real HTTP on this address until "
                              "SIGINT/SIGTERM (port 0 picks a free port; "
                              "JSON protocol in docs/http-api.md) instead "
                              "of driving the in-process Zipf stream")
    p_serve.add_argument("--requests", type=int, default=60)
    p_serve.add_argument("--universe", type=int, default=6,
                         help="number of distinct graphs in the stream")
    p_serve.add_argument("--nodes", type=int, default=12)
    p_serve.add_argument("--edge-prob", type=float, default=0.3)
    p_serve.add_argument("--zipf", type=float, default=1.1,
                         help="Zipf exponent of the request popularity")
    p_serve.add_argument("--layers", type=int, default=2)
    p_serve.add_argument("--maxiter", type=int, default=30)
    p_serve.add_argument("--clients", type=int, default=4,
                         help="concurrent client tasks")
    p_serve.add_argument("--shards", type=int, default=2,
                         help="fingerprint-prefix shards (one worker each)")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         help="bounded per-shard admission queue")
    p_serve.add_argument("--admission", choices=("reject", "shed"),
                         default="reject",
                         help="full-queue policy: refuse new, or shed oldest")
    p_serve.add_argument("--max-batch", type=int, default=16,
                         help="micro-batch size per shard worker dispatch")
    p_serve.add_argument("--disk-dir", type=str, default=None,
                         help="enable per-shard JSON disk cache tiers here")
    p_serve.add_argument("--cache-cost-floor", type=float, default=None,
                         help="only cache solves costlier than this many "
                              "seconds (omit: cache everything)")
    p_serve.add_argument("--compact-every", type=int, default=None,
                         help="threshold-compact each shard's disk tier "
                              "after this many loose writes")
    p_serve.add_argument("--backend", choices=_backend_choices(), default="auto",
                         help="statevector evolution backend for QAOA solves")
    p_serve.add_argument("--trace", action="store_true",
                         help="with --http: trace each request "
                              "(X-Repro-Trace header, GET /trace/<id>)")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.set_defaults(func=cmd_serve)

    p_het = sub.add_parser("hetjobs", help="the Fig. 1 scheduling comparison")
    p_het.add_argument("--jobs", type=int, default=3)
    p_het.add_argument("--classical-pre", type=float, default=4.0)
    p_het.add_argument("--quantum", type=float, default=1.0)
    p_het.add_argument("--classical-post", type=float, default=2.0)
    p_het.add_argument("--cpus", type=int, default=4)
    p_het.add_argument("--qpus", type=int, default=1)
    p_het.set_defaults(func=cmd_hetjobs)

    p_coord = sub.add_parser("coordinator", help="the Fig. 2 scaling run")
    p_coord.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    p_coord.add_argument("--nodes", type=int, default=60)
    p_coord.add_argument("--edge-prob", type=float, default=0.1)
    p_coord.add_argument("--qubits", type=int, default=10)
    p_coord.add_argument("--layers", type=int, default=3)
    p_coord.add_argument("--maxiter", type=int, default=40)
    p_coord.add_argument("--subgraph-method", choices=("qaoa", "gw", "best"),
                         default="qaoa")
    p_coord.add_argument("--seed", type=int, default=0)
    p_coord.set_defaults(func=cmd_coordinator)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
