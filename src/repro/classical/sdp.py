"""Semidefinite-programming solvers for the MaxCut relaxation.

The GW algorithm (paper §3.4) needs the solution of

    max  Σ_{(i,j)∈E} w_ij (1 − X_ij) / 2
    s.t. X_ii = 1,  X ⪰ 0.

The paper used cvxpy+SCS; we implement two independent solvers from scratch:

* :func:`solve_sdp_mixing` — low-rank Burer–Monteiro factorisation
  ``X = VᵀV`` with unit-norm columns, optimised by the *mixing method*
  coordinate descent (Wang & Kolter, 2017): v_i ← −g_i/‖g_i‖ with
  g_i = Σ_j w_ij v_j.  For rank k > √(2n) all second-order critical points
  are global optima, so this converges to the SDP optimum in practice and
  runs in O(m·k) per sweep — this is the default and scales to the
  Fig. 4 graph sizes easily.
* :func:`solve_sdp_admm` — dense operator-splitting solver on the full
  matrix variable (projection onto {diag=1} and PSD cones), O(n³) per
  iteration.  Used as an independent reference in the tests.

Both return a factor ``V`` (k×n, unit columns) ready for hyperplane
rounding, plus the relaxation objective (an upper bound on the true
MaxCut).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.util.rng import RngLike, ensure_rng


@dataclass
class SDPResult:
    """Factorised SDP solution.

    Attributes
    ----------
    vectors:
        (k, n) array; column i is the unit vector of node i.
    objective:
        Relaxation value Σ w (1 − v_i·v_j) / 2  (≥ true MaxCut).
    iterations:
        Solver sweeps/iterations used.
    converged:
        Whether the tolerance was met within the iteration budget.
    """

    vectors: np.ndarray
    objective: float
    iterations: int
    converged: bool
    method: str = "mixing"

    @property
    def gram(self) -> np.ndarray:
        """The implied PSD matrix X = VᵀV (unit diagonal by construction)."""
        return self.vectors.T @ self.vectors


def _sdp_objective(graph: Graph, vectors: np.ndarray) -> float:
    dots = np.einsum("ki,ki->i", vectors[:, graph.u], vectors[:, graph.v])
    return float(0.5 * np.sum(graph.w * (1.0 - dots)))


def solve_sdp_mixing(
    graph: Graph,
    *,
    rank: Optional[int] = None,
    max_sweeps: int = 500,
    tol: float = 1e-7,
    rng: RngLike = None,
) -> SDPResult:
    """Mixing-method coordinate descent on the Burer–Monteiro factorisation.

    Minimises Σ w_ij v_i·v_j over unit vectors; each node update is the
    exact coordinate minimiser v_i = −g_i/‖g_i‖.  Objective is monotone
    non-increasing, giving a clean convergence criterion.
    """
    n = graph.n_nodes
    gen = ensure_rng(rng)
    if n == 0:
        return SDPResult(np.zeros((1, 0)), 0.0, 0, True)
    k = rank if rank is not None else int(np.ceil(np.sqrt(2.0 * n))) + 1
    k = max(k, 2)
    vectors = gen.standard_normal((k, n))
    vectors /= np.linalg.norm(vectors, axis=0, keepdims=True)
    if graph.n_edges == 0:
        return SDPResult(vectors, 0.0, 0, True)

    indptr, indices, weights = graph.neighbors()
    prev_obj = _sdp_objective(graph, vectors)
    sweeps = 0
    converged = False
    for sweeps in range(1, max_sweeps + 1):
        for i in range(n):
            start, stop = indptr[i], indptr[i + 1]
            if start == stop:
                continue
            nbr = indices[start:stop]
            g = vectors[:, nbr] @ weights[start:stop]
            norm = np.linalg.norm(g)
            if norm > 1e-14:
                vectors[:, i] = -g / norm
        obj = _sdp_objective(graph, vectors)
        if abs(obj - prev_obj) <= tol * max(1.0, abs(obj)):
            converged = True
            prev_obj = obj
            break
        prev_obj = obj
    return SDPResult(vectors, prev_obj, sweeps, converged, "mixing")


def solve_sdp_admm(
    graph: Graph,
    *,
    rho: float = 1.0,
    max_iter: int = 500,
    tol: float = 1e-6,
) -> SDPResult:
    """Dense ADMM reference solver.

    Splitting: minimise ⟨C, X⟩ over {diag(X)=1} ∩ {X ⪰ 0} with C = W/2
    (so that the cut objective Σ w(1−X_ij)/2 = W_tot/2 − ⟨C, X⟩ is
    maximised).  X-update projects onto the diagonal constraint,
    Z-update onto the PSD cone via eigendecomposition.
    """
    n = graph.n_nodes
    if n == 0:
        return SDPResult(np.zeros((1, 0)), 0.0, 0, True, "admm")
    C = graph.adjacency() / 2.0
    X = np.eye(n)
    Z = np.eye(n)
    U = np.zeros((n, n))
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        X = Z - U - C / rho
        np.fill_diagonal(X, 1.0)
        vals, vecs = np.linalg.eigh(X + U)
        vals = np.clip(vals, 0.0, None)
        Z_new = (vecs * vals) @ vecs.T
        primal = np.linalg.norm(X - Z_new)
        dual = rho * np.linalg.norm(Z_new - Z)
        Z = Z_new
        U = U + X - Z
        if primal <= tol * n and dual <= tol * n:
            converged = True
            break
    # Factorise the PSD iterate and renormalise columns to unit length.
    vals, vecs = np.linalg.eigh(Z)
    vals = np.clip(vals, 0.0, None)
    order = np.argsort(-vals)
    keep = order[: max(1, int(np.sum(vals > 1e-10)))]
    V = (vecs[:, keep] * np.sqrt(vals[keep])).T  # (k, n)
    norms = np.linalg.norm(V, axis=0)
    norms[norms < 1e-12] = 1.0
    V = V / norms
    return SDPResult(V, _sdp_objective(graph, V), it, converged, "admm")


def solve_sdp(graph: Graph, *, method: str = "mixing", **kwargs) -> SDPResult:
    """Dispatch: ``mixing`` (default, scalable) or ``admm`` (dense reference)."""
    if method == "mixing":
        return solve_sdp_mixing(graph, **kwargs)
    if method == "admm":
        return solve_sdp_admm(graph, **kwargs)
    raise ValueError(f"unknown SDP method {method!r}")


__all__ = ["SDPResult", "solve_sdp", "solve_sdp_mixing", "solve_sdp_admm"]
