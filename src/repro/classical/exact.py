"""Exact MaxCut solvers, re-exported from the graph substrate.

The paper's related work notes exact methods remain limited in node count
versus GW; these serve as ground truth for tests and small benchmarks.
"""

from repro.graphs.maxcut import (
    exact_maxcut,
    exact_maxcut_branch_and_bound,
    exact_maxcut_bruteforce,
)

__all__ = [
    "exact_maxcut",
    "exact_maxcut_bruteforce",
    "exact_maxcut_branch_and_bound",
]
