"""Classical MaxCut solvers: Goemans-Williamson (with from-scratch SDP
solvers), simulated annealing, exact baselines."""

from repro.classical.exact import (
    exact_maxcut,
    exact_maxcut_branch_and_bound,
    exact_maxcut_bruteforce,
)
from repro.classical.gw import (
    DEFAULT_SLICES,
    GW_APPROX_RATIO,
    GWAbnormalTermination,
    GWResult,
    goemans_williamson,
    hyperplane_rounding,
    solve_maxcut_gw,
)
from repro.classical.local_search import simulated_annealing
from repro.classical.qubo import (
    QUBO,
    AnnealSample,
    SampleSet,
    SimulatedAnnealerSampler,
)
from repro.classical.sdp import SDPResult, solve_sdp, solve_sdp_admm, solve_sdp_mixing

__all__ = [
    "GW_APPROX_RATIO",
    "DEFAULT_SLICES",
    "GWAbnormalTermination",
    "GWResult",
    "goemans_williamson",
    "hyperplane_rounding",
    "solve_maxcut_gw",
    "simulated_annealing",
    "SDPResult",
    "solve_sdp",
    "solve_sdp_mixing",
    "solve_sdp_admm",
    "exact_maxcut",
    "exact_maxcut_bruteforce",
    "exact_maxcut_branch_and_bound",
    "QUBO",
    "AnnealSample",
    "SampleSet",
    "SimulatedAnnealerSampler",
]
