"""Simulated annealing for MaxCut (related-work baseline, paper ref. [39]).

Single-spin-flip Metropolis dynamics with geometric cooling.  Flip gains
are maintained incrementally so a full anneal is O(steps · avg_degree).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import CutResult, as_binary, cut_value
from repro.util.rng import RngLike, ensure_rng


def simulated_annealing(
    graph: Graph,
    *,
    n_steps: int = 20_000,
    t_start: float = 2.0,
    t_end: float = 1e-3,
    assignment: Optional[np.ndarray] = None,
    rng: RngLike = None,
) -> CutResult:
    """Anneal from ``t_start`` to ``t_end`` over ``n_steps`` flip proposals.

    Temperatures are in units of edge weight; the defaults suit the
    O(1)-weight instances used throughout the paper.  Returns the best cut
    encountered (not the final state).
    """
    gen = ensure_rng(rng)
    n = graph.n_nodes
    if n == 0:
        return CutResult(np.zeros(0, dtype=np.uint8), 0.0, "sa")
    x = (
        as_binary(assignment).copy()
        if assignment is not None
        else gen.integers(0, 2, size=n, dtype=np.uint8)
    )
    indptr, indices, weights = graph.neighbors()
    # gain[i] = cut(x with i flipped) - cut(x)
    gain = np.zeros(n)
    for i in range(n):
        nbr = indices[indptr[i] : indptr[i + 1]]
        wn = weights[indptr[i] : indptr[i + 1]]
        same = x[nbr] == x[i]
        gain[i] = wn[same].sum() - wn[~same].sum()
    current = cut_value(graph, x)
    best = current
    best_x = x.copy()
    if n_steps <= 0:
        return CutResult(best_x, best, "sa")
    cooling = (t_end / t_start) ** (1.0 / n_steps)
    temp = t_start
    picks = gen.integers(0, n, size=n_steps)
    coins = gen.random(n_steps)
    for step in range(n_steps):
        i = picks[step]
        delta = gain[i]
        if delta >= 0.0 or coins[step] < np.exp(delta / max(temp, 1e-12)):
            current += delta
            old_side = x[i]
            x[i] ^= 1
            gain[i] = -gain[i]
            nbr = indices[indptr[i] : indptr[i + 1]]
            wn = weights[indptr[i] : indptr[i + 1]]
            # Neighbour j's flip gain changes by ±2 w_ij depending on whether
            # edge (i, j) just became cut or uncut.
            was_cut = x[nbr] != old_side  # before i flipped
            gain[nbr] += np.where(was_cut, 2.0 * wn, -2.0 * wn)
            if current > best:
                best = current
                best_x = x.copy()
        temp *= cooling
    return CutResult(best_x, float(best), "sa", {"final_temperature": temp})


__all__ = ["simulated_annealing"]
