"""Goemans–Williamson MaxCut approximation (paper §3.4).

Pipeline: solve the SDP relaxation, then apply random-hyperplane *slicing*
— exactly as the paper describes, "a slicing to determine the node values is
applied 30 times, and the average value of the cut is taken".  The paper
uses the average for comparisons against (unrepeated) QAOA, and the actual
best slice when a concrete assignment is required (e.g. per sub-graph in
QAOA²); :class:`GWResult` carries both.

An optional ``fail_above_nodes`` knob reproduces the paper's observed
"abnormal termination" of the cvxpy/Eigen stack beyond 2000 nodes for the
Fig. 4 harness (our solvers do not share that failure; see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.classical.sdp import SDPResult, solve_sdp
from repro.graphs.graph import Graph
from repro.graphs.maxcut import CutResult, cut_value
from repro.util.rng import RngLike, ensure_rng

GW_APPROX_RATIO = 0.878  # the classic 0.87856... guarantee (non-negative weights)
DEFAULT_SLICES = 30  # paper §3.4


class GWAbnormalTermination(RuntimeError):
    """Raised by the failure-injection hook mimicking the paper's >2000-node
    cvxpy/Eigen crash (§4)."""


@dataclass
class GWResult:
    """GW outcome: SDP bound, all slice cuts, average and best."""

    best_assignment: np.ndarray
    best_cut: float
    average_cut: float
    sdp_objective: float
    slice_cuts: List[float] = field(default_factory=list)
    sdp: Optional[SDPResult] = None

    @property
    def value_for_comparison(self) -> float:
        """The paper's GW figure of merit: the 30-slice average."""
        return self.average_cut

    def as_cut_result(self) -> CutResult:
        return CutResult(
            self.best_assignment,
            self.best_cut,
            "gw",
            {"average_cut": self.average_cut, "sdp_objective": self.sdp_objective},
        )


def hyperplane_rounding(
    vectors: np.ndarray, rng: RngLike = None
) -> np.ndarray:
    """One GW slice: random hyperplane through the origin -> 0/1 labels."""
    gen = ensure_rng(rng)
    k, n = vectors.shape
    r = gen.standard_normal(k)
    return (r @ vectors < 0.0).astype(np.uint8)


def goemans_williamson(
    graph: Graph,
    *,
    n_slices: int = DEFAULT_SLICES,
    sdp_method: str = "mixing",
    rng: RngLike = None,
    fail_above_nodes: Optional[int] = None,
    **sdp_kwargs,
) -> GWResult:
    """Full GW pipeline on ``graph``.

    Parameters
    ----------
    n_slices:
        Number of random hyperplane roundings (paper: 30).
    sdp_method:
        ``mixing`` (default) or ``admm``.
    fail_above_nodes:
        If set and ``graph.n_nodes`` exceeds it, raise
        :class:`GWAbnormalTermination` — the Fig. 4 failure-injection hook.
    """
    if fail_above_nodes is not None and graph.n_nodes > fail_above_nodes:
        raise GWAbnormalTermination(
            f"GW aborted: {graph.n_nodes} nodes > fail_above_nodes="
            f"{fail_above_nodes} (paper's cvxpy/Eigen triplet failure)"
        )
    gen = ensure_rng(rng)
    if graph.n_nodes == 0:
        empty = np.zeros(0, dtype=np.uint8)
        return GWResult(empty, 0.0, 0.0, 0.0, [])
    sdp = solve_sdp(graph, method=sdp_method, rng=gen, **sdp_kwargs) \
        if sdp_method == "mixing" else solve_sdp(graph, method=sdp_method, **sdp_kwargs)
    best_cut = -np.inf
    best_assignment: Optional[np.ndarray] = None
    cuts: List[float] = []
    for _ in range(max(1, n_slices)):
        labels = hyperplane_rounding(sdp.vectors, rng=gen)
        c = cut_value(graph, labels)
        cuts.append(c)
        if c > best_cut:
            best_cut = c
            best_assignment = labels
    return GWResult(
        best_assignment=best_assignment,
        best_cut=float(best_cut),
        average_cut=float(np.mean(cuts)),
        sdp_objective=sdp.objective,
        slice_cuts=cuts,
        sdp=sdp,
    )


def solve_maxcut_gw(graph: Graph, **kwargs) -> CutResult:
    """Convenience wrapper returning a plain :class:`CutResult` (best slice)."""
    return goemans_williamson(graph, **kwargs).as_cut_result()


__all__ = [
    "GW_APPROX_RATIO",
    "DEFAULT_SLICES",
    "GWAbnormalTermination",
    "GWResult",
    "hyperplane_rounding",
    "goemans_williamson",
    "solve_maxcut_gw",
]
