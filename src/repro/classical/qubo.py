"""QUBO formulation of MaxCut and a simulated-annealer sampler.

The paper's introduction notes MaxCut can be "conversely formulated as a
quadratic unconstrained binary optimization (QUBO) problem and solved with
quantum annealers" [29].  This module provides that alternative path:

* :class:`QUBO` — minimise ``xᵀ Q x`` over binary x, with conversions
  to/from the MaxCut and Ising views (the three formulations are tested to
  be value-identical up to the documented offsets).
* :class:`SimulatedAnnealerSampler` — a D-Wave-style ``sample`` interface
  (num_reads independent anneals, returned best-first) backed by the
  simulated-annealing engine; the closest classical stand-in for annealer
  hardware access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import as_binary, cut_value
from repro.util.rng import RngLike, spawn_rngs


@dataclass
class QUBO:
    """Minimisation-form QUBO: ``E(x) = xᵀ Q x + offset`` with binary x.

    ``Q`` is stored as an upper-triangular dict ``{(i, j): coeff}`` with
    ``i <= j`` (diagonal entries are the linear terms, since x² = x).
    """

    n_vars: int
    coefficients: Dict[Tuple[int, int], float] = field(default_factory=dict)
    offset: float = 0.0

    def __post_init__(self) -> None:
        canon: Dict[Tuple[int, int], float] = {}
        for (i, j), coeff in self.coefficients.items():
            if not (0 <= i < self.n_vars and 0 <= j < self.n_vars):
                raise ValueError(f"index ({i},{j}) out of range")
            key = (min(i, j), max(i, j))
            canon[key] = canon.get(key, 0.0) + float(coeff)
        self.coefficients = canon

    # ------------------------------------------------------------------
    @staticmethod
    def from_maxcut(graph: Graph) -> "QUBO":
        """MaxCut -> QUBO: maximise Σ w (x_i + x_j − 2 x_i x_j) becomes
        minimise Σ w (2 x_i x_j − x_i − x_j); so ``energy(x) = −cut(x)``."""
        coeffs: Dict[Tuple[int, int], float] = {}
        for a, b, w in zip(graph.u.tolist(), graph.v.tolist(), graph.w.tolist(), strict=True):
            coeffs[(a, b)] = coeffs.get((a, b), 0.0) + 2.0 * w
            coeffs[(a, a)] = coeffs.get((a, a), 0.0) - w
            coeffs[(b, b)] = coeffs.get((b, b), 0.0) - w
        return QUBO(graph.n_nodes, coeffs)

    def energy(self, x: np.ndarray) -> float:
        """E(x) for one binary assignment."""
        x = as_binary(np.asarray(x)).astype(np.float64)
        if len(x) != self.n_vars:
            raise ValueError("assignment length mismatch")
        total = self.offset
        for (i, j), coeff in self.coefficients.items():
            total += coeff * x[i] * (x[j] if j != i else 1.0)
        return float(total)

    def to_matrix(self) -> np.ndarray:
        """Dense upper-triangular Q matrix (diagonal = linear terms)."""
        q = np.zeros((self.n_vars, self.n_vars))
        for (i, j), coeff in self.coefficients.items():
            q[i, j] = coeff
        return q

    def to_ising(self) -> Tuple[Dict[int, float], Dict[Tuple[int, int], float], float]:
        """QUBO -> Ising (h, J, offset) via x = (1 − z)/2.

        Returns coefficients of ``E = Σ h_i z_i + Σ J_ij z_i z_j + offset``.
        """
        h: Dict[int, float] = {}
        J: Dict[Tuple[int, int], float] = {}
        offset = self.offset
        for (i, j), coeff in self.coefficients.items():
            if i == j:
                # c x_i = c (1 - z_i)/2
                h[i] = h.get(i, 0.0) - coeff / 2.0
                offset += coeff / 2.0
            else:
                # c x_i x_j = c (1 - z_i)(1 - z_j)/4
                quarter = coeff / 4.0
                J[(i, j)] = J.get((i, j), 0.0) + quarter
                h[i] = h.get(i, 0.0) - quarter
                h[j] = h.get(j, 0.0) - quarter
                offset += quarter
        return h, J, offset


@dataclass
class AnnealSample:
    """One annealer read."""

    assignment: np.ndarray
    energy: float
    num_occurrences: int = 1


@dataclass
class SampleSet:
    """D-Wave-style result container, best-first."""

    samples: List[AnnealSample]

    @property
    def first(self) -> AnnealSample:
        return self.samples[0]

    def lowest_energy(self) -> float:
        return self.first.energy

    def __len__(self) -> int:
        return len(self.samples)


class SimulatedAnnealerSampler:
    """Quantum-annealer stand-in: independent simulated anneals per read.

    The interface mirrors ``dwave.samplers``' minimal surface (``sample``
    with ``num_reads``), so workflow code written against this class would
    port to real annealer access unchanged.
    """

    def __init__(
        self,
        *,
        n_sweeps: int = 2000,
        t_start: float = 2.0,
        t_end: float = 1e-2,
    ) -> None:
        self.n_sweeps = int(n_sweeps)
        self.t_start = float(t_start)
        self.t_end = float(t_end)

    def sample(
        self, qubo: QUBO, *, num_reads: int = 10, rng: RngLike = None
    ) -> SampleSet:
        """Run ``num_reads`` independent anneals; return reads best-first."""
        rngs = spawn_rngs(rng, num_reads)
        samples: List[AnnealSample] = []
        for gen in rngs:
            x = self._anneal(qubo, gen)
            samples.append(AnnealSample(x, qubo.energy(x)))
        samples.sort(key=lambda s: s.energy)
        merged: List[AnnealSample] = []
        for s in samples:
            if merged and np.array_equal(merged[-1].assignment, s.assignment):
                merged[-1].num_occurrences += 1
            else:
                merged.append(s)
        return SampleSet(merged)

    def sample_maxcut(
        self, graph: Graph, *, num_reads: int = 10, rng: RngLike = None
    ):
        """Convenience: MaxCut via the QUBO path; returns a CutResult."""
        from repro.graphs.maxcut import CutResult

        qubo = QUBO.from_maxcut(graph)
        result = self.sample(qubo, num_reads=num_reads, rng=rng)
        best = result.first
        return CutResult(
            best.assignment,
            cut_value(graph, best.assignment),
            "annealer_qubo",
            {"energy": best.energy, "reads": num_reads},
        )

    # ------------------------------------------------------------------
    def _anneal(self, qubo: QUBO, gen: np.random.Generator) -> np.ndarray:
        n = qubo.n_vars
        x = gen.integers(0, 2, size=n, dtype=np.uint8)
        # Precompute neighbour lists for incremental delta evaluation.
        linear = np.zeros(n)
        neighbors: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for (i, j), coeff in qubo.coefficients.items():
            if i == j:
                linear[i] += coeff
            else:
                neighbors[i].append((j, coeff))
                neighbors[j].append((i, coeff))
        if self.n_sweeps <= 0:
            return x
        cooling = (self.t_end / self.t_start) ** (1.0 / self.n_sweeps)
        temp = self.t_start
        for _ in range(self.n_sweeps):
            i = int(gen.integers(n))
            # ΔE of flipping x_i: depends on current value and neighbours.
            cross = sum(coeff * x[j] for j, coeff in neighbors[i])
            delta = (1.0 - 2.0 * x[i]) * (linear[i] + cross)
            if delta <= 0.0 or gen.random() < np.exp(-delta / max(temp, 1e-12)):
                x[i] ^= 1
            temp *= cooling
        return x


__all__ = ["QUBO", "AnnealSample", "SampleSet", "SimulatedAnnealerSampler"]
