"""The project-invariant rules (see ``src/repro/analysis/README.md``).

Each rule encodes a convention some earlier PR established and that has,
until now, only been guarded by reviewer vigilance.  Rules are small AST
checks registered with :func:`repro.analysis.core.register_rule`; new
invariants should follow the same pattern (subclass ``Rule``, register,
add a violating + clean fixture pair under ``tests/analysis_fixtures/``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    AnalysisContext,
    Finding,
    Rule,
    SourceFile,
    register_rule,
)

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted things they import.

    ``import numpy as np``            -> {"np": "numpy"}
    ``from numpy import random``      -> {"random": "numpy.random"}
    ``from time import sleep as zz``  -> {"zz": "time.sleep"}
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def _dotted_name(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve ``np.random.seed``-style attribute chains to a dotted path."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = aliases.get(current.id, current.id)
    parts.append(base)
    return ".".join(reversed(parts))


def _module_in(module: str, packages: Sequence[str]) -> bool:
    return any(module == pkg or module.startswith(pkg + ".") for pkg in packages)


# ----------------------------------------------------------------------
# 1. backend-seam (PR 5)
# ----------------------------------------------------------------------

#: The raw batch-evolution kernels whose only sanctioned import surface is
#: ``repro.quantum.backend`` (callers go through a StatevectorBackend).
KERNEL_NAMES = frozenset(
    {
        "plus_state_batch",
        "apply_rx_layer",
        "apply_phases_batch",
        "walsh_hadamard_batch",
    }
)
KERNEL_SOURCES = (
    "repro.quantum.statevector",
    "repro.quantum.backend",
    "repro.quantum",
)
#: Modules allowed to touch the kernels directly: the defining module, the
#: backend package itself, and the ``repro.quantum`` facade re-export.
SEAM_ALLOWED = ("repro.quantum.backend", "repro.quantum.statevector")


@register_rule
class BackendSeamRule(Rule):
    name = "backend-seam"
    description = (
        "Raw statevector kernels (apply_rx_layer, apply_phases_batch, "
        "walsh_hadamard_batch, plus_state_batch) may be imported only "
        "inside repro.quantum.backend; everyone else goes through a "
        "StatevectorBackend."
    )
    invariant = "PR 5 (pluggable backend layer: the seam is grep-clean)"

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        if file.module == "repro.quantum" or _module_in(file.module, SEAM_ALLOWED):
            return
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ImportFrom) or node.level != 0:
                continue
            if node.module not in KERNEL_SOURCES:
                continue
            for alias in node.names:
                if alias.name == "*" and node.module == "repro.quantum.statevector":
                    yield file.finding(
                        self.name,
                        node.lineno,
                        "star-import of repro.quantum.statevector exposes raw "
                        "kernels outside the backend seam",
                    )
                elif alias.name in KERNEL_NAMES:
                    yield file.finding(
                        self.name,
                        node.lineno,
                        f"kernel '{alias.name}' imported from {node.module}; "
                        "use a StatevectorBackend (resolve_backend) instead",
                    )


# ----------------------------------------------------------------------
# 2. layering (PR 4/5 architecture)
# ----------------------------------------------------------------------

CORE_PACKAGES = ("repro.quantum", "repro.graphs", "repro.classical")
UPPER_PACKAGES = ("repro.service", "repro.hpc", "repro.cli")


@register_rule
class LayeringRule(Rule):
    name = "layering"
    description = (
        "Core packages (repro.quantum, repro.graphs, repro.classical) must "
        "never import the serving/orchestration layers (repro.service, "
        "repro.hpc, repro.cli), directly or transitively; top-level import "
        "cycles between modules are flagged too."
    )
    invariant = "PR 4-6 (service/hpc sit above the numerics, never below)"

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        if not _module_in(file.module, CORE_PACKAGES):
            return
        reported: Set[str] = set()
        for edge in ctx.graph.out_edges(file.module):
            if _module_in(edge.dst, UPPER_PACKAGES):
                yield file.finding(
                    self.name,
                    edge.line,
                    f"core module imports {edge.dst} (upper layer)",
                )
                reported.add(edge.dst)
                continue
            # core -> core (or -> util/optim) is fine directly, but the
            # target may still lead upward transitively:
            reach = ctx.graph.reachable(edge.dst)
            for target in sorted(reach):
                if target in reported:
                    continue
                if _module_in(target, UPPER_PACKAGES):
                    chain = ctx.graph.chain(edge.dst, target) or [edge.dst, target]
                    yield file.finding(
                        self.name,
                        edge.line,
                        "core module transitively reaches "
                        f"{target} via {' -> '.join([file.module, *chain])}",
                    )
                    reported.add(target)

    def check_project(self, ctx: AnalysisContext) -> Iterator[Finding]:
        for component in ctx.graph.cycles():
            anchor = component[0]
            file = ctx.file_for_module(anchor)
            if file is None:
                continue
            yield file.finding(
                self.name,
                1,
                "top-level import cycle: " + " <-> ".join(component),
            )


# ----------------------------------------------------------------------
# 3. async-blocking (PR 6)
# ----------------------------------------------------------------------

#: Dotted call targets that block the event loop.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)
BLOCKING_PREFIXES = ("subprocess.",)
#: Method names that are synchronous I/O / future-joins wherever they
#: appear inside an async body.
BLOCKING_METHODS = frozenset(
    {"result", "read_text", "write_text", "read_bytes", "write_bytes"}
)


@register_rule
class AsyncBlockingRule(Rule):
    name = "async-blocking"
    description = (
        "No blocking calls (time.sleep, subprocess.*, sync file I/O, "
        "Future.result) inside `async def` bodies — shard workers must "
        "hand blocking work to asyncio.to_thread."
    )
    invariant = "PR 6 (the event loop never blocks; solves run in threads)"

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        aliases = _import_aliases(file.tree)
        for node in ast.walk(file.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(file, node, aliases)

    def _check_async_body(
        self,
        file: SourceFile,
        func: ast.AsyncFunctionDef,
        aliases: Dict[str, str],
    ) -> Iterator[Finding]:
        # Walk the async body but stop at nested defs: a nested sync
        # helper is typically shipped to a thread, and a nested async def
        # is visited on its own.
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Call):
                yield from self._check_call(file, func, node, aliases)
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(
        self,
        file: SourceFile,
        func: ast.AsyncFunctionDef,
        node: ast.Call,
        aliases: Dict[str, str],
    ) -> Iterator[Finding]:
        target = _dotted_name(node.func, aliases)
        if target is not None:
            if target in BLOCKING_CALLS or target.startswith(BLOCKING_PREFIXES):
                yield file.finding(
                    self.name,
                    node.lineno,
                    f"blocking call {target}() inside async def "
                    f"'{func.name}' (use asyncio.to_thread / asyncio.sleep)",
                )
                return
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            yield file.finding(
                self.name,
                node.lineno,
                f"sync open() inside async def '{func.name}' "
                "(run file I/O in a thread)",
            )
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in BLOCKING_METHODS
        ):
            yield file.finding(
                self.name,
                node.lineno,
                f".{node.func.attr}() inside async def '{func.name}' looks "
                "like sync I/O or a future join (await it or use to_thread)",
            )


# ----------------------------------------------------------------------
# 4. atomic-section (PR 6)
# ----------------------------------------------------------------------


@register_rule
class AtomicSectionRule(Rule):
    name = "atomic-section"
    description = (
        "Regions between `# repro: begin-atomic` and `# repro: end-atomic` "
        "must contain no await / async-for / async-with: the whole point "
        "of the marker is that no other coroutine can interleave."
    )
    invariant = "PR 6 (submit()'s check-then-enqueue coalescing is await-free)"

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        ranges, _errors = file.atomic_ranges()  # balance errors -> hygiene rule
        if not ranges:
            return
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Await):
                kind = "await"
            elif isinstance(node, ast.AsyncFor):
                kind = "async for"
            elif isinstance(node, ast.AsyncWith):
                kind = "async with"
            else:
                continue
            for begin, end in ranges:
                if begin <= node.lineno <= end:
                    yield file.finding(
                        self.name,
                        node.lineno,
                        f"'{kind}' inside the atomic section opened at line "
                        f"{begin}: other coroutines could interleave here",
                    )
                    break


# ----------------------------------------------------------------------
# 5. rng-discipline (seed-stable reproducibility, all PRs)
# ----------------------------------------------------------------------

#: numpy.random attributes that are fine anywhere (types, not state).
NUMPY_RANDOM_TYPES = frozenset(
    {"Generator", "SeedSequence", "BitGenerator", "PCG64", "SFC64", "Philox"}
)
#: The one module allowed to construct Generators.
RNG_HOME = "repro.util.rng"
#: Stdlib ``random`` functions that mutate/read hidden global state.
STDLIB_RANDOM_BANNED_PREFIX = "random."


@register_rule
class RngDisciplineRule(Rule):
    name = "rng-discipline"
    description = (
        "No global-state RNG: numpy.random.* legacy calls (seed, rand, "
        "choice, RandomState, ...) and stdlib random.* are banned; "
        "Generators are constructed only in repro.util.rng (ensure_rng / "
        "spawn_rngs) and passed down explicitly."
    )
    invariant = "seed-stable bit-identical results (every PR's test gate)"

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        aliases = _import_aliases(file.tree)
        imports_stdlib_random = aliases.get("random") == "random" or any(
            target == "random" or target.startswith("random.")
            for target in aliases.values()
        )
        for node in ast.walk(file.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            target = _dotted_name(node, aliases)
            if target is None:
                continue
            if target.startswith("numpy.random."):
                leaf = target.split(".", 2)[2]
                head = leaf.split(".")[0]
                if head in NUMPY_RANDOM_TYPES:
                    continue
                if head == "default_rng":
                    if file.module == RNG_HOME:
                        continue
                    yield file.finding(
                        self.name,
                        node.lineno,
                        "np.random.default_rng outside repro.util.rng; "
                        "use util.rng.ensure_rng / spawn_rngs",
                    )
                    continue
                yield file.finding(
                    self.name,
                    node.lineno,
                    f"legacy global-state numpy.random.{head} (seeded "
                    "Generators from util.rng only)",
                )
            elif (
                imports_stdlib_random
                and target.startswith(STDLIB_RANDOM_BANNED_PREFIX)
                and isinstance(node, ast.Attribute)
            ):
                yield file.finding(
                    self.name,
                    node.lineno,
                    f"stdlib {target} uses hidden global RNG state; "
                    "thread a numpy Generator from util.rng instead",
                )


# ----------------------------------------------------------------------
# 6. guarded-by (PR 6 thread-safety)
# ----------------------------------------------------------------------

#: Container methods that mutate their receiver: calling one on a guarded
#: attribute counts as a *write* to that attribute.
MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


@register_rule
class GuardedByRule(Rule):
    name = "guarded-by"
    description = (
        "In a class annotated `# repro: guarded-by=<lock> attrs=a,b "
        "writes=c,d`, the `attrs` list may only be touched and the "
        "`writes` list only be mutated inside `with self.<lock>:`; "
        "methods whose callers hold the lock are marked "
        "`# repro: holds-lock`.  __init__ is exempt (no sharing yet)."
    )
    invariant = "PR 6 (cache/metrics shared between shard workers + loop)"

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        annotations = file.directives_named("guarded-by")
        if not annotations:
            return
        holds = [d.line for d in file.directives_named("holds-lock")]
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            end = getattr(node, "end_lineno", node.lineno)
            for directive in annotations:
                if not (node.lineno <= directive.line <= end):
                    continue
                spec = _parse_guard_spec(directive.value)
                if spec is None:
                    continue  # malformed -> suppression-hygiene reports it
                lock, full, write_only = spec
                yield from self._check_class(
                    file, node, lock, full, write_only, holds
                )

    def _check_class(
        self,
        file: SourceFile,
        cls: ast.ClassDef,
        lock: str,
        full: Set[str],
        write_only: Set[str],
        holds: List[int],
    ) -> Iterator[Finding]:
        guarded = full | write_only
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            # `# repro: holds-lock` may sit on the line above the def,
            # on the def line itself, or between def and first statement.
            first = method.body[0].lineno if method.body else method.lineno
            if any(method.lineno - 1 <= line < first for line in holds):
                continue  # caller holds the lock by contract
            yield from self._check_method(
                file, method, lock, full, write_only, guarded
            )

    def _check_method(
        self,
        file: SourceFile,
        method: ast.AST,
        lock: str,
        full: Set[str],
        write_only: Set[str],
        guarded: Set[str],
    ) -> Iterator[Finding]:
        # Depth-first walk tracking whether we are lexically inside
        # `with self.<lock>:`.  Nested defs reset to unlocked: a closure
        # may run after the with-block exits.
        def is_lock_with(node: ast.With) -> bool:
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and expr.attr == lock
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                ):
                    return True
            return False

        def direct_accesses(node: ast.AST) -> List[Tuple[ast.Attribute, bool]]:
            """(attr-node, is_write) when ``node`` itself is an access.

            Only the node that *is* the access reports, so the recursive
            walk never double-counts.  Writes are Store/Del contexts plus
            the two lexically-visible mutation shapes:
            ``self.attr[k] = v`` and ``self.attr.append(...)``-style
            mutator calls.
            """
            out: List[Tuple[ast.Attribute, bool]] = []
            if isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guarded
                ):
                    write = isinstance(node.ctx, (ast.Store, ast.Del))
                    out.append((node, write))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                    and isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "self"
                    and func.value.attr in guarded
                ):
                    out.append((func.value, True))
            elif isinstance(node, ast.Subscript):
                if (
                    isinstance(node.ctx, (ast.Store, ast.Del))
                    and isinstance(node.value, ast.Attribute)
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "self"
                    and node.value.attr in guarded
                ):
                    out.append((node.value, True))
            return out

        reported: Set[int] = set()

        def walk(node: ast.AST, held: bool) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from walk(child, False)
                    continue
                if isinstance(child, ast.With) and is_lock_with(child):
                    yield from walk(child, True)
                    continue
                if not held:
                    for attr, write in direct_accesses(child):
                        name = attr.attr
                        violation = (name in full) or (write and name in write_only)
                        if violation and id(attr) not in reported:
                            reported.add(id(attr))
                            verb = "written" if write else "read"
                            yield file.finding(
                                self.name,
                                attr.lineno,
                                f"self.{name} {verb} outside `with "
                                f"self.{lock}` in {method.name}()",
                            )
                yield from walk(child, held)

        yield from walk(method, False)


def _parse_guard_spec(value: str) -> Optional[Tuple[str, Set[str], Set[str]]]:
    """Parse ``"_lock attrs=a,b writes=c,d"`` -> (lock, attrs, writes)."""
    parts = value.split()
    if not parts:
        return None
    lock = parts[0]
    full: Set[str] = set()
    write_only: Set[str] = set()
    for part in parts[1:]:
        key, _, names = part.partition("=")
        targets = {n.strip() for n in names.split(",") if n.strip()}
        if key == "attrs":
            full |= targets
        elif key == "writes":
            write_only |= targets
        else:
            return None
    if not (full or write_only):
        return None
    return lock, full, write_only


# ----------------------------------------------------------------------
# 7. swallowed-error (PR 6 fault-tolerance hygiene)
# ----------------------------------------------------------------------


@register_rule
class SwallowedErrorRule(Rule):
    name = "swallowed-error"
    description = (
        "Bare `except:` is banned; `except Exception`/`except "
        "BaseException` must do something with the failure (re-raise, "
        "record, count) — a body of just pass/continue silently eats "
        "errors the fault-tolerance paths are supposed to surface."
    )
    invariant = "PR 6 (capture-don't-swallow in scheduler/server/cache)"

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield file.finding(
                    self.name,
                    node.lineno,
                    "bare `except:` catches SystemExit/KeyboardInterrupt; "
                    "name the exceptions (or `except Exception` + handle)",
                )
                continue
            breadth = self._broad_name(node.type)
            if breadth is None:
                continue
            trivial = all(self._is_trivial(stmt) for stmt in node.body)
            if trivial:
                yield file.finding(
                    self.name,
                    node.lineno,
                    f"`except {breadth}` swallows the error (body is only "
                    "pass/continue); record it, count it, or re-raise",
                )
                continue
            if breadth == "BaseException":
                reraises = any(
                    isinstance(stmt, ast.Raise) for stmt in ast.walk(node)
                )
                uses_name = node.name is not None and any(
                    isinstance(sub, ast.Name) and sub.id == node.name
                    for stmt in node.body
                    for sub in ast.walk(stmt)
                )
                if not (reraises or uses_name):
                    yield file.finding(
                        self.name,
                        node.lineno,
                        "`except BaseException` must re-raise or store the "
                        "exception (it catches KeyboardInterrupt/SystemExit)",
                    )

    @staticmethod
    def _broad_name(type_node: ast.expr) -> Optional[str]:
        names: List[ast.expr] = (
            list(type_node.elts) if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for name in names:
            if isinstance(name, ast.Name) and name.id in (
                "Exception",
                "BaseException",
            ):
                return name.id
        return None

    @staticmethod
    def _is_trivial(stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            return True
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            return True  # docstring/Ellipsis placeholder
        return False


# ----------------------------------------------------------------------
# 8. span-hygiene (observability PR)
# ----------------------------------------------------------------------


@register_rule
class SpanHygieneRule(Rule):
    name = "span-hygiene"
    description = (
        "Every trace `.span(...)` call must be a `with`-item: span "
        "handles close on `__exit__`, so a bare call leaks an open span "
        "and corrupts the trace's open-span stack.  Already-elapsed "
        "intervals use TraceContext.add_span, which never opens anything."
    )
    invariant = "observability PR (span trees stay well-nested)"

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        with_items: Set[int] = set()
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "span"):
                continue
            if id(node) in with_items:
                continue
            if not self._looks_like_trace_span(node):
                continue
            yield file.finding(
                self.name,
                node.lineno,
                ".span(...) outside a with-statement leaks an open span; "
                "use `with trace.span(...):` (or add_span for elapsed "
                "intervals)",
            )

    @staticmethod
    def _looks_like_trace_span(call: ast.Call) -> bool:
        """A trace span call names its stage: first arg is a string
        constant, or attributes are attached as keywords.  (This keeps
        ``re.Match.span()`` / ``match.span(1)`` out of scope.)"""
        if call.keywords:
            return True
        return bool(
            call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        )


# ----------------------------------------------------------------------
# 9. suppression-hygiene (meta-rule: the analyzer polices its own escapes)
# ----------------------------------------------------------------------


@register_rule
class SuppressionHygieneRule(Rule):
    name = "suppression-hygiene"
    description = (
        "Every `# repro: disable[-file]=` suppression must name known "
        "rules and carry a `-- justification`; atomic markers must be "
        "balanced; guarded-by annotations must parse."
    )
    invariant = "this PR (suppressions are auditable, never silent)"

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        from repro.analysis.core import RULE_REGISTRY

        for error in file.directive_errors:
            yield file.finding(self.name, _error_line(error), error)
        for directive in file.directives:
            if directive.verb in ("disable", "disable-file"):
                if directive.justification is None:
                    yield file.finding(
                        self.name,
                        directive.line,
                        f"suppression of {directive.value!r} has no "
                        "`-- justification`",
                    )
                unknown = [n for n in directive.names if n not in RULE_REGISTRY]
                if unknown:
                    yield file.finding(
                        self.name,
                        directive.line,
                        f"suppression names unknown rule(s): {', '.join(unknown)}",
                    )
                if not directive.names:
                    yield file.finding(
                        self.name,
                        directive.line,
                        "suppression lists no rules",
                    )
            elif directive.verb == "guarded-by":
                if _parse_guard_spec(directive.value) is None:
                    yield file.finding(
                        self.name,
                        directive.line,
                        "malformed guarded-by annotation (expected "
                        "'guarded-by=<lock> attrs=a,b' and/or 'writes=c,d')",
                    )
        _ranges, errors = file.atomic_ranges()
        for error in errors:
            yield file.finding(self.name, _error_line(error), error)


def _error_line(error: str) -> int:
    # Errors are formatted "line N: ..." by the parser helpers.
    try:
        return int(error.split(":", 1)[0].split()[-1])
    except (ValueError, IndexError):
        return 1


# ----------------------------------------------------------------------
# 10. compiled-seam (PR 10)
# ----------------------------------------------------------------------

#: The only package whose modules may import numba — and even there only
#: lazily, inside a function body, so a numba-less install can import the
#: whole repo (the ``compiled`` backend degrades to BackendUnavailable).
COMPILED_SEAM_PACKAGE = "repro.quantum.backend"


def _numba_imports(
    node: ast.AST, inside_function: bool = False
) -> Iterator[Tuple[ast.stmt, bool]]:
    """Yield ``(import_node, inside_function)`` for every numba import."""
    for child in ast.iter_child_nodes(node):
        nested = inside_function or isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef)
        )
        if isinstance(child, ast.Import):
            if any(
                alias.name == "numba" or alias.name.startswith("numba.")
                for alias in child.names
            ):
                yield child, inside_function
        elif isinstance(child, ast.ImportFrom):
            if child.level == 0 and child.module is not None and (
                child.module == "numba" or child.module.startswith("numba.")
            ):
                yield child, inside_function
        yield from _numba_imports(child, nested)


@register_rule
class CompiledSeamRule(Rule):
    name = "compiled-seam"
    description = (
        "numba may be imported only inside repro.quantum.backend, and "
        "only lazily (function-level) — never at module top level — so "
        "the repo imports cleanly on a numba-less install."
    )
    invariant = "PR 10 (compiled backend: numba stays an optional dependency)"

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        in_backend = _module_in(file.module, (COMPILED_SEAM_PACKAGE,))
        for node, inside_function in _numba_imports(file.tree):
            if not in_backend:
                yield file.finding(
                    self.name,
                    node.lineno,
                    "numba imported outside repro.quantum.backend; the "
                    "compiled kernels are the only sanctioned numba "
                    "surface (use resolve_backend('compiled') instead)",
                )
            elif not inside_function:
                yield file.finding(
                    self.name,
                    node.lineno,
                    "module-level numba import; numba is optional — import "
                    "it lazily inside the function that JIT-compiles "
                    "(see numba_available/_jit_kernels)",
                )


__all__ = [
    "BLOCKING_CALLS",
    "COMPILED_SEAM_PACKAGE",
    "CORE_PACKAGES",
    "KERNEL_NAMES",
    "MUTATING_METHODS",
    "NUMPY_RANDOM_TYPES",
    "UPPER_PACKAGES",
    "AsyncBlockingRule",
    "AtomicSectionRule",
    "BackendSeamRule",
    "CompiledSeamRule",
    "GuardedByRule",
    "LayeringRule",
    "RngDisciplineRule",
    "SpanHygieneRule",
    "SuppressionHygieneRule",
    "SwallowedErrorRule",
]
