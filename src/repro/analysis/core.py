"""Framework for the project-invariant static analyzer.

This module owns the pieces every rule shares:

* :class:`Finding` — one reported violation (rule, file, line, message).
* :class:`Directive` — one parsed ``# repro: ...`` comment.  Directives are
  extracted with :mod:`tokenize`, so strings that merely *contain* the
  marker text are never misparsed as directives.
* :class:`SourceFile` — a parsed module (text, AST, dotted module name,
  directives, suppressions).
* :class:`Rule` + :func:`register_rule` — the plugin registry.  A rule
  implements ``check(file, ctx)`` for per-file findings and may implement
  ``check_project(ctx)`` for whole-graph findings (layering cycles).
* :func:`analyze_paths` — the driver: collect files, build the import
  graph, run every rule, apply suppressions.

Suppression grammar (checked by the ``suppression-hygiene`` meta-rule):

* ``# repro: disable=rule-a,rule-b -- why this is safe`` — suppress on
  this line (or, when the comment stands alone, on the next line).
* ``# repro: disable-file=rule-a -- why`` — suppress for the whole file.

Every suppression must carry a one-line justification after ``--``;
suppressions without one are themselves findings.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

# Anchored at the start of the comment: a comment that merely *mentions*
# "# repro: ..." in prose (docs, the analyzer's own source) is not a
# directive.
DIRECTIVE_RE = re.compile(r"^#\s*repro:\s*(?P<body>.*)$")
JUSTIFICATION_SEP = "--"

#: Directive verbs the parser understands.  ``expect`` is reserved for the
#: fixture corpus (see :mod:`repro.analysis.__main__` --quick).
DIRECTIVE_VERBS = (
    "disable",
    "disable-file",
    "module",
    "begin-atomic",
    "end-atomic",
    "guarded-by",
    "holds-lock",
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source line."""

    rule: str
    path: str
    line: int
    message: str
    module: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "module": self.module,
            "message": self.message,
        }


@dataclass
class Directive:
    """One parsed ``# repro: <verb>[=value] [-- justification]`` comment."""

    verb: str
    value: str
    justification: Optional[str]
    line: int
    standalone: bool  # the comment is the only thing on its line

    @property
    def names(self) -> List[str]:
        """Comma-separated value list (rule names, attribute names)."""
        return [part.strip() for part in self.value.split(",") if part.strip()]


def parse_directives(text: str) -> Tuple[List[Directive], List[str]]:
    """Extract ``# repro:`` directives from real comment tokens.

    Returns ``(directives, errors)`` where errors are human-readable
    strings for malformed directives (reported by suppression-hygiene).
    """
    directives: List[Directive] = []
    errors: List[str] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return directives, errors  # the AST parse reports the real problem
    lines = text.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = DIRECTIVE_RE.match(tok.string)
        if match is None:
            continue
        body = match.group("body").strip()
        justification: Optional[str] = None
        if JUSTIFICATION_SEP in body:
            body, _, tail = body.partition(JUSTIFICATION_SEP)
            body = body.strip()
            justification = tail.strip() or None
        if "=" in body:
            verb, _, value = body.partition("=")
            verb, value = verb.strip(), value.strip()
        else:
            parts = body.split(None, 1)
            verb = parts[0] if parts else ""
            value = parts[1].strip() if len(parts) > 1 else ""
        line_no = tok.start[0]
        source_line = lines[line_no - 1] if line_no <= len(lines) else ""
        standalone = source_line.strip().startswith("#")
        if verb not in DIRECTIVE_VERBS and verb != "expect":
            errors.append(
                f"line {line_no}: unknown directive '# repro: {verb}' "
                f"(expected one of {', '.join(DIRECTIVE_VERBS)})"
            )
            continue
        directives.append(
            Directive(
                verb=verb,
                value=value,
                justification=justification,
                line=line_no,
                standalone=standalone,
            )
        )
    return directives, errors


@dataclass
class SourceFile:
    """A parsed source module, as seen by every rule."""

    path: Path
    display_path: str
    text: str
    tree: ast.Module
    module: str
    directives: List[Directive] = field(default_factory=list)
    directive_errors: List[str] = field(default_factory=list)
    #: line -> rule names suppressed on that line
    line_suppressions: Dict[int, set] = field(default_factory=dict)
    #: rule names suppressed for the whole file
    file_suppressions: set = field(default_factory=set)

    @classmethod
    def parse(cls, path: Path, *, display_path: Optional[str] = None) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        directives, errors = parse_directives(text)
        module = _module_name(path)
        for directive in directives:
            if directive.verb == "module" and directive.value:
                module = directive.value
        line_suppressions: Dict[int, set] = {}
        file_suppressions: set = set()
        for directive in directives:
            if directive.verb == "disable":
                target = directive.line + 1 if directive.standalone else directive.line
                line_suppressions.setdefault(target, set()).update(directive.names)
            elif directive.verb == "disable-file":
                file_suppressions.update(directive.names)
        return cls(
            path=path,
            display_path=display_path if display_path is not None else str(path),
            text=text,
            tree=tree,
            module=module,
            directives=directives,
            directive_errors=errors,
            line_suppressions=line_suppressions,
            file_suppressions=file_suppressions,
        )

    # ------------------------------------------------------------------
    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions:
            return True
        return rule in self.line_suppressions.get(line, set())

    def directives_named(self, verb: str) -> List[Directive]:
        return [d for d in self.directives if d.verb == verb]

    def atomic_ranges(self) -> Tuple[List[Tuple[int, int]], List[str]]:
        """``begin-atomic``/``end-atomic`` line ranges + balance errors."""
        ranges: List[Tuple[int, int]] = []
        errors: List[str] = []
        open_line: Optional[int] = None
        for directive in self.directives:
            if directive.verb == "begin-atomic":
                if open_line is not None:
                    errors.append(
                        f"line {directive.line}: begin-atomic while the section "
                        f"opened at line {open_line} is still open"
                    )
                open_line = directive.line
            elif directive.verb == "end-atomic":
                if open_line is None:
                    errors.append(
                        f"line {directive.line}: end-atomic without begin-atomic"
                    )
                else:
                    ranges.append((open_line, directive.line))
                    open_line = None
        if open_line is not None:
            errors.append(f"line {open_line}: begin-atomic is never closed")
        return ranges, errors

    def finding(self, rule: str, line: int, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.display_path,
            line=line,
            message=message,
            module=self.module,
        )


def _module_name(path: Path) -> str:
    """Dotted module name from the package layout around ``path``.

    Walks up while ``__init__.py`` siblings exist, so
    ``src/repro/service/cache.py`` resolves to ``repro.service.cache``
    regardless of the working directory.  Files outside any package (the
    fixture corpus) fall back to their stem; fixtures set their pretend
    module with ``# repro: module=...``.
    """
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    current = resolved.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(parts) if parts else resolved.stem


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
class Rule:
    """Base class for analyzer rules (register with :func:`register_rule`).

    Subclasses set ``name`` (kebab-case, used in suppressions),
    ``description`` (one line, shown by ``--list-rules`` and the README)
    and ``invariant`` (which PR/convention the rule encodes).
    """

    name: str = ""
    description: str = ""
    invariant: str = ""

    def check(self, file: SourceFile, ctx: "AnalysisContext") -> Iterator[Finding]:
        return iter(())

    def check_project(self, ctx: "AnalysisContext") -> Iterator[Finding]:
        return iter(())


RULE_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls):
    """Class decorator: instantiate and add to the global registry."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if rule.name in RULE_REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    RULE_REGISTRY[rule.name] = rule
    return cls


def all_rule_names() -> List[str]:
    _ensure_rules_loaded()
    return sorted(RULE_REGISTRY)


def _ensure_rules_loaded() -> None:
    # Deferred so `import repro.analysis.core` never cycles with rules.py.
    from repro.analysis import rules as _rules  # noqa: F401


@dataclass
class AnalysisContext:
    """Everything a rule may consult besides the file under check."""

    files: List[SourceFile]
    graph: "ImportGraph"

    def file_for_module(self, module: str) -> Optional[SourceFile]:
        for file in self.files:
            if file.module == module:
                return file
        return None


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
@dataclass
class AnalysisReport:
    findings: List[Finding]
    suppressed: List[Finding]
    files: List[SourceFile]

    @property
    def ok(self) -> bool:
        return not self.findings


def collect_files(paths: Sequence[Path]) -> List[Path]:
    out: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def analyze_paths(
    paths: Sequence[Path],
    *,
    rules: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run the (selected) rules over every ``.py`` file under ``paths``."""
    from repro.analysis.imports import ImportGraph

    _ensure_rules_loaded()
    files: List[SourceFile] = []
    for path in collect_files(paths):
        try:
            files.append(SourceFile.parse(path))
        except SyntaxError as exc:
            raise RuntimeError(f"cannot parse {path}: {exc}") from exc
    graph = ImportGraph.from_files(files)
    ctx = AnalysisContext(files=files, graph=graph)
    if rules is None:
        active = [RULE_REGISTRY[name] for name in sorted(RULE_REGISTRY)]
    else:
        unknown = sorted(set(rules) - set(RULE_REGISTRY))
        if unknown:
            raise ValueError(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(RULE_REGISTRY))}"
            )
        active = [RULE_REGISTRY[name] for name in sorted(set(rules))]

    raw: List[Finding] = []
    for file in files:
        for rule in active:
            raw.extend(rule.check(file, ctx))
    for rule in active:
        raw.extend(rule.check_project(ctx))

    findings: List[Finding] = []
    suppressed: List[Finding] = []
    by_path = {file.display_path: file for file in files}
    for finding in raw:
        file = by_path.get(finding.path)
        if file is not None and file.suppressed(finding.rule, finding.line):
            suppressed.append(finding)
        else:
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return AnalysisReport(findings=findings, suppressed=suppressed, files=files)


__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "Directive",
    "Finding",
    "RULE_REGISTRY",
    "Rule",
    "SourceFile",
    "all_rule_names",
    "analyze_paths",
    "collect_files",
    "parse_directives",
    "register_rule",
]
