"""Project-invariant static analyzer (``python -m repro.analysis``).

The serving/numerics stack guards several correctness properties that no
unit test can see directly — the backend import seam, the layering of
core numerics below service/hpc, the await-free coalescing section, RNG
and lock discipline.  This package machine-checks them as AST rules with
per-line/per-file suppressions; see ``src/repro/analysis/README.md`` for
the rule catalogue and the CI wiring.
"""

from repro.analysis.core import (
    AnalysisContext,
    AnalysisReport,
    Directive,
    Finding,
    RULE_REGISTRY,
    Rule,
    SourceFile,
    all_rule_names,
    analyze_paths,
    register_rule,
)
from repro.analysis.imports import ImportEdge, ImportGraph

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "Directive",
    "Finding",
    "ImportEdge",
    "ImportGraph",
    "RULE_REGISTRY",
    "Rule",
    "SourceFile",
    "all_rule_names",
    "analyze_paths",
    "register_rule",
]
