"""Import-graph builder over a set of parsed source files.

Edges are collected from ``import``/``from ... import`` statements
anywhere in a module's AST.  Each edge records the source line and
whether the import is *top-level* (module scope) or *deferred* (inside a
function/method — the standard way to break a runtime cycle).

Rules consume the graph two ways:

* **Layering** uses *all* edges: a deferred import still ships the
  dependency, so ``repro.graphs`` lazily importing ``repro.service``
  would be just as much a layering break as a top-level import.
* **Cycle detection** uses only *top-level* edges: those are the ones
  Python actually executes during module initialisation, so a top-level
  strongly-connected component is a real import-time hazard while a
  deferred back-edge (e.g. ``qaoa2.solver`` lazily importing
  ``repro.service``) is the sanctioned fix.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.core import SourceFile


@dataclass(frozen=True)
class ImportEdge:
    """One ``src -> dst`` import at a specific line."""

    src: str
    dst: str
    line: int
    top_level: bool


@dataclass
class ImportGraph:
    """Adjacency over dotted module names (project modules only)."""

    modules: set = field(default_factory=set)
    edges: Dict[str, List[ImportEdge]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_files(cls, files: Sequence[SourceFile]) -> "ImportGraph":
        graph = cls(modules={file.module for file in files})
        for file in files:
            for edge in _collect_edges(file, graph.modules):
                graph.edges.setdefault(edge.src, []).append(edge)
        return graph

    def out_edges(self, module: str) -> List[ImportEdge]:
        return self.edges.get(module, [])

    # ------------------------------------------------------------------
    def reachable(
        self, start: str, *, top_level_only: bool = False
    ) -> Dict[str, Optional[str]]:
        """BFS predecessor map: every module reachable from ``start``.

        ``result[m]`` is the module that first led to ``m`` (``None`` for
        ``start`` itself), so callers can reconstruct an import chain.
        """
        seen: Dict[str, Optional[str]] = {start: None}
        queue = [start]
        while queue:
            current = queue.pop(0)
            for edge in self.out_edges(current):
                if top_level_only and not edge.top_level:
                    continue
                if edge.dst not in seen:
                    seen[edge.dst] = current
                    queue.append(edge.dst)
        return seen

    def chain(self, start: str, target: str, **kwargs) -> Optional[List[str]]:
        """Shortest import chain ``start -> ... -> target`` (or None)."""
        preds = self.reachable(start, **kwargs)
        if target not in preds:
            return None
        path = [target]
        while path[-1] != start:
            prev = preds[path[-1]]
            assert prev is not None
            path.append(prev)
        return list(reversed(path))

    # ------------------------------------------------------------------
    def cycles(self) -> List[List[str]]:
        """Strongly-connected components of size >= 2 over top-level edges.

        Only modules in the analyzed set participate (an external module
        cannot complete a cycle we could observe anyway).  Components are
        returned sorted, each cycle's members sorted, for stable output.
        """
        adjacency: Dict[str, List[str]] = {m: [] for m in self.modules}
        for src, edges in self.edges.items():
            if src not in adjacency:
                continue
            for edge in edges:
                if edge.top_level and edge.dst in adjacency:
                    adjacency[src].append(edge.dst)
        # Iterative Tarjan SCC.
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: set = set()
        stack: List[str] = []
        counter = [0]
        components: List[List[str]] = []

        def strongconnect(root: str) -> None:
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, edge_index = work[-1]
                if edge_index == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                targets = adjacency[node]
                while edge_index < len(targets):
                    dst = targets[edge_index]
                    edge_index += 1
                    if dst not in index:
                        work[-1] = (node, edge_index)
                        work.append((dst, 0))
                        advanced = True
                        break
                    if dst in on_stack:
                        lowlink[node] = min(lowlink[node], index[dst])
                if advanced:
                    continue
                work.pop()
                if lowlink[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for module in sorted(adjacency):
            if module not in index:
                strongconnect(module)
        return sorted(components)


# ----------------------------------------------------------------------
def _collect_edges(file: SourceFile, known_modules: set) -> Iterable[ImportEdge]:
    """AST walk yielding project-internal import edges for one file."""
    root_prefixes = {module.split(".")[0] for module in known_modules}

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.depth = 0
            self.edges: List[ImportEdge] = []

        # Function bodies = deferred imports.
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        def _emit(self, target: str, line: int) -> None:
            if target.split(".")[0] not in root_prefixes:
                return
            if target == file.module:
                return
            self.edges.append(
                ImportEdge(
                    src=file.module,
                    dst=target,
                    line=line,
                    top_level=self.depth == 0,
                )
            )

        def visit_Import(self, node: ast.Import) -> None:
            for alias in node.names:
                self._emit(alias.name, node.lineno)

        def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
            base = _resolve_from(node, file.module)
            if base is None:
                return
            for alias in node.names:
                candidate = f"{base}.{alias.name}"
                # `from repro.quantum import backend` names the submodule
                # when one exists; otherwise the edge targets the package.
                if candidate in known_modules:
                    self._emit(candidate, node.lineno)
                else:
                    self._emit(base, node.lineno)

    visitor = Visitor()
    visitor.visit(file.tree)
    return visitor.edges


def _resolve_from(node: ast.ImportFrom, module: str) -> Optional[str]:
    """Absolute dotted base of a ``from``-import (handles relative dots)."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    # Relative level 1 from a module inside package P resolves against P.
    if len(parts) < node.level:
        return None
    base_parts = parts[: len(parts) - node.level]
    if node.module:
        base_parts.append(node.module)
    return ".".join(base_parts) if base_parts else None


__all__ = ["ImportEdge", "ImportGraph"]
