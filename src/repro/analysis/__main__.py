"""CLI for the project-invariant analyzer.

Usage::

    python -m repro.analysis [paths...] [--format text|json]
                             [--rules a,b] [--list-rules] [--quick]

Exit codes: 0 clean, 1 findings (or a --quick self-check mismatch),
2 usage / unreadable input.

``--quick`` runs the fixture-corpus self-check instead of an analysis:
every file under ``tests/analysis_fixtures/`` is analyzed and its
findings are compared against the ``# expect: rule-a,rule-b`` markers on
the violating lines (clean fixtures carry no markers and must produce no
findings).  CI runs this in the fast job so a rule regression surfaces
in seconds, without waiting for the full static-analysis job.
"""

from __future__ import annotations

import argparse
import io
import json
import re
import sys
import tokenize
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.core import RULE_REGISTRY, all_rule_names, analyze_paths

#: Default analysis target: the package tree this module lives in.
DEFAULT_TARGET = Path(__file__).resolve().parents[1]


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


def fixture_corpus_dir() -> Path:
    return _repo_root() / "tests" / "analysis_fixtures"


# ----------------------------------------------------------------------
EXPECT_RE = re.compile(r"^#\s*expect:\s*(?P<rules>.*)$")


def expected_findings(path: Path) -> Set[Tuple[int, str]]:
    """``(line, rule)`` pairs declared by ``# expect:`` fixture markers.

    A trailing marker expects the finding on its own line; a standalone
    comment line expects it on the next line.
    """
    expected: Set[Tuple[int, str]] = set()
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    tokens = tokenize.generate_tokens(io.StringIO(text).readline)
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = EXPECT_RE.match(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        if lines[line - 1].strip().startswith("#"):
            line += 1
        for rule in match.group("rules").split(","):
            rule = rule.strip()
            if rule:
                expected.add((line, rule))
    return expected


def run_quick(corpus: Path) -> int:
    """Self-check the rule set against the fixture corpus."""
    if not corpus.is_dir():
        print(f"fixture corpus not found: {corpus}", file=sys.stderr)
        return 2
    # Multi-file scenarios (transitive layering, cycles) live in
    # subdirectories marked by a `corpus.json` manifest listing the
    # expectations for the whole group; their files are excluded from the
    # one-file-at-a-time pass.
    manifests = sorted(corpus.rglob("corpus.json"))
    group_dirs = {manifest.parent for manifest in manifests}
    files = [
        path
        for path in sorted(corpus.rglob("*.py"))
        if path.parent not in group_dirs
    ]
    if not files and not manifests:
        print(f"fixture corpus is empty: {corpus}", file=sys.stderr)
        return 2
    failures: List[str] = []
    checked = 0
    for path in files:
        report = analyze_paths([path])
        got = {(f.line, f.rule) for f in report.findings}
        want = expected_findings(path)
        checked += 1
        for line, rule in sorted(want - got):
            failures.append(f"{path}:{line}: expected [{rule}] but rule was silent")
        for line, rule in sorted(got - want):
            failures.append(f"{path}:{line}: unexpected [{rule}] finding")
    for manifest in manifests:
        group_dir = manifest.parent
        spec = json.loads(manifest.read_text())
        report = analyze_paths([group_dir])
        got = {(Path(f.path).name, f.line, f.rule) for f in report.findings}
        want = {
            (entry["file"], int(entry["line"]), entry["rule"])
            for entry in spec.get("expect", [])
        }
        checked += 1
        for name, line, rule in sorted(want - got):
            failures.append(
                f"{group_dir / name}:{line}: expected [{rule}] (group check)"
            )
        for name, line, rule in sorted(got - want):
            failures.append(
                f"{group_dir / name}:{line}: unexpected [{rule}] (group check)"
            )
    if failures:
        print(f"self-check FAILED ({len(failures)} mismatches):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"self-check ok: {checked} fixture checks, all rules behave as expected")
    return 0


# ----------------------------------------------------------------------
def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-invariant static analyzer for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to analyze (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="self-check the rules against tests/analysis_fixtures/ and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        names = all_rule_names()
        width = max(len(name) for name in names)
        for name in names:
            rule = RULE_REGISTRY[name]
            print(f"{name:<{width}}  {rule.description}")
            print(f"{'':<{width}}  invariant: {rule.invariant}")
        return 0

    if args.quick:
        return run_quick(fixture_corpus_dir())

    paths = [Path(p) for p in args.paths] if args.paths else [DEFAULT_TARGET]
    for path in paths:
        if not path.exists():
            print(f"no such path: {path}", file=sys.stderr)
            return 2
    rules = (
        [name.strip() for name in args.rules.split(",") if name.strip()]
        if args.rules
        else None
    )
    try:
        report = analyze_paths(paths, rules=rules)
    except (RuntimeError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.format == "json":
        payload: Dict[str, object] = {
            "version": 1,
            "files": len(report.files),
            "findings": [finding.to_json() for finding in report.findings],
            "suppressed": len(report.suppressed),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format())
        summary = (
            f"{len(report.findings)} finding(s) in {len(report.files)} file(s)"
            f" ({len(report.suppressed)} suppressed)"
        )
        print(summary)
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
