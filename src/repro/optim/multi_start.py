"""Batched multi-start SPSA: S independent starts advanced in lock-step.

Restarting the variational loop from several initial points is the standard
defence against QAOA's non-convex landscapes, but running the restarts
sequentially multiplies the Python-dispatch cost that already dominates
shallow-QAOA wall-clock.  Because SPSA only ever needs *objective values*
(never per-point gradients), all ``S`` starts can share each iteration's
perturbation direction and have their ``±`` pairs evaluated as **one**
``(2S, d)`` batch — a single :class:`repro.qaoa.engine.SweepEngine` call
per iteration instead of ``2S`` dispatches.

Determinism contract (relied on by tests and the RQAOA benchmark):

* the perturbation ``delta`` is drawn once per iteration with shape
  ``(d,)`` and shared across starts, so the RNG stream consumed is
  *independent of* ``S``;
* start 0 therefore follows exactly the trajectory that
  :func:`repro.optim.spsa.minimize_spsa` would follow from the same
  ``x0``/``rng`` — with ``S`` starts the best-seen value can only improve
  on the matching single start;
* with or without ``batch_fun`` the *evaluation points* and their
  recording order are identical; results are bitwise equal when
  ``batch_fun`` computes the same floats as ``fun``, and agree to
  reduction-order float noise (~1e-12 over a full run) when it reduces
  differently (e.g. the sweep engine's GEMV-based batch expectation vs
  the scalar dot product).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.optim.base import OptimizationResult, RecordingObjective
from repro.util.rng import RngLike, ensure_rng


def _lockstep_spsa(
    fun: Callable[[np.ndarray], float],
    x0s: np.ndarray,
    *,
    maxiter: int,
    a: float,
    c: float,
    alpha: float,
    gamma: float,
    A: float | None,
    draw_delta: Callable[[int], np.ndarray],
    batch_fun: Optional[Callable[[np.ndarray], np.ndarray]],
) -> tuple[List[RecordingObjective], int]:
    """The shared lock-step SPSA loop: gain schedules, batched ± pair
    evaluation and budget accounting in exactly one place.

    ``draw_delta(dim)`` supplies each iteration's perturbation — a single
    ``(dim,)`` vector broadcast to every start (:func:`multi_start_spsa`)
    or a ``(S, dim)`` matrix with one row per independent job
    (:func:`multi_start_spsa_independent`).  Returns the per-start
    recorders plus the iteration count; callers reduce to their own
    result shape.
    """
    if maxiter < 1:
        raise ValueError("maxiter must be positive")
    xs = np.array(x0s, dtype=np.float64)
    if xs.ndim == 1:
        xs = xs[None, :]
    if xs.ndim != 2 or xs.shape[0] < 1 or xs.shape[1] < 1:
        raise ValueError(f"x0s must be a (S, d) matrix, got shape {np.shape(x0s)}")
    n_starts, dim = xs.shape
    recorders: List[RecordingObjective] = [
        RecordingObjective(fun) for _ in range(n_starts)
    ]

    def evaluate(points: np.ndarray) -> np.ndarray:
        if batch_fun is None:
            return np.array([float(fun(row)) for row in points], dtype=np.float64)
        values = np.asarray(batch_fun(points), dtype=np.float64)
        if values.shape != (points.shape[0],):
            raise ValueError(
                f"batch_fun returned shape {values.shape}, "
                f"expected ({points.shape[0]},)"
            )
        return values

    stability = float(A) if A is not None else 0.1 * maxiter
    n_iter = maxiter // 2  # two evaluations per start per iteration
    for k in range(n_iter):
        ak = a / (k + 1 + stability) ** alpha
        ck = c / (k + 1) ** gamma
        delta = draw_delta(dim)
        x_plus = xs + ck * delta
        x_minus = xs - ck * delta
        values = evaluate(np.concatenate([x_plus, x_minus], axis=0))
        f_plus, f_minus = values[:n_starts], values[n_starts:]
        for s in range(n_starts):
            recorders[s].record(x_plus[s], f_plus[s])
            recorders[s].record(x_minus[s], f_minus[s])
        gradient = ((f_plus - f_minus) / (2.0 * ck))[:, None] * (1.0 / delta)
        xs -= ak * gradient
    if 2 * n_iter < maxiter:
        # One evaluation left per start: spend it on the final iterates.
        values = evaluate(xs)
        for s in range(n_starts):
            recorders[s].record(xs[s], values[s])
    return recorders, n_iter


def multi_start_spsa(
    fun: Callable[[np.ndarray], float],
    x0s: np.ndarray,
    *,
    maxiter: int = 100,
    a: float = 0.2,
    c: float = 0.1,
    alpha: float = 0.602,
    gamma: float = 0.101,
    A: float | None = None,
    rng: RngLike = None,
    batch_fun: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> OptimizationResult:
    """Minimize ``fun`` with SPSA from every row of ``x0s`` simultaneously.

    Parameters
    ----------
    x0s:
        ``(S, d)`` matrix of initial points (a 1-D vector is treated as a
        single start).  Row 0 reproduces ``minimize_spsa`` exactly under a
        shared ``rng``.
    maxiter:
        *Per-start* evaluation budget, same semantics as
        :func:`repro.optim.spsa.minimize_spsa`: ``maxiter // 2`` lock-step
        iterations at 2 evaluations each — the maximum number of gradient
        steps the budget affords — plus a final evaluation of each start's
        last iterate whenever an evaluation remains (odd budgets, or
        ``maxiter == 1``).  On even budgets the last iterate goes
        unevaluated by design: an extra full iteration is worth more than
        scoring the final point.  Total evaluations are ``<= S * maxiter``.
    batch_fun:
        Optional ``(B, d) -> (B,)`` vectorised objective.  Each iteration
        evaluates the stacked ``[x+, x-]`` pairs of all starts as one
        ``(2S, d)`` call; without it the same points are evaluated
        point-by-point in the same order.

    Returns the best-seen iterate across all starts; ``nfev`` counts
    evaluations across the whole fleet, ``history`` is the winning start's
    trace.
    """
    gen = ensure_rng(rng)

    def shared_delta(dim: int) -> np.ndarray:
        return gen.choice((-1.0, 1.0), size=dim)  # shared across starts

    recorders, n_iter = _lockstep_spsa(
        fun, x0s, maxiter=maxiter, a=a, c=c, alpha=alpha, gamma=gamma, A=A,
        draw_delta=shared_delta, batch_fun=batch_fun,
    )
    n_starts = len(recorders)
    best = min(range(n_starts), key=lambda s: (recorders[s].best_f, s))
    winner = recorders[best]
    return OptimizationResult(
        x=winner.best_x,
        fun=winner.best_f,
        nfev=sum(rec.nfev for rec in recorders),
        nit=n_iter,
        success=True,
        message=f"multi-start SPSA completed ({n_starts} starts)",
        history=winner.history,
    )


def multi_start_spsa_independent(
    fun: Callable[[np.ndarray], float],
    x0s: np.ndarray,
    *,
    maxiter: int = 100,
    a: float = 0.2,
    c: float = 0.1,
    alpha: float = 0.602,
    gamma: float = 0.101,
    A: float | None = None,
    rngs: List[np.random.Generator],
    batch_fun: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> List[OptimizationResult]:
    """Advance S *independent* SPSA runs in lock-step; return one result each.

    Unlike :func:`multi_start_spsa` (one problem, S starts, shared
    perturbation, best-seen wins), every row here is its *own* job with its
    *own* generator: job ``s`` draws its iteration-``k`` perturbation from
    ``rngs[s]`` exactly as a solo :func:`repro.optim.spsa.minimize_spsa`
    call with that generator would, so each returned result reproduces the
    corresponding solo run — same evaluation points, same ``nfev``, same
    history — while every iteration's ``±`` pairs across all jobs are
    evaluated as **one** ``(2S, d)`` batch.

    This is the dispatch primitive behind the request scheduler
    (:mod:`repro.service.scheduler`): concurrent solver-service requests on
    the same graph share one engine batch per iteration without giving up
    per-request determinism.  (Batched and solo evaluations agree to
    reduction-order float noise, exactly as documented for
    :func:`multi_start_spsa`.)
    """
    n_starts = np.atleast_2d(np.asarray(x0s)).shape[0]
    if len(rngs) != n_starts:
        raise ValueError(
            f"need one generator per job: got {len(rngs)} for {n_starts} rows"
        )

    def per_job_deltas(dim: int) -> np.ndarray:
        # One draw per job, from the job's own stream (in job order).
        return np.stack([gen.choice((-1.0, 1.0), size=dim) for gen in rngs])

    recorders, n_iter = _lockstep_spsa(
        fun, x0s, maxiter=maxiter, a=a, c=c, alpha=alpha, gamma=gamma, A=A,
        draw_delta=per_job_deltas, batch_fun=batch_fun,
    )
    return [
        OptimizationResult(
            x=rec.best_x,
            fun=rec.best_f,
            nfev=rec.nfev,
            nit=n_iter,
            success=True,
            message="SPSA completed",
            history=rec.history,
        )
        for rec in recorders
    ]


__all__ = ["multi_start_spsa", "multi_start_spsa_independent"]
