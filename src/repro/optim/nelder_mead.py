"""Nelder–Mead downhill simplex, implemented from scratch.

Standard reflection/expansion/contraction/shrink with the adaptive
parameters of Gao & Han (2012) for moderate dimension.  Serves as a
derivative-free alternative to COBYLA in the optimizer ablation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.optim.base import OptimizationResult, RecordingObjective


def minimize_nelder_mead(
    fun: Callable[[np.ndarray], float],
    x0: np.ndarray,
    *,
    maxiter: int = 200,
    initial_step: float = 0.5,
    xatol: float = 1e-6,
    fatol: float = 1e-8,
) -> OptimizationResult:
    """Minimize ``fun`` with Nelder–Mead.

    ``maxiter`` bounds objective evaluations (to be comparable with COBYLA's
    accounting in the ablation).  ``initial_step`` plays the role of rhobeg.
    """
    recorder = RecordingObjective(fun)
    x0 = np.asarray(x0, dtype=np.float64)
    dim = len(x0)
    # Adaptive coefficients (Gao & Han): better behaviour as dim grows.
    rho = 1.0
    chi = 1.0 + 2.0 / dim
    psi = 0.75 - 1.0 / (2.0 * dim)
    sigma = 1.0 - 1.0 / dim

    simplex = np.empty((dim + 1, dim))
    simplex[0] = x0
    for i in range(dim):
        point = x0.copy()
        point[i] += initial_step if point[i] == 0 else initial_step * (1 + abs(point[i]))
        simplex[i + 1] = point
    values = np.array([recorder(p) for p in simplex])

    iterations = 0
    while recorder.nfev < maxiter:
        iterations += 1
        order = np.argsort(values, kind="stable")
        simplex, values = simplex[order], values[order]
        if (
            np.max(np.abs(simplex[1:] - simplex[0])) <= xatol
            and np.max(np.abs(values[1:] - values[0])) <= fatol
        ):
            break
        centroid = simplex[:-1].mean(axis=0)
        reflected = centroid + rho * (centroid - simplex[-1])
        f_reflected = recorder(reflected)
        if f_reflected < values[0]:
            expanded = centroid + chi * (reflected - centroid)
            f_expanded = recorder(expanded)
            if f_expanded < f_reflected:
                simplex[-1], values[-1] = expanded, f_expanded
            else:
                simplex[-1], values[-1] = reflected, f_reflected
        elif f_reflected < values[-2]:
            simplex[-1], values[-1] = reflected, f_reflected
        else:
            if f_reflected < values[-1]:
                contracted = centroid + psi * (reflected - centroid)
            else:
                contracted = centroid - psi * (centroid - simplex[-1])
            f_contracted = recorder(contracted)
            if f_contracted < min(f_reflected, values[-1]):
                simplex[-1], values[-1] = contracted, f_contracted
            else:  # shrink toward the best vertex
                for i in range(1, dim + 1):
                    simplex[i] = simplex[0] + sigma * (simplex[i] - simplex[0])
                    values[i] = recorder(simplex[i])
                    if recorder.nfev >= maxiter:
                        break
    return OptimizationResult(
        x=recorder.best_x,
        fun=recorder.best_f,
        nfev=recorder.nfev,
        nit=iterations,
        success=True,
        message="Nelder-Mead completed",
        history=recorder.history,
    )


__all__ = ["minimize_nelder_mead"]
