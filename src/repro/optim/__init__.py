"""Classical optimizers for the variational loop.

``minimize`` dispatches by name; COBYLA (the paper's optimizer, with its
``rhobeg`` knob) is the default.  SPSA and Nelder–Mead are from-scratch
implementations used in the optimizer ablation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.optim.base import OptimizationResult, RecordingObjective
from repro.optim.cobyla import minimize_cobyla
from repro.optim.multi_start import multi_start_spsa, multi_start_spsa_independent
from repro.optim.nelder_mead import minimize_nelder_mead
from repro.optim.spsa import minimize_spsa, spsa_perturbation_from_rhobeg
from repro.util.rng import RngLike


def minimize(
    fun: Callable[[np.ndarray], float],
    x0: np.ndarray,
    *,
    method: str = "cobyla",
    rhobeg: float = 0.5,
    maxiter: int = 100,
    rng: RngLike = None,
    batch_fun: Callable[[np.ndarray], np.ndarray] | None = None,
) -> OptimizationResult:
    """Minimize ``fun`` starting at ``x0`` with the named backend.

    ``rhobeg`` maps to the analogous initial-step parameter of each backend
    so the paper's grid axis is meaningful for every optimizer.
    ``batch_fun`` (a ``(B, d) -> (B,)`` vectorised objective) is consumed by
    backends that can evaluate several points per step — currently SPSA's
    ± perturbation pair — and ignored by the sequential ones.
    """
    method = method.lower()
    if method == "cobyla":
        return minimize_cobyla(fun, x0, rhobeg=rhobeg, maxiter=maxiter)
    if method == "spsa":
        return minimize_spsa(
            fun,
            x0,
            maxiter=maxiter,
            c=spsa_perturbation_from_rhobeg(rhobeg),
            rng=rng,
            batch_fun=batch_fun,
        )
    if method in ("nelder-mead", "nelder_mead", "nm"):
        return minimize_nelder_mead(fun, x0, maxiter=maxiter, initial_step=rhobeg)
    raise ValueError(f"unknown optimizer {method!r}")


__all__ = [
    "OptimizationResult",
    "RecordingObjective",
    "minimize",
    "minimize_cobyla",
    "minimize_spsa",
    "minimize_nelder_mead",
    "multi_start_spsa",
    "multi_start_spsa_independent",
    "spsa_perturbation_from_rhobeg",
]
