"""Simultaneous Perturbation Stochastic Approximation (from scratch).

SPSA estimates the gradient from two objective evaluations regardless of
dimension, making it the standard choice for shot-noisy VQA objectives.
Included for the optimizer ablation (DESIGN.md A4); standard Spall (1998)
gain schedules.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.optim.base import OptimizationResult, RecordingObjective
from repro.util.rng import RngLike, ensure_rng


def minimize_spsa(
    fun: Callable[[np.ndarray], float],
    x0: np.ndarray,
    *,
    maxiter: int = 100,
    a: float = 0.2,
    c: float = 0.1,
    alpha: float = 0.602,
    gamma: float = 0.101,
    A: float | None = None,
    rng: RngLike = None,
    batch_fun: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> OptimizationResult:
    """Minimize ``fun`` with SPSA.

    Gain schedules: ``a_k = a / (k + 1 + A)^alpha``, ``c_k = c / (k+1)^gamma``
    with the stability offset ``A`` defaulting to 10% of ``maxiter`` (Spall's
    rule of thumb).  Uses 2 evaluations per iteration.

    ``batch_fun``, when given, maps a ``(B, d)`` matrix of points to a
    ``(B,)`` vector of objective values and is used to evaluate the ±
    perturbation pair as one batch of 2 — the natural fit for batched QAOA
    engines, halving the Python-dispatch overhead of the hot loop.
    """
    gen = ensure_rng(rng)
    recorder = RecordingObjective(fun)
    x = np.array(x0, dtype=np.float64)
    stability = float(A) if A is not None else 0.1 * maxiter
    n_iter = max(1, maxiter // 2)  # two evaluations per iteration
    for k in range(n_iter):
        ak = a / (k + 1 + stability) ** alpha
        ck = c / (k + 1) ** gamma
        delta = gen.choice((-1.0, 1.0), size=len(x))
        x_plus = x + ck * delta
        x_minus = x - ck * delta
        if batch_fun is not None:
            pair = np.asarray(batch_fun(np.stack([x_plus, x_minus])), dtype=np.float64)
            if pair.shape != (2,):
                raise ValueError(f"batch_fun returned shape {pair.shape}, expected (2,)")
            f_plus = recorder.record(x_plus, pair[0])
            f_minus = recorder.record(x_minus, pair[1])
        else:
            f_plus = recorder(x_plus)
            f_minus = recorder(x_minus)
        gradient = (f_plus - f_minus) / (2.0 * ck) * (1.0 / delta)
        x = x - ak * gradient
    # Final evaluation at the last iterate so it can win best-seen.
    recorder(x)
    return OptimizationResult(
        x=recorder.best_x,
        fun=recorder.best_f,
        nfev=recorder.nfev,
        nit=n_iter,
        success=True,
        message="SPSA completed",
        history=recorder.history,
    )


__all__ = ["minimize_spsa"]
