"""Simultaneous Perturbation Stochastic Approximation (from scratch).

SPSA estimates the gradient from two objective evaluations regardless of
dimension, making it the standard choice for shot-noisy VQA objectives.
Included for the optimizer ablation (DESIGN.md A4); standard Spall (1998)
gain schedules.

The update loop itself lives in
:func:`repro.optim.multi_start.multi_start_spsa` — the scalar optimizer is
its ``S = 1`` special case (bitwise, including evaluation order and
``nfev``; pinned in ``tests/test_optim.py``), so the gain schedules and the
evaluation-budget accounting exist in exactly one place.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.optim.base import OptimizationResult
from repro.optim.multi_start import multi_start_spsa
from repro.util.rng import RngLike


def spsa_perturbation_from_rhobeg(rhobeg: float) -> float:
    """Map the paper's COBYLA ``rhobeg`` knob onto SPSA's perturbation size
    ``c`` — shared by the ``minimize`` dispatcher and the multi-start QAOA
    solver so single- and multi-start runs see identical gain schedules."""
    return max(0.02, rhobeg / 5)


def minimize_spsa(
    fun: Callable[[np.ndarray], float],
    x0: np.ndarray,
    *,
    maxiter: int = 100,
    a: float = 0.2,
    c: float = 0.1,
    alpha: float = 0.602,
    gamma: float = 0.101,
    A: float | None = None,
    rng: RngLike = None,
    batch_fun: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> OptimizationResult:
    """Minimize ``fun`` with SPSA.

    Gain schedules: ``a_k = a / (k + 1 + A)^alpha``, ``c_k = c / (k+1)^gamma``
    with the stability offset ``A`` defaulting to 10% of ``maxiter`` (Spall's
    rule of thumb).  Uses 2 evaluations per iteration; ``maxiter`` is a hard
    evaluation budget (``nfev <= maxiter``), with any leftover evaluation
    spent on the final iterate so it can win best-seen (see
    :func:`repro.optim.multi_start.multi_start_spsa` for the exact
    accounting).

    ``batch_fun``, when given, maps a ``(B, d)`` matrix of points to a
    ``(B,)`` vector of objective values and is used to evaluate the ±
    perturbation pair as one batch of 2 — the natural fit for batched QAOA
    engines, halving the Python-dispatch overhead of the hot loop.
    """
    result = multi_start_spsa(
        fun,
        np.asarray(x0, dtype=np.float64)[None, :],
        maxiter=maxiter,
        a=a,
        c=c,
        alpha=alpha,
        gamma=gamma,
        A=A,
        rng=rng,
        batch_fun=batch_fun,
    )
    result.message = "SPSA completed"
    return result


__all__ = ["minimize_spsa", "spsa_perturbation_from_rhobeg"]
