"""Common optimizer result type and objective-wrapping utilities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np


@dataclass
class OptimizationResult:
    """Uniform result object across optimizer backends."""

    x: np.ndarray
    fun: float
    nfev: int
    nit: int
    success: bool = True
    message: str = ""
    history: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)


class RecordingObjective:
    """Wrap an objective to record evaluations and the best point seen.

    Optimizers can terminate away from their best iterate (COBYLA in
    particular); QAOA cares about the best parameters encountered, so every
    solver in this package reports ``best_x``/``best_f`` from this wrapper.
    """

    def __init__(self, fun: Callable[[np.ndarray], float]) -> None:
        self._fun = fun
        self.nfev = 0
        self.history: List[float] = []
        self.best_f = np.inf
        self.best_x: Optional[np.ndarray] = None

    def __call__(self, x: np.ndarray) -> float:
        value = float(self._fun(np.asarray(x, dtype=np.float64)))
        return self.record(x, value)

    def record(self, x: np.ndarray, value: float) -> float:
        """Book-keep an evaluation computed out-of-band (e.g. one row of a
        batched objective call) exactly like a direct ``__call__``."""
        value = float(value)
        self.nfev += 1
        self.history.append(value)
        if value < self.best_f:
            self.best_f = value
            self.best_x = np.array(x, dtype=np.float64)
        return value


__all__ = ["OptimizationResult", "RecordingObjective"]
