"""COBYLA — the paper's optimizer (§4).

The grid search sweeps ``rhobeg`` (the initial change to the variables,
COBYLA's trust-region start size) over {0.1 .. 0.5}, so that knob is a
first-class argument here.  Thin wrapper over SciPy's implementation with
best-seen tracking (COBYLA's final iterate is not always its best).
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import optimize as sp_optimize

from repro.optim.base import OptimizationResult, RecordingObjective


def minimize_cobyla(
    fun: Callable[[np.ndarray], float],
    x0: np.ndarray,
    *,
    rhobeg: float = 0.5,
    maxiter: int = 100,
    tol: float = 1e-6,
) -> OptimizationResult:
    """Minimize ``fun`` with COBYLA.

    Parameters
    ----------
    rhobeg:
        Initial simplex/trust-region radius — the paper's swept parameter.
    maxiter:
        Maximum objective evaluations (COBYLA counts evaluations).
    """
    recorder = RecordingObjective(fun)
    x0 = np.asarray(x0, dtype=np.float64)
    # COBYLA needs at least dim+2 evaluations to build its initial simplex.
    effective_maxiter = max(int(maxiter), len(x0) + 2)
    result = sp_optimize.minimize(
        recorder,
        x0,
        method="COBYLA",
        options={"rhobeg": float(rhobeg), "maxiter": effective_maxiter, "tol": tol},
    )
    best_x = recorder.best_x if recorder.best_x is not None else result.x
    return OptimizationResult(
        x=best_x,
        fun=recorder.best_f,
        nfev=recorder.nfev,
        nit=int(result.get("nit", recorder.nfev)) if hasattr(result, "get") else recorder.nfev,
        success=bool(result.success),
        message=str(result.message),
        history=recorder.history,
    )


__all__ = ["minimize_cobyla"]
