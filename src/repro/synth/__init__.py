"""Circuit synthesis substrate (Classiq-platform analogue): high-level
combinatorial models lowered to optimized gate-level circuits."""

from repro.synth.model import (
    CombinatorialModel,
    OptimizationTarget,
    Preferences,
    QAOAConfig,
)
from repro.synth.passes import (
    cancel_identities,
    circuit_metrics,
    decompose_rzz,
    fuse_rotations,
    greedy_edge_coloring,
    schedule_commuting_layer,
)
from repro.synth.synthesis import SynthesisReport, qaoa_ansatz, synthesize

__all__ = [
    "CombinatorialModel",
    "OptimizationTarget",
    "Preferences",
    "QAOAConfig",
    "SynthesisReport",
    "qaoa_ansatz",
    "synthesize",
    "greedy_edge_coloring",
    "schedule_commuting_layer",
    "fuse_rotations",
    "cancel_identities",
    "decompose_rzz",
    "circuit_metrics",
]
