"""Model-to-circuit synthesis (the Classiq engine analogue, §3.5).

Lowers a :class:`~repro.synth.model.CombinatorialModel` into the QAOA
ansatz of paper Eq. 2:

    |ψ_p(β, γ)⟩ = Π_{l=1..p} e^{-i β_l H_M} e^{-i γ_l H_C} |+⟩^n

Angle mapping (derived once here, used everywhere):

* Cost layer.  For a MaxCut edge term ½ w (1 − Z_i Z_j),
  ``e^{-iγ · ½ w (1 − Z_i Z_j)} = (global phase) · e^{+i γ w Z_i Z_j / 2}``
  which equals ``RZZ(−γ w)`` since RZZ(θ)=e^{−iθ ZZ/2}.  Generic linear
  terms h_i Z_i lower to ``RZ(2 γ h_i)``.
* Mixer layer.  ``e^{-iβ Σ X_i} = Π RX(2β)``.

The synthesis engine then applies optimization passes according to the
:class:`~repro.synth.model.Preferences` — commutation-aware RZZ scheduling
for depth, CX-basis lowering for hardware-style costing — and reports
before/after metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


from repro.quantum.circuit import Circuit, Instruction, ParamRef
from repro.synth.model import CombinatorialModel, OptimizationTarget, Preferences
from repro.synth.passes import (
    cancel_identities,
    circuit_metrics,
    decompose_rzz,
    fuse_rotations,
    schedule_commuting_layer,
)


@dataclass
class SynthesisReport:
    """What the engine did: naive vs optimized metrics per target."""

    circuit: Circuit
    naive_metrics: Dict[str, int]
    optimized_metrics: Dict[str, int]
    preferences: Preferences

    @property
    def depth_reduction(self) -> float:
        naive = self.naive_metrics["depth"]
        if naive == 0:
            return 0.0
        return 1.0 - self.optimized_metrics["depth"] / naive


def _emit_cost_layer(
    model: CombinatorialModel, gamma: ParamRef
) -> List[Instruction]:
    """Instructions for e^{-iγ H_C} (diagonal, ignoring global phase)."""
    ham = model.hamiltonian
    out: List[Instruction] = []
    for (i, j), coeff in sorted(ham.quadratic.items()):
        # e^{-iγ J Z_i Z_j} == RZZ(2 γ J)
        out.append(Instruction("rzz", (i, j), (ParamRef(gamma.index, 2.0 * coeff),)))
    for i, h in sorted(ham.linear.items()):
        # e^{-iγ h Z_i} == RZ(2 γ h)
        out.append(Instruction("rz", (i,), (ParamRef(gamma.index, 2.0 * h),)))
    return out


def qaoa_ansatz(
    model: CombinatorialModel, *, optimize_depth: bool = True
) -> Circuit:
    """Parametric QAOA ansatz circuit.

    Parameter layout matches the optimiser convention used throughout the
    repo: ``params = [γ_1..γ_p, β_1..β_p]`` (gammas first).
    """
    p = model.qaoa.layers
    n = model.n_qubits
    qc = Circuit(n, n_params=2 * p, metadata={"ansatz": "qaoa", "layers": p})
    for q in range(n):
        qc.h(q)
    for layer in range(p):
        gamma = ParamRef(layer)
        beta = ParamRef(p + layer)
        cost = _emit_cost_layer(model, gamma)
        if optimize_depth:
            rzz_gates = [ins for ins in cost if ins.name == "rzz"]
            rest = [ins for ins in cost if ins.name != "rzz"]
            cost = schedule_commuting_layer(n, rzz_gates) + rest
        qc.instructions.extend(cost)
        for q in range(n):
            qc.rx(ParamRef(beta.index, 2.0), q)
    return qc


def synthesize(
    model: CombinatorialModel, preferences: Optional[Preferences] = None
) -> SynthesisReport:
    """Synthesize an optimized circuit from a high-level model.

    Mirrors the Classiq contract: model + preferences in, optimized
    gate-level circuit + report out.
    """
    prefs = preferences or Preferences()
    naive = qaoa_ansatz(model, optimize_depth=False)
    if prefs.basis == "cx":
        naive_for_metrics = decompose_rzz(naive)
    else:
        naive_for_metrics = naive
    naive_metrics = circuit_metrics(naive_for_metrics)

    optimized = qaoa_ansatz(
        model, optimize_depth=prefs.optimize is OptimizationTarget.DEPTH
    )
    optimized = fuse_rotations(optimized)
    optimized = cancel_identities(optimized)
    if prefs.basis == "cx":
        optimized = decompose_rzz(optimized)
        optimized = cancel_identities(optimized)
    metrics = circuit_metrics(optimized)
    if prefs.max_depth is not None and metrics["depth"] > prefs.max_depth:
        raise ValueError(
            f"synthesized depth {metrics['depth']} exceeds max_depth="
            f"{prefs.max_depth}; reduce layers or relax the constraint"
        )
    return SynthesisReport(optimized, naive_metrics, metrics, prefs)


__all__ = ["SynthesisReport", "qaoa_ansatz", "synthesize"]
