"""Circuit optimization passes for the synthesis engine.

These are the transformations behind the "synthesize more optimized
quantum circuits compared to a manual construction" claim (§3.5):

* :func:`schedule_commuting_layer` — RZZ gates within one QAOA cost layer
  all commute, so they can be reordered freely; greedy edge colouring packs
  them into parallel time slices, reducing depth from O(|E|) to O(Δ+1).
* :func:`fuse_rotations` — merges adjacent same-axis rotations on the same
  qubit(s) (γ-γ or β-β folds across layer boundaries, parameter sweeps).
* :func:`cancel_identities` — removes zero-angle rotations and adjacent
  self-inverse pairs (H H, X X, CX CX).
* :func:`decompose_rzz` — lowers RZZ to CX·RZ·CX for the ``cx`` basis.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.quantum.circuit import Circuit, Instruction, ParamRef

_SELF_INVERSE = {"h", "x", "y", "z", "cx", "cz", "swap"}
_ROTATIONS = {"rx", "ry", "rz", "rzz", "p", "crz", "rxx"}


# ---------------------------------------------------------------------------
# Edge-colouring scheduler for commuting two-qubit layers
# ---------------------------------------------------------------------------
def greedy_edge_coloring(
    n_qubits: int, edges: Sequence[Tuple[int, int]]
) -> List[List[int]]:
    """Partition edge indices into colour classes of pairwise-disjoint edges.

    Greedy: assign each edge (sorted by max endpoint degree first) the first
    colour not already used at either endpoint.  Vizing guarantees Δ+1
    colours exist; greedy may use up to 2Δ−1 but is near-optimal on the
    sparse graphs used here.
    """
    degree = np.zeros(n_qubits, dtype=np.int64)
    for a, b in edges:
        degree[a] += 1
        degree[b] += 1
    order = sorted(
        range(len(edges)), key=lambda k: -(degree[edges[k][0]] + degree[edges[k][1]])
    )
    colour_of_edge: Dict[int, int] = {}
    used_at: List[set] = [set() for _ in range(n_qubits)]
    n_colours = 0
    for k in order:
        a, b = edges[k]
        c = 0
        busy = used_at[a] | used_at[b]
        while c in busy:
            c += 1
        colour_of_edge[k] = c
        used_at[a].add(c)
        used_at[b].add(c)
        n_colours = max(n_colours, c + 1)
    classes: List[List[int]] = [[] for _ in range(n_colours)]
    for k, c in colour_of_edge.items():
        classes[c].append(k)
    return classes


def schedule_commuting_layer(
    n_qubits: int, instructions: Sequence[Instruction]
) -> List[Instruction]:
    """Reorder a block of mutually commuting two-qubit diagonal gates.

    All gates must be two-qubit diagonals (RZZ/CZ); the output applies the
    same unitary (commuting product) but groups qubit-disjoint gates so the
    ASAP depth equals the number of colour classes.
    """
    for ins in instructions:
        if ins.name not in ("rzz", "cz"):
            raise ValueError(f"cannot reschedule non-commuting gate {ins.name!r}")
    edges = [ins.qubits for ins in instructions]
    classes = greedy_edge_coloring(n_qubits, edges)
    out: List[Instruction] = []
    for cls in classes:
        for k in sorted(cls):
            out.append(instructions[k])
    return out


# ---------------------------------------------------------------------------
# Peephole passes
# ---------------------------------------------------------------------------
def _angles_mergeable(a: Instruction, b: Instruction) -> bool:
    """Two same-name rotations merge if both angles are concrete or both are
    refs to the same parameter (coefficients add)."""
    pa, pb = a.params[0], b.params[0]
    if isinstance(pa, ParamRef) != isinstance(pb, ParamRef):
        return False
    if isinstance(pa, ParamRef):
        return pa.index == pb.index
    return True


def _merge_angle(a: Instruction, b: Instruction) -> Instruction:
    pa, pb = a.params[0], b.params[0]
    if isinstance(pa, ParamRef):
        return Instruction(a.name, a.qubits, (ParamRef(pa.index, pa.coeff + pb.coeff),))
    return Instruction(a.name, a.qubits, (float(pa) + float(pb),))


def fuse_rotations(circuit: Circuit) -> Circuit:
    """Merge adjacent same-axis rotations acting on identical qubits.

    "Adjacent" means no intervening instruction touches any of the qubits.
    One linear scan with a per-qubit last-instruction index.
    """
    out: List[Instruction] = []
    last_on_qubit: Dict[int, int] = {}  # qubit -> index into `out`
    for ins in circuit.instructions:
        merged = False
        if ins.name in _ROTATIONS and len(ins.params) == 1:
            positions = {last_on_qubit.get(q, -1) for q in ins.qubits}
            if len(positions) == 1:
                pos = positions.pop()
                if pos >= 0 and out[pos] is not None:
                    prev = out[pos]
                    if (
                        prev.name == ins.name
                        and prev.qubits == ins.qubits
                        and _angles_mergeable(prev, ins)
                    ):
                        out[pos] = _merge_angle(prev, ins)
                        merged = True
        if not merged:
            out.append(ins)
            for q in ins.qubits:
                last_on_qubit[q] = len(out) - 1
    result = Circuit(
        circuit.n_qubits, out, n_params=circuit.n_params, metadata=dict(circuit.metadata)
    )
    return result


def cancel_identities(circuit: Circuit, *, atol: float = 1e-12) -> Circuit:
    """Drop zero-angle rotations and adjacent self-inverse pairs.

    Runs to a fixed point (each sweep may expose new adjacencies).
    """
    instructions = list(circuit.instructions)
    changed = True
    while changed:
        changed = False
        # 1. zero-angle rotations
        kept: List[Instruction] = []
        for ins in instructions:
            if (
                ins.name in _ROTATIONS
                and len(ins.params) == 1
                and not isinstance(ins.params[0], ParamRef)
                and abs(float(ins.params[0])) <= atol
            ):
                changed = True
                continue
            kept.append(ins)
        instructions = kept
        # 2. adjacent self-inverse pairs (same gate, same qubits, nothing
        #    touching those qubits in between)
        out: List[Instruction] = []
        last_on_qubit: Dict[int, int] = {}
        for ins in instructions:
            if ins.name in _SELF_INVERSE:
                positions = {last_on_qubit.get(q, -1) for q in ins.qubits}
                if len(positions) == 1:
                    pos = positions.pop()
                    if (
                        pos >= 0
                        and out[pos] is not None
                        and out[pos].name == ins.name
                        and out[pos].qubits == ins.qubits
                    ):
                        out[pos] = None
                        changed = True
                        # rebuild last_on_qubit lazily below
                        for q in ins.qubits:
                            last_on_qubit.pop(q, None)
                        continue
            out.append(ins)
            for q in ins.qubits:
                last_on_qubit[q] = len(out) - 1
        instructions = [ins for ins in out if ins is not None]
        if any(ins is None for ins in out):
            # positions shifted; recompute indices next sweep
            pass
    return Circuit(
        circuit.n_qubits,
        instructions,
        n_params=circuit.n_params,
        metadata=dict(circuit.metadata),
    )


def decompose_rzz(circuit: Circuit) -> Circuit:
    """Lower RZZ(θ) on (a, b) to CX(a,b) · RZ(θ) on b · CX(a,b)."""
    out = Circuit(
        circuit.n_qubits, n_params=circuit.n_params, metadata=dict(circuit.metadata)
    )
    for ins in circuit.instructions:
        if ins.name == "rzz":
            a, b = ins.qubits
            out.append("cx", (a, b))
            out.append("rz", (b,), (ins.params[0],))
            out.append("cx", (a, b))
        else:
            out.instructions.append(ins)
    return out


def circuit_metrics(circuit: Circuit) -> Dict[str, int]:
    """Summary used in synthesis reports and the A2 ablation."""
    return {
        "size": circuit.size(),
        "depth": circuit.depth(),
        "two_qubit": circuit.two_qubit_count(),
        "n_qubits": circuit.n_qubits,
    }


__all__ = [
    "greedy_edge_coloring",
    "schedule_commuting_layer",
    "fuse_rotations",
    "cancel_identities",
    "decompose_rzz",
    "circuit_metrics",
]
