"""High-level combinatorial model (the Classiq-platform analogue, §3.5).

The Classiq platform takes a *functional model* of the problem plus
optimization preferences and synthesizes an optimized gate-level circuit.
We mirror that contract: a :class:`CombinatorialModel` captures the problem
(here: MaxCut → Ising Hamiltonian) and a :class:`QAOAConfig` the ansatz
structure; :func:`repro.synth.synthesis.synthesize` lowers them to an
optimized :class:`~repro.quantum.circuit.Circuit`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.graphs.graph import Graph
from repro.quantum.pauli import IsingHamiltonian
from repro.util.validation import check_positive_int


class OptimizationTarget(Enum):
    """What the synthesis engine optimizes over (§3.5 lists these)."""

    DEPTH = "depth"
    TWO_QUBIT_GATES = "two_qubit_gates"
    WIDTH = "width"
    NONE = "none"


@dataclass(frozen=True)
class Preferences:
    """Synthesis preferences and global constraints.

    Attributes
    ----------
    optimize:
        Primary optimization target.
    basis:
        ``"native"`` keeps RZZ as a primitive (simulator-friendly);
        ``"cx"`` decomposes RZZ into CX·RZ·CX (hardware-style basis
        {h, rx, rz, cx}), relevant when counting two-qubit gates.
    max_depth:
        Optional hard depth constraint; synthesis raises if unsatisfiable.
    """

    optimize: OptimizationTarget = OptimizationTarget.DEPTH
    basis: str = "native"
    max_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.basis not in ("native", "cx"):
            raise ValueError(f"unknown basis {self.basis!r}")


@dataclass(frozen=True)
class QAOAConfig:
    """Ansatz structure: number of layers p (paper Eq. 2)."""

    layers: int = 3

    def __post_init__(self) -> None:
        check_positive_int(self.layers, "layers")


@dataclass
class CombinatorialModel:
    """Problem description handed to the synthesis engine.

    Currently MaxCut-backed; the Hamiltonian field allows arbitrary Ising
    problems (e.g. the QUBO view mentioned in the introduction).
    """

    hamiltonian: IsingHamiltonian
    qaoa: QAOAConfig = field(default_factory=QAOAConfig)
    name: str = "maxcut"

    @property
    def n_qubits(self) -> int:
        return self.hamiltonian.n_qubits

    @staticmethod
    def maxcut(graph: Graph, layers: int = 3) -> "CombinatorialModel":
        """Build the MaxCut model for ``graph`` with a ``layers``-deep ansatz."""
        return CombinatorialModel(
            hamiltonian=IsingHamiltonian.from_maxcut(graph),
            qaoa=QAOAConfig(layers=layers),
            name="maxcut",
        )


__all__ = ["OptimizationTarget", "Preferences", "QAOAConfig", "CombinatorialModel"]
