"""Canonical graph fingerprints for request-level caching.

The solver service (:mod:`repro.service.service`) treats a *request* — a
graph plus a solver configuration — as its unit of work, so two requests
must share one cache entry whenever their graphs are the same up to node
relabeling.  This module computes a canonical relabeling by iterated
degree refinement (1-WL colour refinement over the weighted neighbour
multisets) followed, when the refinement leaves colour ties, by
individualisation backtracking that picks the permutation minimising the
canonical edge list.  The resulting fingerprint carries:

* ``digest``  — a stable hash of the canonically relabelled edge arrays
  (plus weights), shared by every relabelling of the same graph;
* ``perm``    — the relabeling (original node ``i`` → canonical label
  ``perm[i]``) used to map cached assignments back into the request's
  own labels (:meth:`GraphFingerprint.from_canonical`);
* the canonical edge arrays themselves, so cache lookups can verify a
  digest match exactly instead of trusting the hash.

Highly symmetric graphs can make the exact search explode (every
automorphism is a tie), so the search is capped: past ``max_leaves``
leaves — or past ``max_search_nodes`` nodes — the fingerprint falls back
to refinement colours with original-index tie-breaks.  Fallback
fingerprints are still *sound* (byte-identical graphs collide, different
graphs never do, thanks to the stored canonical arrays); they may merely
miss some isomorphic-relabeling cache hits, and they carry
``exact=False`` folded into the digest so the two regimes never mix.

Weights participate exactly (raw float64 values): relabeling a graph
permutes but never perturbs its weights, so float equality is the right
notion and no rounding tolerance is needed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import Graph

# Exact-search budget: number of discrete leaf colourings examined before
# the canonicalisation falls back to refinement-only mode.  Only graphs
# with large automorphism groups (cycles, complete graphs, ...) ever
# branch this much; the weighted ER instances the service actually sees
# discretise after one or two refinement rounds.
DEFAULT_MAX_LEAVES = 64
# Above this node count the backtracking search is skipped outright; the
# refinement-only fingerprint is used.  Requests this large are far past
# the direct-solver regime anyway (they get partitioned by QAOA²).
DEFAULT_MAX_SEARCH_NODES = 256


class _SearchBudgetExceeded(Exception):
    """Raised internally when the exact canonical search overruns."""


@dataclass(frozen=True)
class GraphFingerprint:
    """Canonical identity of one graph plus the relabeling that proves it."""

    digest: str
    n_nodes: int
    perm: np.ndarray  # original label i -> canonical label perm[i]
    canon_u: np.ndarray
    canon_v: np.ndarray
    canon_w: np.ndarray
    exact: bool

    def to_canonical(self, assignment: np.ndarray) -> np.ndarray:
        """Re-index an assignment from request labels to canonical labels."""
        assignment = np.asarray(assignment)
        canon = np.empty_like(assignment)
        canon[self.perm] = assignment
        return canon

    def from_canonical(self, canonical_assignment: np.ndarray) -> np.ndarray:
        """Re-index a canonical-label assignment back to request labels."""
        return np.asarray(canonical_assignment)[self.perm]

    def same_canonical_graph(self, other: "GraphFingerprint") -> bool:
        """Exact canonical-array comparison (the digest collision check)."""
        return (
            self.n_nodes == other.n_nodes
            and np.array_equal(self.canon_u, other.canon_u)
            and np.array_equal(self.canon_v, other.canon_v)
            and np.array_equal(self.canon_w, other.canon_w)
        )


# ---------------------------------------------------------------------------
# Colour refinement
# ---------------------------------------------------------------------------
def _neighbor_lists(graph: Graph) -> List[List[Tuple[int, float]]]:
    nbrs: List[List[Tuple[int, float]]] = [[] for _ in range(graph.n_nodes)]
    for a, b, w in zip(graph.u, graph.v, graph.w, strict=True):
        a, b, w = int(a), int(b), float(w)
        nbrs[a].append((b, w))
        nbrs[b].append((a, w))
    return nbrs


def _initial_colors(graph: Graph, nbrs) -> List[int]:
    """Label-free starting colours: (degree, sorted incident weights)."""
    sigs = [
        (len(adj), tuple(sorted(w for _, w in adj)))
        for adj in nbrs
    ]
    ranking = {sig: rank for rank, sig in enumerate(sorted(set(sigs)))}
    return [ranking[sig] for sig in sigs]


def _refine(colors: List[int], nbrs) -> List[int]:
    """Iterate 1-WL refinement to a stable (equitable) colouring.

    Signatures are built only from colour values and edge weights — both
    label-free — and renumbered by sorted order each round, so the final
    colouring is invariant under node relabeling.
    """
    n = len(colors)
    n_colors = len(set(colors))
    while True:
        sigs = [
            (colors[i], tuple(sorted((colors[j], w) for j, w in nbrs[i])))
            for i in range(n)
        ]
        ranking = {sig: rank for rank, sig in enumerate(sorted(set(sigs)))}
        colors = [ranking[sig] for sig in sigs]
        if len(ranking) == n_colors:
            return colors
        n_colors = len(ranking)


def _cells(colors: List[int]) -> Dict[int, List[int]]:
    cells: Dict[int, List[int]] = {}
    for node, color in enumerate(colors):
        cells.setdefault(color, []).append(node)
    return cells


# ---------------------------------------------------------------------------
# Canonical permutation
# ---------------------------------------------------------------------------
def _perm_from_discrete(colors: List[int]) -> np.ndarray:
    """All-singleton colouring -> permutation (node i -> rank of its colour)."""
    order = np.argsort(np.asarray(colors, dtype=np.int64), kind="stable")
    perm = np.empty(len(colors), dtype=np.int64)
    perm[order] = np.arange(len(colors))
    return perm


def _canonical_edges(
    graph: Graph, perm: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    cu = perm[graph.u]
    cv = perm[graph.v]
    lo = np.minimum(cu, cv)
    hi = np.maximum(cu, cv)
    order = np.lexsort((hi, lo))
    return lo[order], hi[order], graph.w[order]


def _edge_key(graph: Graph, perm: np.ndarray) -> Tuple[bytes, bytes, bytes]:
    lo, hi, w = _canonical_edges(graph, perm)
    return lo.tobytes(), hi.tobytes(), w.tobytes()


def _search_canonical_perm(
    graph: Graph, nbrs, colors: List[int], max_leaves: int
) -> np.ndarray:
    """Individualisation-refinement backtracking.

    Explores every member of the first non-singleton cell at each level
    (the branch set is a full cell, which is itself label-free, so the
    minimum over leaves is relabeling-invariant) and keeps the permutation
    whose canonical edge list is lexicographically smallest.
    """
    best: Optional[Tuple[Tuple[bytes, bytes, bytes], np.ndarray]] = None
    leaves = 0

    def recurse(colors: List[int]) -> None:
        nonlocal best, leaves
        colors = _refine(colors, nbrs)
        cells = _cells(colors)
        target: Optional[List[int]] = None
        for color in sorted(cells):
            if len(cells[color]) > 1:
                target = cells[color]
                break
        if target is None:
            leaves += 1
            if leaves > max_leaves:
                raise _SearchBudgetExceeded
            perm = _perm_from_discrete(colors)
            key = _edge_key(graph, perm)
            if best is None or key < best[0]:
                best = (key, perm)
            return
        for node in target:
            # Individualise: `node` gets a colour sorting just below its
            # cellmates; doubling keeps all other colour orderings intact.
            branched = [2 * c for c in colors]
            branched[node] = 2 * colors[node] - 1
            recurse(branched)

    recurse(colors)
    assert best is not None
    return best[1]


def _fallback_perm(colors: List[int]) -> np.ndarray:
    """Refinement colours with original-index tie-breaks (inexact mode)."""
    n = len(colors)
    order = np.lexsort((np.arange(n), np.asarray(colors, dtype=np.int64)))
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n)
    return perm


def canonical_fingerprint(
    graph: Graph,
    *,
    max_leaves: int = DEFAULT_MAX_LEAVES,
    max_search_nodes: int = DEFAULT_MAX_SEARCH_NODES,
) -> GraphFingerprint:
    """Compute the canonical fingerprint of ``graph`` (see module docs).

    Default-budget fingerprints are memoised on the (frozen) graph's own
    cache dict — like its adjacency views — so the hot cache-hit path of
    a repeatedly requested graph object pays the WL refinement once.
    """
    default_budgets = (
        max_leaves == DEFAULT_MAX_LEAVES
        and max_search_nodes == DEFAULT_MAX_SEARCH_NODES
    )
    if default_budgets:
        cached = graph._cache.get("canonical_fingerprint")
        if cached is not None:
            return cached
    fp = _compute_fingerprint(graph, max_leaves, max_search_nodes)
    if default_budgets:
        graph._cache["canonical_fingerprint"] = fp
    return fp


def _compute_fingerprint(
    graph: Graph, max_leaves: int, max_search_nodes: int
) -> GraphFingerprint:
    n = graph.n_nodes
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        digest = _digest_for(0, empty, empty, np.empty(0), True)
        return GraphFingerprint(digest, 0, empty, empty, empty, np.empty(0), True)
    if graph.n_edges == 0:
        # Every relabeling of an edgeless graph is the same graph; skip
        # the search (which would otherwise branch over one big cell).
        perm = np.arange(n, dtype=np.int64)
        canon_u, canon_v, canon_w = _canonical_edges(graph, perm)
        digest = _digest_for(n, canon_u, canon_v, canon_w, True)
        return GraphFingerprint(digest, n, perm, canon_u, canon_v, canon_w, True)
    nbrs = _neighbor_lists(graph)
    colors = _refine(_initial_colors(graph, nbrs), nbrs)
    exact = True
    if len(set(colors)) == n:
        perm = _perm_from_discrete(colors)
    elif n > max_search_nodes:
        perm = _fallback_perm(colors)
        exact = False
    else:
        try:
            perm = _search_canonical_perm(graph, nbrs, colors, max_leaves)
        except _SearchBudgetExceeded:
            perm = _fallback_perm(colors)
            exact = False
    canon_u, canon_v, canon_w = _canonical_edges(graph, perm)
    digest = _digest_for(n, canon_u, canon_v, canon_w, exact)
    return GraphFingerprint(digest, n, perm, canon_u, canon_v, canon_w, exact)


def _digest_for(
    n_nodes: int,
    canon_u: np.ndarray,
    canon_v: np.ndarray,
    canon_w: np.ndarray,
    exact: bool,
) -> str:
    h = hashlib.sha256()
    h.update(f"graph|{n_nodes}|{int(exact)}|".encode())
    h.update(np.ascontiguousarray(canon_u, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(canon_v, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(canon_w, dtype=np.float64).tobytes())
    return h.hexdigest()[:32]


# ---------------------------------------------------------------------------
# Request fingerprints
# ---------------------------------------------------------------------------
def _jsonable(obj):
    """Canonicalise a config value for stable JSON hashing."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(item) for item in obj]
    if hasattr(obj, "tolist"):  # numpy scalars and arrays
        return _jsonable(obj.tolist())
    if isinstance(obj, (str, bool)) or obj is None:
        return obj
    if isinstance(obj, (int, float)):
        return obj
    return repr(obj)


def config_token(config) -> str:
    """Stable serialisation of a solver-configuration mapping/sequence."""
    return json.dumps(_jsonable(config), sort_keys=True, separators=(",", ":"))


def request_digest(
    graph_digest: str,
    *,
    method: str,
    options: Optional[dict] = None,
    qaoa_grid: Optional[Sequence[dict]] = None,
    gw_options: Optional[dict] = None,
    seed: Optional[int] = None,
    exact: bool = False,
) -> str:
    """Cache key for one solve request: graph identity + full solver config.

    The seed is part of the key: a cached entry is only ever returned for
    a request that a from-scratch solve would answer with the very same
    deterministic computation (bit-identical for byte-equal graphs,
    isomorphism-mapped for relabelled ones).  ``exact`` is part of the key
    too: entries produced by the lock-step batch path agree with the
    reference path only to reduction-order float noise, so an
    ``exact``-flagged request (QAOA²'s bit-identical contract) must never
    be served one of them — the two regimes get disjoint cache entries.
    """
    payload = "|".join(
        (
            graph_digest,
            str(method),
            config_token(options or {}),
            config_token(list(qaoa_grid) if qaoa_grid else []),
            config_token(gw_options or {}),
            "auto" if seed is None else str(int(seed)),
            "exact" if exact else "batched",
        )
    )
    return hashlib.sha256(("request|" + payload).encode()).hexdigest()[:32]


__all__ = [
    "DEFAULT_MAX_LEAVES",
    "DEFAULT_MAX_SEARCH_NODES",
    "GraphFingerprint",
    "canonical_fingerprint",
    "config_token",
    "request_digest",
]
