"""Two-tier result cache: in-memory LRU (byte budget) + JSON disk tier.

Entries are keyed by the request digest (:func:`repro.service.fingerprint.
request_digest`) and store the solution in *canonical* node labels, so a
single entry serves every relabeling of the same graph; the service maps
the assignment back through each request's own fingerprint permutation.
Each entry also keeps the canonical edge arrays so a digest hit can be
verified exactly — a hash collision degrades to a miss, never to a wrong
answer.

Tiers
-----
* **memory** — an ``OrderedDict`` LRU bounded by ``max_bytes`` (entry
  sizes are estimated from their array payloads).  Hot entries cost one
  dict lookup plus the assignment re-index.
* **disk** — optional (``disk_dir``): entries are written through as one
  JSON file per digest and read back on memory misses (then promoted),
  so a restarted service warms up from its predecessor's work.
  :meth:`ResultCache.compact` merges the per-entry files into a single
  compacted data file plus a byte-offset index (``repro service-stats
  --compact``), so long-lived stores stop accumulating one inode per
  solve; fresh write-throughs keep landing as per-entry files (newest
  wins) until the next compaction folds them in.  Pass ``compact_every=N``
  to trigger compaction automatically once ``N`` loose files have been
  written since the last one — the async server's default mode, replacing
  the operator-invoked path for long-lived services.

Thread safety: one re-entrant lock serialises every public operation
(get/put/compact/clear), so the async server's shard worker threads — and
a threshold compaction firing inside a ``put`` — can share an instance
without torn LRU state.  Cross-*process* safety remains what it was:
atomic tmp+rename compaction, newest-loose-file-wins, and any torn or
stale read degrades to a miss.

Entries that carry optimal QAOA angles can be exported into the paper's
Fig. 3 knowledge base (:meth:`ResultCache.export_knowledge`), turning the
serving cache into warm-start data for future parameterisations.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.ml.knowledge import GridRecord, KnowledgeBase
from repro.service.fingerprint import GraphFingerprint
from repro.service.metrics import ServiceMetrics

DEFAULT_MAX_BYTES = 32 * 1024 * 1024
# Fixed per-entry overhead estimate (dict/dataclass plumbing, small
# scalars) added on top of the array payload sizes.
ENTRY_OVERHEAD_BYTES = 512
# Compacted-store filenames.  Entry files are ``<hex digest>.json``, so
# the ``compact.`` prefix can never collide with one.
COMPACT_DATA_FILE = "compact.data.jsonl"
COMPACT_INDEX_FILE = "compact.index.json"


@dataclass
class CacheEntry:
    """One cached solve, stored in canonical node labels."""

    digest: str
    n_nodes: int
    canon_u: np.ndarray
    canon_v: np.ndarray
    canon_w: np.ndarray
    assignment: np.ndarray  # canonical labels, uint8
    cut: float
    method: str
    seed: Optional[int] = None
    params: Optional[List[float]] = None  # optimal angles, when QAOA ran
    layers: Optional[int] = None
    rhobeg: Optional[float] = None
    extra: dict = field(default_factory=dict)
    hits: int = 0

    def __post_init__(self) -> None:
        self.canon_u = np.asarray(self.canon_u, dtype=np.int64)
        self.canon_v = np.asarray(self.canon_v, dtype=np.int64)
        self.canon_w = np.asarray(self.canon_w, dtype=np.float64)
        self.assignment = np.asarray(self.assignment, dtype=np.uint8)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return int(
            ENTRY_OVERHEAD_BYTES
            + self.canon_u.nbytes
            + self.canon_v.nbytes
            + self.canon_w.nbytes
            + self.assignment.nbytes
        )

    @property
    def n_edges(self) -> int:
        return len(self.canon_u)

    @property
    def density(self) -> float:
        if self.n_nodes < 2:
            return 0.0
        return 2.0 * self.n_edges / (self.n_nodes * (self.n_nodes - 1))

    @property
    def weighted(self) -> bool:
        return bool(self.n_edges) and not np.allclose(self.canon_w, 1.0)

    def matches(self, fp: GraphFingerprint) -> bool:
        """Exact canonical-graph verification for a digest hit."""
        return (
            self.n_nodes == fp.n_nodes
            and np.array_equal(self.canon_u, fp.canon_u)
            and np.array_equal(self.canon_v, fp.canon_v)
            and np.array_equal(self.canon_w, fp.canon_w)
        )

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        payload = asdict(self)
        for key in ("canon_u", "canon_v", "canon_w", "assignment"):
            payload[key] = payload[key].tolist()
        return payload

    @staticmethod
    def from_json(payload: dict) -> "CacheEntry":
        return CacheEntry(**payload)


class ResultCache:
    """LRU-over-bytes result store with optional JSON persistence."""

    # LRU state is shared between shard worker threads and the event-loop
    # thread; every mutation must happen under the cache lock (reads of
    # the scalar/dict attributes are deliberately lock-free snapshots).
    # Machine-checked by the guarded-by rule in repro.analysis.
    # repro: guarded-by=_lock writes=_entries,_nbytes,_compact_index,_loose_writes

    def __init__(
        self,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        disk_dir: Optional[str | Path] = None,
        metrics: Optional[ServiceMetrics] = None,
        compact_every: Optional[int] = None,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if compact_every is not None and compact_every < 1:
            raise ValueError("compact_every must be positive (or None)")
        self.max_bytes = int(max_bytes)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.compact_every = compact_every
        self._entries: Dict[str, CacheEntry] = {}  # insertion = LRU order
        self._nbytes = 0
        self._compact_index: Optional[Dict[str, Tuple[int, int]]] = None
        self._loose_writes = 0  # write-throughs since the last compaction
        # Re-entrant: a threshold compaction fires inside _admit, which
        # already holds the lock.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def entries(self) -> Iterator[CacheEntry]:
        return iter(list(self._entries.values()))

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[CacheEntry]:
        """Memory first, then disk (promoting); ``None`` on a full miss."""
        return self.get_tiered(digest)[0]

    def get_tiered(self, digest: str) -> Tuple[Optional[CacheEntry], Optional[str]]:
        """Like :meth:`get` but also names the serving tier.

        Returns ``(entry, "memory"|"disk")`` on a hit, ``(None, None)`` on
        a miss.  Callers must still verify :meth:`CacheEntry.matches`
        against the request's fingerprint before trusting the entry.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                # LRU touch: re-insert at the most-recent end.
                del self._entries[digest]
                self._entries[digest] = entry
                entry.hits += 1
                return entry, "memory"
            entry = self._disk_get(digest)
            if entry is not None:
                entry.hits += 1
                self._admit(entry, write_through=False)
                return entry, "disk"
            return None, None

    def put(self, entry: CacheEntry) -> None:
        self._admit(entry, write_through=True)

    def _admit(self, entry: CacheEntry, *, write_through: bool) -> None:
        with self._lock:
            old = self._entries.pop(entry.digest, None)
            if old is not None:
                self._nbytes -= old.nbytes
            self._entries[entry.digest] = entry
            self._nbytes += entry.nbytes
            if write_through and self.disk_dir is not None:
                self._disk_put(entry)
                self._loose_writes += 1
                if (
                    self.compact_every is not None
                    and self._loose_writes >= self.compact_every
                ):
                    self.compact()
            self._evict()

    # repro: holds-lock -- called from _admit, which holds the lock
    def _evict(self) -> None:
        while self._nbytes > self.max_bytes and len(self._entries) > 1:
            digest = next(iter(self._entries))  # least recently used
            dropped = self._entries.pop(digest)
            self._nbytes -= dropped.nbytes
            self.metrics.increment("evictions")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._nbytes = 0

    # ------------------------------------------------------------------
    def _disk_path(self, digest: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{digest}.json"

    def _disk_put(self, entry: CacheEntry) -> None:
        path = self._disk_path(entry.digest)
        path.write_text(json.dumps(entry.to_json()))

    def _disk_get(self, digest: str) -> Optional[CacheEntry]:
        if self.disk_dir is None:
            return None
        path = self._disk_path(digest)
        if path.exists():
            try:
                return CacheEntry.from_json(json.loads(path.read_text()))
            except (OSError, ValueError, TypeError, KeyError):
                # Torn write-through, or a concurrent compact() unlinked
                # the file between exists() and read — either way the
                # compacted store may still hold a valid copy.
                pass
        return self._compact_get(digest)

    def _loose_files(self) -> List[Path]:
        """Per-entry JSON files (excluding the compacted store's pair)."""
        assert self.disk_dir is not None
        return [
            path
            for path in self.disk_dir.glob("*.json")
            if not path.name.startswith("compact.")
        ]

    def disk_entries(self) -> int:
        """Distinct digests reachable on disk (loose files + compacted)."""
        if self.disk_dir is None:
            return 0
        with self._lock:
            digests = {path.stem for path in self._loose_files()}
            digests.update(self._load_compact_index())
            return len(digests)

    # ------------------------------------------------------------------
    # Compacted store: one JSONL data file + {digest: [offset, length]}
    # ------------------------------------------------------------------
    # repro: holds-lock -- every caller reads under the cache lock
    def _load_compact_index(self) -> Dict[str, Tuple[int, int]]:
        if self._compact_index is not None:
            return self._compact_index
        index: Dict[str, Tuple[int, int]] = {}
        if self.disk_dir is not None:
            path = self.disk_dir / COMPACT_INDEX_FILE
            if path.exists():
                try:
                    raw = json.loads(path.read_text())
                    index = {
                        str(digest): (int(pos[0]), int(pos[1]))
                        for digest, pos in raw["entries"].items()
                    }
                except (ValueError, TypeError, KeyError, IndexError):
                    index = {}  # torn index: treat the store as empty
        self._compact_index = index
        return index

    def _compact_get(self, digest: str) -> Optional[CacheEntry]:
        pos = self._load_compact_index().get(digest)
        if pos is None:
            return None
        offset, length = pos
        try:
            with open(self.disk_dir / COMPACT_DATA_FILE, "rb") as fh:
                fh.seek(offset)
                payload = json.loads(fh.read(length))
            if payload.get("digest") != digest:
                # A stale in-memory index against a rewritten data file
                # (another process compacted) can land cleanly on a
                # different entry — that is a miss, never a wrong answer.
                return None
            return CacheEntry.from_json(payload)
        except (OSError, ValueError, TypeError, KeyError, AttributeError):
            return None

    def compact(self) -> Dict[str, int]:
        """Merge the per-entry JSON files into the compacted store.

        Reads the existing compacted store first, then every loose
        ``<digest>.json`` (loose wins — it is the fresher write-through),
        rewrites ``compact.data.jsonl`` + ``compact.index.json``
        atomically (tmp + rename), and deletes the merged loose files.
        Returns ``{"entries", "merged_files", "data_bytes"}``.

        Runs holding the cache lock, so it is safe to trigger from any
        thread — including the threshold path firing inside a concurrent
        ``put`` — while other threads read and write.
        """
        if self.disk_dir is None:
            raise ValueError("compact() requires a disk_dir-backed cache")
        with self._lock:
            return self._compact_locked()

    # repro: holds-lock -- compact() takes the lock before delegating
    def _compact_locked(self) -> Dict[str, int]:
        payloads: Dict[str, dict] = {}
        for digest in self._load_compact_index():
            entry = self._compact_get(digest)
            if entry is not None:
                payloads[digest] = entry.to_json()
        loose: List[Tuple[Path, bytes]] = []
        for path in self._loose_files():
            try:
                raw = path.read_bytes()
                payload = json.loads(raw)
                payloads[str(payload["digest"])] = payload
            except (OSError, ValueError, TypeError, KeyError):
                continue  # torn file: nothing worth preserving
            loose.append((path, raw))
        data_path = self.disk_dir / COMPACT_DATA_FILE
        index_path = self.disk_dir / COMPACT_INDEX_FILE
        # Per-process tmp names: two concurrent compactions then race only
        # on the atomic renames (last one wins wholesale) instead of
        # interleaving writes into one shared tmp file.
        tag = f".{os.getpid()}.tmp"
        tmp_data = data_path.with_name(data_path.name + tag)
        index: Dict[str, Tuple[int, int]] = {}
        offset = 0
        with open(tmp_data, "wb") as fh:
            for digest in sorted(payloads):
                line = (json.dumps(payloads[digest]) + "\n").encode()
                fh.write(line)
                index[digest] = (offset, len(line) - 1)
                offset += len(line)
        tmp_index = index_path.with_name(index_path.name + tag)
        tmp_index.write_text(
            json.dumps({"version": 1, "entries": {d: list(p) for d, p in index.items()}})
        )
        tmp_data.replace(data_path)
        tmp_index.replace(index_path)
        for path, merged_bytes in loose:
            # Only remove what was actually merged: a write-through that
            # rewrote the file mid-compaction is fresher than the store
            # and must survive to win the next read/compaction (the
            # remaining read-vs-unlink window is microseconds, and a
            # lost loose copy degrades to the compacted entry, never to
            # a missing one).
            try:
                if path.read_bytes() == merged_bytes:
                    path.unlink(missing_ok=True)
            except OSError:
                continue
        self._compact_index = index
        self._loose_writes = 0
        self.metrics.increment("compactions")
        return {
            "entries": len(index),
            "merged_files": len(loose),
            "data_bytes": offset,
        }

    # ------------------------------------------------------------------
    def export_knowledge(self, kb: Optional[KnowledgeBase] = None) -> KnowledgeBase:
        """Fold cached QAOA outcomes into a Fig. 3 knowledge base.

        Entries with stored angles become :class:`GridRecord`s keyed by the
        entry's graph class; ``gw_cut`` uses the entry's recorded GW value
        when the request compared both solvers (method ``best``) and falls
        back to the QAOA cut itself otherwise (ratio 1 — the record then
        contributes its angles for warm starts without skewing win rates).
        """
        kb = kb if kb is not None else KnowledgeBase()
        for entry in self._entries.values():
            if entry.params is None or entry.layers is None:
                continue
            qaoa_cut = entry.extra.get("qaoa_cut")
            qaoa_cut = float(qaoa_cut) if qaoa_cut is not None else float(entry.cut)
            gw_cut = entry.extra.get("gw_cut")
            kb.add(
                GridRecord(
                    n_nodes=entry.n_nodes,
                    edge_probability=entry.density,
                    weighted=entry.weighted,
                    layers=int(entry.layers),
                    rhobeg=float(entry.rhobeg if entry.rhobeg is not None else 0.5),
                    qaoa_cut=qaoa_cut,
                    gw_cut=float(gw_cut) if gw_cut is not None else qaoa_cut,
                    qaoa_params=list(entry.params),
                )
            )
        return kb

    # ------------------------------------------------------------------
    def format_summary(self) -> str:
        lines = [
            f"cache: {len(self)} entries, {self._nbytes / 1024:.1f} KiB "
            f"of {self.max_bytes / 1024:.1f} KiB budget",
        ]
        if self.disk_dir is not None:
            lines.append(
                f"disk tier: {self.disk_entries()} entries under {self.disk_dir}"
            )
        return "\n".join(lines)


__all__ = [
    "COMPACT_DATA_FILE",
    "COMPACT_INDEX_FILE",
    "DEFAULT_MAX_BYTES",
    "ENTRY_OVERHEAD_BYTES",
    "CacheEntry",
    "ResultCache",
]
