"""Blocking HTTP client for the MaxCut serving stack.

:class:`HttpMaxCutClient` is the stdlib (:mod:`http.client`) counterpart
to :mod:`repro.service.http`: one persistent keep-alive connection, the
documented JSON wire schemas (``docs/http-api.md``), and the error
contract mapped back onto the service's own exception types —

* 503 ``overloaded``        -> :class:`repro.service.ServerOverloaded`
  (with the parsed ``Retry-After`` seconds on ``.retry_after``)
* 502 ``solve-failed``      -> :class:`repro.service.RequestError`
* any other non-200         -> :class:`HttpResponseError` (status, code,
  payload)

so callers can swap ``AsyncMaxCutServer.solve`` for a wire round-trip
without changing their error handling.  The client is synchronous by
design: benchmark client threads, examples and tests all drive it from
plain threads.
"""

from __future__ import annotations

import http.client
import json
from typing import Optional, Tuple

from repro.graphs.graph import Graph
from repro.service.http import (
    RETRY_AFTER_S,
    TRACE_HEADER,
    TRACE_ROUTE_PREFIX,
    jsonable,
    request_to_wire,
    result_from_wire,
)
from repro.service.server import RequestError, ServerOverloaded
from repro.service.service import ServiceResult, SolveRequest, build_request

DEFAULT_TIMEOUT_S = 300.0


class HttpResponseError(RuntimeError):
    """A non-200 response outside the overloaded/solve-failed contract."""

    def __init__(self, status: int, payload: dict) -> None:
        code = payload.get("code", "unknown")
        message = payload.get("error", "no error message")
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = int(status)
        self.code = str(code)
        self.payload = dict(payload)


class HttpMaxCutClient:
    """One keep-alive connection to an :class:`HttpMaxCutServer`.

    ::

        with HttpMaxCutClient(host, port) as client:
            result = client.solve(graph, layers=2, maxiter=30, seed=5)

    Not thread-safe (one underlying socket): give each client thread its
    own instance — connections are cheap and kept alive across requests.
    """

    def __init__(
        self, host: str, port: int, *, timeout: float = DEFAULT_TIMEOUT_S
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn: Optional[http.client.HTTPConnection] = None
        #: Response headers of the most recent round-trip (Retry-After &c).
        self.last_headers: dict = {}
        #: Trace id echoed by the most recent round-trip ("" if untraced).
        self.last_trace_id: str = ""

    # -- plumbing ------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "HttpMaxCutClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        *,
        headers: Optional[dict] = None,
    ) -> Tuple[int, dict]:
        """One round-trip; returns ``(status, decoded JSON body)``.

        Text responses (``GET /metrics``) are wrapped as ``{"text": ...}``.
        Retries exactly once on a stale keep-alive socket (the server
        closed an idle connection between our requests) — a fresh
        connection distinguishes "server gone" from "connection expired".
        """
        body = (
            None
            if payload is None
            else json.dumps(jsonable(payload)).encode("utf-8")
        )
        headers = dict(headers or {})
        if body is not None:
            headers.setdefault("Content-Type", "application/json")
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError):
                self.close()
                if attempt:
                    raise
        status = response.status
        self.last_headers = {name: value for name, value in response.getheaders()}
        self.last_trace_id = str(self.last_headers.get(TRACE_HEADER, ""))
        content_type = str(response.getheader("Content-Type") or "")
        if content_type.startswith("text/plain"):
            if response.getheader("Connection", "").lower() == "close":
                self.close()
            return status, {"text": raw.decode("utf-8")}
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpResponseError(
                status, {"code": "bad-response", "error": f"undecodable body: {exc}"}
            ) from exc
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        return status, decoded

    def _raise_for(self, status: int, payload: dict) -> None:
        if payload.get("code") == "overloaded":
            error = ServerOverloaded(payload.get("error", "server overloaded"))
            error.retry_after = float(  # type: ignore[attr-defined]
                self.last_headers.get("Retry-After", RETRY_AFTER_S)
            )
            raise error
        if payload.get("code") == "solve-failed":
            raise RequestError(payload.get("error", "solve failed"))
        raise HttpResponseError(status, payload)

    # -- API -----------------------------------------------------------
    def solve(
        self,
        graph: Optional[Graph] = None,
        *,
        request: Optional[SolveRequest] = None,
        deadline_s: Optional[float] = None,
        trace_id: Optional[str] = None,
        **options,
    ) -> ServiceResult:
        """Solve over the wire; mirrors ``AsyncMaxCutServer.solve``.

        Accepts the same two calling styles as every facade in the stack
        (a prebuilt :class:`SolveRequest`, or graph + keyword knobs) plus
        ``deadline_s``, the server-side per-request deadline, and
        ``trace_id``, sent as ``X-Repro-Trace`` so a tracing server names
        the request's trace; the echoed id lands on ``last_trace_id``.
        """
        solve_request = build_request(graph, request=request, **options)
        headers = {} if trace_id is None else {TRACE_HEADER: str(trace_id)}
        status, payload = self.request(
            "POST",
            "/solve",
            request_to_wire(solve_request, deadline_s=deadline_s),
            headers=headers,
        )
        if status != 200:
            self._raise_for(status, payload)
        return result_from_wire(payload)

    def healthz(self) -> dict:
        status, payload = self.request("GET", "/healthz")
        if status != 200:
            self._raise_for(status, payload)
        return payload

    def stats(self) -> dict:
        status, payload = self.request("GET", "/stats")
        if status != 200:
            self._raise_for(status, payload)
        return payload

    def metrics(self) -> str:
        """``GET /metrics`` — the raw Prometheus text exposition."""
        status, payload = self.request("GET", "/metrics")
        if status != 200:
            self._raise_for(status, payload)
        return str(payload.get("text", ""))

    def trace(self, trace_id: str) -> dict:
        """``GET /trace/<id>`` — a recorded span tree (with ``"tree"``)."""
        status, payload = self.request("GET", TRACE_ROUTE_PREFIX + str(trace_id))
        if status != 200:
            self._raise_for(status, payload)
        return payload


__all__ = ["DEFAULT_TIMEOUT_S", "HttpMaxCutClient", "HttpResponseError"]
