"""Trace collection and profiling on top of :mod:`repro.util.tracing`.

The primitives (``Span``, ``TraceContext``, ``NO_TRACE``, the
``current_trace`` contextvar) live in ``repro.util.tracing`` so that
CORE packages can emit spans; this module is the *service-side* half:

* :class:`TraceRecorder` — a bounded in-memory ring buffer of completed
  traces, an optional JSONL sink (one ``trace.to_dict()`` per line), and
  a slow-request log that writes the full span tree of any request over
  a configurable wall-time threshold to the ``repro.service.trace``
  logger.
* Per-stage aggregation (:meth:`TraceRecorder.stage_summary` /
  :meth:`TraceRecorder.format_stage_table`) — the breakdown table behind
  ``service-stats`` that says where p95 time actually went: wire parse,
  queue wait, cut-diagonal build, backend evolve, or cache I/O.

Span vocabulary emitted by the stack (see docs/observability.md):
``wire-parse``, ``submit``, ``shard-queue``, ``coalesced-inflight``,
``solve``, ``fingerprint``, ``lookup``, ``store``, ``lockstep-batch``,
``cut_diagonal``, ``evolve_chunk``, ``walsh_stage``, ``backend-evolve``.
"""

from __future__ import annotations

import json
import logging
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.util.tracing import (
    NO_TRACE,
    NullTraceContext,
    Span,
    TraceContext,
    current_trace,
    use_trace,
)

__all__ = [
    "NO_TRACE",
    "NullTraceContext",
    "Span",
    "TraceContext",
    "TraceRecorder",
    "current_trace",
    "use_trace",
]

logger = logging.getLogger("repro.service.trace")

#: Completed traces kept in memory per recorder (ring buffer).
DEFAULT_TRACE_CAPACITY = 256

#: Slow traces kept separately so a burst of fast requests cannot evict
#: the interesting ones.
DEFAULT_SLOW_CAPACITY = 32


class TraceRecorder:
    """Bounded buffer of completed traces + JSONL sink + slow log.

    ``record()`` is cheap (a deque append and, when configured, one
    buffered line write), so it is safe to call from the event loop as
    the response goes out; the JSONL sink is an operator opt-in meant
    for offline analysis, not a high-volume audit log.
    """

    # The event loop records while the CLI/stats path reads concurrently.
    # repro: guarded-by=_lock writes=_traces,_slow

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        *,
        jsonl_path: Optional[str] = None,
        slow_threshold_s: Optional[float] = None,
        slow_capacity: int = DEFAULT_SLOW_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.jsonl_path = jsonl_path
        self.slow_threshold_s = slow_threshold_s
        self._traces: Deque[TraceContext] = deque(maxlen=capacity)
        self._slow: Deque[TraceContext] = deque(maxlen=max(1, slow_capacity))
        self._recorded = 0
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------

    def record(self, trace: "TraceContext | NullTraceContext") -> None:
        """File a finished trace (no-ops for ``NO_TRACE``)."""
        if not isinstance(trace, TraceContext):
            return
        if not trace.finished:
            trace.finish()
        slow = (
            self.slow_threshold_s is not None
            and trace.wall_s >= self.slow_threshold_s
        )
        with self._lock:
            self._traces.append(trace)
            self._recorded += 1
            if slow:
                self._slow.append(trace)
        if slow:
            logger.warning(
                "slow request (%.3f s >= %.3f s)\n%s",
                trace.wall_s,
                self.slow_threshold_s,
                trace.format_tree(),
            )
        if self.jsonl_path is not None:
            line = json.dumps(trace.to_dict(), sort_keys=True)
            with open(self.jsonl_path, "a", encoding="utf-8") as sink:
                sink.write(line + "\n")

    # -- retrieval -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    @property
    def recorded_total(self) -> int:
        """Traces ever recorded, including ones the ring has evicted."""
        with self._lock:
            return self._recorded

    def get(self, trace_id: str) -> Optional[TraceContext]:
        """The buffered trace with this id, newest match wins."""
        with self._lock:
            buffered = list(self._traces)
        for trace in reversed(buffered):
            if trace.trace_id == trace_id:
                return trace
        return None

    def last(self, n: int = 1) -> List[TraceContext]:
        """The ``n`` most recent traces, oldest first."""
        if n < 1:
            return []
        with self._lock:
            buffered = list(self._traces)
        return buffered[-n:]

    def slow(self) -> List[TraceContext]:
        """Buffered slow traces (threshold crossers), oldest first."""
        with self._lock:
            return list(self._slow)

    # -- aggregation ---------------------------------------------------

    def stage_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name totals across the buffer: count, wall, CPU.

        The root ``request`` span is included so callers can compute
        each stage's share of end-to-end time.
        """
        out: Dict[str, Dict[str, float]] = {}
        for trace in self.last(self.capacity):
            for span in trace.iter_spans():
                row = out.setdefault(
                    span.name, {"count": 0.0, "wall_s": 0.0, "cpu_s": 0.0}
                )
                row["count"] += 1
                row["wall_s"] += span.wall_s
                row["cpu_s"] += span.cpu_s
        return out

    def format_stage_table(self, title: str = "trace stage breakdown") -> str:
        """Render :meth:`stage_summary` as the ``service-stats`` table."""
        summary = self.stage_summary()
        lines = [title, "=" * len(title)]
        if not summary:
            lines.append("  (no traces recorded)")
            return "\n".join(lines)
        request_wall = summary.get("request", {}).get("wall_s", 0.0)
        denominator = request_wall if request_wall > 0 else None
        lines.append(
            f"  {'stage':<20} {'count':>7} {'wall_s':>10} "
            f"{'cpu_s':>10} {'share':>7}"
        )
        for name in sorted(
            summary, key=lambda key: summary[key]["wall_s"], reverse=True
        ):
            row = summary[name]
            share = (
                f"{100.0 * row['wall_s'] / denominator:6.1f}%"
                if denominator
                else "    n/a"
            )
            lines.append(
                f"  {name:<20} {int(row['count']):>7d} {row['wall_s']:>10.4f} "
                f"{row['cpu_s']:>10.4f} {share:>7}"
            )
        return "\n".join(lines)

    def to_dicts(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """JSON-ready dumps of the last ``n`` (default: all) traces."""
        return [
            trace.to_dict()
            for trace in self.last(self.capacity if n is None else n)
        ]
