"""Horizontal sharding for the MaxCut service: fingerprint-prefix routing.

The canonical graph fingerprint (:mod:`repro.service.fingerprint`) is a
content address: every relabeling of the same graph hashes to the same
digest, and the digest's hex characters are (by SHA-256's design)
uniformly distributed.  That makes its leading prefix the natural shard
key — routing is

* **deterministic** — the same graph always lands on the same shard, so
  one shard owns all cache entries, in-flight solves and scheduler state
  for a graph (no cross-shard coherence protocol needed);
* **relabeling-invariant** — isomorphic requests land together and keep
  coalescing/cache sharing across clients;
* **balanced** — over many distinct graphs the prefix is uniform, so
  shard loads concentrate tightly around ``total / n_shards``.

All *configurations* of one graph co-locate too (the shard key is the
graph fingerprint, not the request digest), which preserves the
scheduler's same-graph diagonal sharing and lock-step batching.

Balance bound
-------------
For ``K`` distinct graphs routed over ``S`` shards the per-shard load is
Binomial(K, 1/S): mean ``K/S``, standard deviation below
``sqrt(K/S)``.  :data:`BALANCE_BOUND` documents the guarantee the test
suite pins: for ``K >= 1000`` and ``S <= 8``, every shard's load is
within ``BALANCE_BOUND`` (35%) of the mean — more than four standard
deviations of slack at the worst documented point (``K=1000, S=8``:
mean 125, sd ~10.5, bound ±43.75).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.service.fingerprint import GraphFingerprint

# Hex characters of the fingerprint digest used as the routing prefix.
# 8 hex chars = 32 uniform bits, far more resolution than any realistic
# shard count needs.
SHARD_PREFIX_HEX = 8

# Documented load-balance guarantee (relative deviation from the mean
# shard load) for >= 1000 distinct graphs over <= 8 shards; derivation in
# the module docstring, pinned by tests/test_service_sharding.py.
BALANCE_BOUND = 0.35


def shard_for_digest(digest: str, n_shards: int) -> int:
    """Deterministic shard index for a canonical fingerprint digest."""
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    if n_shards == 1:
        return 0
    return int(digest[:SHARD_PREFIX_HEX], 16) % n_shards


class ShardRouter:
    """Owns ``n_shards`` backend instances and routes fingerprints to them.

    ``factory(shard_index)`` builds each shard's backend — for the async
    server that is one :class:`~repro.service.service.MaxCutService` per
    shard, each with its own cache, scheduler and metrics (state is
    *partitioned*, never shared, which is what makes the shards safe to
    drive from concurrent worker threads).
    """

    def __init__(self, n_shards: int, factory: Callable[[int], object]) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        self.n_shards = n_shards
        self.shards: List[object] = [factory(k) for k in range(n_shards)]
        self.loads: List[int] = [0] * n_shards  # admissions per shard

    # ------------------------------------------------------------------
    def shard_index(self, fp: GraphFingerprint | str) -> int:
        digest = fp if isinstance(fp, str) else fp.digest
        return shard_for_digest(digest, self.n_shards)

    def route(self, fp: GraphFingerprint | str, *, count: bool = True) -> object:
        """The backend owning ``fp``; ``count`` records the admission."""
        index = self.shard_index(fp)
        if count:
            self.loads[index] += 1
        return self.shards[index]

    # ------------------------------------------------------------------
    def load_report(self) -> str:
        total = sum(self.loads)
        lines = [f"shards: {self.n_shards}, admissions: {total}"]
        for index, load in enumerate(self.loads):
            share = load / total if total else 0.0
            lines.append(f"  shard {index}: {load} ({share:.1%})")
        return "\n".join(lines)


def shard_counts(digests: Sequence[str], n_shards: int) -> Dict[int, int]:
    """Load histogram of ``digests`` over ``n_shards`` (analysis helper)."""
    counts: Dict[int, int] = {k: 0 for k in range(n_shards)}
    for digest in digests:
        counts[shard_for_digest(digest, n_shards)] += 1
    return counts


__all__ = [
    "BALANCE_BOUND",
    "SHARD_PREFIX_HEX",
    "ShardRouter",
    "shard_counts",
    "shard_for_digest",
]
