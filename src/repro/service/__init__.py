"""repro.service — the request-level MaxCut serving stack.

Turns the repo's solvers into a high-throughput service whose unit of
work is a *request* (graph + solver configuration) rather than a graph:

* :mod:`repro.service.fingerprint` — canonical graph hashing (degree
  refinement + individualisation backtracking) so relabeled-isomorphic
  requests share one identity;
* :mod:`repro.service.cache`       — two-tier result cache (byte-budget
  LRU + JSON disk tier) with knowledge-base warm-start export;
* :mod:`repro.service.scheduler`   — coalesced-job dispatch: lock-step
  SPSA batches, shared cut diagonals, executor fan-out;
* :mod:`repro.service.service`     — the :class:`MaxCutService` facade
  (``submit`` / ``result`` / ``solve`` / ``solve_many``);
* :mod:`repro.service.sharding`    — fingerprint-prefix shard routing
  (:class:`ShardRouter`): deterministic and relabeling-invariant;
* :mod:`repro.service.server`      — :class:`AsyncMaxCutServer`, the
  asyncio front end: concurrent clients, cross-client in-flight
  coalescing, bounded-queue admission control, per-shard worker
  threads (``python -m repro serve``);
* :mod:`repro.service.http`        — stdlib HTTP/1.1 wire transport over
  the async server: JSON protocol, per-request deadlines, keep-alive,
  graceful drain (``python -m repro serve --http HOST:PORT``; contract
  in ``docs/http-api.md``);
* :mod:`repro.service.client`      — :class:`HttpMaxCutClient`, the
  blocking keep-alive client speaking the same wire schema;
* :mod:`repro.service.metrics`     — counters and latency histograms
  behind ``python -m repro service-stats``, ``GET /stats`` and the
  Prometheus exposition ``GET /metrics``;
* :mod:`repro.service.trace`       — :class:`TraceRecorder`: bounded
  ring buffer of finished request span trees, JSONL sink, slow-request
  log and per-stage breakdown (``python -m repro trace``; span
  vocabulary in ``docs/observability.md``).

See ``src/repro/service/README.md`` for the request lifecycle.
"""

from repro.service.cache import CacheEntry, ResultCache
from repro.service.client import HttpMaxCutClient, HttpResponseError
from repro.service.fingerprint import (
    GraphFingerprint,
    canonical_fingerprint,
    config_token,
    request_digest,
)
from repro.service.http import (
    HttpMaxCutServer,
    HttpServerThread,
    WireFormatError,
    serve_http,
)
from repro.service.metrics import LatencyStats, ServiceMetrics
from repro.service.scheduler import BatchScheduler, ScheduledJob
from repro.service.server import (
    AsyncMaxCutServer,
    RequestError,
    ServerOverloaded,
    serve_requests,
)
from repro.service.service import (
    MaxCutService,
    RequestKey,
    ServiceResult,
    SolveRequest,
    build_request,
    zipf_requests,
)
from repro.service.sharding import ShardRouter, shard_for_digest
from repro.service.trace import TraceRecorder
from repro.util.tracing import NO_TRACE, TraceContext

__all__ = [
    "AsyncMaxCutServer",
    "BatchScheduler",
    "CacheEntry",
    "GraphFingerprint",
    "HttpMaxCutClient",
    "HttpMaxCutServer",
    "HttpResponseError",
    "HttpServerThread",
    "LatencyStats",
    "MaxCutService",
    "NO_TRACE",
    "RequestError",
    "RequestKey",
    "ResultCache",
    "ScheduledJob",
    "ServerOverloaded",
    "ServiceMetrics",
    "ServiceResult",
    "ShardRouter",
    "SolveRequest",
    "TraceContext",
    "TraceRecorder",
    "WireFormatError",
    "build_request",
    "canonical_fingerprint",
    "config_token",
    "request_digest",
    "serve_http",
    "serve_requests",
    "shard_for_digest",
    "zipf_requests",
]
