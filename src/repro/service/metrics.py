"""Service observability: counters and latency histograms.

Deliberately dependency-free (no prometheus / statsd): a counter map plus
reservoir latency recorders, rendered as the text report behind
``python -m repro service-stats``.  Everything is in-process; the service
mutates one :class:`ServiceMetrics` instance and callers read snapshots.

Counter vocabulary used by the service stack (callers may add their own):

``requests``        every request seen by ``solve_many``/``solve``
``hits_memory``     answered from the in-memory cache tier
``hits_disk``       answered from the JSON disk tier (then promoted)
``misses``          required an actual solve
``coalesced``       duplicate in-flight requests folded into one job
    (both within one ``solve_many`` batch and — on the async server —
    across concurrent clients)
``coalesced_inflight``  the cross-client subset of ``coalesced``: a
    submission that attached to another client's in-flight solve
``solves``          cold solves executed
``errors``          requests answered with a captured per-request error
``job_errors``      scheduler jobs whose solve raised (captured mode)
``lockstep_jobs``   jobs dispatched inside a lock-step SPSA batch
``lockstep_batches``lock-step batches dispatched
``shared_diagonals``jobs that reused a batch-mate's cut diagonal
``evictions``       LRU entries dropped for the byte budget
``compactions``     disk-tier compactions (operator- or threshold-run)
``cache_skipped``   solves below the cost floor, not admitted to cache
``executor_retries``job batches re-run serially after an executor crash
``rejected``        submissions refused by a full shard queue (reject)
``shed``            queued submissions dropped for a newer one (shed)
``backend_<name>``  QAOA solves evolved by that statevector backend

Per-shard accounting satisfies ``requests == hits_memory + hits_disk +
coalesced + misses`` (rejected/shed submissions were never admitted and
are counted separately; ``errors`` counts the subset of misses/coalesced
answered with a captured error) — pinned by the server test suite.

All mutation goes through one lock per :class:`ServiceMetrics` instance,
so shard worker threads and the event-loop thread can share a recorder.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

# Reservoir cap per histogram: enough samples for stable p50/p95 at the
# request volumes an in-process service sees, bounded so long-lived
# services do not grow without limit.
DEFAULT_RESERVOIR = 4096

# Histogram upper bounds (seconds) for the Prometheus exposition: a
# 1-2.5-5 ladder from 100µs (cache lookups) to 10s (cold QAOA solves).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


def _strided_subsample(samples: List[float], k: int) -> List[float]:
    """``k`` samples drawn at an even stride (deterministic, order kept)."""
    if k <= 0:
        return []
    if k >= len(samples):
        return list(samples)
    step = len(samples) / k
    return [samples[int(i * step)] for i in range(k)]


class LatencyStats:
    """Streaming latency recorder with percentile readout.

    Keeps exact count/total/min/max plus a bounded sample reservoir for
    percentiles.  Past the cap, new samples overwrite pseudo-randomly (a
    deterministic linear-congruential index stream, so runs are
    reproducible without consuming any caller RNG).
    """

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must be positive")
        self.reservoir = reservoir
        self.count = 0
        self.total = 0.0
        self.min = np.inf
        self.max = -np.inf
        self._samples: List[float] = []
        self._lcg = 0x9E3779B9

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)
        if len(self._samples) < self.reservoir:
            self._samples.append(seconds)
        else:
            self._lcg = (self._lcg * 1103515245 + 12345) % (1 << 31)
            slot = self._lcg % self.reservoir
            # Classic reservoir sampling keeps the slot only with
            # probability reservoir/count; a cheap deterministic analogue.
            if self._lcg % self.count < self.reservoir:
                self._samples[slot] = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """q in [0, 100]; NaN when nothing has been observed."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.asarray(self._samples), q))

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
        }

    def merge(self, other: "LatencyStats") -> None:
        """Fold ``other``'s observations into this recorder (shard rollup).

        Exact statistics (count/total/min/max) merge exactly.  The two
        sample reservoirs are combined by a deterministic proportional
        subsample: each side contributes a share of the capacity matching
        its share of the *observation* count (not its reservoir length),
        drawn with an even stride so the kept samples span each side's
        history.  A plain ``(self + other)[:reservoir]`` would silently
        drop all of ``other``'s samples whenever ``self`` is already
        full, skewing merged percentiles toward one shard.
        """
        total_count = self.count + other.count
        if len(self._samples) + len(other._samples) <= self.reservoir:
            merged = self._samples + other._samples
        elif total_count <= 0:
            merged = (self._samples + other._samples)[: self.reservoir]
        else:
            k_self = int(round(self.reservoir * self.count / total_count))
            if other._samples and other.count:
                k_self = min(k_self, self.reservoir - 1)
            if self._samples and self.count:
                k_self = max(k_self, 1)
            merged = _strided_subsample(self._samples, k_self)
            merged += _strided_subsample(
                other._samples, self.reservoir - len(merged)
            )
        self.count = total_count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._samples = merged

    def bucket_counts(self, bounds: Sequence[float]) -> List[int]:
        """Cumulative observation counts per upper bound (histogram rows).

        The reservoir only *samples* past capacity, so per-bucket sample
        fractions are rescaled by the exact observation count; rounding
        is monotone, so the cumulative counts stay non-decreasing (a
        Prometheus histogram invariant).
        """
        if not self._samples:
            return [0] * len(bounds)
        samples = np.sort(np.asarray(self._samples))
        positions = np.searchsorted(samples, np.asarray(bounds), side="right")
        return [
            int(round(self.count * int(pos) / len(samples))) for pos in positions
        ]


class ServiceMetrics:
    """Counter map + named latency histograms, with a text report."""

    # Shard workers and the event loop mutate one instance concurrently:
    # all writes go through the lock; reads are lock-free snapshots by
    # design (see the module docstring).  Machine-checked by the
    # guarded-by rule in repro.analysis.
    # repro: guarded-by=_lock writes=counters,latencies

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        self._reservoir = reservoir
        self.counters: Dict[str, int] = {}
        self.latencies: Dict[str, LatencyStats] = {}
        # Shard workers mutate their service's metrics from worker
        # threads while the event loop reads them; one lock per instance
        # keeps read-modify-write increments and reservoir appends atomic.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def increment(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + int(n)

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            stats = self.latencies.get(name)
            if stats is None:
                stats = self.latencies[name] = LatencyStats(self._reservoir)
            stats.observe(seconds)

    def percentile(self, name: str, q: float) -> float:
        stats = self.latencies.get(name)
        return stats.percentile(q) if stats is not None else float("nan")

    def counter_snapshot(self) -> Dict[str, int]:
        """Sorted copy of the counter map."""
        return dict(sorted(self.counters.items()))

    def latency_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Sorted per-histogram summaries (count/mean/p50/p95/min/max)."""
        return {
            name: stats.summary()
            for name, stats in sorted(self.latencies.items())
        }

    def snapshot(self) -> Dict[str, object]:
        return {
            "counters": self.counter_snapshot(),
            "latencies": self.latency_snapshot(),
        }

    def json_snapshot(self) -> Dict[str, object]:
        """Like :meth:`snapshot`, but strictly JSON-serialisable.

        Empty histograms report NaN/±inf sentinels (min/max/percentiles);
        strict JSON has no encoding for those, so they become ``None``
        here.  This is the payload behind the HTTP ``GET /stats``
        endpoint (:mod:`repro.service.http`).
        """

        def clean(value: float) -> Optional[float]:
            if not np.isfinite(value):
                return None
            return value

        return {
            "counters": self.counter_snapshot(),
            "latencies": {
                name: {key: clean(val) for key, val in summary.items()}
                for name, summary in self.latency_snapshot().items()
            },
        }

    # ------------------------------------------------------------------
    @classmethod
    def merged(cls, parts: Iterable["ServiceMetrics"]) -> "ServiceMetrics":
        """One recorder aggregating several shards' counters/latencies."""
        out: Optional[ServiceMetrics] = None
        for part in parts:
            if out is None:
                out = cls(part._reservoir)
            with part._lock:
                counters = dict(part.counters)
                latencies = dict(part.latencies)
            for name, value in counters.items():
                out.increment(name, value)
            for name, stats in latencies.items():
                target = out.latencies.get(name)
                if target is None:
                    target = out.latencies[name] = LatencyStats(out._reservoir)
                target.merge(stats)
        return out if out is not None else cls()

    # ------------------------------------------------------------------
    def hit_rate(self) -> Optional[float]:
        """Fraction of requests answered without a cold solve."""
        requests = self.count("requests")
        if requests == 0:
            return None
        served = (
            self.count("hits_memory")
            + self.count("hits_disk")
            + self.count("coalesced")
        )
        return served / requests

    def format_report(self, title: str = "service metrics") -> str:
        lines = [title, "=" * len(title), "", "counters"]
        if self.counters:
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                lines.append(f"  {name:<{width}}  {self.counters[name]}")
        else:
            lines.append("  (none)")
        rate = self.hit_rate()
        if rate is not None:
            lines.append(f"  {'hit_rate':<{max(8, len('hit_rate'))}}  {rate:.1%}")
        lines.append("")
        lines.append("latencies (seconds)")
        if self.latencies:
            header = f"  {'name':<16} {'count':>6} {'mean':>10} {'p50':>10} {'p95':>10} {'max':>10}"
            lines.append(header)
            for name in sorted(self.latencies):
                s = self.latencies[name].summary()
                lines.append(
                    f"  {name:<16} {s['count']:>6d} {s['mean']:>10.6f} "
                    f"{s['p50']:>10.6f} {s['p95']:>10.6f} {s['max']:>10.6f}"
                )
        else:
            lines.append("  (none)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4) — behind ``GET /metrics``.

#: Characters Prometheus forbids in metric names, replaced by ``_``.
_METRIC_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")

#: Content type a Prometheus scraper expects for the text format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _metric_name(namespace: str, name: str, suffix: str = "") -> str:
    return _METRIC_NAME_BAD.sub("_", f"{namespace}_{name}{suffix}")


def render_prometheus(
    metrics: "ServiceMetrics",
    *,
    namespace: str = "repro",
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> str:
    """Render counters + latency histograms as Prometheus text format.

    Counters become ``<ns>_<name>_total``; every latency reservoir
    becomes a ``<ns>_<name>_seconds`` histogram whose cumulative buckets
    are rescaled from the reservoir to the exact observation count (see
    :meth:`LatencyStats.bucket_counts`).  The snapshot is taken under the
    metrics lock so a scrape never sees a torn increment.
    """
    with metrics._lock:
        counters = dict(metrics.counters)
        histograms = {
            name: (stats.count, stats.total, stats.bucket_counts(buckets))
            for name, stats in metrics.latencies.items()
        }
    lines: List[str] = []
    for name in sorted(counters):
        metric = _metric_name(namespace, name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name]}")
    rate = metrics.hit_rate()
    if rate is not None:
        metric = _metric_name(namespace, "hit_rate")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {rate:.6f}")
    for name in sorted(histograms):
        count, total, cumulative = histograms[name]
        metric = _metric_name(namespace, name, "_seconds")
        lines.append(f"# TYPE {metric} histogram")
        for bound, value in zip(buckets, cumulative):
            lines.append(f'{metric}_bucket{{le="{bound:g}"}} {value}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{metric}_sum {total:.9f}")
        lines.append(f"{metric}_count {count}")
    return "\n".join(lines) + "\n"


__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_RESERVOIR",
    "LatencyStats",
    "PROMETHEUS_CONTENT_TYPE",
    "ServiceMetrics",
    "render_prometheus",
]
