"""Service observability: counters and latency histograms.

Deliberately dependency-free (no prometheus / statsd): a counter map plus
reservoir latency recorders, rendered as the text report behind
``python -m repro service-stats``.  Everything is in-process; the service
mutates one :class:`ServiceMetrics` instance and callers read snapshots.

Counter vocabulary used by the service stack (callers may add their own):

``requests``        every request seen by ``solve_many``/``solve``
``hits_memory``     answered from the in-memory cache tier
``hits_disk``       answered from the JSON disk tier (then promoted)
``misses``          required an actual solve
``coalesced``       duplicate in-flight requests folded into one job
``solves``          cold solves executed
``lockstep_jobs``   jobs dispatched inside a lock-step SPSA batch
``lockstep_batches``lock-step batches dispatched
``shared_diagonals``jobs that reused a batch-mate's cut diagonal
``evictions``       LRU entries dropped for the byte budget
``backend_<name>``  QAOA solves evolved by that statevector backend
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

# Reservoir cap per histogram: enough samples for stable p50/p95 at the
# request volumes an in-process service sees, bounded so long-lived
# services do not grow without limit.
DEFAULT_RESERVOIR = 4096


class LatencyStats:
    """Streaming latency recorder with percentile readout.

    Keeps exact count/total/min/max plus a bounded sample reservoir for
    percentiles.  Past the cap, new samples overwrite pseudo-randomly (a
    deterministic linear-congruential index stream, so runs are
    reproducible without consuming any caller RNG).
    """

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must be positive")
        self.reservoir = reservoir
        self.count = 0
        self.total = 0.0
        self.min = np.inf
        self.max = -np.inf
        self._samples: List[float] = []
        self._lcg = 0x9E3779B9

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)
        if len(self._samples) < self.reservoir:
            self._samples.append(seconds)
        else:
            self._lcg = (self._lcg * 1103515245 + 12345) % (1 << 31)
            slot = self._lcg % self.reservoir
            # Classic reservoir sampling keeps the slot only with
            # probability reservoir/count; a cheap deterministic analogue.
            if self._lcg % self.count < self.reservoir:
                self._samples[slot] = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """q in [0, 100]; NaN when nothing has been observed."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.asarray(self._samples), q))

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
        }


class ServiceMetrics:
    """Counter map + named latency histograms, with a text report."""

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        self._reservoir = reservoir
        self.counters: Dict[str, int] = {}
        self.latencies: Dict[str, LatencyStats] = {}

    # ------------------------------------------------------------------
    def increment(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def observe(self, name: str, seconds: float) -> None:
        stats = self.latencies.get(name)
        if stats is None:
            stats = self.latencies[name] = LatencyStats(self._reservoir)
        stats.observe(seconds)

    def percentile(self, name: str, q: float) -> float:
        stats = self.latencies.get(name)
        return stats.percentile(q) if stats is not None else float("nan")

    def snapshot(self) -> Dict[str, object]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "latencies": {
                name: stats.summary()
                for name, stats in sorted(self.latencies.items())
            },
        }

    # ------------------------------------------------------------------
    def hit_rate(self) -> Optional[float]:
        """Fraction of requests answered without a cold solve."""
        requests = self.count("requests")
        if requests == 0:
            return None
        served = (
            self.count("hits_memory")
            + self.count("hits_disk")
            + self.count("coalesced")
        )
        return served / requests

    def format_report(self, title: str = "service metrics") -> str:
        lines = [title, "=" * len(title), "", "counters"]
        if self.counters:
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                lines.append(f"  {name:<{width}}  {self.counters[name]}")
        else:
            lines.append("  (none)")
        rate = self.hit_rate()
        if rate is not None:
            lines.append(f"  {'hit_rate':<{max(8, len('hit_rate'))}}  {rate:.1%}")
        lines.append("")
        lines.append("latencies (seconds)")
        if self.latencies:
            header = f"  {'name':<16} {'count':>6} {'mean':>10} {'p50':>10} {'p95':>10} {'max':>10}"
            lines.append(header)
            for name in sorted(self.latencies):
                s = self.latencies[name].summary()
                lines.append(
                    f"  {name:<16} {s['count']:>6d} {s['mean']:>10.6f} "
                    f"{s['p50']:>10.6f} {s['p95']:>10.6f} {s['max']:>10.6f}"
                )
        else:
            lines.append("  (none)")
        return "\n".join(lines)


__all__ = ["DEFAULT_RESERVOIR", "LatencyStats", "ServiceMetrics"]
