"""Service observability: counters and latency histograms.

Deliberately dependency-free (no prometheus / statsd): a counter map plus
reservoir latency recorders, rendered as the text report behind
``python -m repro service-stats``.  Everything is in-process; the service
mutates one :class:`ServiceMetrics` instance and callers read snapshots.

Counter vocabulary used by the service stack (callers may add their own):

``requests``        every request seen by ``solve_many``/``solve``
``hits_memory``     answered from the in-memory cache tier
``hits_disk``       answered from the JSON disk tier (then promoted)
``misses``          required an actual solve
``coalesced``       duplicate in-flight requests folded into one job
    (both within one ``solve_many`` batch and — on the async server —
    across concurrent clients; the latter additionally counts as
    ``coalesced_inflight``)
``solves``          cold solves executed
``errors``          requests answered with a captured per-request error
``lockstep_jobs``   jobs dispatched inside a lock-step SPSA batch
``lockstep_batches``lock-step batches dispatched
``shared_diagonals``jobs that reused a batch-mate's cut diagonal
``evictions``       LRU entries dropped for the byte budget
``compactions``     disk-tier compactions (operator- or threshold-run)
``cache_skipped``   solves below the cost floor, not admitted to cache
``executor_retries``job batches re-run serially after an executor crash
``rejected``        submissions refused by a full shard queue (reject)
``shed``            queued submissions dropped for a newer one (shed)
``backend_<name>``  QAOA solves evolved by that statevector backend

Per-shard accounting satisfies ``requests == hits_memory + hits_disk +
coalesced + misses`` (rejected/shed submissions were never admitted and
are counted separately; ``errors`` counts the subset of misses/coalesced
answered with a captured error) — pinned by the server test suite.

All mutation goes through one lock per :class:`ServiceMetrics` instance,
so shard worker threads and the event-loop thread can share a recorder.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

import numpy as np

# Reservoir cap per histogram: enough samples for stable p50/p95 at the
# request volumes an in-process service sees, bounded so long-lived
# services do not grow without limit.
DEFAULT_RESERVOIR = 4096


class LatencyStats:
    """Streaming latency recorder with percentile readout.

    Keeps exact count/total/min/max plus a bounded sample reservoir for
    percentiles.  Past the cap, new samples overwrite pseudo-randomly (a
    deterministic linear-congruential index stream, so runs are
    reproducible without consuming any caller RNG).
    """

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must be positive")
        self.reservoir = reservoir
        self.count = 0
        self.total = 0.0
        self.min = np.inf
        self.max = -np.inf
        self._samples: List[float] = []
        self._lcg = 0x9E3779B9

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)
        if len(self._samples) < self.reservoir:
            self._samples.append(seconds)
        else:
            self._lcg = (self._lcg * 1103515245 + 12345) % (1 << 31)
            slot = self._lcg % self.reservoir
            # Classic reservoir sampling keeps the slot only with
            # probability reservoir/count; a cheap deterministic analogue.
            if self._lcg % self.count < self.reservoir:
                self._samples[slot] = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """q in [0, 100]; NaN when nothing has been observed."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.asarray(self._samples), q))

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
        }

    def merge(self, other: "LatencyStats") -> None:
        """Fold ``other``'s observations into this recorder (shard rollup).

        Exact statistics (count/total/min/max) merge exactly; the sample
        reservoir is concatenated and truncated to capacity, which keeps
        percentiles representative when the inputs are same-order sized.
        """
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._samples = (self._samples + other._samples)[: self.reservoir]


class ServiceMetrics:
    """Counter map + named latency histograms, with a text report."""

    # Shard workers and the event loop mutate one instance concurrently:
    # all writes go through the lock; reads are lock-free snapshots by
    # design (see the module docstring).  Machine-checked by the
    # guarded-by rule in repro.analysis.
    # repro: guarded-by=_lock writes=counters,latencies

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        self._reservoir = reservoir
        self.counters: Dict[str, int] = {}
        self.latencies: Dict[str, LatencyStats] = {}
        # Shard workers mutate their service's metrics from worker
        # threads while the event loop reads them; one lock per instance
        # keeps read-modify-write increments and reservoir appends atomic.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def increment(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + int(n)

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            stats = self.latencies.get(name)
            if stats is None:
                stats = self.latencies[name] = LatencyStats(self._reservoir)
            stats.observe(seconds)

    def percentile(self, name: str, q: float) -> float:
        stats = self.latencies.get(name)
        return stats.percentile(q) if stats is not None else float("nan")

    def snapshot(self) -> Dict[str, object]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "latencies": {
                name: stats.summary()
                for name, stats in sorted(self.latencies.items())
            },
        }

    def json_snapshot(self) -> Dict[str, object]:
        """Like :meth:`snapshot`, but strictly JSON-serialisable.

        Empty histograms report NaN/±inf sentinels (min/max/percentiles);
        strict JSON has no encoding for those, so they become ``None``
        here.  This is the payload behind the HTTP ``GET /stats``
        endpoint (:mod:`repro.service.http`).
        """

        def clean(value: object) -> object:
            if isinstance(value, float) and not np.isfinite(value):
                return None
            return value

        snap = self.snapshot()
        return {
            "counters": snap["counters"],
            "latencies": {
                name: {key: clean(val) for key, val in summary.items()}
                for name, summary in snap["latencies"].items()  # type: ignore[union-attr]
            },
        }

    # ------------------------------------------------------------------
    @classmethod
    def merged(cls, parts: Iterable["ServiceMetrics"]) -> "ServiceMetrics":
        """One recorder aggregating several shards' counters/latencies."""
        out: Optional[ServiceMetrics] = None
        for part in parts:
            if out is None:
                out = cls(part._reservoir)
            with part._lock:
                counters = dict(part.counters)
                latencies = dict(part.latencies)
            for name, value in counters.items():
                out.increment(name, value)
            for name, stats in latencies.items():
                target = out.latencies.get(name)
                if target is None:
                    target = out.latencies[name] = LatencyStats(out._reservoir)
                target.merge(stats)
        return out if out is not None else cls()

    # ------------------------------------------------------------------
    def hit_rate(self) -> Optional[float]:
        """Fraction of requests answered without a cold solve."""
        requests = self.count("requests")
        if requests == 0:
            return None
        served = (
            self.count("hits_memory")
            + self.count("hits_disk")
            + self.count("coalesced")
        )
        return served / requests

    def format_report(self, title: str = "service metrics") -> str:
        lines = [title, "=" * len(title), "", "counters"]
        if self.counters:
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                lines.append(f"  {name:<{width}}  {self.counters[name]}")
        else:
            lines.append("  (none)")
        rate = self.hit_rate()
        if rate is not None:
            lines.append(f"  {'hit_rate':<{max(8, len('hit_rate'))}}  {rate:.1%}")
        lines.append("")
        lines.append("latencies (seconds)")
        if self.latencies:
            header = f"  {'name':<16} {'count':>6} {'mean':>10} {'p50':>10} {'p95':>10} {'max':>10}"
            lines.append(header)
            for name in sorted(self.latencies):
                s = self.latencies[name].summary()
                lines.append(
                    f"  {name:<16} {s['count']:>6d} {s['mean']:>10.6f} "
                    f"{s['p50']:>10.6f} {s['p95']:>10.6f} {s['max']:>10.6f}"
                )
        else:
            lines.append("  (none)")
        return "\n".join(lines)


__all__ = ["DEFAULT_RESERVOIR", "LatencyStats", "ServiceMetrics"]
