"""Async sharded front end over :class:`~repro.service.service.MaxCutService`.

``AsyncMaxCutServer`` is the concurrent-traffic story for the serving
stack (stdlib asyncio only): many clients submit requests concurrently;
the server routes each to a shard by canonical-fingerprint prefix
(:mod:`repro.service.sharding`), coalesces duplicates *across clients
while they are in flight*, applies admission control at bounded per-shard
queues, and drives each shard's synchronous :class:`MaxCutService` from
its own worker — so shards solve genuinely in parallel while every
invariant of the synchronous stack (seed determinism, checksum-identical
cuts, verified cache hits, bounded memory) is preserved.

Request lifecycle::

    client ──▶ submit()
                 │ describe: fingerprint + seed + digest (service.describe)
                 │
                 ├─ digest already in flight? ──▶ await the owner's future,
                 │       map the assignment through both fingerprints
                 │       ("coalesced-inflight" — exactly one solve per
                 │        distinct (fingerprint, digest) in flight)
                 ├─ cache hit on the owning shard? ──▶ return immediately
                 │
                 ▼ admission: bounded shard queue
                 │    full + policy "reject" → ServerOverloaded now
                 │    full + policy "shed"   → oldest queued request is
                 │         failed with ServerOverloaded, newest admitted
                 ▼
           shard worker: drains a micro-batch, runs the shard's
           MaxCutService.solve_many in a thread (coalescing, lock-step
           batching, diagonal sharing all apply within the batch),
           resolves the futures

Determinism: every shard service is built from the same master ``seed``,
and derived per-request seeds depend only on (master seed, canonical
fingerprint, config) — so answers are independent of shard count, queue
interleaving and client concurrency, and checksum-identical to the
synchronous facade at fixed seeds (pinned by the bench gate and
``tests/test_service_server.py``).

Failure handling: shard services run with ``error_mode="capture"`` — a
failing request resolves *its own* future with :class:`RequestError`
(surfaced by :meth:`AsyncMaxCutServer.solve`) and never poisons
batch-mates or hangs the queue; a worker process killed mid-solve is
retried serially by the scheduler (see :mod:`repro.service.scheduler`).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.graphs.graph import Graph
from repro.hpc.executor import ExecutorConfig
from repro.service.cache import DEFAULT_MAX_BYTES
from repro.service.fingerprint import GraphFingerprint
from repro.service.metrics import ServiceMetrics
from repro.service.service import (
    MaxCutService,
    RequestKey,
    ServiceResult,
    SolveRequest,
    build_request,
)
from repro.service.sharding import ShardRouter
from repro.service.trace import TraceRecorder
from repro.util.tracing import NO_TRACE, NullTraceContext, TraceContext

DEFAULT_QUEUE_DEPTH = 64
DEFAULT_MAX_BATCH = 16
ADMISSION_POLICIES = ("reject", "shed")


class ServerOverloaded(RuntimeError):
    """The request was not admitted (full queue) or was shed for a newer one."""


class RequestError(RuntimeError):
    """A request failed cleanly; other requests were unaffected."""


@dataclass
class _Submission:
    """One admitted request waiting in a shard queue."""

    request: SolveRequest
    key: RequestKey
    future: asyncio.Future
    # Observability: the request's trace, when it was admitted (for the
    # retroactive shard-queue span), and whether this server created the
    # trace (and therefore finishes + records it on resolve).
    trace: "TraceContext | NullTraceContext" = NO_TRACE
    enqueued: float = 0.0
    owns_trace: bool = False


@dataclass
class _InFlight:
    """Owner record for cross-client coalescing: result future + labels."""

    future: asyncio.Future
    fp: GraphFingerprint
    # Owner's trace id so follower traces can reference the solve they
    # piggybacked on ("" when the owner was untraced).
    trace_id: str = ""


class AsyncMaxCutServer:
    """Asyncio front end: sharding, in-flight coalescing, admission control.

    Use as an async context manager (or call :meth:`start`/:meth:`stop`)::

        async with AsyncMaxCutServer(n_shards=2, seed=0) as server:
            result = await server.solve(graph, layers=2, maxiter=40)

    Knobs
    -----
    ``n_shards``          independent shard services (cache + scheduler +
                          metrics each), routed by fingerprint prefix
    ``queue_depth``       per-shard bounded queue (admission limit)
    ``admission``         ``"reject"`` (refuse when full) or ``"shed"``
                          (drop the oldest queued request for the newest)
    ``max_batch``         micro-batch size a shard worker drains per solve
    ``batch_window``      seconds a worker waits after the first dequeue
                          for batch-mates to arrive (0 = drain-what's-there)
    ``cache_cost_floor``  per-shard cache admission: only store solves
                          costlier than this many seconds ("auto" =
                          measured fingerprint+store cost; None = always)
    ``compact_every``     per-shard disk tier: threshold-triggered
                          compaction after this many loose writes
    ``service_factory``   override shard construction entirely
                          (``factory(shard_index) -> MaxCutService``)
    ``tracing``           attach a span-tree trace to every submission and
                          record it in ``traces`` (a :class:`TraceRecorder`
                          ring buffer; pass ``traces=`` for sink/slow-log
                          knobs) — see docs/observability.md
    """

    def __init__(
        self,
        *,
        n_shards: int = 1,
        seed: int = 0,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        admission: str = "reject",
        max_batch: int = DEFAULT_MAX_BATCH,
        batch_window: float = 0.0,
        max_bytes: int = DEFAULT_MAX_BYTES,
        disk_dir: Optional[str | Path] = None,
        executor: Optional[ExecutorConfig] = None,
        lockstep: bool = True,
        use_cache: bool = True,
        cache_cost_floor: Optional[object] = None,
        compact_every: Optional[int] = None,
        service_factory: Optional[Callable[[int], MaxCutService]] = None,
        tracing: bool = False,
        traces: Optional[TraceRecorder] = None,
    ) -> None:
        if admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {admission!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.admission = admission
        self.queue_depth = queue_depth
        self.max_batch = max_batch
        self.batch_window = float(batch_window)

        if service_factory is None:
            base_dir = Path(disk_dir) if disk_dir is not None else None

            def service_factory(shard: int) -> MaxCutService:
                return MaxCutService(
                    # Same seed everywhere: derived request seeds depend
                    # only on content, so answers are shard-count
                    # independent and match the synchronous facade.
                    seed=seed,
                    max_bytes=max_bytes,
                    disk_dir=(
                        None if base_dir is None else base_dir / f"shard-{shard:02d}"
                    ),
                    executor=executor,
                    lockstep=lockstep,
                    use_cache=use_cache,
                    cache_cost_floor=cache_cost_floor,
                    compact_every=compact_every,
                    error_mode="capture",
                )

        # Request tracing: off by default (submissions carry NO_TRACE and
        # every span call is a no-op).  When on, submit() attaches a fresh
        # TraceContext to each un-traced request and records it at resolve
        # time; requests arriving with a live trace (the HTTP front end)
        # keep theirs and are finished by their creator instead.  Pass a
        # preconfigured TraceRecorder for JSONL sink / slow-log knobs.
        self.traces = (
            traces if traces is not None else (TraceRecorder() if tracing else None)
        )
        self.tracing = self.traces is not None
        self.router = ShardRouter(n_shards, service_factory)
        self._inflight: dict[str, _InFlight] = {}
        self._queues: List[asyncio.Queue] = []
        self._workers: List[asyncio.Task] = []
        self._started = False
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncMaxCutServer":
        if self._started:
            raise RuntimeError("server already started")
        self._queues = [
            asyncio.Queue(maxsize=self.queue_depth)
            for _ in range(self.router.n_shards)
        ]
        self._workers = [
            asyncio.create_task(self._worker(shard), name=f"maxcut-shard-{shard}")
            for shard in range(self.router.n_shards)
        ]
        self._started = True
        return self

    def begin_drain(self) -> None:
        """Stop admitting new submissions; queued/in-flight work continues.

        The graceful-shutdown hook the HTTP front end uses: after this,
        :meth:`submit` raises :class:`ServerOverloaded` immediately (so a
        load balancer retries elsewhere) while everything already admitted
        still resolves.  :meth:`stop` calls it implicitly.
        """
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self) -> None:
        """Wait until every admitted submission has been resolved."""
        await asyncio.gather(*(queue.join() for queue in self._queues))

    async def stop(self) -> None:
        """Drain every queue, then shut the shard workers down."""
        if not self._started:
            return
        self.begin_drain()
        await self.drain()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._started = False
        self._draining = False

    async def __aenter__(self) -> "AsyncMaxCutServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(
        self,
        graph: Optional[Graph] = None,
        *,
        request: Optional[SolveRequest] = None,
        **options,
    ) -> "asyncio.Future[ServiceResult]":
        """Admit one request; returns the future of its ServiceResult.

        Must be called from the event loop running the server.  Raises
        :class:`ServerOverloaded` immediately when the owning shard's
        queue is full under the ``"reject"`` policy.  No awaits happen
        between the in-flight check and the enqueue, so duplicate-digest
        submissions race-freely coalesce onto one underlying solve.
        """
        if not self._started:
            raise RuntimeError("server is not started (use 'async with' or start())")
        if self._draining:
            raise ServerOverloaded("server is draining (shutdown in progress)")
        request = build_request(graph, request=request, **options)
        loop = asyncio.get_running_loop()

        # Attach a trace to untraced submissions when tracing is on; a
        # request arriving with a live trace (HTTP front end) keeps it and
        # its creator finishes it.
        owns_trace = False
        if self.tracing and not request.trace.enabled:
            request.trace = TraceContext()
            owns_trace = True
        trace = request.trace

        # The request's identity depends only on the shared master seed,
        # so any shard's service computes the same key; shard 0 describes,
        # the digest picks the owner.  (The fingerprint is memoised on
        # the graph object, so the owning shard's solve_many reuses it.)
        key = self.router.shards[0].describe(request)  # type: ignore[union-attr]
        shard_index = self.router.shard_index(key.fp.digest)
        service: MaxCutService = self.router.shards[shard_index]  # type: ignore
        trace.annotate(shard=shard_index, fingerprint_prefix=key.fp.digest[:10])

        # Cross-client in-flight coalescing: exactly one underlying solve
        # per distinct (fingerprint, digest) at any moment.  The whole
        # check-then-enqueue block below must stay await-free — any
        # suspension point would let a duplicate submission race past the
        # in-flight check and solve twice (machine-checked by the
        # atomic-section rule in repro.analysis).
        # repro: begin-atomic
        inflight = self._inflight.get(key.digest)
        if inflight is not None and not inflight.future.cancelled():
            service.metrics.increment("requests")
            service.metrics.increment("coalesced")
            service.metrics.increment("coalesced_inflight")
            return loop.create_task(
                self._follow(service, inflight, key, trace, owns_trace)
            )

        # Inline cache probe on the owning shard (cheap; the cache is
        # thread-safe against the shard worker).  Counted exactly like a
        # solve_many hit; queued requests are counted by solve_many
        # itself, preserving requests == hits + coalesced + misses.
        hit = service.lookup(key, trace=trace)
        if hit is not None:
            service.metrics.increment("requests")
            done: asyncio.Future = loop.create_future()
            done.set_result(hit)
            self._finish_owned(trace, owns_trace)
            return done

        future: asyncio.Future = loop.create_future()
        submission = _Submission(
            request=request,
            key=key,
            future=future,
            trace=trace,
            enqueued=time.perf_counter(),
            owns_trace=owns_trace,
        )
        queue = self._queues[shard_index]
        try:
            queue.put_nowait(submission)
        except asyncio.QueueFull:
            if self.admission == "reject":
                service.metrics.increment("rejected")
                raise ServerOverloaded(
                    f"shard {shard_index} queue full ({self.queue_depth})"
                ) from None
            # "shed": fail the oldest queued request in favour of the new.
            victim: _Submission = queue.get_nowait()
            queue.task_done()
            stale = self._inflight.get(victim.key.digest)
            if stale is not None and stale.future is victim.future:
                del self._inflight[victim.key.digest]
            if not victim.future.done():
                victim.future.set_exception(
                    ServerOverloaded(f"shed from shard {shard_index} queue")
                )
            service.metrics.increment("shed")
            queue.put_nowait(submission)
        self._inflight[key.digest] = _InFlight(
            future=future, fp=key.fp, trace_id=trace.trace_id
        )
        self.router.loads[shard_index] += 1
        # repro: end-atomic
        return future

    async def solve(
        self,
        graph: Optional[Graph] = None,
        *,
        request: Optional[SolveRequest] = None,
        **options,
    ) -> ServiceResult:
        """Submit and await one request; raises :class:`RequestError` on failure."""
        result = await self.submit(graph, request=request, **options)
        if result.failed:
            raise RequestError(result.extra.get("error", "solve failed"))
        return result

    async def solve_stream(
        self,
        requests: Sequence[SolveRequest],
        *,
        clients: int = 4,
    ) -> List[ServiceResult]:
        """Serve ``requests`` as ``clients`` concurrent sequential clients.

        The canonical benchmark/demo driver: request ``i`` goes to client
        ``i % clients``; each client submits its stream one request at a
        time (natural flow control against the bounded queues).  Results
        come back in the original request order.
        """
        if clients < 1:
            raise ValueError("clients must be positive")
        if not requests:
            return []
        results: List[Optional[ServiceResult]] = [None] * len(requests)

        async def run_client(offset: int) -> None:
            for index in range(offset, len(requests), clients):
                results[index] = await self.solve(request=requests[index])

        await asyncio.gather(
            *(run_client(c) for c in range(min(clients, len(requests))))
        )
        assert all(res is not None for res in results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    async def _follow(
        self,
        service: MaxCutService,
        inflight: _InFlight,
        key: RequestKey,
        trace: "TraceContext | NullTraceContext" = NO_TRACE,
        owns_trace: bool = False,
    ) -> ServiceResult:
        """Piggyback on another client's in-flight solve for ``key``.

        The owner may have submitted an isomorphic-but-relabelled graph:
        its result is in *its* labels, so map owner → canonical → this
        request's labels through the two fingerprints.
        """
        t0 = time.perf_counter()
        with trace.span("coalesced-inflight", owner=inflight.trace_id):
            owner: ServiceResult = await asyncio.shield(inflight.future)
        self._finish_owned(trace, owns_trace)
        if owner.failed:
            service.metrics.increment("errors")
            return ServiceResult(
                digest=key.digest,
                status="error",
                assignment=key.fp.from_canonical(
                    inflight.fp.to_canonical(owner.assignment)
                ),
                cut=owner.cut,
                method=owner.method,
                seed=key.seed,
                elapsed=time.perf_counter() - t0,
                params=None,
                extra=dict(owner.extra),
            )
        assignment = key.fp.from_canonical(inflight.fp.to_canonical(owner.assignment))
        return ServiceResult(
            digest=key.digest,
            status="coalesced-inflight",
            assignment=assignment,
            cut=owner.cut,
            method=owner.method,
            seed=key.seed,
            elapsed=time.perf_counter() - t0,
            params=list(owner.params) if owner.params else None,
            extra=dict(owner.extra),
        )

    def _solve_batch(
        self,
        service: MaxCutService,
        batch: List[_Submission],
        shard_index: int = 0,
    ) -> List[ServiceResult]:
        # Runs in a worker thread: the shard's synchronous facade does
        # coalescing / lock-step batching / diagonal sharing as usual.
        # Queue wait is recorded retroactively (admission → first dequeue)
        # so the span tree shows where p95 time went without the admission
        # path ever opening a span it could leak.
        now = time.perf_counter()
        for sub in batch:
            sub.trace.add_span("shard-queue", sub.enqueued, now, shard=shard_index)
        return service.solve_many([sub.request for sub in batch])

    async def _worker(self, shard_index: int) -> None:
        queue = self._queues[shard_index]
        service: MaxCutService = self.router.shards[shard_index]  # type: ignore
        while True:
            submission: _Submission = await queue.get()
            batch = [submission]
            if self.batch_window > 0 and queue.empty():
                await asyncio.sleep(self.batch_window)
            while len(batch) < self.max_batch:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                results = await asyncio.to_thread(
                    self._solve_batch, service, batch, shard_index
                )
                for sub, result in zip(batch, results, strict=True):
                    self._resolve(sub, result=result)
            except asyncio.CancelledError:
                self._fail_batch(batch, RuntimeError("server stopped mid-solve"))
                for _ in batch:
                    queue.task_done()
                raise
            except Exception as exc:
                # Whole-batch failure below the per-request capture layer
                # (should be rare): fail these futures, keep serving.
                self._fail_batch(batch, exc)
                for _ in batch:
                    queue.task_done()
            else:
                for _ in batch:
                    queue.task_done()

    def _resolve(self, submission: _Submission, *, result: ServiceResult) -> None:
        inflight = self._inflight.get(submission.key.digest)
        if inflight is not None and inflight.future is submission.future:
            del self._inflight[submission.key.digest]
        if not submission.future.done():
            submission.future.set_result(result)
        self._finish_owned(submission.trace, submission.owns_trace)

    def _fail_batch(self, batch: List[_Submission], exc: BaseException) -> None:
        for submission in batch:
            inflight = self._inflight.get(submission.key.digest)
            if inflight is not None and inflight.future is submission.future:
                del self._inflight[submission.key.digest]
            if not submission.future.done():
                submission.future.set_exception(
                    RequestError(f"{type(exc).__name__}: {exc}")
                )
            submission.trace.annotate(error=type(exc).__name__)
            self._finish_owned(submission.trace, submission.owns_trace)

    def _finish_owned(
        self, trace: "TraceContext | NullTraceContext", owns_trace: bool
    ) -> None:
        """Finish + record a trace this server created (no-op otherwise)."""
        if owns_trace and self.traces is not None:
            trace.finish()
            self.traces.record(trace)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def services(self) -> List[MaxCutService]:
        return list(self.router.shards)  # type: ignore[arg-type]

    def merged_metrics(self) -> ServiceMetrics:
        return ServiceMetrics.merged(service.metrics for service in self.services)

    def stats_report(self) -> str:
        parts = [
            self.merged_metrics().format_report(
                f"AsyncMaxCutServer stats ({self.router.n_shards} shards)"
            ),
            "",
            self.router.load_report(),
        ]
        for index, service in enumerate(self.services):
            parts.append("")
            parts.append(f"shard {index} " + service.cache.format_summary())
        if self.traces is not None and len(self.traces):
            parts.append("")
            parts.append(self.traces.format_stage_table())
        return "\n".join(parts)


def serve_requests(
    requests: Sequence[SolveRequest],
    *,
    clients: int = 4,
    **server_options,
) -> tuple[AsyncMaxCutServer, List[ServiceResult]]:
    """Synchronous convenience: serve ``requests`` on a fresh server.

    Spins up an event loop, runs ``clients`` concurrent clients through
    :meth:`AsyncMaxCutServer.solve_stream`, shuts the server down, and
    returns ``(server, results-in-request-order)`` — the CLI ``serve``
    command, the async benchmark path and ``examples/service_async.py``
    all drive this helper.
    """

    async def run() -> tuple[AsyncMaxCutServer, List[ServiceResult]]:
        async with AsyncMaxCutServer(**server_options) as server:
            results = await server.solve_stream(requests, clients=clients)
        return server, results

    return asyncio.run(run())


__all__ = [
    "ADMISSION_POLICIES",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_QUEUE_DEPTH",
    "AsyncMaxCutServer",
    "RequestError",
    "ServerOverloaded",
    "serve_requests",
]
