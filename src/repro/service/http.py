"""HTTP wire transport for :class:`~repro.service.server.AsyncMaxCutServer`.

PR 6 built the in-process heavy-traffic story; this module puts a real
service boundary in front of it — a **stdlib-only** asyncio HTTP/1.1
front end so anything that can speak HTTP (curl, a load balancer, another
language) can reach the sharded solver.  Design goals, in order:

* **nothing between the socket and ``submit()``** — requests are parsed,
  validated and handed straight to :meth:`AsyncMaxCutServer.submit`; all
  coalescing/sharding/admission behaviour is the server's, unchanged;
* **robustness mapping is explicit** — every failure class has one
  documented status code (see :data:`ERROR_CONTRACT` and
  ``docs/http-api.md``; the two must match, pinned by
  ``tests/test_http_docs.py``):

  ==================  ====  =============================================
  code                HTTP  meaning
  ==================  ====  =============================================
  bad-request          400  malformed JSON / invalid request schema
  not-found            404  unknown path
  method-not-allowed   405  known path, wrong HTTP method
  payload-too-large    413  body above ``max_body_bytes``; rejected
                            before the body is read or parsed
  internal-error       500  unexpected transport-layer failure
  solve-failed         502  the shard captured a per-request solve error
                            (``error_mode="capture"``); never cached
  overloaded           503  admission control refused the request
                            (``ServerOverloaded``); carries Retry-After
  deadline-exceeded    504  the request's deadline elapsed mid-solve;
                            the solve itself keeps running so coalesced
                            followers are never poisoned
  ==================  ====  =============================================

* **connections are cheap** — HTTP/1.1 keep-alive by default, bounded
  header/body sizes, per-connection idle timeout, and a graceful drain on
  shutdown (stop accepting, finish in-flight responses, then drain the
  shard queues via :meth:`AsyncMaxCutServer.stop`).

The JSON request/response schemas live in ``docs/http-api.md``; the
blocking counterpart is :class:`repro.service.client.HttpMaxCutClient`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import numbers
import threading
import time
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.service.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    ServiceMetrics,
    render_prometheus,
)
from repro.service.server import (
    AsyncMaxCutServer,
    RequestError,
    ServerOverloaded,
)
from repro.service.service import ServiceResult, SolveRequest
from repro.service.trace import TraceRecorder
from repro.util.tracing import NO_TRACE, NullTraceContext, TraceContext

# ---------------------------------------------------------------------------
# Protocol constants (docs/http-api.md mirrors these; tests pin the match)
# ---------------------------------------------------------------------------

#: Machine-readable error code -> HTTP status.  The single source of
#: truth for the error contract; ``docs/http-api.md`` documents exactly
#: this table and ``tests/test_http_docs.py`` fails if either drifts.
ERROR_CONTRACT: Dict[str, int] = {
    "bad-request": 400,
    "not-found": 404,
    "method-not-allowed": 405,
    "payload-too-large": 413,
    "internal-error": 500,
    "solve-failed": 502,
    "overloaded": 503,
    "deadline-exceeded": 504,
}

#: Seconds a 503 response advises the client to wait before retrying.
RETRY_AFTER_S = 1

DEFAULT_MAX_BODY_BYTES = 1 << 20  # 1 MiB of JSON is a very large graph
DEFAULT_MAX_NODES = 4096  # statevector solvers cap out far below this
DEFAULT_KEEPALIVE_S = 30.0
MAX_HEADER_BYTES = 16 * 1024
#: Oversized bodies up to this size are read-and-discarded so the 413
#: response can be delivered reliably and the connection kept alive;
#: beyond it the connection is closed instead (the client may observe a
#: reset while still transmitting).
DISCARD_BYTES_CAP = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Route table: path -> allowed HTTP method.  Anything else is 404/405.
#: ``/trace/<id>`` is the one non-exact route; :meth:`_dispatch` matches
#: it by the :data:`TRACE_ROUTE_PREFIX` before this table is consulted.
ROUTES = {
    "/solve": "POST",
    "/healthz": "GET",
    "/stats": "GET",
    "/metrics": "GET",
}

#: Prefix of the span-tree inspection route ``GET /trace/<id>``.
TRACE_ROUTE_PREFIX = "/trace/"

#: Request/response header carrying the trace id.  Clients may send it
#: to name their own trace; traced responses always echo it back.
TRACE_HEADER = "X-Repro-Trace"

_SOLVE_KEYS = frozenset(
    {"graph", "method", "options", "qaoa_grid", "gw_options", "seed",
     "exact", "deadline_s"}
)
_GRAPH_KEYS = frozenset({"n_nodes", "edges"})


class WireFormatError(ValueError):
    """A request/response payload violates the documented JSON schema."""


# ---------------------------------------------------------------------------
# JSON wire codecs (shared with the blocking client)
# ---------------------------------------------------------------------------
def jsonable(obj):
    """Recursively coerce ``obj`` into strict-JSON-safe builtins.

    NumPy scalars/arrays become Python numbers/lists; non-finite floats
    become ``None`` (strict JSON has no NaN/Infinity).
    """
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, numbers.Integral):
        return int(obj)
    if isinstance(obj, numbers.Real):
        value = float(obj)
        return value if np.isfinite(value) else None
    if isinstance(obj, dict):
        return {str(key): jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)) or hasattr(obj, "tolist"):
        seq = obj.tolist() if hasattr(obj, "tolist") else obj
        return [jsonable(item) for item in seq]
    return obj


def graph_to_wire(graph: Graph) -> dict:
    """``{"n_nodes": n, "edges": [[u, v, w], ...]}`` (docs/http-api.md)."""
    edges = [
        [int(a), int(b), float(weight)]
        for a, b, weight in zip(graph.u, graph.v, graph.w, strict=True)
    ]
    return {"n_nodes": int(graph.n_nodes), "edges": edges}


def graph_from_wire(payload: object, *, max_nodes: int = DEFAULT_MAX_NODES) -> Graph:
    """Validate and decode the wire graph schema into a :class:`Graph`."""
    if not isinstance(payload, dict):
        raise WireFormatError("'graph' must be an object")
    unknown = set(payload) - _GRAPH_KEYS
    if unknown:
        raise WireFormatError(f"unknown graph keys {sorted(unknown)}")
    if "n_nodes" not in payload:
        raise WireFormatError("'graph.n_nodes' is required")
    n_nodes = payload["n_nodes"]
    if isinstance(n_nodes, bool) or not isinstance(n_nodes, int):
        raise WireFormatError("'graph.n_nodes' must be an integer")
    if n_nodes < 0:
        raise WireFormatError("'graph.n_nodes' must be non-negative")
    if n_nodes > max_nodes:
        raise WireFormatError(
            f"'graph.n_nodes' = {n_nodes} exceeds the service limit {max_nodes}"
        )
    edges = payload.get("edges", [])
    if not isinstance(edges, list):
        raise WireFormatError("'graph.edges' must be a list")
    triples = []
    for index, edge in enumerate(edges):
        if not isinstance(edge, (list, tuple)) or len(edge) not in (2, 3):
            raise WireFormatError(
                f"edge {index} must be [u, v] or [u, v, weight]"
            )
        a, b = edge[0], edge[1]
        for endpoint in (a, b):
            if isinstance(endpoint, bool) or not isinstance(endpoint, int):
                raise WireFormatError(
                    f"edge {index} endpoints must be integers"
                )
        weight = edge[2] if len(edge) == 3 else 1.0
        if isinstance(weight, bool) or not isinstance(weight, (int, float)):
            raise WireFormatError(f"edge {index} weight must be a number")
        if not np.isfinite(weight):
            raise WireFormatError(f"edge {index} weight must be finite")
        triples.append((int(a), int(b), float(weight)))
    try:
        return Graph.from_edges(n_nodes, triples)
    except ValueError as exc:
        raise WireFormatError(f"invalid graph: {exc}") from exc


def request_to_wire(
    request: SolveRequest, *, deadline_s: Optional[float] = None
) -> dict:
    """Encode a :class:`SolveRequest` as the documented POST /solve body."""
    payload: dict = {"graph": graph_to_wire(request.graph)}
    if request.method != "qaoa":
        payload["method"] = request.method
    if request.options:
        payload["options"] = jsonable(request.options)
    if request.qaoa_grid is not None:
        payload["qaoa_grid"] = jsonable(list(request.qaoa_grid))
    if request.gw_options:
        payload["gw_options"] = jsonable(request.gw_options)
    if request.seed is not None:
        payload["seed"] = int(request.seed)
    if request.exact:
        payload["exact"] = True
    if deadline_s is not None:
        payload["deadline_s"] = float(deadline_s)
    return payload


def request_from_wire(
    payload: object, *, max_nodes: int = DEFAULT_MAX_NODES
) -> Tuple[SolveRequest, Optional[float]]:
    """Validate and decode a POST /solve body.

    Returns ``(request, deadline_s)``; raises :class:`WireFormatError`
    on any schema violation (mapped to a 400 by the server, before any
    shard is touched).
    """
    if not isinstance(payload, dict):
        raise WireFormatError("request body must be a JSON object")
    unknown = set(payload) - _SOLVE_KEYS
    if unknown:
        raise WireFormatError(f"unknown request keys {sorted(unknown)}")
    if "graph" not in payload:
        raise WireFormatError("'graph' is required")
    graph = graph_from_wire(payload["graph"], max_nodes=max_nodes)
    method = payload.get("method", "qaoa")
    if not isinstance(method, str):
        raise WireFormatError("'method' must be a string")
    options = payload.get("options", {})
    if not isinstance(options, dict):
        raise WireFormatError("'options' must be an object")
    qaoa_grid = payload.get("qaoa_grid")
    if qaoa_grid is not None:
        if not isinstance(qaoa_grid, list) or not all(
            isinstance(point, dict) for point in qaoa_grid
        ):
            raise WireFormatError("'qaoa_grid' must be a list of objects")
    gw_options = payload.get("gw_options", {})
    if not isinstance(gw_options, dict):
        raise WireFormatError("'gw_options' must be an object")
    seed = payload.get("seed")
    if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
        raise WireFormatError("'seed' must be an integer or null")
    exact = payload.get("exact", False)
    if not isinstance(exact, bool):
        raise WireFormatError("'exact' must be a boolean")
    deadline_s = payload.get("deadline_s")
    if deadline_s is not None:
        if isinstance(deadline_s, bool) or not isinstance(
            deadline_s, (int, float)
        ):
            raise WireFormatError("'deadline_s' must be a number")
        if not (float(deadline_s) > 0):
            raise WireFormatError("'deadline_s' must be positive")
        deadline_s = float(deadline_s)
    request = SolveRequest(
        graph=graph,
        method=method,
        options=dict(options),
        qaoa_grid=qaoa_grid,
        gw_options=dict(gw_options),
        seed=None if seed is None else int(seed),
        exact=exact,
    )
    return request, deadline_s


def result_to_wire(result: ServiceResult) -> dict:
    """Encode a :class:`ServiceResult` as the documented 200 body."""
    return {
        "digest": result.digest,
        "status": result.status,
        "assignment": [int(bit) for bit in result.assignment],
        "cut": jsonable(result.cut),
        "method": result.method,
        "seed": int(result.seed),
        "elapsed": float(result.elapsed),
        "params": None if result.params is None else jsonable(result.params),
        "extra": jsonable(result.extra),
    }


def result_from_wire(payload: dict) -> ServiceResult:
    """Decode a 200 body back into a :class:`ServiceResult` (client side)."""
    try:
        return ServiceResult(
            digest=str(payload["digest"]),
            status=str(payload["status"]),
            assignment=np.asarray(payload["assignment"], dtype=np.uint8),
            cut=float(payload["cut"]),
            method=str(payload["method"]),
            seed=int(payload["seed"]),
            elapsed=float(payload["elapsed"]),
            params=(
                None
                if payload.get("params") is None
                else [float(p) for p in payload["params"]]
            ),
            extra=dict(payload.get("extra") or {}),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed result payload: {exc}") from exc


# ---------------------------------------------------------------------------
# The asyncio HTTP server
# ---------------------------------------------------------------------------
class _HttpReject(Exception):
    """Internal: abort the current request with a specific error code."""

    def __init__(
        self,
        code: str,
        message: str,
        *,
        close: bool = False,
        headers: Sequence[Tuple[str, str]] = (),
    ) -> None:
        super().__init__(message)
        self.code = code
        self.status = ERROR_CONTRACT[code]
        self.close = close
        self.headers = tuple(headers)


class _Request:
    __slots__ = ("method", "path", "body", "keep_alive", "trace_id")

    def __init__(
        self,
        method: str,
        path: str,
        body: bytes,
        keep_alive: bool,
        trace_id: str = "",
    ):
        self.method = method
        self.path = path
        self.body = body
        self.keep_alive = keep_alive
        self.trace_id = trace_id


class HttpMaxCutServer:
    """Asyncio HTTP/1.1 front end over one :class:`AsyncMaxCutServer`.

    Knobs
    -----
    ``max_body_bytes``     request bodies above this are answered 413
                           *before* being read or parsed
    ``max_nodes``          graphs above this node count are answered 400
    ``default_deadline_s`` per-request deadline applied when the request
                           body carries none (``None`` = wait forever)
    ``keepalive_s``        idle seconds before a kept-alive connection
                           is closed
    ``tracing``            create a :class:`~repro.util.tracing.TraceContext`
                           per ``/solve`` request (honouring an incoming
                           ``X-Repro-Trace`` header), record the finished
                           span tree in ``self.traces`` and echo the trace
                           id in the response; pass ``traces=`` to supply
                           a configured :class:`TraceRecorder` (JSONL
                           sink, slow-request log) instead

    Lifecycle: ``await start()`` binds the socket; ``await stop()`` runs
    the graceful drain (close the listener, finish in-flight responses,
    then drain the shard queues).  ``serve_forever()`` blocks until
    :meth:`request_stop` is called (the CLI's signal handler does).
    """

    def __init__(
        self,
        server: AsyncMaxCutServer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        max_nodes: int = DEFAULT_MAX_NODES,
        default_deadline_s: Optional[float] = None,
        keepalive_s: float = DEFAULT_KEEPALIVE_S,
        tracing: bool = False,
        traces: Optional[TraceRecorder] = None,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be positive")
        self.server = server
        self.requested_host = host
        self.requested_port = port
        self.max_body_bytes = int(max_body_bytes)
        self.max_nodes = int(max_nodes)
        self.default_deadline_s = default_deadline_s
        self.keepalive_s = float(keepalive_s)
        self.traces = traces if traces is not None else (
            TraceRecorder() if tracing else None
        )
        self.tracing = self.traces is not None
        self.metrics = ServiceMetrics()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._listener: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._stop_requested: Optional[asyncio.Event] = None
        self._stopped = False

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "HttpMaxCutServer":
        if self._listener is not None:
            raise RuntimeError("HTTP server already started")
        self._stop_requested = asyncio.Event()
        self._listener = await asyncio.start_server(
            self._handle_connection,
            host=self.requested_host,
            port=self.requested_port,
            # Bounds readline() (request line / header lines); bodies go
            # through readexactly(), which the limit does not constrain.
            limit=MAX_HEADER_BYTES + 1024,
        )
        sockname = self._listener.sockets[0].getsockname()  # type: ignore[union-attr]
        self.host, self.port = sockname[0], sockname[1]
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self.host is None or self.port is None:
            raise RuntimeError("HTTP server is not started")
        return self.host, self.port

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to return (signal-handler safe)."""
        if self._stop_requested is not None:
            self._stop_requested.set()

    async def serve_forever(self) -> None:
        if self._stop_requested is None:
            raise RuntimeError("HTTP server is not started")
        await self._stop_requested.wait()

    async def stop(self) -> None:
        """Graceful drain: listener -> in-flight responses -> shards."""
        if self._stopped or self._listener is None:
            return
        self._stopped = True
        self.request_stop()
        # 1. Stop accepting new connections; new submissions on live
        #    connections are refused via the server's drain flag.
        self._listener.close()
        await self._listener.wait_closed()
        self.server.begin_drain()
        # 2. Let in-flight request handlers finish writing responses.
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        # 3. Drain the shard queues and shut the workers down.
        await self.server.stop()

    async def __aenter__(self) -> "HttpMaxCutServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            self.metrics.increment("http_disconnects")
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _shutting_down(self) -> bool:
        return self._stopped or (
            self._stop_requested is not None and self._stop_requested.is_set()
        )

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assert self._stop_requested is not None
        while True:
            # Race the next-request read against shutdown: an idle
            # kept-alive connection must not stall the graceful drain for
            # a full keep-alive timeout.
            read = asyncio.ensure_future(self._read_request(reader, writer))
            stop_wait = asyncio.ensure_future(self._stop_requested.wait())
            try:
                await asyncio.wait(
                    {read, stop_wait},
                    timeout=self.keepalive_s,
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                stop_wait.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await stop_wait
            if not read.done():
                # Idle timeout, or shutdown with no request in progress.
                read.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await read
                return
            try:
                request = await read
            except _HttpReject as reject:
                # Framing-preserving rejections (e.g. a drained oversized
                # body) may keep the connection; framing-losing ones close.
                await self._respond_error(
                    writer, reject, keep_alive=not reject.close
                )
                if reject.close:
                    return
                continue
            except ValueError:
                # Oversized request line / header stream (stream limit).
                reject = _HttpReject(
                    "bad-request", "request line or headers too large"
                )
                await self._respond_error(writer, reject, keep_alive=False)
                return
            if request is None:
                return  # clean EOF between requests
            t0 = time.perf_counter()
            self.metrics.increment("http_requests")
            keep_alive = request.keep_alive and not self._shutting_down()
            try:
                status, payload, headers = await self._dispatch(request)
            except _HttpReject as reject:
                keep_alive = keep_alive and not reject.close
                await self._respond_error(writer, reject, keep_alive=keep_alive)
                self.metrics.observe("http", time.perf_counter() - t0)
                if not keep_alive:
                    return
                continue
            except (ConnectionError, asyncio.IncompleteReadError):
                raise
            except Exception as exc:  # transport bug: never kill the loop
                reject = _HttpReject(
                    "internal-error", f"{type(exc).__name__}: {exc}"
                )
                await self._respond_error(writer, reject, keep_alive=False)
                self.metrics.observe("http", time.perf_counter() - t0)
                return
            await self._respond(
                writer, status, payload, keep_alive=keep_alive, headers=headers
            )
            self.metrics.observe("http", time.perf_counter() - t0)
            if not keep_alive:
                return

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[_Request]:
        line = await reader.readline()
        if not line:
            return None
        try:
            parts = line.decode("latin-1").strip().split()
        except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
            raise _HttpReject("bad-request", "undecodable request line") from None
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpReject(
                "bad-request", "malformed HTTP request line", close=True
            )
        method, target, version = parts
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise _HttpReject(
                    "bad-request", "connection closed mid-headers", close=True
                )
            header_bytes += len(raw)
            if header_bytes > MAX_HEADER_BYTES:
                raise _HttpReject("bad-request", "headers too large", close=True)
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _HttpReject(
                    "bad-request", f"malformed header {name!r}", close=True
                )
            headers[name.strip().lower()] = value.strip()

        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _HttpReject(
                "bad-request", "chunked request bodies are not supported",
                close=True,
            )
        body = b""
        length_header = headers.get("content-length")
        if length_header is not None:
            try:
                length = int(length_header)
            except ValueError:
                raise _HttpReject(
                    "bad-request", "malformed Content-Length", close=True
                ) from None
            if length < 0:
                raise _HttpReject(
                    "bad-request", "negative Content-Length", close=True
                )
            if length > self.max_body_bytes:
                # Rejected from the Content-Length header alone: the body
                # is never parsed and no shard is touched.  Moderate
                # oversends are drained (unread bytes would desynchronise
                # keep-alive framing and reset the in-flight response);
                # egregious ones get a close instead.
                message = (
                    f"body of {length} bytes exceeds the "
                    f"{self.max_body_bytes}-byte limit"
                )
                expects_continue = (
                    headers.get("expect", "").lower() == "100-continue"
                )
                if expects_continue or length > DISCARD_BYTES_CAP:
                    raise _HttpReject("payload-too-large", message, close=True)
                remaining = length
                while remaining:
                    chunk = await reader.read(min(65536, remaining))
                    if not chunk:
                        raise _HttpReject(
                            "payload-too-large", message, close=True
                        )
                    remaining -= len(chunk)
                raise _HttpReject("payload-too-large", message)
            if length:
                if headers.get("expect", "").lower() == "100-continue":
                    writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
                    await writer.drain()
                body = await reader.readexactly(length)

        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            keep_alive = connection == "keep-alive"
        else:
            keep_alive = connection != "close"
        return _Request(
            method.upper(),
            target.split("?", 1)[0],
            body,
            keep_alive,
            headers.get(TRACE_HEADER.lower(), ""),
        )

    # -- routing -------------------------------------------------------
    async def _dispatch(
        self, request: _Request
    ) -> Tuple[int, "dict | str", Sequence[Tuple[str, str]]]:
        if request.path.startswith(TRACE_ROUTE_PREFIX):
            if request.method != "GET":
                raise _HttpReject(
                    "method-not-allowed", "/trace/<id> only supports GET"
                )
            return 200, self._trace_payload(
                request.path[len(TRACE_ROUTE_PREFIX):]
            ), ()
        allowed = ROUTES.get(request.path)
        if allowed is None:
            raise _HttpReject("not-found", f"unknown path {request.path!r}")
        if request.method != allowed:
            raise _HttpReject(
                "method-not-allowed",
                f"{request.path} only supports {allowed}",
            )
        if request.path == "/healthz":
            return 200, self._healthz_payload(), ()
        if request.path == "/stats":
            return 200, self._stats_payload(), ()
        if request.path == "/metrics":
            return 200, self._metrics_text(), ()
        return await self._solve(request)

    def _healthz_payload(self) -> dict:
        return {
            "status": "draining" if self.server.draining else "ok",
            "shards": self.server.router.n_shards,
        }

    def _stats_payload(self) -> dict:
        payload = {
            "shards": self.server.router.n_shards,
            "draining": self.server.draining,
            "loads": [int(load) for load in self.server.router.loads],
            "metrics": self.server.merged_metrics().json_snapshot(),
            "http": self.metrics.json_snapshot(),
        }
        if self.traces is not None:
            payload["trace_stages"] = self.traces.stage_summary()
            payload["traces_recorded"] = self.traces.recorded_total
        return payload

    def _metrics_text(self) -> str:
        """Prometheus text exposition: shard metrics + HTTP-layer metrics."""
        return render_prometheus(
            self.server.merged_metrics(), namespace="repro"
        ) + render_prometheus(self.metrics, namespace="repro_http")

    def _trace_payload(self, trace_id: str) -> dict:
        if self.traces is None:
            raise _HttpReject("not-found", "tracing is disabled")
        trace = self.traces.get(trace_id)
        if trace is None:
            raise _HttpReject("not-found", f"unknown trace id {trace_id!r}")
        payload = trace.to_dict()
        payload["tree"] = trace.format_tree()
        return payload

    def _finish_trace(self, trace: "TraceContext | NullTraceContext") -> None:
        """Close and record an HTTP-owned trace (no-op for NO_TRACE)."""
        if self.traces is not None and isinstance(trace, TraceContext):
            trace.finish()
            self.traces.record(trace)

    async def _solve(
        self, http_request: _Request
    ) -> Tuple[int, dict, Sequence[Tuple[str, str]]]:
        # The HTTP layer owns the trace: it creates the context (reusing
        # the client's X-Repro-Trace id when one arrived), the shard
        # worker appends its spans via SolveRequest.trace, and the
        # ``finally`` below finishes + records it — including on error
        # and deadline paths, where late spans from the still-running
        # solve are dropped by the inert finished trace.
        trace: "TraceContext | NullTraceContext" = NO_TRACE
        if self.tracing:
            trace = TraceContext(http_request.trace_id or None)
        headers: Tuple[Tuple[str, str], ...] = (
            ((TRACE_HEADER, trace.trace_id),) if trace.enabled else ()
        )
        body = http_request.body
        try:
            with trace.span("wire-parse", bytes=len(body)):
                try:
                    payload = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise _HttpReject(
                        "bad-request",
                        f"invalid JSON body: {exc}",
                        headers=headers,
                    ) from exc
                try:
                    request, deadline_s = request_from_wire(
                        payload, max_nodes=self.max_nodes
                    )
                except WireFormatError as exc:
                    raise _HttpReject(
                        "bad-request", str(exc), headers=headers
                    ) from exc
            request.trace = trace
            if deadline_s is None:
                deadline_s = self.default_deadline_s
            try:
                future = self.server.submit(request=request)
            except ServerOverloaded as exc:
                raise _HttpReject(
                    "overloaded", str(exc), headers=headers
                ) from exc
            try:
                # shield(): a deadline must abandon *this response*, never
                # the underlying solve — coalesced followers and the
                # in-flight table keep their owner.  The shard worker's
                # spans nest under ``await`` while this task is suspended.
                with trace.span("await"):
                    result = await asyncio.wait_for(
                        asyncio.shield(future), timeout=deadline_s
                    )
            except asyncio.TimeoutError:
                self.metrics.increment("http_deadline_exceeded")
                raise _HttpReject(
                    "deadline-exceeded",
                    f"deadline of {deadline_s}s elapsed before the solve "
                    "finished",
                    headers=headers,
                ) from None
            except ServerOverloaded as exc:  # shed while queued
                raise _HttpReject(
                    "overloaded", str(exc), headers=headers
                ) from exc
            except RequestError as exc:  # batch-level failure below capture
                raise _HttpReject(
                    "solve-failed", str(exc), headers=headers
                ) from exc
            if result.failed:
                return (
                    502,
                    {
                        "error": str(result.extra.get("error", "solve failed")),
                        "code": "solve-failed",
                        "digest": result.digest,
                        "status": result.status,
                        "method": result.method,
                        "seed": int(result.seed),
                        "elapsed": float(result.elapsed),
                    },
                    headers,
                )
            return 200, result_to_wire(result), headers
        finally:
            self._finish_trace(trace)

    # -- response writing ----------------------------------------------
    async def _respond_error(
        self,
        writer: asyncio.StreamWriter,
        reject: _HttpReject,
        *,
        keep_alive: bool,
    ) -> None:
        headers = tuple(reject.headers)
        if reject.status == ERROR_CONTRACT["overloaded"]:
            headers += (("Retry-After", str(RETRY_AFTER_S)),)
        await self._respond(
            writer,
            reject.status,
            {"error": str(reject), "code": reject.code},
            keep_alive=keep_alive and not reject.close,
            headers=headers,
        )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: "dict | str",
        *,
        keep_alive: bool,
        headers: Iterable[Tuple[str, str]] = (),
    ) -> None:
        self.metrics.increment(f"http_{status}")
        if isinstance(payload, str):
            # Text exposition (GET /metrics): Prometheus format 0.0.4.
            body = payload.encode("utf-8")
            content_type = PROMETHEUS_CONTENT_TYPE
        else:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            content_type = "application/json"
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


# ---------------------------------------------------------------------------
# Sync harnesses: CLI driver and a background-thread server for tests
# ---------------------------------------------------------------------------
def serve_http(
    host: str,
    port: int,
    *,
    http_options: Optional[dict] = None,
    install_signal_handlers: bool = True,
    ready: Optional[threading.Event] = None,
    **server_options,
) -> None:
    """Run the HTTP front end until SIGINT/SIGTERM, then drain gracefully.

    The blocking driver behind ``python -m repro serve --http HOST:PORT``.
    Prints the bound address (``port=0`` picks a free port) and, after a
    clean drain, the merged shard stats report.
    """
    import signal

    async def run() -> AsyncMaxCutServer:
        async with AsyncMaxCutServer(**server_options) as server:
            http_server = HttpMaxCutServer(
                server, host=host, port=port, **(http_options or {})
            )
            await http_server.start()
            if install_signal_handlers:
                loop = asyncio.get_running_loop()
                for signum in (signal.SIGINT, signal.SIGTERM):
                    with contextlib.suppress(NotImplementedError):
                        loop.add_signal_handler(
                            signum, http_server.request_stop
                        )
            bound_host, bound_port = http_server.address
            print(f"listening on http://{bound_host}:{bound_port}", flush=True)
            if ready is not None:
                ready.set()
            try:
                await http_server.serve_forever()
                print("shutdown requested — draining", flush=True)
            finally:
                await http_server.stop()
        return server

    server = asyncio.run(run())
    print()
    print(server.stats_report())


class HttpServerThread:
    """A full HTTP + AsyncMaxCutServer stack on a background thread.

    The sync-world harness used by the benchmark, the example and the
    test suite: the event loop (shard workers + HTTP listener) runs in a
    daemon thread; the caller gets ``host``/``port`` to point blocking
    clients at, and ``stop()`` runs the graceful drain.

    ::

        with HttpServerThread(n_shards=2, seed=0) as handle:
            client = HttpMaxCutClient(handle.host, handle.port)
            result = client.solve(graph, layers=2)
    """

    def __init__(
        self, *, host: str = "127.0.0.1", port: int = 0,
        http_options: Optional[dict] = None, **server_options,
    ) -> None:
        self._host_requested = host
        self._port_requested = port
        self._http_options = dict(http_options or {})
        self._server_options = dict(server_options)
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.server: Optional[AsyncMaxCutServer] = None
        self.http: Optional[HttpMaxCutServer] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name="maxcut-http-server", daemon=True
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "HttpServerThread":
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._error is not None:
            raise RuntimeError("HTTP server thread failed to start") from self._error
        if not self._ready.is_set():
            raise RuntimeError("HTTP server thread did not come up in 60s")
        return self

    def stop(self) -> None:
        """Request the graceful drain and join the server thread."""
        if self._loop is not None and self.http is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.http.request_stop)
        self._thread.join(timeout=120)
        if self._error is not None:
            raise RuntimeError("HTTP server thread crashed") from self._error

    def __enter__(self) -> "HttpServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def merged_metrics(self) -> ServiceMetrics:
        if self.server is None:
            raise RuntimeError("server thread was never started")
        return self.server.merged_metrics()

    # -- internals -----------------------------------------------------
    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as exc:  # surfaced to the caller in start()/stop()
            self._error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        async with AsyncMaxCutServer(**self._server_options) as server:
            self.server = server
            http_server = HttpMaxCutServer(
                server,
                host=self._host_requested,
                port=self._port_requested,
                **self._http_options,
            )
            await http_server.start()
            self.http = http_server
            self.host, self.port = http_server.address
            self._ready.set()
            try:
                await http_server.serve_forever()
            finally:
                await http_server.stop()


__all__ = [
    "DEFAULT_KEEPALIVE_S",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_MAX_NODES",
    "ERROR_CONTRACT",
    "HttpMaxCutServer",
    "HttpServerThread",
    "RETRY_AFTER_S",
    "ROUTES",
    "TRACE_HEADER",
    "TRACE_ROUTE_PREFIX",
    "WireFormatError",
    "graph_from_wire",
    "graph_to_wire",
    "jsonable",
    "request_from_wire",
    "request_to_wire",
    "result_from_wire",
    "result_to_wire",
    "serve_http",
]
