"""`MaxCutService` — the request-level facade over the repo's solvers.

Request lifecycle (see also ``src/repro/service/README.md``)::

    submit ─▶ fingerprint ─▶ cache? ──hit──▶ un-relabel, return
                                │miss
                                ▼
                           coalesce duplicates
                                │
                                ▼
                       BatchScheduler (lock-step batches /
                        shared diagonals / executor fan-out)
                                │
                                ▼
                        cache fill ─▶ return (submission order)

Determinism contract
--------------------
* Every request resolves to one integer seed: the caller's explicit
  ``seed`` if given, else a seed *derived* from the service master seed
  and the request's canonical fingerprint — so the seed (and therefore
  the answer) depends on *what* is asked, never on submission order or
  executor concurrency.  Serial and concurrent runs of the same request
  set are identical.
* The cache key includes the resolved seed and the full solver
  configuration: a hit returns exactly what a cold solve of that request
  would have computed (bit-identical for byte-equal graphs; mapped
  through the canonical relabeling for isomorphic ones).
* Results of one ``solve_many`` batch are returned in submission order.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import CutResult
from repro.hpc.executor import ExecutorConfig
from repro.ml.knowledge import KnowledgeBase
from repro.service.cache import DEFAULT_MAX_BYTES, CacheEntry, ResultCache
from repro.service.fingerprint import (
    GraphFingerprint,
    canonical_fingerprint,
    request_digest,
)
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import BatchScheduler, ScheduledJob
from repro.service.trace import TraceRecorder
from repro.util.rng import RngLike, ensure_rng
from repro.util.tracing import NO_TRACE, NullTraceContext, TraceContext


@dataclass
class SolveRequest:
    """One unit of service work: a graph plus a full solver configuration.

    ``method``/``options``/``qaoa_grid``/``gw_options`` have exactly the
    semantics of the QAOA² leaf payloads (:mod:`repro.qaoa2.solver`):
    ``options`` are :class:`repro.qaoa.solver.QAOASolver` knobs, the grid
    is a list of option overrides whose best cut wins.  ``seed=None``
    asks the service for a derived content-addressed seed; ``exact=True``
    pins the job to the reference per-job solve path (no lock-step
    batching), which QAOA² uses to stay bit-identical with its direct
    solver."""

    graph: Graph
    method: str = "qaoa"
    options: dict = field(default_factory=dict)
    qaoa_grid: Optional[Sequence[dict]] = None
    gw_options: dict = field(default_factory=dict)
    seed: Optional[int] = None
    exact: bool = False
    # Observability carrier, NOT identity: excluded from equality and from
    # request_digest (which hashes explicit fields only), so tracing can
    # never change what a request computes or where it caches.
    trace: "TraceContext | NullTraceContext" = field(
        default=NO_TRACE, repr=False, compare=False
    )


@dataclass
class ServiceResult:
    """Answer to one request, plus serving metadata.

    ``status`` is one of ``"solved"``, ``"coalesced"`` (folded into a
    batch-mate's solve), ``"coalesced-inflight"`` (the async server folded
    it into another client's in-flight solve), ``"hit-memory"`` /
    ``"hit-disk"`` (cache tiers), or ``"error"`` (capture-mode services
    only; the failure text is in ``extra["error"]`` and ``cut`` is NaN).
    """

    digest: str
    status: str
    assignment: np.ndarray
    cut: float
    method: str
    seed: int
    elapsed: float
    params: Optional[List[float]] = None
    extra: dict = field(default_factory=dict)

    @property
    def cached(self) -> bool:
        return self.status.startswith("hit")

    @property
    def failed(self) -> bool:
        return self.status == "error"

    def as_cut_result(self) -> CutResult:
        return CutResult(self.assignment, self.cut, self.method, dict(self.extra))


@dataclass(frozen=True)
class RequestKey:
    """A request's resolved identity: fingerprint + seed + cache digest.

    Everything downstream — cache lookup, coalescing, shard routing —
    keys off this triple; :meth:`MaxCutService.describe` computes it once
    per request.
    """

    fp: GraphFingerprint
    seed: int
    digest: str


def build_request(
    graph: Optional[Graph] = None,
    *,
    request: Optional[SolveRequest] = None,
    **options,
) -> SolveRequest:
    """Normalise the facade's two calling styles into one SolveRequest.

    Accepts either a prebuilt request or a graph plus keyword knobs
    (``method=``, ``seed=``, and any ``QAOASolver`` option) — shared by
    the synchronous ``submit`` and the async server front end.
    """
    if request is None:
        if graph is None:
            raise ValueError("submit() needs a graph or a request")
        method = options.pop("method", "qaoa")
        seed = options.pop("seed", None)
        qaoa_grid = options.pop("qaoa_grid", None)
        gw_options = options.pop("gw_options", None) or {}
        exact = options.pop("exact", False)
        return SolveRequest(
            graph=graph,
            method=method,
            options=options,
            qaoa_grid=qaoa_grid,
            gw_options=gw_options,
            seed=seed,
            exact=exact,
        )
    if graph is not None or options:
        raise ValueError("pass either request= or graph+options, not both")
    return request


# Unclaimed tickets (submitted, flushed, never fetched) are retained up to
# this many; past it the oldest are dropped so fire-and-forget submitters
# cannot grow the service's memory without bound.
DEFAULT_MAX_RETAINED_TICKETS = 4096


class MaxCutService:
    """High-throughput MaxCut solving with caching and batching."""

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        disk_dir=None,
        executor: Optional[ExecutorConfig] = None,
        metrics: Optional[ServiceMetrics] = None,
        seed: RngLike = 0,
        lockstep: bool = True,
        use_cache: bool = True,
        cache_cost_floor: Optional[object] = None,
        error_mode: str = "raise",
        compact_every: Optional[int] = None,
        tracing: bool = False,
        traces: Optional[TraceRecorder] = None,
    ) -> None:
        if error_mode not in ("raise", "capture"):
            raise ValueError(
                f"unknown error_mode {error_mode!r}; expected 'raise' or 'capture'"
            )
        if not (
            cache_cost_floor is None
            or cache_cost_floor == "auto"
            or isinstance(cache_cost_floor, (int, float))
        ):
            raise ValueError(
                "cache_cost_floor must be None, 'auto', or seconds (float)"
            )
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.cache = (
            cache
            if cache is not None
            else ResultCache(
                max_bytes=max_bytes,
                disk_dir=disk_dir,
                metrics=self.metrics,
                compact_every=compact_every,
            )
        )
        self.scheduler = BatchScheduler(
            executor, metrics=self.metrics, lockstep=lockstep
        )
        # One integer master seed; derived per-request seeds hash it with
        # the request fingerprint so they are submission-order independent.
        self.master_seed = int(ensure_rng(seed).integers(2**63 - 1))
        self.use_cache = use_cache
        # Cache-admission floor: only store solves whose measured cost
        # exceeds this many seconds ("auto" = the measured mean
        # fingerprint + store cost, i.e. only cache what is cheaper to
        # replay from cache than to identify and store).  None/0 keeps
        # the store-everything behaviour.
        self.cache_cost_floor = cache_cost_floor
        self.error_mode = error_mode
        # Request tracing (off by default — requests then carry NO_TRACE
        # and every span call is a shared no-op).  When enabled the
        # service creates a TraceContext per un-traced request in
        # ``solve_many`` and files it with the recorder; requests arriving
        # with a live trace (async server / HTTP front end) keep theirs.
        self.traces = (
            traces if traces is not None else (TraceRecorder() if tracing else None)
        )
        self.tracing = self.traces is not None
        self.max_retained_tickets = DEFAULT_MAX_RETAINED_TICKETS
        self._pending: List[SolveRequest] = []
        self._tickets: Dict[int, ServiceResult] = {}  # insertion-ordered
        self._next_ticket = 0

    # ------------------------------------------------------------------
    # Facade
    # ------------------------------------------------------------------
    def submit(
        self,
        graph: Optional[Graph] = None,
        *,
        request: Optional[SolveRequest] = None,
        **options,
    ) -> int:
        """Enqueue a request; returns a ticket for :meth:`result`.

        Pass either a prebuilt :class:`SolveRequest` or a graph plus
        keyword knobs (``method=``, ``seed=``, and any ``QAOASolver``
        option).  Pending requests are batched together at the next
        :meth:`flush`/:meth:`result` call — that batch is where
        coalescing and lock-step grouping happen.
        """
        request = build_request(graph, request=request, **options)
        ticket = self._next_ticket
        self._next_ticket += 1
        self._pending.append(request)
        return ticket

    def flush(self) -> None:
        """Solve every pending submission as one batch."""
        if not self._pending:
            return
        pending = self._pending
        first_ticket = self._next_ticket - len(pending)
        self._pending = []
        for offset, result in enumerate(self.solve_many(pending)):
            self._tickets[first_ticket + offset] = result
        # Bound the unclaimed-result map: fire-and-forget submitters must
        # not leak one retained result per abandoned ticket forever.
        while len(self._tickets) > self.max_retained_tickets:
            self._tickets.pop(next(iter(self._tickets)))

    def result(self, ticket: int) -> ServiceResult:
        """The answer for ``ticket``, flushing pending work if needed."""
        if ticket not in self._tickets:
            self.flush()
        if ticket not in self._tickets:
            raise KeyError(f"unknown ticket {ticket}")
        return self._tickets.pop(ticket)

    def solve(
        self,
        graph: Optional[Graph] = None,
        *,
        request: Optional[SolveRequest] = None,
        **options,
    ) -> ServiceResult:
        """One-call convenience: submit + flush + result."""
        return self.result(self.submit(graph, request=request, **options))

    # ------------------------------------------------------------------
    # Core batch path
    # ------------------------------------------------------------------
    def solve_many(
        self,
        requests: Sequence[SolveRequest],
        *,
        executor: Optional[ExecutorConfig] = None,
    ) -> List[ServiceResult]:
        """Answer a batch of requests (submission order preserved).

        ``executor`` overrides the service's dispatch backend for this
        batch only (QAOA² passes its own leaf executor through)."""
        t_batch = time.perf_counter()
        requests = list(requests)
        self.metrics.increment("requests", len(requests))

        # Service-owned tracing: attach a fresh trace to each request that
        # arrived without one; those are finished and recorded here.
        owned_traces: List["TraceContext"] = []
        if self.traces is not None:
            for request in requests:
                if not request.trace.enabled:
                    request.trace = TraceContext()
                    owned_traces.append(request.trace)

        keys = [self.describe(request) for request in requests]
        fps = [key.fp for key in keys]
        seeds = [key.seed for key in keys]
        digests = [key.digest for key in keys]

        results: List[Optional[ServiceResult]] = [None] * len(requests)
        owners: Dict[str, int] = {}  # digest -> owning job slot
        jobs: List[ScheduledJob] = []
        job_members: List[List[int]] = []  # per job: request indices served
        for idx, request in enumerate(requests):
            results[idx] = self.lookup(keys[idx], trace=request.trace)
            if results[idx] is not None:
                continue
            digest = digests[idx]
            if digest in owners:
                job_members[owners[digest]].append(idx)
                self.metrics.increment("coalesced")
                continue
            owners[digest] = len(jobs)
            self.metrics.increment("misses")
            jobs.append(
                ScheduledJob(
                    index=len(jobs),
                    graph=request.graph,
                    method=request.method,
                    options=dict(request.options),
                    qaoa_grid=request.qaoa_grid,
                    gw_options=dict(request.gw_options),
                    seed=seeds[idx],
                    exact=request.exact,
                    trace=request.trace,
                )
            )
            job_members.append([idx])

        if jobs:
            solved = self.scheduler.run(
                jobs,
                executor=executor,
                capture_errors=self.error_mode == "capture",
            )
            for _job, members, raw in zip(jobs, job_members, solved, strict=True):
                owner_idx = members[0]
                if raw.get("error"):
                    self.metrics.increment("errors", len(members))
                    for idx in members:
                        results[idx] = self._error_result(
                            digests[idx], fps[idx], seeds[idx], raw
                        )
                    continue
                entry = self._entry_from_raw(
                    digests[owner_idx], fps[owner_idx], seeds[owner_idx], raw
                )
                if self._should_cache(raw, entry):
                    t0 = time.perf_counter()
                    with requests[owner_idx].trace.span("store"):
                        self.cache.put(entry)
                    self.metrics.observe("cache_store", time.perf_counter() - t0)
                # Coalesced members share the digest, hence the canonical
                # graph — but may label it differently.  Map the canonical
                # assignment once per distinct relabeling so identical
                # submissions receive the *same* result array.
                mapped: Dict[bytes, np.ndarray] = {}
                for rank, idx in enumerate(members):
                    status = "solved" if rank == 0 else "coalesced"
                    perm_key = fps[idx].perm.tobytes()
                    assignment = mapped.get(perm_key)
                    if assignment is None:
                        assignment = fps[idx].from_canonical(entry.assignment)
                        mapped[perm_key] = assignment
                    results[idx] = ServiceResult(
                        digest=digests[idx],
                        status=status,
                        assignment=assignment,
                        cut=entry.cut,
                        method=entry.method,
                        seed=seeds[idx],
                        elapsed=float(raw.get("elapsed", 0.0)),
                        params=list(entry.params) if entry.params else None,
                        extra=dict(entry.extra),
                    )

        out = [res for res in results if res is not None]
        assert len(out) == len(requests)
        for res in out:
            self.metrics.observe("request", res.elapsed)
        self.metrics.observe("batch", time.perf_counter() - t_batch)
        if self.traces is not None:
            for trace in owned_traces:
                self.traces.record(trace)
        return out

    # ------------------------------------------------------------------
    # Request identity + cache lookup (shared with the async server)
    # ------------------------------------------------------------------
    def describe(self, request: SolveRequest) -> RequestKey:
        """Resolve a request's fingerprint, seed and cache digest.

        This is the routing-relevant identity: the async server calls it
        once per submission to pick a shard and detect in-flight
        duplicates, then the shard's ``solve_many`` reuses the memoised
        fingerprint.
        """
        t0 = time.perf_counter()
        with request.trace.span("fingerprint") as span:
            fp = canonical_fingerprint(request.graph)
            seed = self._resolve_seed(request, fp)
            digest = request_digest(
                fp.digest,
                method=request.method,
                options=request.options,
                qaoa_grid=request.qaoa_grid,
                gw_options=request.gw_options,
                seed=seed,
                exact=request.exact,
            )
            span.set(fingerprint_prefix=fp.digest[:10])
        self.metrics.observe("fingerprint", time.perf_counter() - t0)
        return RequestKey(fp=fp, seed=seed, digest=digest)

    def lookup(
        self,
        key: RequestKey,
        *,
        trace: "TraceContext | NullTraceContext" = NO_TRACE,
    ) -> Optional[ServiceResult]:
        """Serve ``key`` from the cache if possible (counts the hit).

        Returns ``None`` on a miss — including hash collisions, which the
        stored canonical arrays detect — and does **not** count the miss:
        the caller decides whether the request becomes a solve, a
        coalesced duplicate, or is handed to another shard.
        """
        if not self.use_cache:
            return None
        t0 = time.perf_counter()
        with trace.span("lookup") as span:
            entry, tier = self.cache.get_tiered(key.digest)
            hit = entry is not None and entry.matches(key.fp)
            span.set(cache_tier=tier if hit else "miss")
        if hit and entry is not None:
            return self._result_from_entry(
                entry, key.fp, key.seed, tier, time.perf_counter() - t0
            )
        return None

    def _should_cache(self, raw: dict, entry: CacheEntry) -> bool:
        """Cost-floor cache admission (see ``cache_cost_floor``)."""
        if not self.use_cache:
            return False
        floor = self.cache_cost_floor
        if floor is None:
            return True
        if floor == "auto":
            # Admit only when replaying from cache is cheaper than the
            # solve it would save: the hit path costs one fingerprint
            # (+ the store itself, paid once) — both continuously
            # measured on this very instance.
            fingerprint = self.metrics.latencies.get("fingerprint")
            store = self.metrics.latencies.get("cache_store")
            floor = (fingerprint.mean if fingerprint is not None else 0.0) + (
                store.mean if store is not None and store.count else 0.0
            )
        if float(raw.get("elapsed", 0.0)) >= float(floor):
            return True
        self.metrics.increment("cache_skipped")
        return False

    def _error_result(
        self, digest: str, fp: GraphFingerprint, seed: int, raw: dict
    ) -> ServiceResult:
        """A clean per-request failure (capture-mode services only)."""
        return ServiceResult(
            digest=digest,
            status="error",
            assignment=np.zeros(fp.n_nodes, dtype=np.uint8),
            cut=float("nan"),
            method=str(raw.get("method")),
            seed=seed,
            elapsed=float(raw.get("elapsed", 0.0)),
            params=None,
            extra={"error": str(raw.get("error"))},
        )

    # ------------------------------------------------------------------
    def _resolve_seed(self, request: SolveRequest, fp: GraphFingerprint) -> int:
        if request.seed is not None:
            return int(request.seed)
        digest_sans_seed = request_digest(
            fp.digest,
            method=request.method,
            options=request.options,
            qaoa_grid=request.qaoa_grid,
            gw_options=request.gw_options,
            seed=None,
            exact=request.exact,
        )
        h = hashlib.sha256(
            f"seed|{self.master_seed}|{digest_sans_seed}".encode()
        ).digest()
        return int.from_bytes(h[:4], "little") % (2**31)

    def _result_from_entry(
        self,
        entry: CacheEntry,
        fp: GraphFingerprint,
        seed: int,
        tier: str,
        elapsed: float,
    ) -> ServiceResult:
        self.metrics.increment("hits_memory" if tier == "memory" else "hits_disk")
        return ServiceResult(
            digest=entry.digest,
            status=f"hit-{tier}",
            assignment=fp.from_canonical(entry.assignment),
            cut=entry.cut,
            method=entry.method,
            seed=seed,
            elapsed=elapsed,
            # Copies: a caller mutating its result must not corrupt the
            # cached entry (and with it every future hit / KB export).
            params=list(entry.params) if entry.params else None,
            extra=dict(entry.extra),
        )

    def _entry_from_raw(
        self, digest: str, fp: GraphFingerprint, seed: int, raw: dict
    ) -> CacheEntry:
        extra = {
            key: raw.get(key)
            for key in ("qaoa_cut", "gw_cut", "gw_average", "backend")
            if raw.get(key) is not None
        }
        return CacheEntry(
            digest=digest,
            n_nodes=fp.n_nodes,
            canon_u=fp.canon_u,
            canon_v=fp.canon_v,
            canon_w=fp.canon_w,
            assignment=fp.to_canonical(np.asarray(raw["assignment"], dtype=np.uint8)),
            cut=float(raw["cut"]),
            method=str(raw["method"]),
            seed=seed,
            params=raw.get("params"),
            layers=raw.get("layers"),
            rhobeg=raw.get("rhobeg"),
            extra=extra,
        )

    # ------------------------------------------------------------------
    # Reporting / export
    # ------------------------------------------------------------------
    def stats_report(self) -> str:
        report = (
            self.metrics.format_report("MaxCutService stats")
            + "\n\n"
            + self.cache.format_summary()
        )
        if self.traces is not None and len(self.traces):
            report += "\n\n" + self.traces.format_stage_table()
        return report

    def export_knowledge(self, kb: Optional[KnowledgeBase] = None) -> KnowledgeBase:
        """Warm-start export: cached angles -> Fig. 3 knowledge base."""
        return self.cache.export_knowledge(kb)


# ---------------------------------------------------------------------------
# Workload helper (bench / example / CLI)
# ---------------------------------------------------------------------------
def zipf_requests(
    *,
    n_requests: int = 100,
    universe: int = 8,
    n_nodes: int = 14,
    edge_prob: float = 0.3,
    weighted: bool = True,
    zipf_exponent: float = 1.1,
    method: str = "qaoa",
    options: Optional[dict] = None,
    rng: RngLike = 0,
) -> List[SolveRequest]:
    """A Zipf-distributed request stream over a small graph universe.

    The canonical cache-demo workload: ``universe`` distinct seeded ER
    graphs, requested ``n_requests`` times with rank-``k`` probability
    ∝ ``k**-zipf_exponent`` (heavily skewed toward a few hot graphs, like
    the repeated sub-graphs QAOA² emits at deeper levels).  Each distinct
    graph carries one fixed per-graph seed so repeats are exact repeats.
    """
    from repro.graphs.generators import erdos_renyi

    gen = ensure_rng(rng)
    graphs = [
        erdos_renyi(n_nodes, edge_prob, weighted=weighted, rng=1000 + k)
        for k in range(universe)
    ]
    seeds = [int(gen.integers(2**31)) for _ in range(universe)]
    weights = np.arange(1, universe + 1, dtype=np.float64) ** -zipf_exponent
    weights /= weights.sum()
    picks = gen.choice(universe, size=n_requests, p=weights)
    options = dict(options or {})
    return [
        SolveRequest(
            graph=graphs[k], method=method, options=dict(options), seed=seeds[k]
        )
        for k in picks
    ]


__all__ = [
    "MaxCutService",
    "RequestKey",
    "ServiceResult",
    "SolveRequest",
    "build_request",
    "zipf_requests",
]
