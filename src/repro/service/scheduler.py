"""Batched job scheduler for the MaxCut solver service.

The service hands the scheduler a batch of *deduplicated* jobs (one per
distinct request digest — coalescing happens upstream in
:mod:`repro.service.service`).  The scheduler's task is to execute them
with as much sharing as correctness allows:

1. **Shape groups.**  Jobs are grouped by byte-identical graphs
   (``n_nodes`` plus exact edge arrays).  Each group shares one cut
   diagonal — the dominant per-solve setup cost for statevector QAOA —
   threaded into :func:`repro.qaoa2.solver._solve_subgraph_job` via the
   payload, which produces bit-identical values with or without sharing.
2. **Lock-step batches.**  Within a shape group, QAOA jobs whose
   configuration is lock-step eligible (SPSA optimizer, exact
   statevector/analytic objective, single start, no grid, not flagged
   ``exact``) are advanced together by
   :func:`repro.optim.multi_start.multi_start_spsa_independent`: every
   optimizer iteration evaluates the ± pairs of *all* jobs as one engine
   batch, while each job consumes its own RNG stream — so each job's
   result reproduces its solo solve (cut/selection identical, parameters
   to reduction-order float noise; pinned in ``tests/test_service.py``).
3. **Heterogeneous fallback.**  Everything else — GW, grids, COBYLA,
   sampled objectives, ``exact``-flagged jobs — is dispatched per-job
   through :func:`repro.hpc.executor.map_jobs` (serial/thread/process),
   running the reference ``_solve_subgraph_job`` path byte-for-byte.

Results are always returned in submission order, so serial and
concurrent scheduler runs are indistinguishable to the caller.

Fault tolerance (the async server's contract): when an executor batch
dies wholesale — a worker process killed mid-solve surfaces as
``BrokenProcessPool`` — the batch is **retried serially in-process**,
which reproduces the exact per-job reference computation (the job
function is deterministic in its payload).  A job that then still fails
is, under ``capture_errors=True``, returned as an ``{"error": ...}``
result dict instead of poisoning its batch-mates; with the default
``capture_errors=False`` the exception propagates as before.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.maxcut import cut_diagonal
from repro.hpc.executor import ExecutorConfig, map_jobs
from repro.optim import multi_start_spsa_independent, spsa_perturbation_from_rhobeg
from repro.qaoa.energy import MaxCutEnergy
from repro.qaoa.engine import SweepEngine
from repro.qaoa.params import default_iterations, initial_parameters
from repro.qaoa.solver import QAOASolver
from repro.qaoa2.solver import _solve_subgraph_job
from repro.service.metrics import ServiceMetrics
from repro.util.rng import ensure_rng
from repro.util.tracing import NO_TRACE, NullTraceContext, TraceContext, use_trace

# Only graphs small enough for a statevector benefit from an eagerly
# shared diagonal (mirrors the solver's own max_qubits default).
MAX_SHARED_DIAGONAL_QUBITS = 26


@dataclass
class ScheduledJob:
    """One deduplicated unit of work, as seen by the scheduler."""

    index: int  # submission order, also the result slot
    graph: Graph
    method: str
    options: dict
    qaoa_grid: Optional[Sequence[dict]]
    gw_options: dict
    seed: int
    exact: bool = False  # force the reference per-job path
    # Owner request's trace (observability only — never in the payload
    # dict, so the reference job function's contract is untouched).
    trace: "TraceContext | NullTraceContext" = NO_TRACE

    def payload(self) -> dict:
        return {
            "graph": self.graph,
            "method": self.method,
            "seed": self.seed,
            "qaoa_options": dict(self.options),
            "qaoa_grid": self.qaoa_grid,
            "gw_options": dict(self.gw_options),
        }


def _traced_solve_job(item: Tuple[dict, "TraceContext | NullTraceContext"]) -> dict:
    """Reference job function plus span bookkeeping.

    The trace rides *next to* the payload (never inside it) and is bound
    as the ambient trace inside the executor worker — this is the bridge
    that lets ``SweepEngine``/backend spans land on the right request even
    when several jobs with distinct traces run in one thread pool.
    Module-level so the process backend can pickle the callable (its items
    carry ``NO_TRACE`` there — see :meth:`BatchScheduler.run`).
    """
    payload, trace = item
    with use_trace(trace):
        with trace.span("solve", method=str(payload.get("method"))):
            return _solve_subgraph_job(payload)


def _graph_key(graph: Graph) -> Tuple[int, bytes, bytes, bytes]:
    return (
        graph.n_nodes,
        graph.u.tobytes(),
        graph.v.tobytes(),
        graph.w.tobytes(),
    )


def _lockstep_solver(job: ScheduledJob) -> Optional[QAOASolver]:
    """The job's solver config, when it is lock-step eligible; else None."""
    if job.exact or job.method != "qaoa" or job.qaoa_grid:
        return None
    try:
        solver = QAOASolver(**job.options)
    except TypeError:
        return None  # unknown knob: let the reference path raise properly
    if (
        solver.optimizer != "spsa"
        or solver.objective != "statevector"
        or solver.noise is not None
        or solver.n_starts != 1
        or not solver.batched
        or solver.engine is not None
        or job.graph.n_nodes > solver.max_qubits
    ):
        # The size guard matters: the reference path raises the solver's
        # clean too-many-qubits error instead of attempting a 2**n batch.
        return None
    return solver


class BatchScheduler:
    """Groups, batches and dispatches deduplicated solve jobs."""

    def __init__(
        self,
        executor: Optional[ExecutorConfig] = None,
        *,
        metrics: Optional[ServiceMetrics] = None,
        lockstep: bool = True,
        share_diagonals: bool = True,
    ) -> None:
        self.executor = executor if executor is not None else ExecutorConfig()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.lockstep = lockstep
        self.share_diagonals = share_diagonals

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[ScheduledJob],
        *,
        executor: Optional[ExecutorConfig] = None,
        capture_errors: bool = False,
    ) -> List[dict]:
        """Execute all jobs; result dicts land in submission order.

        Job indices must be dense ``0..len(jobs)-1`` (the service numbers
        them that way); each result lands in its job's slot.  ``executor``
        overrides the scheduler's default backend for this batch — QAOA²
        passes its own leaf executor through so ``--backend thread`` keeps
        its meaning on the service path.  ``capture_errors=True`` turns a
        failing job into an ``{"error": ...}`` result dict instead of an
        exception (see the module docs for the retry semantics).
        """
        executor = executor if executor is not None else self.executor
        results: List[Optional[dict]] = [None] * len(jobs)
        groups: Dict[Tuple, List[ScheduledJob]] = {}
        for job in jobs:
            groups.setdefault(_graph_key(job.graph), []).append(job)

        generic: List[ScheduledJob] = []
        for group in groups.values():
            leftovers = group
            if self.lockstep:
                leftovers = self._dispatch_lockstep(
                    group, results, capture_errors=capture_errors
                )
            generic.extend(leftovers)

        generic.sort(key=lambda job: job.index)  # submission order
        if generic:
            payloads = [job.payload() for job in generic]
            if self.share_diagonals:
                self._share_diagonals(generic, payloads, executor)
            if executor.backend == "process":
                # Spans recorded in a worker process die with it; strip
                # traces rather than pickle span trees that never return
                # (mirrors the diagonal-sharing skip above).
                traces: List["TraceContext | NullTraceContext"] = [
                    NO_TRACE for _ in generic
                ]
            else:
                traces = [job.trace for job in generic]
            solved = self._map_resilient(
                list(zip(payloads, traces)), executor, capture_errors
            )
            for job, result in zip(generic, solved, strict=True):
                results[job.index] = result
        self.metrics.increment("solves", len(jobs))
        failed = sum(1 for r in results if r and r.get("error"))
        if failed:
            self.metrics.increment("job_errors", failed)
        # Per-backend solve counters ("backend_numpy", "backend_fused",
        # ...) so the stats report shows which evolve kernels served the
        # traffic.
        for result in results:
            name = result.get("backend") if result else None
            if name:
                self.metrics.increment(f"backend_{name}")
        return results

    # ------------------------------------------------------------------
    def _map_resilient(
        self,
        items: List[Tuple[dict, "TraceContext | NullTraceContext"]],
        executor: ExecutorConfig,
        capture_errors: bool,
    ) -> List[dict]:
        """``map_jobs`` with an in-process serial retry on executor death.

        ``pool.map`` raises on the *first* failure, discarding every other
        job's work — whether the cause is one poisoned payload or a worker
        process dying mid-solve (``BrokenProcessPool``).  The retry runs
        each job serially so one bad job cannot take its batch-mates down,
        and deterministic jobs recompute their reference results exactly.
        """
        try:
            return map_jobs(_traced_solve_job, items, config=executor)
        except Exception:
            self.metrics.increment("executor_retries")
        return [self._solve_or_error(item, capture_errors) for item in items]

    def _solve_or_error(
        self,
        item: Tuple[dict, "TraceContext | NullTraceContext"],
        capture_errors: bool,
    ) -> dict:
        try:
            return _traced_solve_job(item)
        except Exception as exc:
            if not capture_errors:
                raise
            return {
                "error": f"{type(exc).__name__}: {exc}",
                "method": item[0].get("method"),
                "elapsed": 0.0,
            }

    # ------------------------------------------------------------------
    def _share_diagonals(
        self,
        jobs: List[ScheduledJob],
        payloads: List[dict],
        executor: ExecutorConfig,
    ) -> None:
        """Precompute one cut diagonal per shape group that wants one.

        Only methods whose solve path reads ``payload["diagonal"]`` (the
        QAOA engine setup inside ``run_qaoa``) benefit, and only
        same-graph groups of two or more amortise anything.  The thread
        and serial backends share the array by reference; the process
        backend would pickle a 2**n vector per job, so sharing is skipped
        there.
        """
        if executor.backend == "process":
            return
        by_graph: Dict[Tuple, List[int]] = {}
        for slot, job in enumerate(jobs):
            if job.method in ("qaoa", "best") and (
                job.graph.n_nodes <= MAX_SHARED_DIAGONAL_QUBITS
            ):
                by_graph.setdefault(_graph_key(job.graph), []).append(slot)
        for slots in by_graph.values():
            if len(slots) < 2:
                continue
            diagonal = cut_diagonal(jobs[slots[0]].graph)
            for slot in slots:
                payloads[slot]["diagonal"] = diagonal
            self.metrics.increment("shared_diagonals", len(slots))

    # ------------------------------------------------------------------
    def _dispatch_lockstep(
        self,
        group: List[ScheduledJob],
        results: List[Optional[dict]],
        *,
        capture_errors: bool = False,
    ) -> List[ScheduledJob]:
        """Run lock-step-eligible sub-batches of one shape group.

        Returns the jobs that must take the generic path.
        """
        if group[0].graph.n_edges == 0:
            return group  # the solver's edgeless shortcut handles these
        from repro.service.fingerprint import config_token

        batches: Dict[str, List[ScheduledJob]] = {}
        solvers: Dict[str, QAOASolver] = {}
        leftovers: List[ScheduledJob] = []
        for job in group:
            solver = _lockstep_solver(job)
            if solver is None:
                leftovers.append(job)
                continue
            token = config_token(job.options)
            batches.setdefault(token, []).append(job)
            solvers[token] = solver
        for token, batch in batches.items():
            if len(batch) < 2:
                leftovers.extend(batch)
                continue
            owner = batch[0].trace
            t0 = time.perf_counter()
            try:
                # The owner's trace hosts the engine/backend spans (set as
                # the ambient trace for the whole batch solve); followers
                # get a retroactive span referencing the owner below.
                with use_trace(owner):
                    with owner.span(
                        "solve", method="qaoa", lockstep=True, batch=len(batch)
                    ):
                        solved = _solve_lockstep_batch(
                            batch[0].graph, batch, solvers[token]
                        )
            except Exception:
                if not capture_errors:
                    raise
                # Fall back to the generic path, whose serial retry
                # captures the failure per job.
                leftovers.extend(batch)
                continue
            t1 = time.perf_counter()
            for job in batch[1:]:
                job.trace.add_span(
                    "solve",
                    t0,
                    t1,
                    method="qaoa",
                    lockstep=True,
                    batch=len(batch),
                    owner=owner.trace_id,
                )
            for job, result in zip(batch, solved, strict=True):
                results[job.index] = result
            self.metrics.increment("lockstep_jobs", len(batch))
            self.metrics.increment("lockstep_batches")
        return leftovers


def _solve_lockstep_batch(
    graph: Graph, jobs: List[ScheduledJob], solver: QAOASolver
) -> List[dict]:
    """Solve a batch of same-graph, same-config SPSA jobs in lock-step.

    Mirrors :meth:`repro.qaoa.solver.QAOASolver.solve` step for step —
    same RNG consumption order per job, same objective construction, same
    final-state evaluation and selection — with the optimizer loop
    replaced by :func:`multi_start_spsa_independent` so all jobs' ± pairs
    evaluate as one engine batch per iteration.
    """
    start = time.perf_counter()
    engine = SweepEngine(graph, backend=solver.backend)
    energy = MaxCutEnergy(graph, diagonal=engine.diagonal, backend=engine.backend)
    energy.attach_engine(engine)
    maxiter = (
        solver.maxiter
        if solver.maxiter is not None
        else default_iterations(solver.layers)
    )
    gens = [ensure_rng(job.seed) for job in jobs]
    x0s = np.stack(
        [
            initial_parameters(
                solver.layers, solver.init, rng=gen, warm_start=solver.warm_start
            )
            for gen in gens
        ]
    )
    use_analytic = solver._use_analytic()  # same knob semantics as solo solves
    if use_analytic:
        analytic = energy.analytic

        def neg_fp(params: np.ndarray) -> float:
            return -analytic.energy(params)

        def neg_fp_batch(params_matrix: np.ndarray) -> np.ndarray:
            return -analytic.energies(params_matrix)
    else:
        def neg_fp(params: np.ndarray) -> float:
            return -energy.expectation(params)

        def neg_fp_batch(params_matrix: np.ndarray) -> np.ndarray:
            return -energy.energies_batch(params_matrix)

    opts = multi_start_spsa_independent(
        neg_fp,
        x0s,
        maxiter=maxiter,
        c=spsa_perturbation_from_rhobeg(solver.rhobeg),
        rngs=gens,
        batch_fun=neg_fp_batch,
    )
    states = engine.statevectors(np.stack([opt.x for opt in opts]))
    elapsed = time.perf_counter() - start
    out: List[dict] = []
    for _job, opt, state, gen in zip(jobs, opts, states, gens, strict=True):
        assignment, cut, _info = solver._select(graph, energy, state, gen)
        out.append(
            {
                "method": "qaoa",
                "qaoa_cut": cut,
                "gw_cut": None,
                "gw_average": None,
                "params": [float(x) for x in opt.x],
                "layers": int(solver.layers),
                "rhobeg": float(solver.rhobeg),
                "backend": engine.backend_name,
                "assignment": assignment,
                "cut": cut,
                "elapsed": elapsed / len(jobs),
            }
        )
    return out


__all__ = ["BatchScheduler", "ScheduledJob", "MAX_SHARED_DIAGONAL_QUBITS"]
