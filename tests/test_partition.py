"""Unit + property tests for repro.graphs.partition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    erdos_renyi,
    greedy_modularity_communities,
    modularity,
    networkx_modularity_communities,
    partition_with_cap,
    planted_partition,
    random_balanced_partition,
    spectral_bisection,
)


def membership_of(communities, n):
    m = np.full(n, -1, dtype=np.int64)
    for cid, comm in enumerate(communities):
        m[comm] = cid
    return m


class TestModularityScore:
    def test_all_in_one_community(self, er_small):
        m = np.zeros(er_small.n_nodes, dtype=int)
        # Q = 1 - 1 = 0 for the trivial single community? Actually
        # Q = Σ_in/(2m) - (Σ_tot/2m)^2 = 1 - 1 = 0.
        assert modularity(er_small, m) == pytest.approx(0.0)

    def test_singletons_negative_or_zero(self, er_small):
        m = np.arange(er_small.n_nodes)
        assert modularity(er_small, m) <= 0.0

    def test_planted_blocks_positive(self):
        g = planted_partition(40, 4, 0.9, 0.02, rng=0)
        m = np.arange(40) % 4
        assert modularity(g, m) > 0.3

    def test_empty_graph_zero(self):
        g = Graph.from_edges(4, [])
        assert modularity(g, np.zeros(4, dtype=int)) == 0.0


class TestGreedyModularity:
    def test_partitions_cover_all_nodes(self, er_medium):
        comms = greedy_modularity_communities(er_medium)
        nodes = np.sort(np.concatenate(comms))
        assert nodes.tolist() == list(range(er_medium.n_nodes))

    def test_recovers_planted_partition(self):
        g = planted_partition(40, 4, 0.9, 0.02, rng=1)
        comms = greedy_modularity_communities(g)
        # Should find roughly the 4 planted blocks.
        assert 3 <= len(comms) <= 6
        m = membership_of(comms, 40)
        assert modularity(g, m) > 0.3

    def test_matches_networkx_quality(self):
        for seed in (3, 7):
            g = erdos_renyi(35, 0.15, rng=seed)
            ours = greedy_modularity_communities(g)
            theirs = networkx_modularity_communities(g)
            q_ours = modularity(g, membership_of(ours, g.n_nodes))
            q_theirs = modularity(g, membership_of(theirs, g.n_nodes))
            # Same algorithm: qualities should agree closely.
            assert q_ours == pytest.approx(q_theirs, abs=0.02)

    def test_empty_graph_singletons(self):
        g = Graph.from_edges(5, [])
        comms = greedy_modularity_communities(g)
        assert len(comms) == 5

    def test_isolated_nodes_kept(self):
        g = Graph.from_edges(5, [(0, 1, 1.0)])
        comms = greedy_modularity_communities(g)
        nodes = np.sort(np.concatenate(comms))
        assert nodes.tolist() == list(range(5))

    def test_two_cliques_separated(self):
        edges = [(i, j, 1.0) for i in range(4) for j in range(i + 1, 4)]
        edges += [(i, j, 1.0) for i in range(4, 8) for j in range(i + 1, 8)]
        edges += [(0, 4, 1.0)]  # single bridge
        g = Graph.from_edges(8, edges)
        comms = greedy_modularity_communities(g)
        assert len(comms) == 2
        assert sorted(len(c) for c in comms) == [4, 4]

    def test_min_communities_respected(self, er_medium):
        comms = greedy_modularity_communities(er_medium, min_communities=5)
        assert len(comms) >= 5


class TestSplitters:
    def test_spectral_bisection_two_parts(self, er_medium):
        parts = spectral_bisection(er_medium)
        assert len(parts) == 2
        assert abs(len(parts[0]) - len(parts[1])) <= 1
        nodes = np.sort(np.concatenate(parts))
        assert nodes.tolist() == list(range(er_medium.n_nodes))

    def test_spectral_bisection_separates_components(self):
        # Two disjoint triangles: Fiedler vector separates them.
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        g = Graph.from_edges(6, [(a, b, 1.0) for a, b in edges])
        parts = spectral_bisection(g)
        sets = [set(p.tolist()) for p in parts]
        assert {0, 1, 2} in sets and {3, 4, 5} in sets

    def test_spectral_bisection_empty_graph(self):
        g = Graph.from_edges(6, [])
        parts = spectral_bisection(g)
        assert len(parts) == 2

    def test_random_balanced_partition_cap(self, er_medium):
        parts = random_balanced_partition(er_medium, 7, rng=0)
        assert max(len(p) for p in parts) <= 7
        nodes = np.sort(np.concatenate(parts))
        assert nodes.tolist() == list(range(er_medium.n_nodes))


class TestPartitionWithCap:
    @pytest.mark.parametrize("method", ["greedy_modularity", "networkx", "spectral", "random"])
    def test_cap_respected_all_methods(self, er_medium, method):
        result = partition_with_cap(er_medium, 8, method=method, rng=0)
        assert result.sizes().max() <= 8
        nodes = np.sort(np.concatenate(result.parts))
        assert nodes.tolist() == list(range(er_medium.n_nodes))

    def test_membership_consistent(self, er_medium):
        result = partition_with_cap(er_medium, 10, rng=0)
        for part_id, part in enumerate(result.parts):
            assert np.all(result.membership[part] == part_id)

    def test_cap_one_gives_singletons(self, er_small):
        result = partition_with_cap(er_small, 1, rng=0)
        assert result.n_parts == er_small.n_nodes

    def test_cap_larger_than_graph(self, er_small):
        result = partition_with_cap(er_small, 100, rng=0)
        # Modularity partitioning may still split, but no part exceeds cap
        assert result.sizes().max() <= 100

    def test_unknown_method_rejected(self, er_small):
        with pytest.raises(ValueError, match="unknown partition method"):
            partition_with_cap(er_small, 5, method="metis")

    def test_clique_forced_split(self):
        # A 12-clique has no community structure; must still satisfy cap 5.
        edges = [(i, j, 1.0) for i in range(12) for j in range(i + 1, 12)]
        g = Graph.from_edges(12, edges)
        result = partition_with_cap(g, 5, rng=0)
        assert result.sizes().max() <= 5

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=1000),
    )
    def test_partition_is_exact_cover_property(self, n, cap, seed):
        g = erdos_renyi(n, 0.3, rng=seed)
        result = partition_with_cap(g, cap, rng=seed)
        nodes = np.sort(np.concatenate(result.parts))
        assert nodes.tolist() == list(range(n))
        assert result.sizes().max() <= cap
