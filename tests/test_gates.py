"""Unit + property tests for repro.quantum.gates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.gates import (
    CX,
    CZ,
    GATE_SET,
    H,
    SWAP,
    X,
    Y,
    Z,
    crz,
    gate_matrix,
    is_unitary,
    p,
    rx,
    ry,
    rz,
    rzz,
    rxx,
    u3,
)

angles = st.floats(-2 * np.pi, 2 * np.pi, allow_nan=False)


class TestFixedGates:
    def test_pauli_algebra(self):
        assert np.allclose(X @ X, np.eye(2))
        assert np.allclose(1j * X @ Y @ Z, -np.eye(2))

    def test_hadamard_squares_to_identity(self):
        assert np.allclose(H @ H, np.eye(2))

    def test_hadamard_maps_z_to_x(self):
        assert np.allclose(H @ Z @ H, X)

    def test_cx_truth_table(self):
        # |c t>: control is MSB of the gate index.
        for c in (0, 1):
            for t in (0, 1):
                col = 2 * c + t
                expected = 2 * c + (t ^ c)
                assert CX[expected, col] == 1.0

    def test_swap_action(self):
        vec = np.array([0, 1, 0, 0], dtype=complex)  # |01>
        assert np.allclose(SWAP @ vec, [0, 0, 1, 0])  # -> |10>

    def test_cz_diagonal(self):
        assert np.allclose(np.diag(np.diag(CZ)), CZ)


class TestParameterisedGates:
    def test_rotation_zero_is_identity(self):
        for fn, dim in ((rx, 2), (ry, 2), (rz, 2), (rzz, 4), (rxx, 4), (crz, 4)):
            assert np.allclose(fn(0.0), np.eye(dim))

    def test_rx_two_pi_is_minus_identity(self):
        assert np.allclose(rx(2 * np.pi), -np.eye(2))

    def test_rz_diagonal_phases(self):
        theta = 0.7
        m = rz(theta)
        assert m[0, 0] == pytest.approx(np.exp(-0.5j * theta))
        assert m[1, 1] == pytest.approx(np.exp(0.5j * theta))

    def test_rzz_is_diagonal(self):
        m = rzz(1.3)
        assert np.allclose(m, np.diag(np.diag(m)))

    def test_rzz_parity_phases(self):
        theta = 0.9
        m = np.diag(rzz(theta))
        # Even parity (|00>, |11>) gets e^{-iθ/2}; odd gets e^{+iθ/2}.
        assert m[0] == pytest.approx(np.exp(-0.5j * theta))
        assert m[3] == pytest.approx(np.exp(-0.5j * theta))
        assert m[1] == pytest.approx(np.exp(0.5j * theta))

    def test_u3_special_cases(self):
        assert np.allclose(u3(0, 0, 0), np.eye(2))
        # U3(pi/2, 0, pi) = H
        assert np.allclose(u3(np.pi / 2, 0, np.pi), H, atol=1e-12)

    def test_p_gate(self):
        assert np.allclose(p(np.pi), Z)

    @settings(max_examples=30, deadline=None)
    @given(angles)
    def test_rotations_unitary(self, theta):
        for fn in (rx, ry, rz, rzz, rxx, crz, p):
            assert is_unitary(fn(theta))

    @settings(max_examples=20, deadline=None)
    @given(angles, angles)
    def test_rotation_composition(self, a, b):
        # Same-axis rotations add angles.
        assert np.allclose(rx(a) @ rx(b), rx(a + b), atol=1e-10)
        assert np.allclose(rz(a) @ rz(b), rz(a + b), atol=1e-10)
        assert np.allclose(rzz(a) @ rzz(b), rzz(a + b), atol=1e-10)


class TestGateRegistry:
    def test_all_registered_gates_unitary(self):
        for name, (_factory, n_qubits, n_params) in GATE_SET.items():
            params = tuple(0.3 * (k + 1) for k in range(n_params))
            m = gate_matrix(name, params)
            assert m.shape == (2**n_qubits, 2**n_qubits)
            assert is_unitary(m), name

    def test_unknown_gate(self):
        with pytest.raises(ValueError, match="unknown gate"):
            gate_matrix("nope")

    def test_wrong_param_count(self):
        with pytest.raises(ValueError, match="parameter"):
            gate_matrix("rx", ())
        with pytest.raises(ValueError, match="parameter"):
            gate_matrix("h", (0.3,))
