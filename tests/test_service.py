"""MaxCutService: cache correctness, coalescing, batching, QAOA² parity."""

from __future__ import annotations

from typing import ClassVar

import numpy as np
import pytest

from repro.graphs import erdos_renyi
from repro.graphs.maxcut import cut_value
from repro.hpc.executor import ExecutorConfig
from repro.qaoa2 import QAOA2Solver
from repro.qaoa2.solver import _solve_subgraph_job
from repro.service import MaxCutService, SolveRequest, zipf_requests

OPTIONS = {"layers": 2, "maxiter": 25}


def payload(graph, seed, method="qaoa", options=OPTIONS, grid=None):
    return {
        "graph": graph,
        "method": method,
        "seed": seed,
        "qaoa_options": dict(options),
        "qaoa_grid": grid,
        "gw_options": {},
    }


@pytest.fixture
def graph():
    return erdos_renyi(12, 0.35, weighted=True, rng=7)


# ---------------------------------------------------------------------------
# Cache correctness (ISSUE 4 satellite: property-style tests a/b/c)
# ---------------------------------------------------------------------------
class TestCacheCorrectness:
    def test_hit_is_bit_identical_to_cold_solve(self, graph):
        """(a) A cache hit returns a bit-identical CutResult."""
        service = MaxCutService(seed=0)
        cold = service.solve(graph, seed=3, **OPTIONS)
        hit = service.solve(graph, seed=3, **OPTIONS)
        assert cold.status == "solved" and hit.status == "hit-memory"
        assert hit.cut == cold.cut
        assert np.array_equal(hit.assignment, cold.assignment)
        assert hit.assignment.dtype == cold.assignment.dtype
        # And the cold solve itself is the reference computation.
        reference = _solve_subgraph_job(payload(graph, 3))
        assert cold.cut == reference["cut"]
        assert np.array_equal(cold.assignment, reference["assignment"])

    @pytest.mark.parametrize("seed", range(3))
    def test_isomorphic_relabeling_hits_and_unrelabels(self, seed):
        """(b) A relabeled-isomorphic graph hits the same entry and the
        returned assignment is correctly un-relabeled."""
        graph = erdos_renyi(13, 0.3, weighted=True, rng=seed)
        perm = np.random.default_rng(100 + seed).permutation(13)
        relabeled = graph.relabel(perm)
        service = MaxCutService(seed=0)
        cold = service.solve(graph, seed=5, **OPTIONS)
        hit = service.solve(relabeled, seed=5, **OPTIONS)
        assert hit.status == "hit-memory"
        assert service.metrics.count("misses") == 1
        # Same cut value, and the un-relabeled assignment actually
        # achieves it on the relabeled graph.
        assert hit.cut == cold.cut
        assert cut_value(relabeled, hit.assignment) == pytest.approx(
            hit.cut, abs=1e-9
        )

    def test_coalesced_submissions_share_one_result(self, graph):
        """(c) Coalesced concurrent submissions all receive the same
        result."""
        service = MaxCutService(seed=0)
        tickets = [service.submit(graph, seed=9, **OPTIONS) for _ in range(4)]
        results = [service.result(t) for t in tickets]
        assert service.metrics.count("misses") == 1
        assert service.metrics.count("coalesced") == 3
        owner, rest = results[0], results[1:]
        assert owner.status == "solved"
        for res in rest:
            assert res.status == "coalesced"
            assert res.cut == owner.cut
            assert res.assignment is owner.assignment  # same object, by design

    def test_derived_seeds_are_order_independent(self, graph):
        """seed=None derives from content: order/concurrency irrelevant."""
        other = erdos_renyi(12, 0.35, weighted=True, rng=8)
        a = MaxCutService(seed=42)
        fwd = a.solve_many(
            [SolveRequest(graph=graph, options=OPTIONS),
             SolveRequest(graph=other, options=OPTIONS)]
        )
        b = MaxCutService(seed=42)
        rev = b.solve_many(
            [SolveRequest(graph=other, options=OPTIONS),
             SolveRequest(graph=graph, options=OPTIONS)]
        )
        assert fwd[0].cut == rev[1].cut and fwd[0].seed == rev[1].seed
        assert fwd[1].cut == rev[0].cut and fwd[1].seed == rev[0].seed
        assert np.array_equal(fwd[0].assignment, rev[1].assignment)

    def test_derived_seeds_shared_across_isomorphs(self, graph):
        service = MaxCutService(seed=0)
        relabeled = graph.relabel(
            np.random.default_rng(4).permutation(graph.n_nodes)
        )
        first = service.solve(graph, **OPTIONS)
        second = service.solve(relabeled, **OPTIONS)
        assert second.status == "hit-memory"
        assert second.seed == first.seed

    def test_thread_executor_matches_serial(self, graph):
        requests = [
            SolveRequest(graph=erdos_renyi(11, 0.35, weighted=True, rng=k),
                         options=OPTIONS, seed=k)
            for k in range(4)
        ]
        serial = MaxCutService(seed=0).solve_many(requests)
        threaded = MaxCutService(
            seed=0, executor=ExecutorConfig(backend="thread", max_workers=3)
        ).solve_many(requests)
        for a, b in zip(serial, threaded, strict=True):
            assert a.cut == b.cut
            assert np.array_equal(a.assignment, b.assignment)

    def test_disk_tier_survives_restart(self, graph, tmp_path):
        first = MaxCutService(seed=0, disk_dir=tmp_path)
        cold = first.solve(graph, seed=2, **OPTIONS)
        second = MaxCutService(seed=0, disk_dir=tmp_path)
        warm = second.solve(graph, seed=2, **OPTIONS)
        assert warm.status == "hit-disk"
        assert warm.cut == cold.cut
        assert np.array_equal(warm.assignment, cold.assignment)

    def test_use_cache_false_always_solves(self, graph):
        service = MaxCutService(seed=0, use_cache=False)
        service.solve(graph, seed=1, **OPTIONS)
        again = service.solve(graph, seed=1, **OPTIONS)
        assert again.status == "solved"
        assert service.metrics.count("hits_memory") == 0


# ---------------------------------------------------------------------------
# Lock-step batching
# ---------------------------------------------------------------------------
class TestLockstepBatching:
    SPSA: ClassVar[dict] = {"layers": 2, "maxiter": 40, "optimizer": "spsa"}

    def test_lockstep_matches_solo_solves(self, graph):
        service = MaxCutService(seed=0)
        requests = [
            SolveRequest(graph=graph, options=self.SPSA, seed=s)
            for s in (1, 2, 3)
        ]
        batched = service.solve_many(requests)
        assert service.metrics.count("lockstep_batches") == 1
        assert service.metrics.count("lockstep_jobs") == 3
        for req, res in zip(requests, batched, strict=True):
            solo = _solve_subgraph_job(payload(graph, req.seed, options=self.SPSA))
            assert res.cut == solo["cut"]
            assert np.array_equal(res.assignment, solo["assignment"])
            np.testing.assert_allclose(res.params, solo["params"], atol=1e-9)

    def test_exact_flag_bypasses_lockstep(self, graph):
        service = MaxCutService(seed=0)
        requests = [
            SolveRequest(graph=graph, options=self.SPSA, seed=s, exact=True)
            for s in (1, 2)
        ]
        service.solve_many(requests)
        assert service.metrics.count("lockstep_batches") == 0

    def test_mixed_batch_routes_correctly(self, graph):
        """SPSA pairs lock-step; the COBYLA job takes the generic path."""
        service = MaxCutService(seed=0)
        requests = [
            SolveRequest(graph=graph, options=self.SPSA, seed=1),
            SolveRequest(graph=graph, options=self.SPSA, seed=2),
            SolveRequest(graph=graph, options=OPTIONS, seed=3),
        ]
        out = service.solve_many(requests)
        assert service.metrics.count("lockstep_jobs") == 2
        solo = _solve_subgraph_job(payload(graph, 3))
        assert out[2].cut == solo["cut"]

    def test_shared_diagonal_jobs_bit_identical(self, graph):
        """Same-graph generic jobs share one cut diagonal; results match
        the unshared reference exactly."""
        service = MaxCutService(seed=0)
        requests = [
            SolveRequest(graph=graph, options=OPTIONS, seed=s) for s in (1, 2)
        ]
        out = service.solve_many(requests)
        assert service.metrics.count("shared_diagonals") == 2
        for req, res in zip(requests, out, strict=True):
            solo = _solve_subgraph_job(payload(graph, req.seed))
            assert res.cut == solo["cut"]
            assert np.array_equal(res.assignment, solo["assignment"])


# ---------------------------------------------------------------------------
# QAOA² through the service (acceptance criterion: identical cut values)
# ---------------------------------------------------------------------------
class TestQAOA2ServicePath:
    @pytest.mark.parametrize(
        "qaoa_options",
        [
            {"layers": 2, "maxiter": 20},
            {"layers": 1, "maxiter": 25, "optimizer": "spsa"},
        ],
    )
    def test_service_path_identical_to_direct(self, er_medium, qaoa_options):
        direct = QAOA2Solver(
            n_max_qubits=8, qaoa_options=dict(qaoa_options), rng=11
        ).solve(er_medium)
        service = MaxCutService(seed=0)
        served = QAOA2Solver(
            n_max_qubits=8, qaoa_options=dict(qaoa_options),
            service=service, rng=11,
        ).solve(er_medium)
        assert served.cut == direct.cut
        assert np.array_equal(served.assignment, direct.assignment)
        assert served.n_subproblems == direct.n_subproblems
        assert service.metrics.count("requests") == served.n_subproblems

    def test_repeat_runs_hit_cache(self, er_medium):
        service = MaxCutService(seed=0)
        solver = QAOA2Solver(
            n_max_qubits=8, qaoa_options={"layers": 2, "maxiter": 20},
            service=service, rng=11,
        )
        first = solver.solve(er_medium)
        misses = service.metrics.count("misses")
        second = solver.solve(er_medium)
        assert second.cut == first.cut
        assert service.metrics.count("misses") == misses  # all hits
        assert service.metrics.count("hits_memory") >= first.n_subproblems


# ---------------------------------------------------------------------------
# Facade / metrics / workload helpers
# ---------------------------------------------------------------------------
class TestFacade:
    def test_submit_requires_graph_or_request(self):
        service = MaxCutService(seed=0)
        with pytest.raises(ValueError, match="graph or a request"):
            service.submit()

    def test_submit_rejects_both(self, graph):
        service = MaxCutService(seed=0)
        with pytest.raises(ValueError, match="not both"):
            service.submit(graph, request=SolveRequest(graph=graph))

    def test_unknown_ticket(self):
        with pytest.raises(KeyError):
            MaxCutService(seed=0).result(99)

    def test_gw_requests_cacheable(self, graph):
        service = MaxCutService(seed=0)
        cold = service.solve(graph, method="gw", seed=4)
        hit = service.solve(graph, method="gw", seed=4)
        assert cold.method == "gw" and hit.status == "hit-memory"
        assert hit.cut == cold.cut

    def test_stats_report_renders(self, graph):
        service = MaxCutService(seed=0)
        service.solve(graph, seed=1, **OPTIONS)
        service.solve(graph, seed=1, **OPTIONS)
        report = service.stats_report()
        assert "hits_memory" in report and "cache:" in report
        assert "p95" in report

    def test_export_knowledge_roundtrip(self, graph):
        service = MaxCutService(seed=0)
        service.solve(graph, seed=1, layers=1, maxiter=25)
        kb = service.export_knowledge()
        assert len(kb) == 1
        assert kb.records[0].layers == 1
        assert kb.records[0].qaoa_params is not None

    def test_zipf_requests_shape(self):
        requests = zipf_requests(
            n_requests=30, universe=5, n_nodes=8, rng=0,
            options={"layers": 1, "maxiter": 10},
        )
        assert len(requests) == 30
        digests = {id(r.graph) for r in requests}
        assert len(digests) <= 5
        # Rank-1 graph must dominate a Zipf stream.
        from collections import Counter

        counts = Counter(id(r.graph) for r in requests)
        assert max(counts.values()) >= 30 // 3

    def test_cli_service_stats(self, capsys):
        from repro.cli import main

        code = main([
            "service-stats", "--requests", "8", "--universe", "2",
            "--nodes", "8", "--layers", "1", "--maxiter", "10",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "MaxCutService stats" in out and "hit_rate" in out


class TestServiceSeedModes:
    def _twin_triangle_graph(self):
        """Two isomorphic 4-node components → isomorphic partition leaves."""
        from repro.graphs import Graph

        edges = []
        for base in (0, 4):
            edges += [
                (base, base + 1, 1.0), (base + 1, base + 2, 2.0),
                (base, base + 2, 1.5), (base + 2, base + 3, 1.0),
            ]
        return Graph.from_edges(8, edges)

    def test_canonical_seeds_dedup_isomorphic_leaves(self):
        graph = self._twin_triangle_graph()
        service = MaxCutService(seed=0)
        result = QAOA2Solver(
            n_max_qubits=4, qaoa_options={"layers": 2, "maxiter": 20},
            service=service, service_seeds="canonical", rng=5,
        ).solve(graph)
        # Two isomorphic leaves + one merged graph, but only two solves:
        # the second leaf is served from the first's cache entry.
        assert result.n_subproblems == 3
        assert service.metrics.count("misses") == 2
        assert (
            service.metrics.count("hits_memory")
            + service.metrics.count("coalesced")
        ) == 1
        assert cut_value(graph, result.assignment) == pytest.approx(
            result.cut, abs=1e-9
        )

    def test_unknown_seed_mode_rejected(self, er_medium):
        solver = QAOA2Solver(
            n_max_qubits=8, service=MaxCutService(seed=0),
            service_seeds="bogus", rng=0,
        )
        with pytest.raises(ValueError, match="service_seeds"):
            solver.solve(er_medium)

    def test_qaoa2_executor_passes_through_service(self, er_medium):
        """--backend thread keeps its meaning on the service path."""
        direct = QAOA2Solver(
            n_max_qubits=8, qaoa_options={"layers": 2, "maxiter": 20}, rng=11,
        ).solve(er_medium)
        served = QAOA2Solver(
            n_max_qubits=8, qaoa_options={"layers": 2, "maxiter": 20},
            executor=ExecutorConfig(backend="thread", max_workers=3),
            service=MaxCutService(seed=0), rng=11,
        ).solve(er_medium)
        assert served.cut == direct.cut
        assert np.array_equal(served.assignment, direct.assignment)


class TestSchedulerGuards:
    def test_lockstep_respects_max_qubits(self):
        """Oversized graphs must fall through to the solver's clean error,
        not attempt a 2**n lock-step batch."""
        graph = erdos_renyi(30, 0.1, rng=0)
        service = MaxCutService(seed=0)
        options = {"layers": 1, "maxiter": 10, "optimizer": "spsa",
                   "max_qubits": 26}
        requests = [
            SolveRequest(graph=graph, options=options, seed=s) for s in (1, 2)
        ]
        with pytest.raises(ValueError, match="max_qubits"):
            service.solve_many(requests)
        assert service.metrics.count("lockstep_batches") == 0

    def test_fingerprint_memoised_on_graph(self):
        from repro.service import canonical_fingerprint

        graph = erdos_renyi(12, 0.3, rng=0)
        first = canonical_fingerprint(graph)
        assert canonical_fingerprint(graph) is first
        # Non-default budgets bypass (and do not poison) the memo.
        other = canonical_fingerprint(graph, max_leaves=2)
        assert canonical_fingerprint(graph) is first
        assert other.digest == first.digest or not other.exact


class TestReviewRegressions:
    """Pins for review findings: exact/batched cache isolation, result
    immutability, bounded ticket retention."""

    SPSA: ClassVar[dict] = {"layers": 2, "maxiter": 40, "optimizer": "spsa"}

    def test_exact_requests_never_served_lockstep_entries(self, graph):
        service = MaxCutService(seed=0)
        # Populate the cache through a lock-step batch...
        service.solve_many(
            [SolveRequest(graph=graph, options=self.SPSA, seed=s)
             for s in (1, 2, 3)]
        )
        # ...then ask for seed 1 under the bit-identical contract.
        exact = service.solve_many(
            [SolveRequest(graph=graph, options=self.SPSA, seed=1, exact=True)]
        )[0]
        assert exact.status == "solved"  # disjoint cache namespace
        reference = _solve_subgraph_job(
            payload(graph, 1, options=self.SPSA)
        )
        assert exact.cut == reference["cut"]
        assert exact.params == reference["params"]  # bitwise, not just close

    def test_result_mutation_does_not_corrupt_cache(self, graph):
        service = MaxCutService(seed=0)
        cold = service.solve(graph, seed=3, layers=1, maxiter=15)
        cold.params[0] = 999.0
        cold.extra["injected"] = True
        hit = service.solve(graph, seed=3, layers=1, maxiter=15)
        assert hit.status == "hit-memory"
        assert hit.params[0] != 999.0
        assert "injected" not in hit.extra

    def test_unclaimed_tickets_bounded(self, graph):
        service = MaxCutService(seed=0)
        service.max_retained_tickets = 3
        tickets = []
        for k in range(5):
            tickets.append(service.submit(graph, seed=k, layers=1, maxiter=10))
            service.flush()  # never claimed
        assert len(service._tickets) == 3
        with pytest.raises(KeyError):
            service.result(tickets[0])  # oldest dropped
        assert service.result(tickets[-1]).cut >= 0.0  # newest retained
