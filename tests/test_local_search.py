"""Unit tests for simulated annealing."""

import numpy as np
import pytest

from repro.classical import simulated_annealing
from repro.graphs import (
    Graph,
    complete_bipartite,
    cut_value,
    erdos_renyi,
    exact_maxcut_bruteforce,
)


class TestSimulatedAnnealing:
    def test_cut_consistency(self, er_small):
        result = simulated_annealing(er_small, rng=0, n_steps=5000)
        assert result.cut == pytest.approx(cut_value(er_small, result.assignment))

    def test_bounded_by_exact(self, er_small):
        exact = exact_maxcut_bruteforce(er_small).cut
        result = simulated_annealing(er_small, rng=0, n_steps=5000)
        assert result.cut <= exact + 1e-9

    def test_finds_optimum_on_small_instance(self):
        g = erdos_renyi(10, 0.4, rng=1)
        exact = exact_maxcut_bruteforce(g).cut
        result = simulated_annealing(g, rng=0, n_steps=20000)
        assert result.cut == pytest.approx(exact)

    def test_bipartite_optimum(self):
        g = complete_bipartite(5, 5)
        result = simulated_annealing(g, rng=2, n_steps=20000)
        assert result.cut == pytest.approx(25.0)

    def test_respects_initial_assignment(self, er_small):
        start = np.zeros(er_small.n_nodes, dtype=np.uint8)
        result = simulated_annealing(er_small, assignment=start, rng=0, n_steps=100)
        assert result.cut >= 0.0

    def test_zero_steps_returns_start(self, er_small):
        start = np.zeros(er_small.n_nodes, dtype=np.uint8)
        result = simulated_annealing(er_small, assignment=start, rng=0, n_steps=0)
        assert result.cut == 0.0

    def test_deterministic_with_seed(self, er_small):
        a = simulated_annealing(er_small, rng=5, n_steps=3000)
        b = simulated_annealing(er_small, rng=5, n_steps=3000)
        assert a.cut == b.cut

    def test_negative_weights(self):
        base = erdos_renyi(10, 0.5, rng=3)
        g = base.with_weights(np.random.default_rng(1).uniform(-1, 1, base.n_edges))
        exact = exact_maxcut_bruteforce(g).cut
        result = simulated_annealing(g, rng=0, n_steps=20000)
        assert result.cut <= exact + 1e-9
        assert result.cut >= 0.5 * exact - 1e-9  # should get close

    def test_empty_graph(self):
        result = simulated_annealing(Graph.from_edges(0, []), rng=0)
        assert result.cut == 0.0

    def test_incremental_gains_match_recompute(self, er_small):
        # Run a short anneal and verify final cut against direct evaluation —
        # this catches errors in the incremental gain bookkeeping.
        for seed in range(3):
            result = simulated_annealing(er_small, rng=seed, n_steps=500)
            assert result.cut == pytest.approx(
                cut_value(er_small, result.assignment)
            )
