"""Unit tests for the Goemans-Williamson pipeline."""

import numpy as np
import pytest

from repro.classical import (
    DEFAULT_SLICES,
    GW_APPROX_RATIO,
    GWAbnormalTermination,
    goemans_williamson,
    hyperplane_rounding,
    solve_maxcut_gw,
)
from repro.classical.sdp import solve_sdp_mixing
from repro.graphs import (
    Graph,
    complete_bipartite,
    cut_value,
    erdos_renyi,
    exact_maxcut_bruteforce,
)


class TestPipeline:
    def test_basic_invariants(self, er_small):
        gw = goemans_williamson(er_small, rng=0)
        assert gw.best_cut == pytest.approx(cut_value(er_small, gw.best_assignment))
        assert gw.average_cut <= gw.best_cut + 1e-12
        assert len(gw.slice_cuts) == DEFAULT_SLICES
        assert gw.best_cut <= gw.sdp_objective + 1e-6

    def test_value_for_comparison_is_average(self, er_small):
        gw = goemans_williamson(er_small, rng=0)
        assert gw.value_for_comparison == gw.average_cut
        assert gw.average_cut == pytest.approx(np.mean(gw.slice_cuts))

    def test_approximation_guarantee_statistical(self):
        # With 30 slices the 0.878 bound is met with near certainty.
        for seed in range(5):
            g = erdos_renyi(12, 0.4, rng=seed)
            exact = exact_maxcut_bruteforce(g).cut
            gw = goemans_williamson(g, rng=seed)
            assert gw.best_cut >= GW_APPROX_RATIO * exact - 1e-9

    def test_bipartite_exact(self):
        g = complete_bipartite(5, 5)
        gw = goemans_williamson(g, rng=1)
        assert gw.best_cut == pytest.approx(25.0)

    def test_n_slices_configurable(self, er_small):
        gw = goemans_williamson(er_small, n_slices=7, rng=0)
        assert len(gw.slice_cuts) == 7

    def test_admm_backend(self, er_small):
        gw = goemans_williamson(er_small, sdp_method="admm", rng=0)
        exact = exact_maxcut_bruteforce(er_small).cut
        assert gw.best_cut >= GW_APPROX_RATIO * exact - 1e-9

    def test_seeded_determinism(self, er_small):
        a = goemans_williamson(er_small, rng=9)
        b = goemans_williamson(er_small, rng=9)
        assert a.best_cut == b.best_cut
        assert a.slice_cuts == b.slice_cuts

    def test_empty_graph(self):
        gw = goemans_williamson(Graph.from_edges(0, []), rng=0)
        assert gw.best_cut == 0.0

    def test_cut_result_wrapper(self, er_small):
        result = solve_maxcut_gw(er_small, rng=0)
        assert result.method == "gw"
        assert "average_cut" in result.extra


class TestFailureInjection:
    def test_fail_above_triggers(self):
        g = erdos_renyi(25, 0.2, rng=0)
        with pytest.raises(GWAbnormalTermination, match="2000|20"):
            goemans_williamson(g, fail_above_nodes=20)

    def test_fail_above_pass_through(self, er_small):
        gw = goemans_williamson(er_small, fail_above_nodes=100, rng=0)
        assert gw.best_cut > 0


class TestRounding:
    def test_rounding_labels_binary(self, er_small):
        sdp = solve_sdp_mixing(er_small, rng=0)
        labels = hyperplane_rounding(sdp.vectors, rng=0)
        assert set(np.unique(labels)).issubset({0, 1})
        assert len(labels) == er_small.n_nodes

    def test_rounding_expectation_bound(self):
        # Mean slice cut should be >= 0.878 * SDP (GW analysis) minus noise;
        # check the weaker statistical bound 0.8 over 200 slices.
        g = erdos_renyi(14, 0.4, rng=4)
        sdp = solve_sdp_mixing(g, rng=4)
        rng = np.random.default_rng(0)
        cuts = [
            cut_value(g, hyperplane_rounding(sdp.vectors, rng=rng))
            for _ in range(200)
        ]
        assert np.mean(cuts) >= 0.8 * sdp.objective
