"""Unit + property tests for repro.quantum.statevector kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.gates import CX, H, X, rx, rzz
from repro.quantum.backend import NumpyBackend
from repro.quantum.statevector import (
    apply_diagonal,
    apply_gate,
    apply_one_qubit,
    basis_state,
    expectation_diagonal,
    fidelity,
    norm,
    plus_state,
    probabilities,
    sample_counts,
    top_amplitudes,
    zero_state,
)

angles = st.floats(-np.pi, np.pi, allow_nan=False)


class TestStates:
    def test_zero_state(self):
        s = zero_state(3)
        assert s[0] == 1.0 and np.count_nonzero(s) == 1

    def test_plus_state_uniform(self):
        s = plus_state(3)
        assert np.allclose(np.abs(s), 1 / np.sqrt(8))

    def test_basis_state(self):
        s = basis_state(3, 5)
        assert s[5] == 1.0 and norm(s) == pytest.approx(1.0)


class TestApplyGate:
    def test_x_flips_correct_qubit(self):
        for q in range(3):
            s = apply_gate(zero_state(3), X, [q])
            assert s[1 << q] == pytest.approx(1.0)

    def test_h_on_qubit_zero(self):
        s = apply_gate(zero_state(2), H, [0])
        assert s[0] == pytest.approx(1 / np.sqrt(2))
        assert s[1] == pytest.approx(1 / np.sqrt(2))

    def test_cx_entangles(self):
        s = apply_gate(zero_state(2), H, [0])
        s = apply_gate(s, CX, [0, 1])  # control qubit 0
        # Bell state (|00> + |11>)/sqrt2
        assert s[0] == pytest.approx(1 / np.sqrt(2))
        assert s[3] == pytest.approx(1 / np.sqrt(2))

    def test_control_target_ordering_matters(self):
        s1 = apply_gate(basis_state(2, 1), CX, [0, 1])  # control=0 set -> flip q1
        assert np.argmax(np.abs(s1)) == 3
        s2 = apply_gate(basis_state(2, 1), CX, [1, 0])  # control=1 unset -> no-op
        assert np.argmax(np.abs(s2)) == 1

    def test_one_qubit_fast_path_matches_general(self):
        rng = np.random.default_rng(0)
        state = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        state /= np.linalg.norm(state)
        m = rx(0.7)
        for q in range(4):
            assert np.allclose(
                apply_one_qubit(state, m, q), apply_gate(state, m, [q])
            )

    def test_wrong_matrix_shape(self):
        with pytest.raises(ValueError, match="mismatch"):
            apply_gate(zero_state(2), H, [0, 1])

    def test_duplicate_qubits(self):
        with pytest.raises(ValueError, match="duplicate"):
            apply_gate(zero_state(2), CX, [0, 0])

    def test_out_of_range_qubit(self):
        with pytest.raises(ValueError, match="out of range"):
            apply_gate(zero_state(2), H, [2])

    def test_non_power_of_two_state_rejected(self):
        # int(log2(len)) silently truncated before; malformed states must
        # fail loudly instead of corrupting the result.
        for bad_len in (3, 5, 6, 12):
            state = np.ones(bad_len, dtype=np.complex128)
            with pytest.raises(ValueError, match="power of 2"):
                apply_gate(state, X, [0])
            with pytest.raises(ValueError, match="power of 2"):
                apply_one_qubit(state, X, 0)
            with pytest.raises(ValueError, match="power of 2"):
                NumpyBackend().apply_mixer_layer(state, 0.3)

    def test_empty_state_rejected(self):
        with pytest.raises(ValueError, match="power of 2"):
            apply_gate(np.zeros(0, dtype=np.complex128), X, [0])

    @settings(max_examples=25, deadline=None)
    @given(angles, st.integers(0, 3))
    def test_norm_preserved_single_qubit(self, theta, q):
        rng = np.random.default_rng(42)
        state = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        state /= np.linalg.norm(state)
        out = apply_gate(state, rx(theta), [q])
        assert norm(out) == pytest.approx(1.0, abs=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(angles, st.integers(0, 2), st.integers(0, 2))
    def test_norm_preserved_two_qubit(self, theta, a, b):
        if a == b:
            return
        rng = np.random.default_rng(43)
        state = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        state /= np.linalg.norm(state)
        out = apply_gate(state, rzz(theta), [a, b])
        assert norm(out) == pytest.approx(1.0, abs=1e-10)


class TestDiagonalAndMixer:
    def test_apply_diagonal_elementwise(self):
        state = plus_state(2)
        diag = np.exp(1j * np.arange(4))
        out = apply_diagonal(state, diag)
        assert np.allclose(out, state * diag)

    def test_apply_diagonal_shape_mismatch(self):
        with pytest.raises(ValueError):
            apply_diagonal(plus_state(2), np.ones(3))

    def test_rx_layer_matches_per_qubit_gates(self):
        beta = 0.37
        state = plus_state(3)
        expected = state.copy()
        for q in range(3):
            expected = apply_gate(expected, rx(2 * beta), [q])
        assert np.allclose(NumpyBackend().apply_mixer_layer(state.copy(), beta), expected)

    def test_rx_layer_beta_zero_identity(self):
        state = plus_state(3)
        assert np.allclose(NumpyBackend().apply_mixer_layer(state.copy(), 0.0), state)

    def test_plus_state_invariant_under_mixer(self):
        # |+>^n is the X-mixer ground state: only a global phase applies.
        state = plus_state(4)
        out = NumpyBackend().apply_mixer_layer(state.copy(), 0.8)
        assert fidelity(out, state) == pytest.approx(1.0, abs=1e-10)


class TestMeasurement:
    def test_probabilities_sum_to_one(self):
        assert probabilities(plus_state(5)).sum() == pytest.approx(1.0)

    def test_sample_counts_total(self):
        counts = sample_counts(plus_state(3), 1000, rng=0)
        assert sum(counts.values()) == 1000

    def test_sample_counts_deterministic_state(self):
        counts = sample_counts(basis_state(3, 5), 100, rng=0)
        assert counts == {5: 100}

    def test_sample_counts_seeded(self):
        a = sample_counts(plus_state(4), 500, rng=9)
        b = sample_counts(plus_state(4), 500, rng=9)
        assert a == b

    def test_sample_counts_invalid_shots(self):
        with pytest.raises(ValueError):
            sample_counts(plus_state(2), 0)

    def test_top_amplitudes_order(self):
        state = np.array([0.1, 0.7, 0.5, 0.5], dtype=complex)
        state /= np.linalg.norm(state)
        top = top_amplitudes(state, 2)
        assert top[0] == 1
        assert set(top.tolist()) <= {1, 2, 3}

    def test_top_amplitudes_k_clamped(self):
        top = top_amplitudes(plus_state(2), 100)
        assert len(top) == 4

    def test_expectation_diagonal(self):
        state = basis_state(2, 3)
        diag = np.array([0.0, 1.0, 2.0, 7.0])
        assert expectation_diagonal(state, diag) == pytest.approx(7.0)

    def test_expectation_uniform_state_is_mean(self):
        diag = np.arange(8, dtype=float)
        assert expectation_diagonal(plus_state(3), diag) == pytest.approx(diag.mean())

    def test_fidelity_bounds(self):
        a, b = plus_state(2), basis_state(2, 0)
        assert fidelity(a, a) == pytest.approx(1.0)
        assert 0 <= fidelity(a, b) <= 1
