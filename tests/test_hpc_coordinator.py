"""Unit tests for the Fig. 2 coordinator/worker scheme."""

import pytest

from repro.graphs import cut_value, erdos_renyi
from repro.hpc.coordinator import run_coordinated_qaoa2
from repro.qaoa2 import QAOA2Solver


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(45, 0.12, rng=19)


class TestCoordinator:
    def test_solution_consistent(self, graph):
        result = run_coordinated_qaoa2(graph, n_workers=2, method="gw", rng=0)
        assert result.cut == pytest.approx(cut_value(graph, result.assignment))

    def test_all_jobs_dispatched(self, graph):
        result = run_coordinated_qaoa2(graph, n_workers=3, method="gw", rng=0)
        assert sum(w.jobs for w in result.worker_stats) == result.n_jobs
        assert result.n_jobs >= 2

    def test_workers_share_load(self, graph):
        result = run_coordinated_qaoa2(graph, n_workers=3, method="gw", rng=0)
        busy = [w.jobs for w in result.worker_stats]
        assert all(jobs >= 1 for jobs in busy)  # dynamic dispatch reaches all

    def test_quality_matches_inprocess_solver(self, graph):
        coordinated = run_coordinated_qaoa2(graph, n_workers=2, method="gw", rng=5)
        inprocess = QAOA2Solver(n_max_qubits=10, subgraph_method="gw", rng=5).solve(
            graph
        )
        # Same algorithm, different seeds reach workers: allow modest spread.
        assert abs(coordinated.cut - inprocess.cut) / inprocess.cut < 0.15

    def test_qaoa_method(self, graph):
        result = run_coordinated_qaoa2(
            graph,
            n_workers=2,
            method="qaoa",
            qaoa_options={"layers": 2, "maxiter": 20},
            rng=0,
        )
        assert result.cut > graph.total_weight / 2

    def test_policy_method(self, graph):
        result = run_coordinated_qaoa2(
            graph,
            n_workers=2,
            method=lambda g: "gw",
            rng=0,
        )
        assert result.cut > 0

    def test_metrics_populated(self, graph):
        result = run_coordinated_qaoa2(graph, n_workers=2, method="gw", rng=0)
        assert result.wall_time > 0
        assert result.coordinator_time > 0
        assert 0 <= result.coordination_overhead <= 1
        assert result.speedup > 0
        assert result.efficiency > 0

    def test_invalid_worker_count(self, graph):
        with pytest.raises(ValueError, match="worker"):
            run_coordinated_qaoa2(graph, n_workers=0)

    def test_single_worker(self, graph):
        result = run_coordinated_qaoa2(graph, n_workers=1, method="gw", rng=0)
        assert result.worker_stats[0].jobs == result.n_jobs
