"""Unit tests for the MLP parameter predictor (ref [37] analogue)."""

import numpy as np
import pytest

from repro.graphs import erdos_renyi
from repro.ml import GridRecord, KnowledgeBase, MLPRegressor, ParameterPredictor
from repro.qaoa import QAOASolver


class TestMLPRegressor:
    def test_fits_linear_function(self, rng):
        x = rng.normal(size=(300, 3))
        y = x @ np.array([[1.0, -0.5], [0.3, 0.2], [0.0, 1.0]]) + 0.1
        model = MLPRegressor(hidden=16, n_epochs=300).fit(x, y, rng=0)
        pred = model.predict(x)
        mse = float(np.mean((pred - y) ** 2))
        assert mse < 0.05

    def test_loss_decreases(self, rng):
        x = rng.normal(size=(100, 2))
        y = np.sin(x[:, :1])
        model = MLPRegressor(hidden=8, n_epochs=100).fit(x, y, rng=0)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_single_sample_predict(self, rng):
        x = rng.normal(size=(50, 2))
        y = x.sum(axis=1, keepdims=True)
        model = MLPRegressor(hidden=8, n_epochs=100).fit(x, y, rng=0)
        out = model.predict(x[0])
        assert out.shape == (1,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPRegressor().predict(np.zeros(3))

    def test_deterministic_with_seed(self, rng):
        x = rng.normal(size=(60, 2))
        y = x[:, :1]
        a = MLPRegressor(hidden=8, n_epochs=50).fit(x, y, rng=7).predict(x[:5])
        b = MLPRegressor(hidden=8, n_epochs=50).fit(x, y, rng=7).predict(x[:5])
        assert np.allclose(a, b)


class TestParameterPredictor:
    def build_dataset(self, n_graphs=25, p_layers=2):
        """Synthetic 'optimal parameters' correlated with graph density."""
        graphs, vectors = [], []
        rng = np.random.default_rng(0)
        for seed in range(n_graphs):
            p_edge = 0.15 + 0.5 * (seed / n_graphs)
            g = erdos_renyi(10, p_edge, rng=seed)
            graphs.append(g)
            gamma = 0.8 - 0.5 * g.density  # denser graph -> smaller gamma
            vectors.append(np.array([gamma, gamma * 0.8, 0.4, 0.2]))
        return graphs, vectors

    def test_predicts_density_trend(self):
        graphs, vectors = self.build_dataset()
        predictor = ParameterPredictor(p_train=2)
        predictor.model = MLPRegressor(hidden=16, n_epochs=500)
        predictor.fit(graphs, vectors, rng=1)
        sparse_params = predictor.predict_initial_parameters(
            erdos_renyi(10, 0.15, rng=100)
        )
        dense_params = predictor.predict_initial_parameters(
            erdos_renyi(10, 0.65, rng=101)
        )
        assert sparse_params[0] > dense_params[0]  # learned gamma trend

    def test_layer_reinterpolation(self):
        graphs, vectors = self.build_dataset()
        predictor = ParameterPredictor(p_train=2).fit(graphs, vectors, rng=1)
        params = predictor.predict_initial_parameters(graphs[0], p=4)
        assert len(params) == 8

    def test_warm_start_runs_in_solver(self):
        graphs, vectors = self.build_dataset()
        predictor = ParameterPredictor(p_train=2).fit(graphs, vectors, rng=1)
        graph = erdos_renyi(10, 0.3, rng=200)
        warm = predictor.predict_initial_parameters(graph)
        result = QAOASolver(
            layers=2, init="warm", warm_start=warm, maxiter=20, rng=0
        ).solve(graph)
        assert result.cut > 0

    def test_from_knowledge_base(self):
        kb = KnowledgeBase()
        rng = np.random.default_rng(0)
        for seed in range(12):
            p_edge = 0.2 + 0.03 * seed
            kb.add(
                GridRecord(
                    10, round(p_edge, 2), False, 2, 0.5,
                    qaoa_cut=10.0, gw_cut=9.0,
                    qaoa_params=list(rng.uniform(0, 1, 4)),
                )
            )
        predictor = ParameterPredictor.from_knowledge_base(kb, p_train=2, rng=0)
        params = predictor.predict_initial_parameters(erdos_renyi(10, 0.3, rng=5))
        assert len(params) == 4
        assert np.all(np.isfinite(params))

    def test_from_empty_knowledge_base(self):
        with pytest.raises(ValueError, match="no parameter"):
            ParameterPredictor.from_knowledge_base(KnowledgeBase(), p_train=2)
