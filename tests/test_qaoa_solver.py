"""Unit tests for the QAOA MaxCut solver."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    complete_bipartite,
    cut_value,
    erdos_renyi,
    exact_maxcut_bruteforce,
    ring,
)
from repro.qaoa import QAOASolver, solve_maxcut_qaoa


class TestBasicSolve:
    def test_returns_consistent_cut(self, er_small):
        result = QAOASolver(layers=2, rng=0, maxiter=30).solve(er_small)
        assert result.cut == pytest.approx(cut_value(er_small, result.assignment))

    def test_cut_bounded_by_optimum(self, er_small):
        exact = exact_maxcut_bruteforce(er_small).cut
        result = QAOASolver(layers=3, rng=0).solve(er_small)
        assert result.cut <= exact + 1e-9

    def test_energy_below_cut_bound(self, er_small):
        exact = exact_maxcut_bruteforce(er_small).cut
        result = QAOASolver(layers=3, rng=0).solve(er_small)
        assert result.energy <= exact + 1e-9

    def test_bipartite_solved_exactly(self):
        g = complete_bipartite(4, 4)
        result = QAOASolver(layers=5, selection="topk", rng=0, maxiter=150).solve(g)
        assert result.cut == pytest.approx(16.0)

    def test_deeper_ansatz_not_worse_energy(self):
        g = ring(8)
        e1 = QAOASolver(layers=1, rng=0, maxiter=60).solve(g).energy
        e4 = QAOASolver(layers=4, rng=0, maxiter=200).solve(g).energy
        assert e4 >= e1 - 0.15  # optimizer noise tolerance

    def test_history_and_nfev_populated(self, er_small):
        result = QAOASolver(layers=2, rng=0, maxiter=25).solve(er_small)
        assert result.nfev == len(result.history)
        assert result.nfev <= 27

    def test_paper_iteration_default(self, er_small):
        result = QAOASolver(layers=3, rng=0).solve(er_small)
        assert result.nfev <= 32  # default_iterations(3)=30 (+ tolerance)

    def test_empty_edge_graph(self):
        g = Graph.from_edges(4, [])
        result = QAOASolver(layers=2, rng=0).solve(g)
        assert result.cut == 0.0
        assert result.nfev == 0

    def test_too_many_qubits_rejected(self):
        g = erdos_renyi(30, 0.1, rng=0)
        with pytest.raises(ValueError, match="partition"):
            QAOASolver(max_qubits=26).solve(g)

    def test_seeded_determinism(self, er_small):
        a = QAOASolver(layers=2, rng=42, maxiter=25).solve(er_small)
        b = QAOASolver(layers=2, rng=42, maxiter=25).solve(er_small)
        assert a.cut == b.cut
        assert np.allclose(a.params, b.params)

    def test_convenience_wrapper(self, er_small):
        result = solve_maxcut_qaoa(er_small, layers=2, rng=0, maxiter=20)
        assert result.cut >= 0


class TestSelectionRules:
    def test_topk_at_least_top1(self, er_small):
        top1 = QAOASolver(layers=2, selection="top1", rng=3, maxiter=30).solve(er_small)
        topk = QAOASolver(layers=2, selection="topk", top_k=32, rng=3, maxiter=30).solve(
            er_small
        )
        assert topk.cut >= top1.cut  # same state, wider candidate set

    def test_sampled_selection_valid(self, er_small):
        result = QAOASolver(layers=2, selection="sampled", shots=512, rng=1,
                            maxiter=25).solve(er_small)
        assert result.cut == pytest.approx(cut_value(er_small, result.assignment))
        assert result.extra["distinct_sampled"] >= 1

    def test_unknown_selection(self, er_small):
        with pytest.raises(ValueError, match="selection"):
            QAOASolver(selection="oracle", rng=0).solve(er_small)

    def test_selection_metadata(self, er_small):
        result = QAOASolver(layers=2, selection="top1", rng=0, maxiter=20).solve(er_small)
        assert "bitstring" in result.extra


class TestObjectives:
    def test_sampled_objective_runs(self, er_small):
        result = QAOASolver(layers=2, objective="sampled", shots=256, rng=0,
                            maxiter=20).solve(er_small)
        assert result.cut >= 0

    def test_unknown_objective(self, er_small):
        with pytest.raises(ValueError, match="objective"):
            QAOASolver(objective="magic", rng=0).solve(er_small)

    @pytest.mark.parametrize("optimizer", ["cobyla", "spsa", "nelder-mead"])
    def test_optimizer_backends(self, er_small, optimizer):
        result = QAOASolver(layers=2, optimizer=optimizer, rng=0, maxiter=30).solve(
            er_small
        )
        # All backends must beat the no-optimization expectation W/2 ... or
        # at least produce a valid solution.
        assert result.cut == pytest.approx(cut_value(er_small, result.assignment))

    def test_warm_start_init(self, er_small):
        warm = np.array([0.4, 0.6, 0.5, 0.2])
        result = QAOASolver(layers=2, init="warm", warm_start=warm, rng=0,
                            maxiter=20).solve(er_small)
        assert result.cut >= 0

    def test_negative_weights_supported(self):
        base = erdos_renyi(8, 0.5, rng=3)
        g = base.with_weights(np.random.default_rng(0).uniform(-1, 1, base.n_edges))
        result = QAOASolver(layers=2, selection="topk", rng=0, maxiter=40).solve(g)
        exact = exact_maxcut_bruteforce(g).cut
        assert result.cut <= exact + 1e-9
        # topk over 16 candidates should land at a decent cut
        assert result.cut >= 0.0  # never below the empty cut


class TestMultiStart:
    def test_single_start_default_unchanged(self, er_small):
        # n_starts=1 must be byte-for-byte the pre-multi-start solver.
        base = QAOASolver(layers=2, rng=0, maxiter=30).solve(er_small)
        one = QAOASolver(layers=2, rng=0, maxiter=30, n_starts=1).solve(er_small)
        np.testing.assert_array_equal(base.params, one.params)
        assert base.cut == one.cut
        assert base.history == one.history

    def test_spsa_multi_start_never_worse(self, er_small):
        # Start 0 shares the init and perturbation stream with the single
        # start, so the fleet's best-seen energy can only improve.
        for seed in (0, 1, 2):
            single = QAOASolver(
                layers=2, optimizer="spsa", rng=seed, maxiter=40
            ).solve(er_small)
            multi = QAOASolver(
                layers=2, optimizer="spsa", rng=seed, maxiter=40, n_starts=4
            ).solve(er_small)
            assert multi.energy >= single.energy - 1e-12

    def test_spsa_multi_start_batched_matches_pointwise(self, er_small):
        batched = QAOASolver(
            layers=2, optimizer="spsa", rng=3, maxiter=40, n_starts=3
        ).solve(er_small)
        pointwise = QAOASolver(
            layers=2, optimizer="spsa", rng=3, maxiter=40, n_starts=3,
            batched=False,
        ).solve(er_small)
        assert batched.cut == pointwise.cut
        # The batched reduction (GEMV) may differ from the per-point dot in
        # the last float bits, so trajectories agree only to ~1e-12.
        np.testing.assert_allclose(batched.params, pointwise.params, atol=1e-9)
        assert batched.nfev == pointwise.nfev

    def test_sequential_optimizer_restarts(self, er_small):
        single = QAOASolver(layers=2, rng=0, maxiter=25).solve(er_small)
        multi = QAOASolver(layers=2, rng=0, maxiter=25, n_starts=3).solve(er_small)
        assert multi.energy >= single.energy - 1e-12
        assert multi.nfev > single.nfev  # fleet-wide evaluation count

    def test_invalid_n_starts(self, er_small):
        with pytest.raises(ValueError, match="n_starts"):
            QAOASolver(layers=2, rng=0, n_starts=0).solve(er_small)

    def test_keep_state_exposes_final_state(self, er_small):
        result = QAOASolver(layers=2, rng=0, maxiter=20, keep_state=True).solve(
            er_small
        )
        state = result.extra["final_state"]
        assert state.shape == (1 << er_small.n_nodes,)
        assert np.linalg.norm(state) == pytest.approx(1.0)
        plain = QAOASolver(layers=2, rng=0, maxiter=20).solve(er_small)
        assert "final_state" not in plain.extra

    def test_keep_state_on_edgeless_graph(self):
        g = Graph.from_edges(3, [])
        result = QAOASolver(layers=1, rng=0, keep_state=True).solve(g)
        state = result.extra["final_state"]
        # No cost layer, zero angles: the state is still |+>^n.
        np.testing.assert_allclose(state, np.full(8, 1 / np.sqrt(8)), atol=1e-15)


class TestParallelSequentialStarts:
    """COBYLA/NM multi-start fans out through map_jobs (ISSUE 4 satellite)."""

    @pytest.mark.parametrize("optimizer", ["cobyla", "nelder-mead"])
    def test_thread_backend_bit_identical_to_serial(self, er_small, optimizer):
        serial = QAOASolver(
            layers=2, optimizer=optimizer, rng=0, maxiter=25, n_starts=4
        ).solve(er_small)
        threaded = QAOASolver(
            layers=2, optimizer=optimizer, rng=0, maxiter=25, n_starts=4,
            starts_executor="thread",
        ).solve(er_small)
        assert threaded.cut == serial.cut
        assert threaded.energy == serial.energy
        np.testing.assert_array_equal(threaded.params, serial.params)
        assert threaded.nfev == serial.nfev

    def test_executor_config_accepted(self, er_small):
        from repro.hpc.executor import ExecutorConfig

        result = QAOASolver(
            layers=2, rng=0, maxiter=20, n_starts=3,
            starts_executor=ExecutorConfig(backend="thread", max_workers=2),
        ).solve(er_small)
        reference = QAOASolver(
            layers=2, rng=0, maxiter=20, n_starts=3
        ).solve(er_small)
        assert result.cut == reference.cut

    def test_process_backend_rejected(self, er_small):
        with pytest.raises(ValueError, match="process"):
            QAOASolver(
                layers=2, rng=0, n_starts=2, starts_executor="process"
            ).solve(er_small)

    def test_sampled_objective_stays_deterministic(self, er_small):
        serial = QAOASolver(
            layers=2, rng=0, maxiter=15, n_starts=3, objective="sampled"
        ).solve(er_small)
        threaded = QAOASolver(
            layers=2, rng=0, maxiter=15, n_starts=3, objective="sampled",
            starts_executor="thread",  # silently serialised: RNG-consuming
        ).solve(er_small)
        assert threaded.cut == serial.cut
        assert threaded.nfev == serial.nfev
