"""Unit + property tests for the QUBO formulation and annealer sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classical import QUBO, SimulatedAnnealerSampler
from repro.graphs import cut_value, erdos_renyi, exact_maxcut_bruteforce
from repro.quantum import IsingHamiltonian


class TestQUBO:
    def test_energy_is_negative_cut(self):
        g = erdos_renyi(10, 0.4, rng=0)
        qubo = QUBO.from_maxcut(g)
        rng = np.random.default_rng(1)
        for _ in range(10):
            x = rng.integers(0, 2, g.n_nodes).astype(np.uint8)
            assert qubo.energy(x) == pytest.approx(-cut_value(g, x))

    def test_minimum_energy_matches_exact_maxcut(self):
        g = erdos_renyi(8, 0.5, rng=1)
        qubo = QUBO.from_maxcut(g)
        exact = exact_maxcut_bruteforce(g)
        best_energy = min(
            qubo.energy(np.array([(i >> q) & 1 for q in range(8)], dtype=np.uint8))
            for i in range(256)
        )
        assert best_energy == pytest.approx(-exact.cut)

    def test_coefficients_canonicalised(self):
        qubo = QUBO(3, {(2, 0): 1.0, (0, 2): 2.0})
        assert qubo.coefficients == {(0, 2): 3.0}

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            QUBO(2, {(0, 5): 1.0})

    def test_matrix_upper_triangular(self):
        g = erdos_renyi(6, 0.5, rng=2)
        q = QUBO.from_maxcut(g).to_matrix()
        assert np.allclose(q, np.triu(q))

    def test_assignment_length_check(self):
        qubo = QUBO(3, {(0, 1): 1.0})
        with pytest.raises(ValueError, match="length"):
            qubo.energy(np.zeros(2, dtype=np.uint8))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 500))
    def test_ising_conversion_consistent(self, seed):
        """QUBO energy == Ising energy under x = (1 − z)/2 for all x."""
        g = erdos_renyi(6, 0.5, rng=seed)
        qubo = QUBO.from_maxcut(g)
        h, J, offset = qubo.to_ising()
        ham = IsingHamiltonian(6, constant=offset, linear=h, quadratic=J)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            x = rng.integers(0, 2, 6).astype(np.uint8)
            assert qubo.energy(x) == pytest.approx(ham.value(x))

    def test_ising_matches_maxcut_hamiltonian(self):
        """The QUBO→Ising route equals −H_C (the paper's Eq. 1) up to sign."""
        g = erdos_renyi(7, 0.4, rng=9)
        h, J, offset = QUBO.from_maxcut(g).to_ising()
        qubo_ising = IsingHamiltonian(7, constant=offset, linear=h, quadratic=J)
        hc = IsingHamiltonian.from_maxcut(g)
        assert np.allclose(qubo_ising.diagonal(), -hc.diagonal())


class TestAnnealerSampler:
    def test_sample_best_first(self):
        g = erdos_renyi(10, 0.4, rng=3)
        sampler = SimulatedAnnealerSampler(n_sweeps=3000)
        result = sampler.sample(QUBO.from_maxcut(g), num_reads=8, rng=0)
        energies = [s.energy for s in result.samples]
        assert energies == sorted(energies)
        assert result.lowest_energy() == energies[0]

    def test_occurrence_merging(self):
        g = erdos_renyi(6, 0.6, rng=4)
        sampler = SimulatedAnnealerSampler(n_sweeps=5000)
        result = sampler.sample(QUBO.from_maxcut(g), num_reads=20, rng=0)
        assert sum(s.num_occurrences for s in result.samples) == 20

    def test_finds_optimum_small_instance(self):
        g = erdos_renyi(10, 0.4, rng=5)
        exact = exact_maxcut_bruteforce(g)
        sampler = SimulatedAnnealerSampler(n_sweeps=5000)
        result = sampler.sample_maxcut(g, num_reads=10, rng=0)
        assert result.cut == pytest.approx(exact.cut)

    def test_sample_maxcut_result_fields(self):
        g = erdos_renyi(8, 0.4, rng=6)
        result = SimulatedAnnealerSampler().sample_maxcut(g, num_reads=4, rng=0)
        assert result.method == "annealer_qubo"
        assert result.cut == pytest.approx(cut_value(g, result.assignment))
        assert result.extra["energy"] == pytest.approx(-result.cut)

    def test_deterministic_with_seed(self):
        g = erdos_renyi(8, 0.4, rng=7)
        a = SimulatedAnnealerSampler().sample_maxcut(g, num_reads=3, rng=5)
        b = SimulatedAnnealerSampler().sample_maxcut(g, num_reads=3, rng=5)
        assert a.cut == b.cut
