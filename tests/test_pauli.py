"""Unit + property tests for repro.quantum.pauli."""

import numpy as np
import pytest

from repro.graphs import cut_diagonal, cut_value
from repro.graphs.maxcut import bitstring_to_assignment
from repro.quantum.pauli import (
    IsingHamiltonian,
    maxcut_diagonal,
    zz_correlations,
    zz_correlations_batch,
)
from repro.quantum.statevector import basis_state, plus_state


class TestConstruction:
    def test_quadratic_canonicalised(self):
        h = IsingHamiltonian(3, quadratic={(2, 0): 1.0, (0, 2): 0.5})
        assert h.quadratic == {(0, 2): 1.5}

    def test_diagonal_zz_term_rejected(self):
        with pytest.raises(ValueError, match="constant"):
            IsingHamiltonian(2, quadratic={(1, 1): 1.0})

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            IsingHamiltonian(2, linear={5: 1.0})

    def test_from_maxcut_constant(self, er_small):
        h = IsingHamiltonian.from_maxcut(er_small)
        assert h.constant == pytest.approx(er_small.total_weight / 2)
        assert len(h.quadratic) == er_small.n_edges


class TestDiagonal:
    def test_maxcut_diagonal_equals_cut_diagonal(self, er_small):
        h = IsingHamiltonian.from_maxcut(er_small)
        assert np.allclose(h.diagonal(), cut_diagonal(er_small))
        assert np.allclose(maxcut_diagonal(er_small), cut_diagonal(er_small))

    def test_linear_term_diagonal(self):
        h = IsingHamiltonian(2, linear={0: 1.0})
        # Z_0 eigenvalues: +1 for bit0=0, -1 for bit0=1 -> [1, -1, 1, -1]
        assert h.diagonal().tolist() == [1.0, -1.0, 1.0, -1.0]

    def test_value_matches_diagonal(self, er_small):
        h = IsingHamiltonian.from_maxcut(er_small)
        diag = h.diagonal()
        for idx in (0, 3, 17, 200):
            bits = bitstring_to_assignment(idx, er_small.n_nodes)
            assert h.value(bits) == pytest.approx(diag[idx])

    def test_diagonal_too_large(self):
        with pytest.raises(ValueError, match="infeasible"):
            IsingHamiltonian(29).diagonal()


class TestExpectations:
    def test_basis_state_expectation(self, er_small):
        h = IsingHamiltonian.from_maxcut(er_small)
        idx = 19
        state = basis_state(er_small.n_nodes, idx)
        expected = cut_value(er_small, bitstring_to_assignment(idx, er_small.n_nodes))
        assert h.expectation(state) == pytest.approx(expected)

    def test_plus_state_expectation_half_weight(self, er_small):
        # <+|H_C|+> = W/2: every edge cut with probability 1/2.
        h = IsingHamiltonian.from_maxcut(er_small)
        state = plus_state(er_small.n_nodes)
        assert h.expectation(state) == pytest.approx(er_small.total_weight / 2)

    def test_expectation_from_counts_exact_on_point_mass(self, er_small):
        h = IsingHamiltonian.from_maxcut(er_small)
        idx = 7
        expected = cut_value(er_small, bitstring_to_assignment(idx, er_small.n_nodes))
        assert h.expectation_from_counts({idx: 100}) == pytest.approx(expected)

    def test_expectation_from_counts_empty(self):
        h = IsingHamiltonian(2)
        with pytest.raises(ValueError, match="empty"):
            h.expectation_from_counts({})

    def test_sampled_expectation_converges(self, er_small, rng):
        from repro.quantum.statevector import sample_counts

        h = IsingHamiltonian.from_maxcut(er_small)
        state = plus_state(er_small.n_nodes)
        counts = sample_counts(state, 20000, rng=rng)
        estimate = h.expectation_from_counts(counts)
        exact = h.expectation(state)
        assert estimate == pytest.approx(exact, rel=0.05)


class TestAlgebra:
    def test_addition(self):
        a = IsingHamiltonian(2, constant=1.0, linear={0: 1.0})
        b = IsingHamiltonian(2, constant=2.0, linear={0: -1.0}, quadratic={(0, 1): 3.0})
        c = a + b
        assert c.constant == 3.0
        assert c.linear[0] == 0.0
        assert c.quadratic[(0, 1)] == 3.0

    def test_addition_qubit_mismatch(self):
        with pytest.raises(ValueError):
            IsingHamiltonian(2) + IsingHamiltonian(3)

    def test_scalar_multiplication(self, er_small):
        h = IsingHamiltonian.from_maxcut(er_small)
        assert np.allclose((2.0 * h).diagonal(), 2.0 * h.diagonal())

    def test_n_terms(self):
        h = IsingHamiltonian(3, linear={0: 1.0}, quadratic={(0, 1): 1.0, (1, 2): 1.0})
        assert h.n_terms() == 3


def _zz_per_pair_reference(state, pairs):
    """The pre-vectorisation implementation: one parity mask per pair."""
    probs = np.abs(np.asarray(state)) ** 2
    idx = np.arange(len(state), dtype=np.uint64)
    out = np.empty(len(pairs))
    for k, (i, j) in enumerate(pairs):
        parity = ((idx >> np.uint64(i)) ^ (idx >> np.uint64(j))) & np.uint64(1)
        out[k] = float(np.dot(probs, 1.0 - 2.0 * parity.astype(np.float64)))
    return out


def _random_state(n, seed):
    gen = np.random.default_rng(seed)
    state = gen.standard_normal(1 << n) + 1j * gen.standard_normal(1 << n)
    return state / np.linalg.norm(state)


class TestZZCorrelations:
    def test_product_state_correlations(self):
        # |00>: <Z0 Z1> = +1 ; |01>: -1
        assert zz_correlations(basis_state(2, 0), [(0, 1)])[0] == pytest.approx(1.0)
        assert zz_correlations(basis_state(2, 1), [(0, 1)])[0] == pytest.approx(-1.0)

    def test_bell_state_correlated(self):
        bell = np.zeros(4, dtype=complex)
        bell[0] = bell[3] = 1 / np.sqrt(2)
        assert zz_correlations(bell, [(0, 1)])[0] == pytest.approx(1.0)

    def test_plus_state_uncorrelated(self):
        assert zz_correlations(plus_state(3), [(0, 1), (1, 2)]) == pytest.approx(
            np.zeros(2), abs=1e-12
        )

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_matches_per_pair_reference(self, n):
        # The vectorised kernel must agree with the old per-pair loop on
        # random states over every qubit pair.
        state = _random_state(n, seed=n)
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        np.testing.assert_allclose(
            zz_correlations(state, pairs),
            _zz_per_pair_reference(state, pairs),
            atol=1e-12,
        )

    def test_sparse_pair_subset(self):
        # Qubits absent from ``pairs`` must not affect the result.
        state = _random_state(7, seed=3)
        pairs = [(0, 6), (2, 5), (6, 0)]
        np.testing.assert_allclose(
            zz_correlations(state, pairs),
            _zz_per_pair_reference(state, pairs),
            atol=1e-12,
        )

    def test_out_of_range_pair_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            zz_correlations(plus_state(3), [(0, 3)])


class TestZZCorrelationsBatch:
    def test_batch_matches_per_row(self):
        states = np.stack([_random_state(4, seed=s) for s in range(5)])
        pairs = [(0, 1), (1, 3), (0, 2)]
        batch = zz_correlations_batch(states, pairs)
        assert batch.shape == (5, 3)
        for row, state in zip(batch, states, strict=True):
            np.testing.assert_allclose(
                row, _zz_per_pair_reference(state, pairs), atol=1e-12
            )

    def test_single_state_returns_flat(self):
        state = _random_state(3, seed=1)
        out = zz_correlations_batch(state, [(0, 2)])
        assert out.shape == (1,)

    def test_empty_pairs(self):
        assert zz_correlations_batch(plus_state(2), []).shape == (0,)
        assert zz_correlations_batch(
            np.stack([plus_state(2)] * 3), []
        ).shape == (3, 0)

    def test_chunked_basis_axis_matches(self, monkeypatch):
        # Force multiple basis-axis chunks and check nothing changes.
        import repro.quantum.pauli as pauli

        state = _random_state(6, seed=2)
        pairs = [(i, (i + 1) % 6) for i in range(6)]
        full = zz_correlations_batch(state, pairs)
        monkeypatch.setattr(pauli, "_ZZ_TABLE_BUDGET", 64)
        chunked = zz_correlations_batch(state, pairs)
        np.testing.assert_allclose(chunked, full, atol=1e-12)
