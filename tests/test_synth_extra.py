"""Additional property tests: synthesis equivalence under random parameters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import cut_diagonal, erdos_renyi
from repro.quantum import StatevectorSimulator, run_qaoa_reference
from repro.quantum.statevector import fidelity
from repro.synth import (
    CombinatorialModel,
    OptimizationTarget,
    Preferences,
    cancel_identities,
    fuse_rotations,
    synthesize,
)

angles = st.floats(-np.pi, np.pi, allow_nan=False)


class TestSynthesisEquivalenceProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 500), angles, angles)
    def test_depth_opt_preserves_state(self, seed, gamma, beta):
        """Edge-coloured vs naive emission: identical physical state."""
        graph = erdos_renyi(7, 0.5, rng=seed)
        model = CombinatorialModel.maxcut(graph, layers=1)
        sim = StatevectorSimulator()
        params = np.array([gamma, beta])
        opt = synthesize(model, Preferences(optimize=OptimizationTarget.DEPTH))
        naive = synthesize(model, Preferences(optimize=OptimizationTarget.NONE))
        s_opt = sim.statevector(opt.circuit.bind(params))
        s_naive = sim.statevector(naive.circuit.bind(params))
        assert fidelity(s_opt, s_naive) == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 500), angles, angles)
    def test_all_bases_match_reference(self, seed, gamma, beta):
        graph = erdos_renyi(6, 0.5, rng=seed)
        model = CombinatorialModel.maxcut(graph, layers=1)
        sim = StatevectorSimulator()
        params = np.array([gamma, beta])
        ref = run_qaoa_reference(
            cut_diagonal(graph), np.array([gamma]), np.array([beta])
        )
        for basis in ("native", "cx"):
            report = synthesize(model, Preferences(basis=basis))
            state = sim.statevector(report.circuit.bind(params))
            assert fidelity(state, ref) == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 500))
    def test_passes_idempotent(self, seed):
        """fuse/cancel reach a fixed point: second application is a no-op."""
        graph = erdos_renyi(6, 0.4, rng=seed)
        model = CombinatorialModel.maxcut(graph, layers=2)
        report = synthesize(model)
        once = cancel_identities(fuse_rotations(report.circuit))
        twice = cancel_identities(fuse_rotations(once))
        assert once.size() == twice.size()
        assert [i.name for i in once.instructions] == [
            i.name for i in twice.instructions
        ]

    def test_preference_none_skips_scheduling(self):
        graph = erdos_renyi(10, 0.6, rng=3)
        model = CombinatorialModel.maxcut(graph, layers=2)
        none_report = synthesize(model, Preferences(optimize=OptimizationTarget.NONE))
        depth_report = synthesize(model, Preferences(optimize=OptimizationTarget.DEPTH))
        assert depth_report.optimized_metrics["depth"] <= none_report.optimized_metrics["depth"]
