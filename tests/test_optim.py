"""Unit tests for repro.optim (COBYLA wrapper, SPSA, Nelder-Mead)."""

import numpy as np
import pytest

from repro.optim import (
    RecordingObjective,
    minimize,
    minimize_cobyla,
    minimize_nelder_mead,
    minimize_spsa,
    multi_start_spsa,
    multi_start_spsa_independent,
)


def quadratic(x):
    return float(np.sum((x - 1.5) ** 2))


def rosenbrock(x):
    return float((1 - x[0]) ** 2 + 100 * (x[1] - x[0] ** 2) ** 2)


class TestRecordingObjective:
    def test_tracks_best(self):
        rec = RecordingObjective(lambda x: float(x[0] ** 2))
        rec(np.array([3.0]))
        rec(np.array([1.0]))
        rec(np.array([2.0]))
        assert rec.nfev == 3
        assert rec.best_f == 1.0
        assert rec.best_x[0] == 1.0
        assert rec.history == [9.0, 1.0, 4.0]

    def test_best_x_is_copy(self):
        rec = RecordingObjective(lambda x: float(x[0]))
        point = np.array([0.5])
        rec(point)
        point[0] = 99.0
        assert rec.best_x[0] == 0.5


class TestCobyla:
    def test_converges_on_quadratic(self):
        result = minimize_cobyla(quadratic, np.zeros(3), rhobeg=0.5, maxiter=200)
        assert result.fun < 1e-3
        assert np.allclose(result.x, 1.5, atol=0.1)

    def test_respects_maxiter(self):
        result = minimize_cobyla(quadratic, np.zeros(2), maxiter=10)
        assert result.nfev <= 12  # COBYLA may slightly overshoot bookkeeping

    def test_rhobeg_affects_trajectory(self):
        small = minimize_cobyla(quadratic, np.zeros(2), rhobeg=0.01, maxiter=15)
        large = minimize_cobyla(quadratic, np.zeros(2), rhobeg=1.0, maxiter=15)
        assert small.history != large.history

    def test_returns_best_seen_not_last(self):
        result = minimize_cobyla(quadratic, np.zeros(2), maxiter=100)
        assert result.fun == min(result.history)


class TestSPSA:
    def test_converges_on_quadratic(self):
        result = minimize_spsa(quadratic, np.zeros(3), maxiter=600, rng=0, a=0.5)
        assert result.fun < 0.1

    def test_deterministic_with_seed(self):
        a = minimize_spsa(quadratic, np.zeros(2), maxiter=50, rng=7)
        b = minimize_spsa(quadratic, np.zeros(2), maxiter=50, rng=7)
        assert np.allclose(a.x, b.x)
        assert a.history == b.history

    def test_evaluation_budget(self):
        result = minimize_spsa(quadratic, np.zeros(2), maxiter=40, rng=0)
        assert result.nfev <= 41  # 2 per iteration + final

    @pytest.mark.parametrize("maxiter", [1, 2, 3, 5, 7, 40, 41, 100])
    def test_maxiter_is_hard_evaluation_bound(self, maxiter):
        # Regression: the final best-seen evaluation used to push nfev to
        # maxiter + 1 (and maxiter=1 spent 3 evaluations).
        result = minimize_spsa(quadratic, np.zeros(2), maxiter=maxiter, rng=0)
        assert result.nfev <= maxiter
        assert result.nfev == len(result.history)

    def test_odd_budget_spends_leftover_on_final_iterate(self):
        result = minimize_spsa(quadratic, np.zeros(2), maxiter=41, rng=0)
        assert result.nfev == 41  # 20 iterations + the final evaluation

    def test_budget_of_two_performs_an_iteration(self):
        # maxiter=2 affords exactly one +/- pair; the optimizer must take
        # that gradient step rather than just scoring x0.
        result = minimize_spsa(quadratic, np.ones(2), maxiter=2, rng=0)
        assert result.nit == 1
        assert result.nfev == 2

    def test_invalid_maxiter_rejected(self):
        with pytest.raises(ValueError, match="maxiter"):
            minimize_spsa(quadratic, np.zeros(2), maxiter=0, rng=0)

    def test_noisy_objective_progress(self):
        rng_noise = np.random.default_rng(1)

        def noisy(x):
            return quadratic(x) + 0.05 * rng_noise.standard_normal()

        result = minimize_spsa(noisy, np.zeros(2), maxiter=400, rng=2, a=0.5)
        assert quadratic(result.x) < 1.0


class TestMultiStartSPSA:
    def quadratic_batch(self, matrix):
        return np.array([quadratic(row) for row in matrix])

    def test_single_start_matches_minimize_spsa(self):
        # Shared perturbation stream: S=1 reproduces the scalar optimizer
        # bitwise, including history order and nfev.
        for maxiter in (7, 40, 61):
            single = minimize_spsa(quadratic, np.zeros(3), maxiter=maxiter, rng=4)
            multi = multi_start_spsa(quadratic, np.zeros(3), maxiter=maxiter, rng=4)
            assert multi.fun == single.fun
            np.testing.assert_array_equal(multi.x, single.x)
            assert multi.history == single.history
            assert multi.nfev == single.nfev

    def test_more_starts_never_worse_than_single(self):
        # Start 0 shares x0 and the delta stream with the single start, so
        # the fleet's best-seen value can only improve on it.
        extras = np.random.default_rng(9).uniform(-2.0, 2.0, size=(4, 3))
        for seed in range(5):
            single = minimize_spsa(quadratic, np.zeros(3), maxiter=50, rng=seed)
            multi = multi_start_spsa(
                quadratic, np.vstack([np.zeros(3), extras]), maxiter=50, rng=seed
            )
            assert multi.fun <= single.fun

    def test_batch_fun_matches_pointwise(self):
        x0s = np.random.default_rng(2).uniform(-1.0, 1.0, size=(3, 4))
        pointwise = multi_start_spsa(quadratic, x0s, maxiter=60, rng=1)
        batched = multi_start_spsa(
            quadratic, x0s, maxiter=60, rng=1, batch_fun=self.quadratic_batch
        )
        assert batched.fun == pointwise.fun
        np.testing.assert_array_equal(batched.x, pointwise.x)
        assert batched.history == pointwise.history
        assert batched.nfev == pointwise.nfev

    def test_total_budget_and_iterations(self):
        x0s = np.zeros((3, 2))
        result = multi_start_spsa(quadratic, x0s, maxiter=41, rng=0)
        assert result.nfev == 3 * 41  # per-start budget, fleet-wide count
        assert result.nit == 20

    def test_batch_shape_validated(self):
        with pytest.raises(ValueError, match="batch_fun"):
            multi_start_spsa(
                quadratic,
                np.zeros((2, 3)),
                maxiter=4,
                rng=0,
                batch_fun=lambda m: np.zeros(1),
            )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="maxiter"):
            multi_start_spsa(quadratic, np.zeros((2, 3)), maxiter=0)
        with pytest.raises(ValueError, match="x0s"):
            multi_start_spsa(quadratic, np.zeros((1, 2, 3)), maxiter=10)


class TestNelderMead:
    def test_converges_on_quadratic(self):
        result = minimize_nelder_mead(quadratic, np.zeros(3), maxiter=400)
        assert result.fun < 1e-4

    def test_rosenbrock_progress(self):
        result = minimize_nelder_mead(rosenbrock, np.array([-1.0, 1.0]), maxiter=800)
        assert result.fun < rosenbrock(np.array([-1.0, 1.0]))
        assert result.fun < 1.0

    def test_evaluation_budget(self):
        result = minimize_nelder_mead(quadratic, np.zeros(4), maxiter=60)
        assert result.nfev <= 66  # simplex init may finish the last shrink

    def test_initial_step_matters(self):
        tiny = minimize_nelder_mead(quadratic, np.zeros(2), maxiter=20, initial_step=1e-4)
        normal = minimize_nelder_mead(quadratic, np.zeros(2), maxiter=20, initial_step=0.5)
        assert normal.fun <= tiny.fun + 1e-9


class TestDispatcher:
    @pytest.mark.parametrize("method", ["cobyla", "spsa", "nelder-mead"])
    def test_all_methods_reduce_objective(self, method):
        x0 = np.array([3.0, -2.0])
        result = minimize(quadratic, x0, method=method, maxiter=300, rng=0)
        assert result.fun < quadratic(x0)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown optimizer"):
            minimize(quadratic, np.zeros(2), method="adam")

    def test_alias_nm(self):
        result = minimize(quadratic, np.zeros(2), method="nm", maxiter=100)
        assert result.fun < 1.0


class TestMultiStartSPSAIndependent:
    """Lock-step batching of independent jobs (the service scheduler's
    primitive): every row must reproduce its solo run."""

    def quadratic_batch(self, matrix):
        return np.array([quadratic(row) for row in matrix])

    def test_each_row_matches_solo_run(self):
        x0s = np.random.default_rng(3).uniform(-2.0, 2.0, size=(4, 3))
        for maxiter in (7, 40, 61):
            results = multi_start_spsa_independent(
                quadratic, x0s, maxiter=maxiter,
                rngs=[np.random.default_rng(100 + s) for s in range(4)],
            )
            for s, got in enumerate(results):
                solo = minimize_spsa(
                    quadratic, x0s[s], maxiter=maxiter,
                    rng=np.random.default_rng(100 + s),
                )
                assert got.fun == solo.fun
                np.testing.assert_array_equal(got.x, solo.x)
                assert got.history == solo.history
                assert got.nfev == solo.nfev

    def test_batch_fun_same_points_same_order(self):
        x0s = np.random.default_rng(5).uniform(-1.0, 1.0, size=(3, 2))

        def rngs():
            return [np.random.default_rng(s) for s in range(3)]

        point = multi_start_spsa_independent(
            quadratic, x0s, maxiter=30, rngs=rngs()
        )
        batched = multi_start_spsa_independent(
            quadratic, x0s, maxiter=30, rngs=rngs(),
            batch_fun=self.quadratic_batch,
        )
        for a, b in zip(point, batched, strict=True):
            assert a.history == b.history
            np.testing.assert_array_equal(a.x, b.x)

    def test_rng_count_validated(self):
        with pytest.raises(ValueError, match="one generator per job"):
            multi_start_spsa_independent(
                quadratic, np.zeros((2, 3)), maxiter=10,
                rngs=[np.random.default_rng(0)],
            )

    def test_bad_maxiter(self):
        with pytest.raises(ValueError, match="maxiter"):
            multi_start_spsa_independent(
                quadratic, np.zeros((1, 2)), maxiter=0,
                rngs=[np.random.default_rng(0)],
            )
