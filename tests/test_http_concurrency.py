"""Concurrent HTTP clients: the Zipf stream over real sockets must be
checksum-identical to the in-process async path, coalescing must span
HTTP clients, and a client disconnect mid-solve must not poison the
coalesced in-flight entry (ISSUE 8)."""

from __future__ import annotations

import json
import socket
import threading

import numpy as np
import pytest

from repro.graphs import erdos_renyi
from repro.service import (
    HttpMaxCutClient,
    MaxCutService,
    build_request,
    serve_requests,
    zipf_requests,
)
from repro.service.http import HttpServerThread, request_to_wire

pytestmark = pytest.mark.timeout(300)

OPTIONS = {"layers": 1, "maxiter": 15}


def stream(n=32, universe=5, nodes=10, rng=0):
    return zipf_requests(
        n_requests=n,
        universe=universe,
        n_nodes=nodes,
        edge_prob=0.35,
        zipf_exponent=1.1,
        options=OPTIONS,
        rng=rng,
    )


class GatedService(MaxCutService):
    """solve_many blocks until ``gate`` is set (see test_service_server)."""

    def __init__(self, gate, entered, **kwargs):
        super().__init__(**kwargs)
        self._gate = gate
        self._entered = entered

    def solve_many(self, requests):
        self._entered.set()
        assert self._gate.wait(timeout=60), "test gate never opened"
        return super().solve_many(requests)


def solve_over_http(handle, requests, *, clients=4):
    """Round-robin the request stream over ``clients`` threads, each with
    its own keep-alive connection; returns results in request order."""
    results = [None] * len(requests)
    errors = []

    def worker(offset):
        try:
            with HttpMaxCutClient(handle.host, handle.port) as client:
                for index in range(offset, len(requests), clients):
                    results[index] = client.solve(request=requests[index])
        except Exception as exc:  # surfaced after join
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(offset,))
        for offset in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=240)
    assert not errors, f"client thread failed: {errors[0]!r}"
    assert all(result is not None for result in results)
    return results


# ---------------------------------------------------------------------------
# The ISSUE acceptance gate: HTTP == in-process async, bit for bit
# ---------------------------------------------------------------------------
class TestHttpMatchesInProcess:
    def test_zipf_stream_checksum_identical(self):
        requests = stream(n=32, universe=5)
        _, ref = serve_requests(requests, clients=4, n_shards=2, seed=0)
        with HttpServerThread(n_shards=2, seed=0) as handle:
            results = solve_over_http(handle, requests, clients=4)
        assert len(results) == len(ref)
        for got, want in zip(results, ref, strict=True):
            assert got.digest == want.digest
            assert got.cut == want.cut
            assert np.array_equal(got.assignment, want.assignment)
            assert got.seed == want.seed
        # One aggregate checksum as well, mirroring the benchmark gate.
        assert sum(r.cut for r in results) == sum(r.cut for r in ref)

    def test_coalescing_spans_http_clients(self):
        # Six clients hammer one identical request; the solver must run
        # exactly once no matter how the submissions interleave.
        graph = erdos_renyi(10, 0.4, weighted=True, rng=2)
        request = build_request(graph, seed=4, **OPTIONS)
        with HttpServerThread(n_shards=2, seed=0) as handle:
            results = solve_over_http(handle, [request] * 6, clients=6)
            merged = handle.merged_metrics()
        assert merged.count("solves") == 1
        assert len({r.cut for r in results}) == 1
        reference = results[0]
        for result in results[1:]:
            assert np.array_equal(result.assignment, reference.assignment)


# ---------------------------------------------------------------------------
# Disconnect mid-solve
# ---------------------------------------------------------------------------
class TestDisconnectMidSolve:
    def test_disconnect_does_not_poison_coalesced_entry(self):
        graph = erdos_renyi(10, 0.4, weighted=True, rng=7)
        request = build_request(graph, seed=3, **OPTIONS)
        body = json.dumps(request_to_wire(request)).encode("utf-8")
        gate, entered = threading.Event(), threading.Event()
        handle = HttpServerThread(
            n_shards=1,
            max_batch=1,
            service_factory=lambda k: GatedService(gate, entered, seed=0),
        ).start()
        try:
            # Owner: a raw socket that submits the solve, then vanishes
            # while the solve is physically running in the worker thread.
            owner = socket.create_connection((handle.host, handle.port), timeout=30)
            owner.sendall(
                b"POST /solve HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode("latin-1")
                + body
            )
            assert entered.wait(timeout=60), "solve never reached the worker"
            owner.close()  # abrupt disconnect, response never read
            # Follower: joins the same in-flight entry over its own
            # connection, then the gate opens.
            threading.Timer(0.5, gate.set).start()
            with HttpMaxCutClient(handle.host, handle.port) as client:
                follower = client.solve(request=request)
                # The server stays fully serviceable afterwards.
                assert client.healthz()["status"] == "ok"
            merged = handle.merged_metrics()
        finally:
            gate.set()
            handle.stop()
        ref = MaxCutService(seed=0).solve(graph, seed=3, **OPTIONS)
        assert follower.cut == ref.cut
        assert np.array_equal(follower.assignment, ref.assignment)
        # The dead owner's solve was the only one: the follower reused it.
        assert merged.count("solves") == 1
