"""Unit tests for the QAOA² driver."""

import numpy as np
import pytest

from repro.graphs import cut_value, erdos_renyi, planted_partition, random_cut
from repro.hpc.executor import ExecutorConfig
from repro.qaoa2 import (
    QAOA2Solver,
    expected_subproblem_count,
)

FAST_QAOA = {"layers": 2, "maxiter": 20}


class TestBasics:
    def test_cut_consistency(self, er_medium):
        result = QAOA2Solver(n_max_qubits=10, subgraph_method="gw", rng=0).solve(
            er_medium
        )
        assert result.cut == pytest.approx(cut_value(er_medium, result.assignment))

    def test_small_graph_single_leaf(self, er_small):
        result = QAOA2Solver(n_max_qubits=20, subgraph_method="gw", rng=0).solve(
            er_small
        )
        assert result.n_subproblems == 1
        assert len(result.levels) == 0

    def test_beats_random_cut(self, er_medium):
        result = QAOA2Solver(n_max_qubits=10, subgraph_method="gw", rng=0).solve(
            er_medium
        )
        rnd = random_cut(er_medium, rng=0)
        assert result.cut > rnd.cut

    def test_beats_half_weight_bound(self, er_medium):
        # Any sensible MaxCut heuristic beats E[random] = W/2 here.
        result = QAOA2Solver(n_max_qubits=10, subgraph_method="gw", rng=1).solve(
            er_medium
        )
        assert result.cut > er_medium.total_weight / 2

    @pytest.mark.parametrize("method", ["qaoa", "gw", "best"])
    def test_all_methods_run(self, er_medium, method):
        result = QAOA2Solver(
            n_max_qubits=10,
            subgraph_method=method,
            qaoa_options=FAST_QAOA,
            rng=0,
        ).solve(er_medium)
        assert result.cut > 0
        assert result.n_subproblems >= 2

    def test_best_picks_max_per_subgraph(self, er_medium):
        result = QAOA2Solver(
            n_max_qubits=10,
            subgraph_method="best",
            qaoa_options=FAST_QAOA,
            rng=0,
        ).solve(er_medium)
        for rec in result.subgraphs:
            if rec.method.startswith("best:"):
                assert rec.cut == pytest.approx(max(rec.qaoa_cut, rec.gw_cut))

    def test_policy_callable(self, er_medium):
        calls = []

        def policy(subgraph):
            calls.append(subgraph.n_nodes)
            return "gw"

        result = QAOA2Solver(
            n_max_qubits=10, subgraph_method=policy, rng=0
        ).solve(er_medium)
        level0 = [rec for rec in result.subgraphs if rec.level == 0]
        # The policy is consulted once per first-level sub-graph.
        assert len(calls) == len(level0) > 0
        assert all(rec.method == "gw" for rec in level0)

    def test_invalid_policy_return(self, er_medium):
        result_solver = QAOA2Solver(
            n_max_qubits=10, subgraph_method=lambda g: "magic", rng=0
        )
        with pytest.raises(ValueError, match="unknown method"):
            result_solver.solve(er_medium)

    def test_unknown_static_method(self, er_medium):
        with pytest.raises(ValueError, match="unknown sub-graph method"):
            QAOA2Solver(n_max_qubits=10, subgraph_method="oracle", rng=0).solve(
                er_medium
            )

    def test_deterministic_with_seed(self, er_medium):
        a = QAOA2Solver(n_max_qubits=10, subgraph_method="gw", rng=3).solve(er_medium)
        b = QAOA2Solver(n_max_qubits=10, subgraph_method="gw", rng=3).solve(er_medium)
        assert a.cut == b.cut
        assert np.array_equal(a.assignment, b.assignment)


class TestRecursion:
    def test_multi_level_recursion(self):
        # 80 nodes, cap 6 -> ~14 parts -> merged graph 14 > 6 -> level 2.
        g = erdos_renyi(80, 0.08, rng=4)
        result = QAOA2Solver(n_max_qubits=6, subgraph_method="gw", rng=0).solve(g)
        assert len(result.levels) >= 2
        max_level = max(rec.level for rec in result.subgraphs)
        assert max_level >= 1

    def test_deeper_levels_use_merged_method(self):
        g = erdos_renyi(80, 0.08, rng=4)
        result = QAOA2Solver(
            n_max_qubits=6,
            subgraph_method="qaoa",
            merged_method="gw",
            qaoa_options=FAST_QAOA,
            rng=0,
        ).solve(g)
        for rec in result.subgraphs:
            if rec.level > 0:
                assert rec.method == "gw"

    def test_level_accounting(self, er_medium):
        result = QAOA2Solver(n_max_qubits=8, subgraph_method="gw", rng=0).solve(
            er_medium
        )
        for level in result.levels:
            assert level.n_parts >= 2
            assert level.merged_nodes == level.n_parts
            assert level.merged_gain >= 0.0

    def test_subgraph_records_sizes(self, er_medium):
        result = QAOA2Solver(n_max_qubits=8, subgraph_method="gw", rng=0).solve(
            er_medium
        )
        level0 = [rec for rec in result.subgraphs if rec.level == 0]
        assert sum(rec.n_nodes for rec in level0) == er_medium.n_nodes
        assert all(rec.n_nodes <= 8 for rec in level0)

    def test_expected_subproblem_formula(self):
        assert expected_subproblem_count(100, 10) == pytest.approx(
            100 * (10 - 1) / (10 * 9)
        )
        assert expected_subproblem_count(5, 10) == 1.0
        # a=1 for N=100, n=10 -> N/n = 10 subproblems
        assert expected_subproblem_count(100, 10) == pytest.approx(10.0)

    def test_planted_partition_high_quality(self):
        # Graph with clean communities: QAOA² should get near the bipartite
        # structure quality of a global method.
        g = planted_partition(48, 6, 0.7, 0.05, rng=5)
        result = QAOA2Solver(n_max_qubits=8, subgraph_method="gw", rng=0).solve(g)
        from repro.classical import goemans_williamson

        gw_full = goemans_williamson(g, rng=0)
        assert result.cut >= 0.8 * gw_full.best_cut


class TestParallelBackends:
    def test_thread_backend_matches_serial(self, er_medium):
        serial = QAOA2Solver(n_max_qubits=10, subgraph_method="gw", rng=7).solve(
            er_medium
        )
        threaded = QAOA2Solver(
            n_max_qubits=10,
            subgraph_method="gw",
            rng=7,
            executor=ExecutorConfig(backend="thread", max_workers=4),
        ).solve(er_medium)
        assert serial.cut == threaded.cut
        assert np.array_equal(serial.assignment, threaded.assignment)

    @pytest.mark.slow
    def test_process_backend_matches_serial(self, er_medium):
        serial = QAOA2Solver(n_max_qubits=10, subgraph_method="gw", rng=7).solve(
            er_medium
        )
        procs = QAOA2Solver(
            n_max_qubits=10,
            subgraph_method="gw",
            rng=7,
            executor=ExecutorConfig(backend="process", max_workers=2),
        ).solve(er_medium)
        assert serial.cut == procs.cut


class TestQaoaGrid:
    def test_grid_improves_or_matches_single(self, er_medium):
        single = QAOA2Solver(
            n_max_qubits=8, subgraph_method="qaoa", qaoa_options=FAST_QAOA, rng=5
        ).solve(er_medium)
        grid = QAOA2Solver(
            n_max_qubits=8,
            subgraph_method="qaoa",
            qaoa_options=FAST_QAOA,
            qaoa_grid=[{"rhobeg": 0.3}, {"rhobeg": 0.5}, {"layers": 3}],
            rng=5,
        ).solve(er_medium)
        # Per-subgraph best-over-grid can only help on the subgraph level;
        # allow small global slack from different merged problems.
        assert grid.cut >= single.cut - 2.0
