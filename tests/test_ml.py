"""Unit tests for the ML method-selection testbed."""

import numpy as np
import pytest

from repro.graphs import Graph, complete, erdos_renyi, ring
from repro.ml import (
    FEATURE_NAMES,
    GridRecord,
    KnowledgeBase,
    LogisticRegression,
    MethodClassifier,
    StandardScaler,
    extract_features,
    feature_dict,
    train_test_split,
)


class TestFeatures:
    def test_feature_vector_length(self, er_small):
        assert len(extract_features(er_small)) == len(FEATURE_NAMES)

    def test_feature_dict_keys(self, er_small):
        d = feature_dict(er_small)
        assert set(d) == set(FEATURE_NAMES)

    def test_known_values(self):
        g = complete(4)
        d = feature_dict(g)
        assert d["n_nodes"] == 4
        assert d["n_edges"] == 6
        assert d["density"] == pytest.approx(1.0)
        assert d["clustering"] == pytest.approx(1.0)  # complete graph
        assert d["weighted"] == 0.0

    def test_ring_no_triangles(self):
        d = feature_dict(ring(6))
        assert d["clustering"] == 0.0

    def test_weighted_flag(self):
        g = erdos_renyi(10, 0.5, weighted=True, rng=0)
        assert feature_dict(g)["weighted"] == 1.0

    def test_empty_graph_safe(self):
        g = Graph.from_edges(3, [])
        features = extract_features(g)
        assert np.all(np.isfinite(features))

    def test_features_finite_on_random_instances(self):
        for seed in range(5):
            g = erdos_renyi(15, 0.3, weighted=seed % 2 == 0, rng=seed)
            assert np.all(np.isfinite(extract_features(g)))


class TestScalerAndLR:
    def test_scaler_standardises(self, rng):
        x = rng.normal(5.0, 3.0, size=(200, 4))
        scaler = StandardScaler().fit(x)
        z = scaler.transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_scaler_constant_column_safe(self):
        x = np.ones((10, 2))
        z = StandardScaler().fit(x).transform(x)
        assert np.all(np.isfinite(z))

    def test_scaler_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_lr_separable_data(self, rng):
        x = np.vstack([rng.normal(-2, 0.5, (100, 2)), rng.normal(2, 0.5, (100, 2))])
        y = np.array([0] * 100 + [1] * 100)
        model = LogisticRegression(n_epochs=800).fit(x, y, rng=0)
        assert model.accuracy(x, y) > 0.97

    def test_lr_loss_decreases(self, rng):
        x = rng.normal(size=(100, 3))
        y = (x[:, 0] > 0).astype(int)
        model = LogisticRegression(n_epochs=300).fit(x, y, rng=0)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_lr_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.ones((1, 2)))

    def test_train_test_split_shapes(self, rng):
        x = rng.normal(size=(40, 3))
        y = rng.integers(0, 2, 40)
        xtr, ytr, xte, yte = train_test_split(x, y, test_fraction=0.25, rng=0)
        assert len(xte) == 10 and len(xtr) == 30
        assert len(ytr) == 30 and len(yte) == 10


class TestMethodClassifier:
    def test_learns_density_rule(self):
        """Synthetic labels from the Fig. 3 finding (QAOA wins on sparse
        graphs) must be learnable from graph features."""
        rng = np.random.default_rng(0)
        graphs, labels = [], []
        for seed in range(120):
            p = rng.uniform(0.1, 0.6)
            g = erdos_renyi(12, p, rng=seed)
            graphs.append(g)
            labels.append(1 if g.density < 0.3 else 0)
        clf = MethodClassifier().fit(graphs, labels, rng=1)
        assert clf.accuracy(graphs, labels) > 0.9

    def test_predict_method_strings(self, er_small):
        clf = MethodClassifier().fit(
            [er_small, complete(8), ring(8)], [1, 0, 1], rng=0
        )
        assert clf.predict_method(er_small) in ("qaoa", "gw")

    def test_proba_in_unit_interval(self, er_small):
        clf = MethodClassifier().fit([er_small, complete(8)], [1, 0], rng=0)
        assert 0.0 <= clf.predict_proba(er_small) <= 1.0


class TestKnowledgeBase:
    def make_kb(self):
        kb = KnowledgeBase()
        # QAOA wins on sparse (p=0.1), loses on dense (p=0.5).
        for k in range(10):
            kb.add(GridRecord(15, 0.1, False, 3, 0.5, qaoa_cut=10.0 + k % 2, gw_cut=10.0))
            kb.add(GridRecord(15, 0.5, False, 3, 0.5, qaoa_cut=8.0, gw_cut=10.0))
            kb.add(GridRecord(15, 0.1, False, 6, 0.5, qaoa_cut=11.0, gw_cut=10.0,
                              qaoa_params=[0.1, 0.2]))
        return kb

    def test_win_rate(self):
        kb = self.make_kb()
        assert kb.win_rate(15, 0.5, False) == 0.0
        # (0.1, p=3) alternates win/tie (5 wins of 10) and (0.1, p=6) always
        # wins (10 of 10) -> 15/20 = 0.75 over the matching cell.
        assert kb.win_rate(15, 0.1, False) == pytest.approx(0.75)

    def test_recommend_method(self):
        kb = self.make_kb()
        assert kb.recommend_method(15, 0.5, False) == "gw"
        assert kb.recommend_method(15, 0.1, False, win_threshold=0.4) == "qaoa"

    def test_no_data_returns_none(self):
        kb = self.make_kb()
        assert kb.win_rate(100, 0.9) is None
        assert kb.recommend_method(100, 0.9) is None

    def test_node_tolerance_window(self):
        kb = self.make_kb()
        assert kb.win_rate(17, 0.1, False) is not None  # within ±3
        assert kb.win_rate(25, 0.1, False) is None

    def test_best_parameters(self):
        kb = self.make_kb()
        best = kb.best_parameters(15, 0.1, False)
        assert best == (6, 0.5)  # layers=6 has ratio 1.1

    def test_warm_start_params(self):
        kb = self.make_kb()
        params = kb.warm_start_params(15, 0.1, False)
        assert params.tolist() == [0.1, 0.2]

    def test_save_load_roundtrip(self, tmp_path):
        kb = self.make_kb()
        path = tmp_path / "kb.json"
        kb.save(path)
        loaded = KnowledgeBase.load(path)
        assert len(loaded) == len(kb)
        assert loaded.win_rate(15, 0.5, False) == 0.0

    def test_grid_record_properties(self):
        rec = GridRecord(10, 0.2, True, 3, 0.5, qaoa_cut=9.5, gw_cut=10.0)
        assert not rec.qaoa_win
        assert rec.ratio == pytest.approx(0.95)
