"""CompiledBackend correctness suite.

numba is optional, so these tests exercise the *kernel bodies* through
``CompiledBackend(mode="python")`` — the identical nopython-style code
run interpreted — on small graphs, with the numpy backend as the parity
oracle.  When numba is installed the same cases additionally run JIT'd;
without it the jit-mode tests assert the :class:`BackendUnavailable`
contract instead.
"""

import numpy as np
import pytest

from repro.graphs import cut_diagonal, erdos_renyi
from repro.qaoa import SweepEngine
from repro.quantum.backend import (
    BackendUnavailable,
    CompiledBackend,
    NumpyBackend,
    ScratchPool,
    numba_available,
)

PARITY_ATOL = 1e-12


@pytest.fixture(scope="module")
def backend():
    return CompiledBackend(mode="python")


def _cases(n_cases=8, seed=31):
    rng = np.random.default_rng(seed)
    cases = []
    for _ in range(n_cases):
        n = int(rng.integers(2, 8))
        p = int(rng.integers(1, 4))
        graph = erdos_renyi(
            n,
            float(rng.uniform(0.3, 0.8)),
            weighted=bool(rng.integers(0, 2)),
            rng=int(rng.integers(2**31)),
        )
        params = rng.uniform(-np.pi, np.pi, size=(5, 2 * p))
        cases.append((graph, params))
    return cases


class TestAvailability:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            CompiledBackend(mode="gpu")

    def test_jit_mode_contract(self):
        if numba_available():
            assert CompiledBackend(mode="jit").name == "compiled"
        else:
            with pytest.raises(BackendUnavailable, match="numba"):
                CompiledBackend(mode="jit")

    def test_python_mode_always_available(self, backend):
        assert backend.name == "compiled"
        assert backend.mode == "python"


class TestKernelParity:
    CASES = _cases()

    def test_cost_layer(self, backend):
        ref = NumpyBackend()
        rng = np.random.default_rng(1)
        for graph, params in self.CASES:
            diag = cut_diagonal(graph)
            states = ref.plus_state_batch(graph.n_nodes, 5)
            work = backend.plus_state_batch(graph.n_nodes, 5)
            gammas = rng.uniform(-np.pi, np.pi, 5)
            ref.apply_cost_layer(states, diag, gammas)
            backend.apply_cost_layer(work, diag, gammas)
            np.testing.assert_allclose(work, states, atol=PARITY_ATOL)

    def test_mixer_layer(self, backend):
        ref = NumpyBackend()
        rng = np.random.default_rng(2)
        for graph, _ in self.CASES:
            n = graph.n_nodes
            raw = rng.standard_normal((4, 1 << n)) + 1j * rng.standard_normal(
                (4, 1 << n)
            )
            betas = rng.uniform(-np.pi, np.pi, 4)
            a = ref.apply_mixer_layer(raw.copy(), betas)
            b = backend.apply_mixer_layer(raw.copy(), betas)
            np.testing.assert_allclose(b, a, atol=PARITY_ATOL)
            # scalar β broadcast matches per-row duplicates
            shared = backend.apply_mixer_layer(raw.copy(), 0.37)
            perrow = backend.apply_mixer_layer(raw.copy(), np.full(4, 0.37))
            np.testing.assert_allclose(shared, perrow, atol=PARITY_ATOL)

    def test_walsh_transform(self, backend):
        ref = NumpyBackend()
        rng = np.random.default_rng(3)
        for n in (1, 2, 5, 7):
            raw = rng.standard_normal((3, 1 << n)) + 1j * rng.standard_normal(
                (3, 1 << n)
            )
            a = ref.walsh_transform(raw.copy())
            b = backend.walsh_transform(raw.copy())
            np.testing.assert_allclose(b, a, atol=PARITY_ATOL)

    def test_expectations(self, backend):
        ref = NumpyBackend()
        rng = np.random.default_rng(4)
        for graph, _ in self.CASES:
            diag = cut_diagonal(graph)
            raw = rng.standard_normal((6, diag.size)) + 1j * rng.standard_normal(
                (6, diag.size)
            )
            np.testing.assert_allclose(
                backend.expectations_batch(raw, diag),
                ref.expectations_batch(raw, diag),
                atol=PARITY_ATOL,
            )

    def test_evolve_batch_and_state(self, backend):
        ref = NumpyBackend()
        for graph, params in self.CASES:
            diag = cut_diagonal(graph)
            a = ref.evolve_batch(diag, params).copy()
            b = backend.evolve_batch(diag, params).copy()
            np.testing.assert_allclose(b, a, atol=PARITY_ATOL)
            np.testing.assert_allclose(
                backend.evolve_state(diag, params[0]),
                ref.evolve_state(diag, params[0]),
                atol=PARITY_ATOL,
            )

    def test_evolve_uses_pool_buffer(self, backend):
        pool = ScratchPool()
        graph = erdos_renyi(5, 0.5, weighted=True, rng=1)
        diag = cut_diagonal(graph)
        mat = np.random.default_rng(0).uniform(-1, 1, (4, 4))
        out1 = backend.evolve_batch(diag, mat, pool=pool)
        out2 = backend.evolve_batch(diag, mat, pool=pool)
        assert out1 is out2


class TestValidation:
    def test_shape_errors(self, backend):
        rng = np.random.default_rng(0)
        states = rng.standard_normal((3, 32)) + 1j * rng.standard_normal((3, 32))
        diag = np.zeros(32)
        with pytest.raises(ValueError, match="batch"):
            backend.apply_cost_layer(states.copy(), diag, np.zeros(4))
        with pytest.raises(ValueError, match="batched"):
            backend.apply_cost_layer(np.zeros(32, dtype=np.complex128), diag, np.zeros(3))
        with pytest.raises(ValueError, match="diagonal"):
            backend.apply_cost_layer(states.copy(), np.zeros(16), np.zeros(3))
        with pytest.raises(ValueError, match="ndim"):
            backend.apply_mixer_layer(states.reshape(3, 2, 16), 0.1)
        with pytest.raises(ValueError, match="batch"):
            backend.expectations_batch(states[0], diag)

    def test_contiguity_required(self, backend):
        rng = np.random.default_rng(0)
        wide = rng.standard_normal((3, 64)) + 1j * rng.standard_normal((3, 64))
        strided = wide[:, ::2]
        with pytest.raises(ValueError, match="contiguous"):
            backend.apply_mixer_layer(strided, 0.1)


class TestEngineIntegration:
    def test_sweep_engine_with_compiled_instance(self, backend):
        graph = erdos_renyi(7, 0.5, weighted=True, rng=9)
        rng = np.random.default_rng(6)
        mat = rng.uniform(-np.pi, np.pi, size=(11, 4))
        reference = SweepEngine(graph, backend="numpy").energies(mat)
        engine = SweepEngine(graph, backend=backend)
        assert engine.backend_name == "compiled"
        np.testing.assert_allclose(engine.energies(mat), reference, atol=PARITY_ATOL)


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestJitParity:
    """Run only where numba exists: JIT'd kernels vs the numpy oracle."""

    def test_jit_evolve_parity(self):
        backend = CompiledBackend(mode="jit")
        ref = NumpyBackend()
        for graph, params in _cases(4, seed=77):
            diag = cut_diagonal(graph)
            a = ref.evolve_batch(diag, params).copy()
            b = backend.evolve_batch(diag, params).copy()
            np.testing.assert_allclose(b, a, atol=PARITY_ATOL)
