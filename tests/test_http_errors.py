"""The documented HTTP error contract, asserted code-for-code: 400, 413,
502, 503 (+ Retry-After), 504 — and the promises behind them: bad input
never touches a shard, deadlines never poison the solve (ISSUE 8)."""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

import pytest

from repro.graphs import erdos_renyi
from repro.service import (
    HttpMaxCutClient,
    HttpResponseError,
    MaxCutService,
    RequestError,
    ServerOverloaded,
    build_request,
)
from repro.service.http import HttpServerThread, request_to_wire

pytestmark = pytest.mark.timeout(120)

OPTIONS = {"layers": 1, "maxiter": 15}


class GatedService(MaxCutService):
    """solve_many blocks until ``gate`` is set (see test_service_server)."""

    def __init__(self, gate, entered, **kwargs):
        super().__init__(**kwargs)
        self._gate = gate
        self._entered = entered

    def solve_many(self, requests):
        self._entered.set()
        assert self._gate.wait(timeout=60), "test gate never opened"
        return super().solve_many(requests)


def post_raw_body(host, port, body: bytes, *, path="/solve"):
    """POST pre-encoded bytes (possibly not JSON) and decode the response."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, payload, dict(response.getheaders())
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# 400 bad-request
# ---------------------------------------------------------------------------
class TestBadRequest:
    def test_malformed_json_is_400(self):
        with HttpServerThread(n_shards=1, seed=0) as handle:
            status, payload, _ = post_raw_body(
                handle.host, handle.port, b"{definitely not json"
            )
            merged = handle.merged_metrics()
        assert (status, payload["code"]) == (400, "bad-request")
        assert "invalid JSON" in payload["error"]
        assert merged.count("requests") == 0  # no shard was touched

    def test_schema_violation_is_400(self):
        with HttpServerThread(n_shards=1, seed=0) as handle:
            with HttpMaxCutClient(handle.host, handle.port) as client:
                status, payload = client.request(
                    "POST",
                    "/solve",
                    {"graph": {"n_nodes": 4, "edges": []}, "surprise": 1},
                )
            merged = handle.merged_metrics()
        assert (status, payload["code"]) == (400, "bad-request")
        assert merged.count("requests") == 0

    def test_oversized_graph_is_400(self):
        with HttpServerThread(
            n_shards=1, seed=0, http_options={"max_nodes": 16}
        ) as handle:
            with HttpMaxCutClient(handle.host, handle.port) as client:
                status, payload = client.request(
                    "POST", "/solve", {"graph": {"n_nodes": 64, "edges": []}}
                )
        assert (status, payload["code"]) == (400, "bad-request")
        assert "service limit" in payload["error"]

    def test_malformed_request_line_is_400(self):
        with HttpServerThread(n_shards=1, seed=0) as handle:
            with socket.create_connection(
                (handle.host, handle.port), timeout=30
            ) as sock:
                sock.sendall(b"NONSENSE\r\n\r\n")
                raw = sock.recv(65536)
        assert raw.startswith(b"HTTP/1.1 400")
        assert b"bad-request" in raw

    def test_chunked_bodies_are_400(self):
        with HttpServerThread(n_shards=1, seed=0) as handle:
            with socket.create_connection(
                (handle.host, handle.port), timeout=30
            ) as sock:
                sock.sendall(
                    b"POST /solve HTTP/1.1\r\nHost: x\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n"
                )
                raw = sock.recv(65536)
        assert raw.startswith(b"HTTP/1.1 400")


# ---------------------------------------------------------------------------
# 413 payload-too-large
# ---------------------------------------------------------------------------
class TestPayloadTooLarge:
    def test_oversized_body_rejected_before_parse(self):
        # The body is deliberately NOT valid JSON: a 400 would prove the
        # server parsed it; the documented 413 proves it was rejected on
        # Content-Length alone and no shard was touched.
        with HttpServerThread(
            n_shards=1, seed=0, http_options={"max_body_bytes": 2048}
        ) as handle:
            status, payload, _ = post_raw_body(
                handle.host, handle.port, b"x" * 8192
            )
            merged = handle.merged_metrics()
        assert (status, payload["code"]) == (413, "payload-too-large")
        assert merged.count("requests") == 0

    def test_connection_survives_a_413(self):
        graph = erdos_renyi(9, 0.4, weighted=True, rng=1)
        with HttpServerThread(
            n_shards=1, seed=0, http_options={"max_body_bytes": 2048}
        ) as handle:
            with HttpMaxCutClient(handle.host, handle.port) as client:
                status, payload = client.request(
                    "POST", "/solve", {"pad": "y" * 8192}
                )
                assert (status, payload["code"]) == (413, "payload-too-large")
                # Same client, same keep-alive socket: still serviceable.
                result = client.solve(graph, seed=1, **OPTIONS)
        ref = MaxCutService(seed=0).solve(graph, seed=1, **OPTIONS)
        assert result.cut == ref.cut


# ---------------------------------------------------------------------------
# 502 solve-failed
# ---------------------------------------------------------------------------
class TestSolveFailed:
    def test_captured_solve_error_is_502_and_never_cached(self):
        graph = erdos_renyi(10, 0.4, weighted=True, rng=2)
        with HttpServerThread(n_shards=1, seed=0) as handle:
            with HttpMaxCutClient(handle.host, handle.port) as client:
                for _ in range(2):
                    with pytest.raises(RequestError):
                        client.solve(graph, seed=1, method="no-such-method")
                # The server keeps serving real requests afterwards.
                good = client.solve(graph, seed=1, **OPTIONS)
            merged = handle.merged_metrics()
        assert not good.failed
        # Two captured errors, zero cache hits: error results are never
        # cached, each resubmission is solved (and fails) afresh.
        assert merged.count("errors") == 2
        assert merged.count("hits_memory") == 0

    def test_502_body_carries_the_documented_code(self):
        graph = erdos_renyi(10, 0.4, weighted=True, rng=2)
        with HttpServerThread(n_shards=1, seed=0) as handle:
            with HttpMaxCutClient(handle.host, handle.port) as client:
                status, payload = client.request(
                    "POST",
                    "/solve",
                    request_to_wire(
                        build_request(graph, seed=1, method="no-such-method")
                    ),
                )
        assert (status, payload["code"]) == (502, "solve-failed")
        assert payload["status"] == "error"


# ---------------------------------------------------------------------------
# 503 overloaded (+ Retry-After)
# ---------------------------------------------------------------------------
class TestOverloaded:
    def test_admission_reject_is_503_with_retry_after(self):
        graphs = [
            erdos_renyi(9, 0.4, weighted=True, rng=100 + i) for i in range(3)
        ]
        gate, entered = threading.Event(), threading.Event()
        handle = HttpServerThread(
            n_shards=1,
            queue_depth=1,
            max_batch=1,
            admission="reject",
            service_factory=lambda k: GatedService(gate, entered, seed=0),
        ).start()

        def blocked_solve(graph):
            with HttpMaxCutClient(handle.host, handle.port) as client:
                client.solve(graph, seed=1, **OPTIONS)

        first = threading.Thread(target=blocked_solve, args=(graphs[0],))
        second = threading.Thread(target=blocked_solve, args=(graphs[1],))
        try:
            # Sequenced so there is no admission race: the worker holds
            # graph 0 before graph 1 is posted, so graph 1 fills the
            # depth-1 queue and graph 2 must be rejected.
            first.start()
            assert entered.wait(timeout=60)
            second.start()
            deadline = time.monotonic() + 30
            while sum(handle.server.router.loads) < 2:
                assert time.monotonic() < deadline, "queue never filled"
                time.sleep(0.01)
            with HttpMaxCutClient(handle.host, handle.port) as client:
                with pytest.raises(ServerOverloaded) as excinfo:
                    client.solve(graphs[2], seed=1, **OPTIONS)
                assert excinfo.value.retry_after == 1.0
                assert client.last_headers.get("Retry-After") == "1"
        finally:
            gate.set()
            first.join(timeout=60)
            if second.ident is not None:
                second.join(timeout=60)
            handle.stop()
        assert handle.merged_metrics().count("rejected") == 1


# ---------------------------------------------------------------------------
# 504 deadline-exceeded
# ---------------------------------------------------------------------------
class TestDeadline:
    def test_deadline_is_504_and_does_not_poison_the_solve(self):
        graph = erdos_renyi(10, 0.4, weighted=True, rng=5)
        gate, entered = threading.Event(), threading.Event()
        handle = HttpServerThread(
            n_shards=1,
            max_batch=1,
            service_factory=lambda k: GatedService(gate, entered, seed=0),
        ).start()
        try:
            with HttpMaxCutClient(handle.host, handle.port) as client:
                with pytest.raises(HttpResponseError) as excinfo:
                    client.solve(graph, seed=1, deadline_s=0.3, **OPTIONS)
                assert excinfo.value.status == 504
                assert excinfo.value.code == "deadline-exceeded"
                # Release the gated solve; the shield kept it running.
                gate.set()
                deadline = time.monotonic() + 60
                while handle.merged_metrics().count("solves") < 1:
                    assert time.monotonic() < deadline, "solve never finished"
                    time.sleep(0.02)
                retry = client.solve(graph, seed=1, **OPTIONS)
        finally:
            gate.set()
            handle.stop()
        ref = MaxCutService(seed=0).solve(graph, seed=1, **OPTIONS)
        # Served from the completed first solve, not re-solved or poisoned.
        assert retry.status in ("hit-memory", "coalesced-inflight")
        assert retry.cut == ref.cut
        assert handle.merged_metrics().count("solves") == 1
