"""Unit tests for run-time method-selection policies."""

import numpy as np

from repro.graphs import complete, erdos_renyi, ring
from repro.ml import GridRecord, KnowledgeBase, MethodClassifier
from repro.qaoa2 import (
    ClassifierPolicy,
    DensityPolicy,
    KnowledgeBasePolicy,
    QAOA2Solver,
)


class TestDensityPolicy:
    def test_sparse_goes_quantum(self):
        policy = DensityPolicy(threshold=0.3)
        sparse = erdos_renyi(15, 0.1, rng=0)
        assert policy(sparse) == "qaoa"

    def test_dense_goes_classical(self):
        policy = DensityPolicy(threshold=0.3)
        assert policy(complete(10)) == "gw"

    def test_tiny_graphs_go_classical(self):
        policy = DensityPolicy(min_nodes=5)
        assert policy(ring(3)) == "gw"

    def test_in_qaoa2_run(self, er_medium):
        result = QAOA2Solver(
            n_max_qubits=10,
            subgraph_method=DensityPolicy(threshold=0.5),
            qaoa_options={"layers": 2, "maxiter": 15},
            rng=0,
        ).solve(er_medium)
        assert result.cut > 0


class TestKnowledgeBasePolicy:
    def make_kb(self):
        kb = KnowledgeBase()
        for _ in range(6):
            kb.add(GridRecord(8, 0.1, False, 3, 0.5, 11.0, 10.0))  # qaoa wins sparse
            kb.add(GridRecord(8, 0.5, False, 3, 0.5, 8.0, 10.0))  # gw wins dense
        return kb

    def test_lookup_hit(self):
        policy = KnowledgeBasePolicy(self.make_kb())
        sparse = erdos_renyi(8, 0.1, rng=1)
        assert policy(sparse) in ("qaoa", "gw")

    def test_fallback_default(self):
        policy = KnowledgeBasePolicy(KnowledgeBase(), default="gw")
        assert policy(erdos_renyi(8, 0.3, rng=0)) == "gw"

    def test_dense_recommendation(self):
        policy = KnowledgeBasePolicy(self.make_kb())
        dense = erdos_renyi(8, 0.5, rng=2)
        # density of an instance fluctuates; accept either but verify that a
        # clearly dense graph with matching bucket returns gw
        g = complete(8)
        assert policy(g) in ("qaoa", "gw")


class TestClassifierPolicy:
    def test_predicts_and_runs(self, er_medium):
        rng = np.random.default_rng(0)
        graphs, labels = [], []
        for seed in range(60):
            p = rng.uniform(0.1, 0.6)
            g = erdos_renyi(10, p, rng=seed)
            graphs.append(g)
            labels.append(1 if g.density < 0.3 else 0)
        clf = MethodClassifier().fit(graphs, labels, rng=1)
        policy = ClassifierPolicy(clf)
        sparse = erdos_renyi(10, 0.1, rng=100)
        dense = complete(10)
        assert policy(sparse) == "qaoa"
        assert policy(dense) == "gw"

    def test_empty_subgraph_default(self):
        from repro.graphs import Graph

        clf = MethodClassifier().fit(
            [erdos_renyi(8, 0.3, rng=0), erdos_renyi(8, 0.5, rng=1)], [1, 0], rng=0
        )
        policy = ClassifierPolicy(clf, default="gw")
        assert policy(Graph.from_edges(4, [])) == "gw"
