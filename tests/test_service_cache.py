"""Two-tier result cache: LRU accounting, disk tier, knowledge export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import erdos_renyi
from repro.service.cache import ENTRY_OVERHEAD_BYTES, CacheEntry, ResultCache
from repro.service.fingerprint import canonical_fingerprint


def make_entry(
    digest, n_nodes=6, seed=0, params=None, layers=None, extra=None,
    graph_seed=0,
):
    """``graph_seed`` pins the topology (and so the entry byte size);
    ``seed`` varies the stored solution."""
    gen = np.random.default_rng(seed)
    graph = erdos_renyi(n_nodes, 0.5, weighted=True, rng=graph_seed)
    fp = canonical_fingerprint(graph)
    return CacheEntry(
        digest=digest,
        n_nodes=n_nodes,
        canon_u=fp.canon_u,
        canon_v=fp.canon_v,
        canon_w=fp.canon_w,
        assignment=gen.integers(0, 2, n_nodes).astype(np.uint8),
        cut=float(gen.uniform(1, 10)),
        method="qaoa",
        seed=seed,
        params=params,
        layers=layers,
        rhobeg=0.5 if layers else None,
        extra=dict(extra or {}),
    )


class TestMemoryTier:
    def test_put_get_roundtrip(self):
        cache = ResultCache()
        entry = make_entry("d0")
        cache.put(entry)
        got = cache.get("d0")
        assert got is entry
        assert got.hits == 1
        assert cache.get("missing") is None

    def test_lru_eviction_by_bytes(self):
        entry_bytes = make_entry("x").nbytes
        cache = ResultCache(max_bytes=3 * entry_bytes)
        for i in range(3):
            cache.put(make_entry(f"d{i}", seed=i))
        assert len(cache) == 3
        cache.get("d0")  # touch: d1 becomes least recently used
        cache.put(make_entry("d3", seed=3))
        assert cache.get("d1") is None  # evicted
        assert cache.get("d0") is not None
        assert cache.metrics.count("evictions") == 1
        assert cache.nbytes <= cache.max_bytes

    def test_nbytes_tracks_replacement(self):
        cache = ResultCache()
        cache.put(make_entry("d0"))
        before = cache.nbytes
        cache.put(make_entry("d0", seed=9))  # same digest, replaced
        assert len(cache) == 1
        assert cache.nbytes == before

    def test_entry_nbytes_accounts_arrays(self):
        entry = make_entry("d0")
        assert entry.nbytes >= ENTRY_OVERHEAD_BYTES + entry.assignment.nbytes

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)


class TestDiskTier:
    def test_write_through_and_reload(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "kb")
        entry = make_entry("d0", params=[0.1, 0.2], layers=1, extra={"qaoa_cut": 3.5})
        cache.put(entry)
        assert cache.disk_entries() == 1

        fresh = ResultCache(disk_dir=tmp_path / "kb")  # simulates a restart
        got, tier = fresh.get_tiered("d0")
        assert tier == "disk"
        assert got is not entry
        assert got.cut == entry.cut
        assert np.array_equal(got.assignment, entry.assignment)
        assert np.array_equal(got.canon_w, entry.canon_w)
        assert got.params == [0.1, 0.2]
        assert got.extra == {"qaoa_cut": 3.5}
        # Promoted: second read is a memory hit.
        assert fresh.get_tiered("d0")[1] == "memory"

    def test_eviction_keeps_disk_copy(self, tmp_path):
        entry_bytes = make_entry("x").nbytes
        cache = ResultCache(max_bytes=2 * entry_bytes, disk_dir=tmp_path)
        for i in range(4):
            cache.put(make_entry(f"d{i}", seed=i))
        assert len(cache) <= 2
        assert cache.get_tiered("d0")[1] == "disk"  # evicted but persisted

    def test_corrupt_file_is_miss(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.get("bad") is None


class TestKnowledgeExport:
    def test_exports_angle_records(self):
        cache = ResultCache()
        cache.put(
            make_entry(
                "d0", params=[0.3, 0.4], layers=1,
                extra={"qaoa_cut": 4.0, "gw_cut": 3.0},
            )
        )
        cache.put(make_entry("d1", seed=1))  # no params: skipped
        kb = cache.export_knowledge()
        assert len(kb) == 1
        rec = kb.records[0]
        assert rec.layers == 1 and rec.qaoa_params == [0.3, 0.4]
        assert rec.qaoa_cut == 4.0 and rec.gw_cut == 3.0
        assert rec.qaoa_win

    def test_warm_start_retrievable(self):
        cache = ResultCache()
        entry = make_entry("d0", n_nodes=10, params=[0.2, 0.5], layers=1)
        cache.put(entry)
        kb = cache.export_knowledge()
        warm = kb.warm_start_params(entry.n_nodes, entry.density, entry.weighted)
        assert warm is not None
        np.testing.assert_allclose(warm, [0.2, 0.5])


class TestCompaction:
    """ResultCache.compact(): per-entry JSON files -> data file + index."""

    def test_compact_round_trip(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        entries = {f"d{i:02d}": make_entry(f"d{i:02d}", seed=i) for i in range(5)}
        for entry in entries.values():
            cache.put(entry)
        assert len(list(tmp_path.glob("d*.json"))) == 5
        stats = cache.compact()
        assert stats["entries"] == 5
        assert stats["merged_files"] == 5
        assert not list(tmp_path.glob("d*.json"))  # loose files merged away
        assert (tmp_path / "compact.data.jsonl").exists()
        assert (tmp_path / "compact.index.json").exists()
        # A fresh cache (cold memory) serves every entry from the store.
        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.disk_entries() == 5
        for digest, original in entries.items():
            got, tier = fresh.get_tiered(digest)
            assert tier == "disk"
            assert got.cut == original.cut
            np.testing.assert_array_equal(got.assignment, original.assignment)
            np.testing.assert_array_equal(got.canon_u, original.canon_u)

    def test_post_compaction_writes_win_and_recompact(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(make_entry("dup", seed=1))
        cache.compact()
        # A fresh write-through lands as a loose file and shadows the
        # compacted copy until the next compaction folds it in.
        newer = make_entry("dup", seed=2)
        cache.put(newer)
        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.disk_entries() == 1
        assert fresh.get("dup").cut == newer.cut
        stats = cache.compact()
        assert stats["entries"] == 1 and stats["merged_files"] == 1
        fresh2 = ResultCache(disk_dir=tmp_path)
        assert fresh2.get("dup").cut == newer.cut

    def test_compact_empty_dir(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        stats = cache.compact()
        assert stats == {"entries": 0, "merged_files": 0, "data_bytes": 0}
        assert cache.disk_entries() == 0

    def test_compact_requires_disk_tier(self):
        with pytest.raises(ValueError, match="disk_dir"):
            ResultCache().compact()

    def test_torn_index_degrades_to_miss(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(make_entry("x1"))
        cache.compact()
        (tmp_path / "compact.index.json").write_text("{not json")
        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.get("x1") is None  # miss, never a crash
        assert fresh.disk_entries() == 0

    def test_torn_loose_file_skipped_by_compaction(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(make_entry("ok"))
        (tmp_path / "torn.json").write_text("{broken")
        stats = cache.compact()
        assert stats["entries"] == 1
        assert ResultCache(disk_dir=tmp_path).get("ok") is not None

    def test_compaction_metric(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(make_entry("m1"))
        cache.compact()
        assert cache.metrics.count("compactions") == 1

    def test_torn_loose_file_falls_through_to_compacted_copy(self, tmp_path):
        # A crashed write-through must not shadow a valid compacted entry.
        cache = ResultCache(disk_dir=tmp_path)
        entry = make_entry("shadowed")
        cache.put(entry)
        cache.compact()
        (tmp_path / "shadowed.json").write_text('{"digest": "shadowed", tor')
        fresh = ResultCache(disk_dir=tmp_path)
        got = fresh.get("shadowed")
        assert got is not None and got.cut == entry.cut

    def test_stale_index_digest_mismatch_is_a_miss(self, tmp_path):
        # An index read against a rewritten data file may land cleanly on
        # a different entry; the digest check turns that into a miss.
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(make_entry("aaa"))
        cache.put(make_entry("bbb", seed=9))
        cache.compact()
        index = cache._load_compact_index()
        index["aaa"], index["bbb"] = index["bbb"], index["aaa"]  # simulate stale
        assert cache._compact_get("aaa") is None
        assert cache._compact_get("bbb") is None
