"""Two-tier result cache: LRU accounting, disk tier, knowledge export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import erdos_renyi
from repro.service.cache import ENTRY_OVERHEAD_BYTES, CacheEntry, ResultCache
from repro.service.fingerprint import canonical_fingerprint


def make_entry(
    digest, n_nodes=6, seed=0, params=None, layers=None, extra=None,
    graph_seed=0,
):
    """``graph_seed`` pins the topology (and so the entry byte size);
    ``seed`` varies the stored solution."""
    gen = np.random.default_rng(seed)
    graph = erdos_renyi(n_nodes, 0.5, weighted=True, rng=graph_seed)
    fp = canonical_fingerprint(graph)
    return CacheEntry(
        digest=digest,
        n_nodes=n_nodes,
        canon_u=fp.canon_u,
        canon_v=fp.canon_v,
        canon_w=fp.canon_w,
        assignment=gen.integers(0, 2, n_nodes).astype(np.uint8),
        cut=float(gen.uniform(1, 10)),
        method="qaoa",
        seed=seed,
        params=params,
        layers=layers,
        rhobeg=0.5 if layers else None,
        extra=dict(extra or {}),
    )


class TestMemoryTier:
    def test_put_get_roundtrip(self):
        cache = ResultCache()
        entry = make_entry("d0")
        cache.put(entry)
        got = cache.get("d0")
        assert got is entry
        assert got.hits == 1
        assert cache.get("missing") is None

    def test_lru_eviction_by_bytes(self):
        entry_bytes = make_entry("x").nbytes
        cache = ResultCache(max_bytes=3 * entry_bytes)
        for i in range(3):
            cache.put(make_entry(f"d{i}", seed=i))
        assert len(cache) == 3
        cache.get("d0")  # touch: d1 becomes least recently used
        cache.put(make_entry("d3", seed=3))
        assert cache.get("d1") is None  # evicted
        assert cache.get("d0") is not None
        assert cache.metrics.count("evictions") == 1
        assert cache.nbytes <= cache.max_bytes

    def test_nbytes_tracks_replacement(self):
        cache = ResultCache()
        cache.put(make_entry("d0"))
        before = cache.nbytes
        cache.put(make_entry("d0", seed=9))  # same digest, replaced
        assert len(cache) == 1
        assert cache.nbytes == before

    def test_entry_nbytes_accounts_arrays(self):
        entry = make_entry("d0")
        assert entry.nbytes >= ENTRY_OVERHEAD_BYTES + entry.assignment.nbytes

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)


class TestDiskTier:
    def test_write_through_and_reload(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "kb")
        entry = make_entry("d0", params=[0.1, 0.2], layers=1, extra={"qaoa_cut": 3.5})
        cache.put(entry)
        assert cache.disk_entries() == 1

        fresh = ResultCache(disk_dir=tmp_path / "kb")  # simulates a restart
        got, tier = fresh.get_tiered("d0")
        assert tier == "disk"
        assert got is not entry
        assert got.cut == entry.cut
        assert np.array_equal(got.assignment, entry.assignment)
        assert np.array_equal(got.canon_w, entry.canon_w)
        assert got.params == [0.1, 0.2]
        assert got.extra == {"qaoa_cut": 3.5}
        # Promoted: second read is a memory hit.
        assert fresh.get_tiered("d0")[1] == "memory"

    def test_eviction_keeps_disk_copy(self, tmp_path):
        entry_bytes = make_entry("x").nbytes
        cache = ResultCache(max_bytes=2 * entry_bytes, disk_dir=tmp_path)
        for i in range(4):
            cache.put(make_entry(f"d{i}", seed=i))
        assert len(cache) <= 2
        assert cache.get_tiered("d0")[1] == "disk"  # evicted but persisted

    def test_corrupt_file_is_miss(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.get("bad") is None


class TestKnowledgeExport:
    def test_exports_angle_records(self):
        cache = ResultCache()
        cache.put(
            make_entry(
                "d0", params=[0.3, 0.4], layers=1,
                extra={"qaoa_cut": 4.0, "gw_cut": 3.0},
            )
        )
        cache.put(make_entry("d1", seed=1))  # no params: skipped
        kb = cache.export_knowledge()
        assert len(kb) == 1
        rec = kb.records[0]
        assert rec.layers == 1 and rec.qaoa_params == [0.3, 0.4]
        assert rec.qaoa_cut == 4.0 and rec.gw_cut == 3.0
        assert rec.qaoa_win

    def test_warm_start_retrievable(self):
        cache = ResultCache()
        entry = make_entry("d0", n_nodes=10, params=[0.2, 0.5], layers=1)
        cache.put(entry)
        kb = cache.export_knowledge()
        warm = kb.warm_start_params(entry.n_nodes, entry.density, entry.weighted)
        assert warm is not None
        np.testing.assert_allclose(warm, [0.2, 0.5])
