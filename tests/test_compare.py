"""Unit tests for paper-vs-measured comparison utilities."""

import numpy as np
import pytest

from repro.experiments import paperdata
from repro.experiments.compare import (
    Fig3Comparison,
    compare_fig3,
    compare_table1,
    density_profile,
    low_density_advantage,
    mean_abs_difference,
    rank_correlation,
)


class TestPrimitives:
    def test_mean_abs_difference_identity(self):
        a = paperdata.FIG3A_UNWEIGHTED
        assert mean_abs_difference(a, a) == 0.0

    def test_mean_abs_difference_known(self):
        a = np.array([[0.0, 1.0]])
        b = np.array([[0.5, 0.5]])
        assert mean_abs_difference(a, b) == pytest.approx(0.5)

    def test_mean_abs_difference_nan_safe(self):
        a = np.array([[0.0, np.nan]])
        b = np.array([[0.5, 0.7]])
        assert mean_abs_difference(a, b) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            mean_abs_difference(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_rank_correlation_perfect(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert rank_correlation(a, a * 10) == pytest.approx(1.0)

    def test_rank_correlation_inverted(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert rank_correlation(a, -a) == pytest.approx(-1.0)

    def test_density_profile_column_means(self):
        m = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert density_profile(m).tolist() == [0.5, 0.5]

    def test_published_low_density_advantage_positive(self):
        # The published Fig. 3(a) must show the paper's claimed pattern.
        assert low_density_advantage(paperdata.FIG3A_UNWEIGHTED) > 0.1
        assert low_density_advantage(paperdata.FIG3A_WEIGHTED) > 0.1


class TestCompareFig3:
    def make_grid_result(self):
        from repro.experiments import GridSearchConfig, run_grid_search

        return run_grid_search(
            GridSearchConfig(
                node_counts=(10, 12),
                edge_probs=(0.1, 0.3, 0.5),
                layers_grid=(2,),
                rhobeg_grid=(0.4,),
                rng=0,
            )
        )

    @pytest.mark.slow
    def test_laptop_tier_shape_only(self):
        result = self.make_grid_result()
        comparison = compare_fig3(result, weighted=False)
        assert isinstance(comparison, Fig3Comparison)
        assert comparison.mean_abs_diff is None  # axes differ from published
        assert comparison.published_advantage > 0
        assert "Fig3" in comparison.summary()

    def test_cell_stats_when_axes_match(self):
        # Synthesise a result object exposing the published axes so the
        # cell-level path is exercised without an hours-long sweep.
        class FakeConfig:
            node_counts = paperdata.FIG3_NODE_COUNTS
            edge_probs = paperdata.FIG3_EDGE_PROBS

        class FakeResult:
            config = FakeConfig()

            def proportions_by_graph(self, *, weighted, mode):
                return paperdata.fig3a(weighted) * 0.9  # correlated variant

        comparison = compare_fig3(FakeResult(), weighted=False)
        assert comparison.mean_abs_diff == pytest.approx(
            float(np.abs(paperdata.FIG3A_UNWEIGHTED * 0.1).mean())
        )
        assert comparison.rank_corr == pytest.approx(1.0)
        assert comparison.advantage_sign_agrees


class TestCompareTable1:
    def test_means_reported(self):
        from repro.experiments import Table1Config, run_table1

        result = run_table1(
            Table1Config(
                node_counts=(10,), edge_probs=(0.2,), layers_grid=(2,),
                rhobeg_grid=(0.4,), rng=0,
            )
        )
        stats = compare_table1(result)
        assert 0 <= stats["measured_mean_win"] <= 1
        assert stats["published_mean_win"] == pytest.approx(
            np.mean(list(paperdata.TABLE1_STRICT.values()))
        )
        # The published decline Fig3 -> Table1 must be visible in the data.
        assert stats["published_mean_win"] < stats["published_fig3_mean_win"]
