"""Unit tests for graph serialisation."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    erdos_renyi,
    read_edgelist,
    read_json,
    write_edgelist,
    write_json,
)


class TestEdgelist:
    def test_roundtrip_unweighted(self, tmp_path, er_small):
        path = tmp_path / "g.txt"
        write_edgelist(er_small, path)
        back = read_edgelist(path)
        assert back == er_small

    def test_roundtrip_weighted(self, tmp_path):
        g = erdos_renyi(12, 0.4, weighted=True, rng=3)
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        back = read_edgelist(path)
        assert back.n_edges == g.n_edges
        assert np.allclose(back.w, g.w)

    def test_header_optional(self, tmp_path, er_small):
        path = tmp_path / "g.txt"
        write_edgelist(er_small, path, header=False)
        back = read_edgelist(path, n_nodes=er_small.n_nodes)
        assert back == er_small

    def test_isolated_trailing_nodes_need_explicit_count(self, tmp_path):
        g = Graph.from_edges(5, [(0, 1, 1.0)])  # nodes 2-4 isolated
        path = tmp_path / "g.txt"
        write_edgelist(g, path)  # header carries n=5
        assert read_edgelist(path).n_nodes == 5

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n3 2\n1 2 1.0\n% other comment\n2 3 2.0\n")
        g = read_edgelist(path)
        assert g.n_nodes == 3
        assert g.n_edges == 2

    def test_two_column_edges_default_weight(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 2\n2 3\n")
        g = read_edgelist(path)
        assert np.allclose(g.w, 1.0)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("4 1\n7\n")
        with pytest.raises(ValueError, match="malformed"):
            read_edgelist(path)


class TestJson:
    def test_roundtrip_with_metadata(self, tmp_path):
        g = erdos_renyi(10, 0.3, weighted=True, rng=1)
        path = tmp_path / "g.json"
        write_json(g, path, metadata={"family": "er", "p": 0.3})
        back, meta = read_json(path)
        assert back == g
        assert meta["family"] == "er"

    def test_empty_metadata(self, tmp_path, er_small):
        path = tmp_path / "g.json"
        write_json(er_small, path)
        back, meta = read_json(path)
        assert back == er_small
        assert meta == {}
