"""HttpMaxCutClient behaviour: exception mapping, keep-alive retry after
server-side idle close, calling styles, lifecycle (ISSUE 8)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graphs import erdos_renyi
from repro.service import (
    HttpMaxCutClient,
    HttpResponseError,
    MaxCutService,
    RequestError,
    ServerOverloaded,
    build_request,
)
from repro.service.http import RETRY_AFTER_S, HttpServerThread

pytestmark = pytest.mark.timeout(120)

OPTIONS = {"layers": 1, "maxiter": 15}


# ---------------------------------------------------------------------------
# Exception mapping (the wire -> exception half of the error contract)
# ---------------------------------------------------------------------------
class TestRaiseFor:
    def client(self):
        return HttpMaxCutClient("localhost", 1)  # never connected

    def test_overloaded_maps_to_server_overloaded(self):
        client = self.client()
        with pytest.raises(ServerOverloaded) as excinfo:
            client._raise_for(503, {"code": "overloaded", "error": "full"})
        # No Retry-After header seen -> the documented default.
        assert excinfo.value.retry_after == float(RETRY_AFTER_S)

    def test_retry_after_header_is_parsed(self):
        client = self.client()
        client.last_headers = {"Retry-After": "7"}
        with pytest.raises(ServerOverloaded) as excinfo:
            client._raise_for(503, {"code": "overloaded", "error": "full"})
        assert excinfo.value.retry_after == 7.0

    def test_solve_failed_maps_to_request_error(self):
        with pytest.raises(RequestError, match="boom"):
            self.client()._raise_for(502, {"code": "solve-failed", "error": "boom"})

    def test_anything_else_is_http_response_error(self):
        with pytest.raises(HttpResponseError) as excinfo:
            self.client()._raise_for(418, {"code": "teapot", "error": "short"})
        error = excinfo.value
        assert error.status == 418
        assert error.code == "teapot"
        assert error.payload == {"code": "teapot", "error": "short"}
        assert "HTTP 418 [teapot]: short" in str(error)

    def test_payload_without_code_still_raises(self):
        with pytest.raises(HttpResponseError) as excinfo:
            self.client()._raise_for(500, {})
        assert excinfo.value.code == "unknown"


# ---------------------------------------------------------------------------
# Calling styles
# ---------------------------------------------------------------------------
class TestCallingStyles:
    def test_prebuilt_request_equals_graph_plus_options(self):
        graph = erdos_renyi(10, 0.4, weighted=True, rng=3)
        request = build_request(graph, seed=4, **OPTIONS)
        with HttpServerThread(n_shards=1, seed=0) as handle:
            with HttpMaxCutClient(handle.host, handle.port) as client:
                via_request = client.solve(request=request)
                via_options = client.solve(graph, seed=4, **OPTIONS)
        assert via_request.digest == via_options.digest
        assert via_request.cut == via_options.cut
        assert np.array_equal(via_request.assignment, via_options.assignment)

    def test_neither_graph_nor_request_raises(self):
        client = HttpMaxCutClient("localhost", 1)
        with pytest.raises(ValueError, match="graph or a request"):
            client.solve()

    def test_both_graph_and_request_raises(self):
        graph = erdos_renyi(6, 0.5, weighted=True, rng=0)
        client = HttpMaxCutClient("localhost", 1)
        with pytest.raises(ValueError, match="not both"):
            client.solve(graph, request=build_request(graph))


# ---------------------------------------------------------------------------
# Connection lifecycle
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_context_manager_closes_connection(self):
        with HttpServerThread(n_shards=1, seed=0) as handle:
            with HttpMaxCutClient(handle.host, handle.port) as client:
                client.healthz()
                assert client._conn is not None
            assert client._conn is None

    def test_retry_after_server_side_idle_close(self):
        # The server reaps idle kept-alive connections after keepalive_s;
        # the client must transparently retry once on the stale socket
        # instead of surfacing a connection error.
        with HttpServerThread(
            n_shards=1, seed=0, http_options={"keepalive_s": 0.3}
        ) as handle:
            with HttpMaxCutClient(handle.host, handle.port) as client:
                assert client.healthz()["status"] == "ok"
                time.sleep(1.0)  # server closes the idle connection
                assert client.healthz()["status"] == "ok"

    def test_last_headers_recorded(self):
        with HttpServerThread(n_shards=1, seed=0) as handle:
            with HttpMaxCutClient(handle.host, handle.port) as client:
                client.healthz()
                assert client.last_headers.get("Content-Type") == "application/json"

    def test_solve_result_types_decode(self):
        graph = erdos_renyi(9, 0.4, weighted=True, rng=6)
        ref = MaxCutService(seed=0).solve(graph, seed=2, **OPTIONS)
        with HttpServerThread(n_shards=1, seed=0) as handle:
            with HttpMaxCutClient(handle.host, handle.port) as client:
                result = client.solve(graph, seed=2, **OPTIONS)
        assert result.assignment.dtype == np.uint8
        assert isinstance(result.cut, float)
        assert isinstance(result.seed, int)
        assert result.cut == ref.cut
