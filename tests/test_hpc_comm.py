"""Unit tests for the in-process MPI communicator."""

import pickle

import numpy as np
import pytest

from repro.hpc.comm import ANY_SOURCE, ANY_TAG, run_parallel


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        results = run_parallel(2, fn)
        assert results[1] == {"a": 7, "b": 3.14}

    def test_tag_matching_out_of_order(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        results = run_parallel(2, fn)
        assert results[1] == ("first", "second")

    def test_any_source_any_tag(self):
        def fn(comm):
            if comm.rank == 0:
                got = set()
                for _ in range(comm.size - 1):
                    status = {}
                    value = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
                    got.add((status["source"], value))
                return got
            comm.send(comm.rank * 10, dest=0, tag=comm.rank)
            return None

        results = run_parallel(4, fn)
        assert results[0] == {(1, 10), (2, 20), (3, 30)}

    def test_numpy_payload_roundtrip(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(100), dest=1)
                return None
            return comm.recv(source=0)

        results = run_parallel(2, fn)
        assert np.array_equal(results[1], np.arange(100))

    def test_pickle_semantics_enforced(self):
        def fn(comm):
            if comm.rank == 0:
                # pickle refuses local lambdas with AttributeError
                with pytest.raises((AttributeError, pickle.PicklingError)):
                    comm.send(lambda x: x, dest=1)
            comm.barrier()
            return True

        assert all(run_parallel(2, fn))

    def test_invalid_dest(self):
        def fn(comm):
            if comm.rank == 0:
                with pytest.raises(ValueError):
                    comm.send(1, dest=5)
            comm.barrier()
            return True

        assert all(run_parallel(2, fn))

    def test_recv_timeout(self):
        def fn(comm):
            if comm.rank == 0:
                with pytest.raises(TimeoutError):
                    comm.recv(source=1, timeout=0.05)
            comm.barrier()
            return True

        assert all(run_parallel(2, fn))

    def test_fifo_per_source_pair(self):
        def fn(comm):
            if comm.rank == 0:
                for k in range(20):
                    comm.send(k, dest=1, tag=0)
                return None
            return [comm.recv(source=0, tag=0) for _ in range(20)]

        results = run_parallel(2, fn)
        assert results[1] == list(range(20))


class TestCollectives:
    def test_bcast(self):
        def fn(comm):
            return comm.bcast("payload" if comm.rank == 0 else None, root=0)

        assert run_parallel(3, fn) == ["payload"] * 3

    def test_bcast_nonzero_root(self):
        def fn(comm):
            return comm.bcast(comm.rank if comm.rank == 2 else None, root=2)

        assert run_parallel(3, fn) == [2, 2, 2]

    def test_scatter_gather_roundtrip(self):
        def fn(comm):
            part = comm.scatter(
                [i * i for i in range(comm.size)] if comm.rank == 0 else None, root=0
            )
            return comm.gather(part, root=0)

        results = run_parallel(4, fn)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None

    def test_scatter_wrong_length(self):
        def fn(comm):
            if comm.rank == 0:
                with pytest.raises(ValueError):
                    comm.scatter([1], root=0)
                comm.send("unblock", dest=1, tag=99)
                return None
            # Rank 1's scatter would block; use plain recv for the sync.
            return comm.recv(source=0, tag=99)

        results = run_parallel(2, fn)
        assert results[1] == "unblock"

    def test_allgather(self):
        def fn(comm):
            return comm.allgather(comm.rank + 100)

        results = run_parallel(3, fn)
        assert all(r == [100, 101, 102] for r in results)

    def test_allreduce_sum_default(self):
        def fn(comm):
            return comm.allreduce(comm.rank + 1)

        assert run_parallel(4, fn) == [10, 10, 10, 10]

    def test_allreduce_custom_op(self):
        def fn(comm):
            return comm.allreduce(comm.rank + 1, op=max)

        assert run_parallel(4, fn) == [4, 4, 4, 4]

    def test_repeated_collectives_no_crosstalk(self):
        def fn(comm):
            out = []
            for round_ in range(10):
                out.append(comm.allreduce(comm.rank * round_))
            return out

        results = run_parallel(4, fn)
        expected = [sum(r * k for r in range(4)) for k in range(10)]
        assert all(r == expected for r in results)

    def test_barrier_synchronises(self):
        import time

        def fn(comm):
            if comm.rank == 0:
                time.sleep(0.05)
            comm.barrier()
            return time.perf_counter()

        times = run_parallel(3, fn)
        assert max(times) - min(times) < 0.05


class TestRunParallel:
    def test_exceptions_propagate(self):
        def fn(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            return comm.rank

        with pytest.raises(RuntimeError, match="boom"):
            run_parallel(3, fn)

    def test_extra_args_forwarded(self):
        def fn(comm, offset):
            return comm.rank + offset

        assert run_parallel(2, fn, 10) == [10, 11]

    def test_size_validation(self):
        with pytest.raises(ValueError):
            run_parallel(0, lambda comm: None)

    def test_rank_size_accessors(self):
        def fn(comm):
            return (comm.Get_rank(), comm.Get_size(), comm.rank, comm.size)

        results = run_parallel(3, fn)
        for rank, (r1, s1, r2, s2) in enumerate(results):
            assert r1 == r2 == rank
            assert s1 == s2 == 3
