"""Cross-module integration tests: the full pipelines of the paper."""

import numpy as np
import pytest

from repro import (
    DensityPolicy,
    QAOA2Solver,
    QAOASolver,
    cut_value,
    erdos_renyi,
    exact_maxcut,
    goemans_williamson,
)
from repro.experiments import GridSearchConfig, run_grid_search
from repro.ml import MethodClassifier, extract_features
from repro.qaoa2 import KnowledgeBasePolicy


class TestPaperPipeline:
    """End-to-end flows mirroring the paper's §4 methodology."""

    @pytest.mark.slow
    def test_grid_search_feeds_knowledge_base_feeds_qaoa2(self):
        """Fig. 3 -> knowledge base -> §3.6 run-time selection."""
        grid = run_grid_search(
            GridSearchConfig(
                node_counts=(8, 10),
                edge_probs=(0.2, 0.5),
                layers_grid=(2,),
                rhobeg_grid=(0.4,),
                rng=0,
            )
        )
        kb = grid.to_knowledge_base()
        policy = KnowledgeBasePolicy(kb, default="gw")
        graph = erdos_renyi(40, 0.15, rng=9)
        result = QAOA2Solver(
            n_max_qubits=10,
            subgraph_method=policy,
            qaoa_options={"layers": 2, "maxiter": 20},
            rng=0,
        ).solve(graph)
        assert result.cut == pytest.approx(cut_value(graph, result.assignment))
        assert result.cut > graph.total_weight / 2

    @pytest.mark.slow
    def test_grid_search_trains_classifier(self):
        """The Moussa et al. flow: grid-search outcomes -> learned selector."""
        grid = run_grid_search(
            GridSearchConfig(
                node_counts=(8, 9, 10),
                edge_probs=(0.15, 0.5),
                layers_grid=(2,),
                rhobeg_grid=(0.4,),
                rng=1,
            )
        )
        features, labels = [], []
        rng = np.random.default_rng(0)
        for rec in grid.records:
            g = erdos_renyi(
                rec.n_nodes, rec.edge_probability, weighted=rec.weighted,
                rng=int(rng.integers(2**31)),
            )
            features.append(extract_features(g))
            labels.append(int(rec.qaoa_win))
        clf = MethodClassifier()
        clf.fit_features(np.array(features), np.array(labels), rng=0)
        # trained model must produce valid probabilities on fresh graphs
        p = clf.predict_proba(erdos_renyi(9, 0.3, rng=77))
        assert 0.0 <= p <= 1.0

    def test_warm_start_from_knowledge_base(self):
        """Ref. [37] flow: store optimal angles, warm-start a new solve."""
        grid = run_grid_search(
            GridSearchConfig(
                node_counts=(10,), edge_probs=(0.3,), layers_grid=(2,),
                rhobeg_grid=(0.5,), rng=2,
            )
        )
        kb = grid.to_knowledge_base()
        warm = kb.warm_start_params(10, 0.3, False)
        assert warm is not None
        graph = erdos_renyi(10, 0.3, rng=55)
        cold = QAOASolver(layers=2, init="ramp", rng=0, maxiter=20).solve(graph)
        warm_run = QAOASolver(
            layers=2, init="warm", warm_start=warm, rng=0, maxiter=20
        ).solve(graph)
        # Warm start must be valid; quality is instance-dependent.
        assert warm_run.cut <= exact_maxcut(graph).cut + 1e-9
        assert warm_run.cut > 0

    def test_qaoa2_vs_direct_methods_hierarchy(self):
        """The Fig. 4 qualitative ordering on a medium instance:
        every structured method beats random; GW-full is competitive."""
        from repro.graphs import random_cut

        graph = erdos_renyi(70, 0.1, rng=13)
        random_baseline = random_cut(graph, rng=0).cut
        qaoa2_gw = QAOA2Solver(n_max_qubits=10, subgraph_method="gw", rng=0).solve(graph)
        qaoa2_best = QAOA2Solver(
            n_max_qubits=10,
            subgraph_method="best",
            qaoa_options={"layers": 2, "maxiter": 20},
            rng=0,
        ).solve(graph)
        gw_full = goemans_williamson(graph, rng=0)
        assert qaoa2_gw.cut > random_baseline
        assert qaoa2_best.cut > random_baseline
        assert gw_full.average_cut > random_baseline
        # Full-graph GW typically at least matches the divide-and-conquer
        # variants at this scale (paper: "still substantially worse than
        # the GW method for the entire graph").
        assert gw_full.best_cut >= max(qaoa2_gw.cut, qaoa2_best.cut) * 0.95

    def test_small_instance_all_solvers_agree_near_optimum(self):
        graph = erdos_renyi(12, 0.4, rng=21)
        exact = exact_maxcut(graph).cut
        qaoa = QAOASolver(layers=4, selection="topk", rng=0, maxiter=80).solve(graph)
        gw = goemans_williamson(graph, rng=0)
        assert qaoa.cut >= 0.9 * exact
        assert gw.best_cut >= 0.878 * exact

    def test_density_policy_routes_by_sparsity(self):
        graph = erdos_renyi(50, 0.08, rng=31)
        result = QAOA2Solver(
            n_max_qubits=10,
            subgraph_method=DensityPolicy(threshold=0.45),
            qaoa_options={"layers": 2, "maxiter": 15},
            rng=0,
        ).solve(graph)
        counts = result.method_counts()
        assert sum(counts.values()) == result.n_subproblems
