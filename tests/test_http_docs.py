"""Docs cannot drift: the error table in docs/http-api.md must equal
ERROR_CONTRACT, every endpoint must be documented, the README package
map must cover the tree, and the docs-check tool must pass (ISSUE 8)."""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.http import ERROR_CONTRACT, RETRY_AFTER_S, ROUTES

pytestmark = pytest.mark.timeout(120)

REPO_ROOT = Path(__file__).resolve().parent.parent
HTTP_API_MD = REPO_ROOT / "docs" / "http-api.md"
ARCHITECTURE_MD = REPO_ROOT / "docs" / "architecture.md"
README_MD = REPO_ROOT / "README.md"

# Rows of the error-contract table: | `code` | 400 | meaning |
ERROR_ROW_RE = re.compile(r"^\|\s*`([a-z-]+)`\s*\|\s*(\d{3})\s*\|", re.MULTILINE)


class TestHttpApiDoc:
    def test_error_table_matches_error_contract_exactly(self):
        documented = {
            code: int(status)
            for code, status in ERROR_ROW_RE.findall(HTTP_API_MD.read_text())
        }
        assert documented == ERROR_CONTRACT, (
            "docs/http-api.md error table drifted from "
            "repro.service.http.ERROR_CONTRACT — update both together"
        )

    def test_every_route_is_documented(self):
        text = HTTP_API_MD.read_text()
        for path, method in ROUTES.items():
            assert f"`{path}`" in text, f"{path} missing from docs/http-api.md"
            assert method in text

    def test_retry_after_value_is_documented(self):
        assert f"`Retry-After: {RETRY_AFTER_S}`" in HTTP_API_MD.read_text()

    def test_solve_schema_fields_are_documented(self):
        text = HTTP_API_MD.read_text()
        for field in (
            "graph",
            "method",
            "options",
            "qaoa_grid",
            "gw_options",
            "seed",
            "exact",
            "deadline_s",
        ):
            assert f"`{field}`" in text, f"request field {field} undocumented"


class TestArchitectureDoc:
    def test_lifecycle_stages_are_described(self):
        text = ARCHITECTURE_MD.read_text()
        for stage in (
            "repro.service.http",
            "repro.service.server",
            "repro.service.service",
            "fingerprint",
            "admission",
            "SweepEngine",
            "backend",
        ):
            assert stage in text, f"architecture.md missing stage {stage!r}"


class TestObservabilityDoc:
    """docs/observability.md mirrors the code's vocabularies (ISSUE 9)."""

    OBSERVABILITY_MD = REPO_ROOT / "docs" / "observability.md"

    # Counter entries in the repro.service.metrics module docstring:
    # ``name``  description  (one per line, flush left).
    DOCSTRING_TOKEN_RE = re.compile(r"^``([a-z_<>]+)``", re.MULTILINE)
    # Rows of the observability.md counter table: | `name` | meaning |
    TABLE_TOKEN_RE = re.compile(r"^\|\s*`([a-z_<>]+)`\s*\|", re.MULTILINE)

    def counter_section(self) -> str:
        text = self.OBSERVABILITY_MD.read_text()
        _, _, section = text.partition("## Counter vocabulary")
        assert section, "observability.md lost its '## Counter vocabulary' section"
        return section.split("\n## ", 1)[0]

    def test_counter_table_matches_metrics_docstring(self):
        from repro.service import metrics

        assert metrics.__doc__ is not None
        code_tokens = set(self.DOCSTRING_TOKEN_RE.findall(metrics.__doc__))
        doc_tokens = set(self.TABLE_TOKEN_RE.findall(self.counter_section()))
        assert doc_tokens and code_tokens
        assert doc_tokens == code_tokens, (
            "docs/observability.md counter table drifted from the "
            "repro.service.metrics docstring — update both together; "
            f"docs-only={sorted(doc_tokens - code_tokens)}, "
            f"code-only={sorted(code_tokens - doc_tokens)}"
        )

    def test_span_vocabulary_is_documented(self):
        text = self.OBSERVABILITY_MD.read_text()
        for span in (
            "request",
            "wire-parse",
            "await",
            "shard-queue",
            "coalesced-inflight",
            "fingerprint",
            "lookup",
            "solve",
            "store",
            "cut_diagonal",
            "evolve_chunk",
            "walsh_stage",
            "backend-evolve",
        ):
            assert f"`{span}`" in text, f"span {span!r} missing from observability.md"

    def test_trace_header_and_endpoints_are_documented(self):
        from repro.service.http import TRACE_HEADER, TRACE_ROUTE_PREFIX

        for text in (self.OBSERVABILITY_MD.read_text(), HTTP_API_MD.read_text()):
            assert TRACE_HEADER in text
            assert f"{TRACE_ROUTE_PREFIX}<id>" in text
            assert "/metrics" in text


class TestReadme:
    def test_package_map_covers_every_subpackage(self):
        readme = README_MD.read_text()
        packages = sorted(
            child.name
            for child in (REPO_ROOT / "src" / "repro").iterdir()
            if child.is_dir() and (child / "__init__.py").exists()
        )
        assert packages, "no subpackages found under src/repro"
        missing = [n for n in packages if f"repro.{n}" not in readme]
        assert not missing, f"README package map missing {missing}"

    def test_readme_links_the_sub_readmes_and_tier1(self):
        readme = README_MD.read_text()
        for link in (
            "src/repro/service/README.md",
            "src/repro/quantum/README.md",
            "src/repro/analysis/README.md",
            "benchmarks/README.md",
            "docs/architecture.md",
            "docs/http-api.md",
            "docs/observability.md",
        ):
            assert link in readme, f"README missing link to {link}"
        assert "python -m pytest -x -q" in readme


class TestDocsCheckTool:
    def test_check_docs_passes(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            timeout=60,
            check=False,
        )
        assert result.returncode == 0, result.stdout + result.stderr
