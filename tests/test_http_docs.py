"""Docs cannot drift: the error table in docs/http-api.md must equal
ERROR_CONTRACT, every endpoint must be documented, the README package
map must cover the tree, and the docs-check tool must pass (ISSUE 8)."""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.http import ERROR_CONTRACT, RETRY_AFTER_S, ROUTES

pytestmark = pytest.mark.timeout(120)

REPO_ROOT = Path(__file__).resolve().parent.parent
HTTP_API_MD = REPO_ROOT / "docs" / "http-api.md"
ARCHITECTURE_MD = REPO_ROOT / "docs" / "architecture.md"
README_MD = REPO_ROOT / "README.md"

# Rows of the error-contract table: | `code` | 400 | meaning |
ERROR_ROW_RE = re.compile(r"^\|\s*`([a-z-]+)`\s*\|\s*(\d{3})\s*\|", re.MULTILINE)


class TestHttpApiDoc:
    def test_error_table_matches_error_contract_exactly(self):
        documented = {
            code: int(status)
            for code, status in ERROR_ROW_RE.findall(HTTP_API_MD.read_text())
        }
        assert documented == ERROR_CONTRACT, (
            "docs/http-api.md error table drifted from "
            "repro.service.http.ERROR_CONTRACT — update both together"
        )

    def test_every_route_is_documented(self):
        text = HTTP_API_MD.read_text()
        for path, method in ROUTES.items():
            assert f"`{path}`" in text, f"{path} missing from docs/http-api.md"
            assert method in text

    def test_retry_after_value_is_documented(self):
        assert f"`Retry-After: {RETRY_AFTER_S}`" in HTTP_API_MD.read_text()

    def test_solve_schema_fields_are_documented(self):
        text = HTTP_API_MD.read_text()
        for field in (
            "graph",
            "method",
            "options",
            "qaoa_grid",
            "gw_options",
            "seed",
            "exact",
            "deadline_s",
        ):
            assert f"`{field}`" in text, f"request field {field} undocumented"


class TestArchitectureDoc:
    def test_lifecycle_stages_are_described(self):
        text = ARCHITECTURE_MD.read_text()
        for stage in (
            "repro.service.http",
            "repro.service.server",
            "repro.service.service",
            "fingerprint",
            "admission",
            "SweepEngine",
            "backend",
        ):
            assert stage in text, f"architecture.md missing stage {stage!r}"


class TestReadme:
    def test_package_map_covers_every_subpackage(self):
        readme = README_MD.read_text()
        packages = sorted(
            child.name
            for child in (REPO_ROOT / "src" / "repro").iterdir()
            if child.is_dir() and (child / "__init__.py").exists()
        )
        assert packages, "no subpackages found under src/repro"
        missing = [n for n in packages if f"repro.{n}" not in readme]
        assert not missing, f"README package map missing {missing}"

    def test_readme_links_the_sub_readmes_and_tier1(self):
        readme = README_MD.read_text()
        for link in (
            "src/repro/service/README.md",
            "src/repro/quantum/README.md",
            "src/repro/analysis/README.md",
            "benchmarks/README.md",
            "docs/architecture.md",
            "docs/http-api.md",
        ):
            assert link in readme, f"README missing link to {link}"
        assert "python -m pytest -x -q" in readme


class TestDocsCheckTool:
    def test_check_docs_passes(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            timeout=60,
            check=False,
        )
        assert result.returncode == 0, result.stdout + result.stderr
