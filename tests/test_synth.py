"""Unit tests for repro.synth (model, passes, synthesis)."""

import numpy as np
import pytest

from repro.graphs import cut_diagonal
from repro.quantum import Circuit, StatevectorSimulator, run_qaoa_reference
from repro.quantum.circuit import ParamRef
from repro.quantum.statevector import fidelity
from repro.synth import (
    CombinatorialModel,
    OptimizationTarget,
    Preferences,
    QAOAConfig,
    cancel_identities,
    decompose_rzz,
    fuse_rotations,
    greedy_edge_coloring,
    qaoa_ansatz,
    schedule_commuting_layer,
    synthesize,
)


@pytest.fixture
def model(er_small):
    return CombinatorialModel.maxcut(er_small, layers=2)


class TestModel:
    def test_maxcut_model_fields(self, er_small, model):
        assert model.n_qubits == er_small.n_nodes
        assert model.qaoa.layers == 2
        assert model.name == "maxcut"

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            QAOAConfig(layers=0)

    def test_invalid_basis(self):
        with pytest.raises(ValueError, match="basis"):
            Preferences(basis="xy")


class TestEdgeColoring:
    def test_disjoint_within_class(self, er_small):
        edges = list(zip(er_small.u.tolist(), er_small.v.tolist(), strict=True))
        classes = greedy_edge_coloring(er_small.n_nodes, edges)
        for cls in classes:
            seen = set()
            for k in cls:
                a, b = edges[k]
                assert a not in seen and b not in seen
                seen.update((a, b))

    def test_all_edges_colored_once(self, er_small):
        edges = list(zip(er_small.u.tolist(), er_small.v.tolist(), strict=True))
        classes = greedy_edge_coloring(er_small.n_nodes, edges)
        flat = sorted(k for cls in classes for k in cls)
        assert flat == list(range(len(edges)))

    def test_color_count_bounded(self, er_small):
        edges = list(zip(er_small.u.tolist(), er_small.v.tolist(), strict=True))
        classes = greedy_edge_coloring(er_small.n_nodes, edges)
        max_degree = int(er_small.degrees().max())
        assert len(classes) <= 2 * max_degree - 1 if max_degree else True

    def test_star_graph_needs_degree_colors(self):
        edges = [(0, k) for k in range(1, 6)]
        classes = greedy_edge_coloring(6, edges)
        assert len(classes) == 5


class TestScheduler:
    def test_same_unitary_after_reorder(self):
        qc = Circuit(4)
        for (a, b), theta in zip([(0, 1), (1, 2), (2, 3), (0, 3)], [0.3, 0.5, 0.7, 0.9], strict=True):
            qc.rzz(theta, a, b)
        scheduled = schedule_commuting_layer(4, qc.instructions)
        qc2 = Circuit(4, scheduled)
        sim = StatevectorSimulator()
        init = np.random.default_rng(0).standard_normal(16) + 0j
        init /= np.linalg.norm(init)
        s1 = sim.run(qc, initial_state=init).state
        s2 = sim.run(qc2, initial_state=init).state
        assert np.allclose(s1, s2)

    def test_depth_reduced_on_path(self):
        # Path graph RZZ chain: naive depth 3, colored depth 2.
        qc = Circuit(4).rzz(0.1, 0, 1).rzz(0.1, 1, 2).rzz(0.1, 2, 3)
        scheduled = Circuit(4, schedule_commuting_layer(4, qc.instructions))
        assert scheduled.depth() <= qc.depth()
        assert scheduled.depth() == 2

    def test_non_commuting_rejected(self):
        qc = Circuit(2).cx(0, 1)
        with pytest.raises(ValueError, match="non-commuting"):
            schedule_commuting_layer(2, qc.instructions)


class TestFusion:
    def test_adjacent_rz_fused(self):
        qc = Circuit(1).rz(0.3, 0).rz(0.4, 0)
        fused = fuse_rotations(qc)
        assert fused.size() == 1
        assert fused.instructions[0].params[0] == pytest.approx(0.7)

    def test_fusion_blocked_by_intervening_gate(self):
        qc = Circuit(1).rz(0.3, 0).h(0).rz(0.4, 0)
        assert fuse_rotations(qc).size() == 3

    def test_paramref_same_index_fused(self):
        qc = Circuit(1)
        qc.rx(ParamRef(0, 1.0), 0)
        qc.rx(ParamRef(0, 2.0), 0)
        fused = fuse_rotations(qc)
        assert fused.size() == 1
        assert fused.instructions[0].params[0].coeff == pytest.approx(3.0)

    def test_paramref_different_index_not_fused(self):
        qc = Circuit(1)
        qc.rx(ParamRef(0), 0)
        qc.rx(ParamRef(1), 0)
        assert fuse_rotations(qc).size() == 2

    def test_rzz_fused_on_same_pair(self):
        qc = Circuit(2).rzz(0.2, 0, 1).rzz(0.3, 0, 1)
        fused = fuse_rotations(qc)
        assert fused.size() == 1
        assert fused.instructions[0].params[0] == pytest.approx(0.5)

    def test_fusion_preserves_unitary(self, rng):
        qc = Circuit(2).rz(0.3, 0).rz(-0.1, 0).rx(0.2, 1).rx(0.5, 1).rzz(0.1, 0, 1)
        sim = StatevectorSimulator()
        init = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        init /= np.linalg.norm(init)
        s1 = sim.run(qc, initial_state=init).state
        s2 = sim.run(fuse_rotations(qc), initial_state=init).state
        assert np.allclose(s1, s2)


class TestCancellation:
    def test_zero_angle_removed(self):
        qc = Circuit(1).rz(0.0, 0).rx(0.5, 0)
        assert cancel_identities(qc).size() == 1

    def test_adjacent_h_pair_cancelled(self):
        qc = Circuit(1).h(0).h(0)
        assert cancel_identities(qc).size() == 0

    def test_cx_pair_cancelled(self):
        qc = Circuit(2).cx(0, 1).cx(0, 1)
        assert cancel_identities(qc).size() == 0

    def test_cx_different_qubits_kept(self):
        qc = Circuit(3).cx(0, 1).cx(1, 2)
        assert cancel_identities(qc).size() == 2

    def test_cascading_cancellation(self):
        # h x x h -> h h -> empty
        qc = Circuit(1).h(0).x(0).x(0).h(0)
        assert cancel_identities(qc).size() == 0

    def test_intervening_gate_blocks_cancel(self):
        qc = Circuit(1).h(0).rz(0.1, 0).h(0)
        assert cancel_identities(qc).size() == 3


class TestDecompose:
    def test_rzz_to_cx_rz_cx(self):
        qc = Circuit(2).rzz(0.7, 0, 1)
        lowered = decompose_rzz(qc)
        assert [ins.name for ins in lowered.instructions] == ["cx", "rz", "cx"]

    def test_decomposition_preserves_unitary(self, rng):
        qc = Circuit(3).rzz(0.7, 0, 2).rzz(-0.4, 1, 2)
        sim = StatevectorSimulator()
        init = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        init /= np.linalg.norm(init)
        s1 = sim.run(qc, initial_state=init).state
        s2 = sim.run(decompose_rzz(qc), initial_state=init).state
        assert np.allclose(s1, s2, atol=1e-10)


class TestSynthesis:
    def test_ansatz_param_layout(self, model):
        qc = qaoa_ansatz(model)
        assert qc.n_params == 2 * model.qaoa.layers

    def test_synthesized_state_matches_reference(self, er_small, model):
        report = synthesize(model)
        params = np.array([0.4, 0.1, 0.3, 0.2])  # gammas then betas
        bound = report.circuit.bind(params)
        state = StatevectorSimulator().statevector(bound)
        ref = run_qaoa_reference(
            cut_diagonal(er_small), params[:2], params[2:]
        )
        assert fidelity(state, ref) == pytest.approx(1.0, abs=1e-9)

    def test_depth_optimization_reduces_depth(self, model):
        report = synthesize(model, Preferences(optimize=OptimizationTarget.DEPTH))
        assert report.optimized_metrics["depth"] <= report.naive_metrics["depth"]
        assert report.depth_reduction >= 0.0

    def test_cx_basis_has_no_rzz(self, model):
        report = synthesize(model, Preferences(basis="cx"))
        assert "rzz" not in report.circuit.gate_counts()
        assert report.circuit.gate_counts().get("cx", 0) > 0

    def test_cx_basis_state_matches(self, er_small, model):
        report = synthesize(model, Preferences(basis="cx"))
        params = np.array([0.4, 0.1, 0.3, 0.2])
        state = StatevectorSimulator().statevector(report.circuit.bind(params))
        ref = run_qaoa_reference(cut_diagonal(er_small), params[:2], params[2:])
        assert fidelity(state, ref) == pytest.approx(1.0, abs=1e-9)

    def test_max_depth_constraint_violation(self, model):
        with pytest.raises(ValueError, match="max_depth"):
            synthesize(model, Preferences(max_depth=1))

    def test_metrics_shape(self, model):
        report = synthesize(model)
        for key in ("size", "depth", "two_qubit", "n_qubits"):
            assert key in report.optimized_metrics
