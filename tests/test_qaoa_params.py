"""Unit tests for QAOA parameter strategies."""

import numpy as np
import pytest

from repro.qaoa.params import (
    default_iterations,
    fixed_init,
    initial_parameters,
    linear_ramp_init,
    random_init,
    transfer_parameters,
)


class TestInitializers:
    def test_fixed_shape_and_values(self):
        params = fixed_init(3, gamma0=0.2, beta0=0.3)
        assert len(params) == 6
        assert np.allclose(params[:3], 0.2)
        assert np.allclose(params[3:], 0.3)

    def test_ramp_monotone(self):
        params = linear_ramp_init(5)
        gammas, betas = params[:5], params[5:]
        assert np.all(np.diff(gammas) > 0)  # gamma grows
        assert np.all(np.diff(betas) < 0)  # beta shrinks

    def test_ramp_symmetry(self):
        # Annealing-path symmetry: γ_l mirrors β_{p-1-l}.
        params = linear_ramp_init(4, delta=1.0)
        gammas, betas = params[:4], params[4:]
        assert np.allclose(gammas, betas[::-1])

    def test_random_within_scale(self):
        params = random_init(10, rng=0, scale=0.5)
        assert np.all(np.abs(params) <= 0.5)

    def test_random_seeded(self):
        assert np.allclose(random_init(4, rng=3), random_init(4, rng=3))

    def test_dispatch_strategies(self):
        for strategy in ("fixed", "ramp", "random"):
            params = initial_parameters(3, strategy, rng=0)
            assert len(params) == 6

    def test_warm_requires_warm_start(self):
        with pytest.raises(ValueError, match="warm_start"):
            initial_parameters(3, "warm")

    def test_warm_uses_given_params(self):
        warm = np.array([0.1, 0.2, 0.3, 0.4])
        params = initial_parameters(2, "warm", warm_start=warm)
        assert np.allclose(params, warm)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown"):
            initial_parameters(3, "magic")


class TestTransfer:
    def test_same_p_is_copy(self):
        params = np.array([0.1, 0.2, 0.3, 0.4])
        out = transfer_parameters(params, 2)
        assert np.allclose(out, params)
        out[0] = 99
        assert params[0] == 0.1

    def test_upsample_preserves_endpoints(self):
        params = np.array([0.1, 0.5, 0.9, 0.8, 0.4, 0.0])  # p=3
        out = transfer_parameters(params, 5)
        gammas, betas = out[:5], out[5:]
        assert gammas[0] == pytest.approx(0.1)
        assert gammas[-1] == pytest.approx(0.9)
        assert betas[0] == pytest.approx(0.8)
        assert betas[-1] == pytest.approx(0.0)

    def test_downsample_shape(self):
        params = linear_ramp_init(8)
        out = transfer_parameters(params, 3)
        assert len(out) == 6

    def test_p_one_special_case(self):
        out = transfer_parameters(np.array([0.2, 0.4]), 3)
        assert len(out) == 6
        assert np.allclose(out[:3], 0.2)

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError, match="even"):
            transfer_parameters(np.zeros(5), 3)


class TestIterationBudget:
    def test_paper_endpoints(self):
        assert default_iterations(3) == 30
        assert default_iterations(8) == 100

    def test_linear_between(self):
        assert default_iterations(5) == 58  # 30 + 2/5*70
        assert default_iterations(6) == 72

    def test_clamped_outside_range(self):
        assert default_iterations(1) == 30
        assert default_iterations(20) == 100
